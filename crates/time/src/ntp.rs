//! NTP client math: offset/delay estimation, clock filtering, discipline.
//!
//! The protocol exchange itself (UDP packets between an `ntpd` client on each
//! node and a server on the head node) lives in `dvc-cluster`; this module is
//! the pure arithmetic, following Mills' improved algorithms at the level of
//! detail that matters for LSC:
//!
//! * [`offset_delay`] — the classic four-timestamp estimator.
//! * [`ClockFilter`] — keep the last 8 samples, trust the one with minimum
//!   round-trip delay (minimum-delay samples have the least asymmetry error).
//! * [`Discipline`] — a small PI-style loop: step on large offsets, otherwise
//!   slew the full filtered offset and nudge the frequency estimate by the
//!   observed offset rate. Converges to sub-ms residuals on symmetric LAN
//!   paths and a few ms under jittery/asymmetric delays — the regime the
//!   paper's prototype depends on.

use crate::clock::{HwClock, LocalNs};
use dvc_sim_core::SimTime;

/// One completed client↔server exchange.
///
/// Timestamps are in the units the protocol actually has access to:
/// `t1`, `t4` on the *client's* clock; `t2`, `t3` on the *server's*.
#[derive(Clone, Copy, Debug)]
pub struct NtpSample {
    /// Estimated clock offset θ (server − client), ns. Positive means the
    /// client is behind and must move forward.
    pub offset_ns: f64,
    /// Estimated round-trip delay δ, ns.
    pub delay_ns: f64,
    /// Client local time at which the sample completed.
    pub completed_at: LocalNs,
}

/// The four-timestamp offset/delay estimator:
/// θ = ((t2−t1) + (t3−t4)) / 2, δ = (t4−t1) − (t3−t2).
pub fn offset_delay(t1: LocalNs, t2: LocalNs, t3: LocalNs, t4: LocalNs) -> (f64, f64) {
    let theta = ((t2 - t1) as f64 + (t3 - t4) as f64) / 2.0;
    let delta = (t4 - t1) as f64 - (t3 - t2) as f64;
    (theta, delta)
}

/// An 8-deep minimum-delay clock filter.
#[derive(Clone, Debug, Default)]
pub struct ClockFilter {
    samples: Vec<NtpSample>,
}

pub const FILTER_DEPTH: usize = 8;

impl ClockFilter {
    pub fn new() -> Self {
        ClockFilter {
            samples: Vec::with_capacity(FILTER_DEPTH),
        }
    }

    pub fn push(&mut self, s: NtpSample) {
        if self.samples.len() == FILTER_DEPTH {
            self.samples.remove(0);
        }
        self.samples.push(s);
    }

    /// The best retained sample: minimum delay, newest among ties (ties are
    /// common on quiet LANs where delay is nearly deterministic).
    pub fn best(&self) -> Option<NtpSample> {
        self.samples
            .iter()
            .min_by(|a, b| {
                a.delay_ns
                    .partial_cmp(&b.delay_ns)
                    .unwrap()
                    .then(b.completed_at.cmp(&a.completed_at))
            })
            .copied()
    }

    /// Dispersion of retained offsets (max − min), a quality signal.
    pub fn offset_spread_ns(&self) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.samples {
            lo = lo.min(s.offset_ns);
            hi = hi.max(s.offset_ns);
        }
        if self.samples.is_empty() {
            0.0
        } else {
            hi - lo
        }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Discipline configuration.
#[derive(Clone, Copy, Debug)]
pub struct DisciplineConfig {
    /// Offsets at or above this step the clock (ntpd: 128 ms).
    pub step_threshold_ns: f64,
    /// Fraction of the filtered offset corrected per update (0 < g ≤ 1).
    pub offset_gain: f64,
    /// Gain on the frequency term (per update, dimensionless).
    pub freq_gain: f64,
    /// Clamp on any single frequency adjustment, ppm.
    pub max_freq_adj_ppm: f64,
}

impl Default for DisciplineConfig {
    fn default() -> Self {
        DisciplineConfig {
            step_threshold_ns: 128.0e6,
            offset_gain: 1.0,
            freq_gain: 0.1,
            max_freq_adj_ppm: 10.0,
        }
    }
}

/// The clock discipline loop driven by filtered NTP samples.
#[derive(Clone, Debug)]
pub struct Discipline {
    cfg: DisciplineConfig,
    filter: ClockFilter,
    last_update: Option<(LocalNs, f64)>,
    /// Count of hard steps applied (diagnostics).
    pub steps: u32,
    /// Count of updates applied (diagnostics).
    pub updates: u32,
}

impl Discipline {
    pub fn new(cfg: DisciplineConfig) -> Self {
        Discipline {
            cfg,
            filter: ClockFilter::new(),
            last_update: None,
            steps: 0,
            updates: 0,
        }
    }

    pub fn filter(&self) -> &ClockFilter {
        &self.filter
    }

    /// Ingest a completed exchange and, if warranted, correct `clock`.
    ///
    /// Returns the offset applied (ns), if any.
    pub fn on_sample(
        &mut self,
        clock: &mut HwClock,
        true_now: SimTime,
        sample: NtpSample,
    ) -> Option<f64> {
        self.filter.push(sample);
        let best = self.filter.best()?;
        // Outlier ("popcorn") suppression: ignore samples whose round-trip
        // delay is far above the filter's floor — their offset estimate is
        // dominated by asymmetric queueing. Everything else is acted on, so
        // the loop keeps updating even on perfectly quiet networks.
        if sample.delay_ns > 2.0 * best.delay_ns + 100_000.0 {
            return None;
        }

        let theta = sample.offset_ns;
        self.updates += 1;

        if theta.abs() >= self.cfg.step_threshold_ns {
            clock.set_correction(true_now, theta);
            self.steps += 1;
            self.last_update = Some((sample.completed_at, 0.0));
            return Some(theta);
        }

        // Frequency term: residual offset accumulating between updates
        // indicates a rate error of θ/τ.
        if let Some((last_t, _)) = self.last_update {
            let tau_ns = (sample.completed_at - last_t) as f64;
            if tau_ns > 1e6 {
                let rate_err_ppm = theta / tau_ns * 1e6;
                let adj = (rate_err_ppm * self.cfg.freq_gain)
                    .clamp(-self.cfg.max_freq_adj_ppm, self.cfg.max_freq_adj_ppm);
                clock.adjust_freq(true_now, adj);
            }
        }

        let applied = theta * self.cfg.offset_gain;
        clock.set_correction(true_now, applied);
        self.last_update = Some((sample.completed_at, theta));
        Some(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockConfig;
    use dvc_sim_core::rng;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn offset_delay_symmetric_path() {
        // Client is 5 ms behind the server; one-way delay 1 ms each way.
        // client t1 = 0; server receives at server-time 6 ms (t1+delay+offset),
        // replies at 6.5 ms; client receives at t4 = 2.5 ms client time.
        let (theta, delta) = offset_delay(0, 6_000_000, 6_500_000, 2_500_000);
        assert!((theta - 5_000_000.0).abs() < 1.0, "theta {theta}");
        assert!((delta - 2_000_000.0).abs() < 1.0, "delta {delta}");
    }

    #[test]
    fn offset_delay_asymmetry_biases_offset_by_half() {
        // True offset 0; forward delay 3 ms, reverse 1 ms.
        let (theta, delta) = offset_delay(0, 3_000_000, 3_000_000, 4_000_000);
        assert!((theta - 1_000_000.0).abs() < 1.0); // (3-1)/2 = +1 ms bias
        assert!((delta - 4_000_000.0).abs() < 1.0);
    }

    #[test]
    fn filter_prefers_min_delay() {
        let mut f = ClockFilter::new();
        f.push(NtpSample {
            offset_ns: 9.0e6,
            delay_ns: 8.0e6,
            completed_at: 1,
        });
        f.push(NtpSample {
            offset_ns: 1.0e6,
            delay_ns: 2.0e6,
            completed_at: 2,
        });
        f.push(NtpSample {
            offset_ns: 5.0e6,
            delay_ns: 5.0e6,
            completed_at: 3,
        });
        assert_eq!(f.best().unwrap().offset_ns, 1.0e6);
        assert!((f.offset_spread_ns() - 8.0e6).abs() < 1.0);
    }

    #[test]
    fn filter_caps_depth() {
        let mut f = ClockFilter::new();
        for i in 0..20 {
            f.push(NtpSample {
                offset_ns: i as f64,
                delay_ns: 1.0,
                completed_at: i,
            });
        }
        assert_eq!(f.len(), FILTER_DEPTH);
    }

    /// End-to-end: a drifting, badly-set clock polling a perfect server over
    /// a jittery LAN converges to a few-ms residual, the paper's operating
    /// assumption for LSC.
    #[test]
    fn discipline_converges_on_lan() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut clock = HwClock::new(ClockConfig {
            initial_offset_ns: 350.0e6, // 350 ms off at boot → first poll steps
            drift_ppm: 40.0,
            wander_ppm: 0.05,
            ..ClockConfig::default()
        });
        let mut disc = Discipline::new(DisciplineConfig::default());

        let poll = 4.0; // seconds between polls
        let mut worst_late = 0.0f64;
        for i in 0..200 {
            let t = SimTime::from_secs_f64(i as f64 * poll);
            clock.advance(t, Some(&mut rng));

            // Simulate the exchange: one-way delays ~100 µs ± jitter.
            let fwd = rng::truncated_normal_sample(&mut rng, 100e3, 30e3, 20e3);
            let rev = rng::truncated_normal_sample(&mut rng, 100e3, 30e3, 20e3);
            let t1 = clock.read(t);
            let t_arrive = SimTime(t.nanos() + fwd as u64);
            let t2 = t_arrive.nanos() as LocalNs; // perfect server clock
            let t3 = t2 + 10_000; // 10 µs server processing
            let t_back = SimTime(t3 as u64 + rev as u64);
            let t4 = clock.read(t_back);
            let (offset_ns, delay_ns) = offset_delay(t1, t2, t3, t4);
            disc.on_sample(
                &mut clock,
                t_back,
                NtpSample {
                    offset_ns,
                    delay_ns,
                    completed_at: t4,
                },
            );

            if i > 50 {
                worst_late = worst_late.max(clock.error_ns(t_back).abs());
            }
        }
        assert!(disc.steps >= 1, "initial 350 ms offset should step");
        assert!(
            worst_late < 3.0e6,
            "converged residual should be < 3 ms, got {} ms",
            worst_late / 1e6
        );
    }

    /// With higher WAN-like jitter the residual degrades gracefully but stays
    /// bounded — LSC across clusters still has a workable window.
    #[test]
    fn discipline_bounded_under_wan_jitter() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut clock = HwClock::new(ClockConfig {
            initial_offset_ns: 10.0e6,
            drift_ppm: -25.0,
            wander_ppm: 0.05,
            ..ClockConfig::default()
        });
        let mut disc = Discipline::new(DisciplineConfig::default());
        let mut worst_late = 0.0f64;
        for i in 0..300 {
            let t = SimTime::from_secs_f64(i as f64 * 8.0);
            clock.advance(t, Some(&mut rng));
            let fwd = rng::lognormal_sample(&mut rng, (2.0e6f64).ln(), 0.5);
            let rev = rng::lognormal_sample(&mut rng, (2.0e6f64).ln(), 0.5);
            let t1 = clock.read(t);
            let t2 = (t.nanos() + fwd as u64) as LocalNs;
            let t3 = t2 + 10_000;
            let t_back = SimTime(t3 as u64 + rev as u64);
            let t4 = clock.read(t_back);
            let (offset_ns, delay_ns) = offset_delay(t1, t2, t3, t4);
            disc.on_sample(
                &mut clock,
                t_back,
                NtpSample {
                    offset_ns,
                    delay_ns,
                    completed_at: t4,
                },
            );
            if i > 100 {
                worst_late = worst_late.max(clock.error_ns(t_back).abs());
            }
        }
        assert!(
            worst_late < 15.0e6,
            "WAN residual should stay < 15 ms, got {} ms",
            worst_late / 1e6
        );
    }
}
