//! # dvc-time
//!
//! Per-node hardware clock models and NTP-style synchronization, the
//! substrate behind the paper's *NTP-scheduled* Lazy Synchronous
//! Checkpointing prototype.
//!
//! The simulation has one **true time** axis ([`dvc_sim_core::SimTime`]).
//! Every physical node owns a [`clock::HwClock`] whose *local* reading drifts
//! away from true time (initial offset, frequency error, random wander).
//! [`ntp`] implements the client math of a Mills-style synchronization
//! protocol — four-timestamp offset/delay estimation, an 8-sample clock
//! filter, and a step/slew discipline — which, over a LAN-like link, keeps
//! residual clock error in the low milliseconds, matching the paper's
//! "network time protocols can synchronize time to within a few
//! milliseconds" (citing Mills).
//!
//! The DVC checkpoint agent then uses [`clock::HwClock::true_delay_until_local`]
//! to arm a save at a common *local-clock* instant; the residual sync error
//! is exactly the pause skew LSC must tolerate.

pub mod clock;
pub mod ntp;

pub use clock::{HwClock, LocalNs};
pub use ntp::{offset_delay, ClockFilter, Discipline, NtpSample};
