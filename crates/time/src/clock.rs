//! Hardware clock model.
//!
//! A [`HwClock`] converts the simulation's true time into a node-local
//! reading. The model is piecewise linear:
//!
//! ```text
//! local(t) = base_local + (t − base_true) · rate        (+ bounded slew)
//! ```
//!
//! * `rate = 1 + drift` captures the oscillator's frequency error
//!   (commodity crystals: tens of ppm).
//! * Random *wander* perturbs `drift` as a slow random walk, so even a
//!   perfectly disciplined clock re-drifts between NTP polls.
//! * Corrections are applied ntpd-style: offsets below the step threshold
//!   are *slewed* (rate temporarily biased by at most `max_slew_ppm`, keeping
//!   local time monotonic); larger offsets *step* the clock.
//!
//! Guest time in the paper is **not virtualized**: a guest reads its host's
//! clock, so a checkpoint/restore cycle appears to the guest as a forward
//! jump of wall time — reproduced here simply by the guest re-reading the
//! host clock after restore.

use dvc_sim_core::SimTime;
use rand::Rng;

/// Node-local time in nanoseconds (signed: a badly set clock may read
/// "before" simulation start).
pub type LocalNs = i64;

const PPM: f64 = 1e-6;

/// Configuration for a hardware clock.
#[derive(Clone, Copy, Debug)]
pub struct ClockConfig {
    /// Initial offset from true time, ns (what boot-time mis-set looks like).
    pub initial_offset_ns: f64,
    /// Constant frequency error, parts per million.
    pub drift_ppm: f64,
    /// Std-dev of the per-√second random walk on drift, ppm.
    pub wander_ppm: f64,
    /// Maximum slew rate used to absorb corrections, ppm (ntpd: 500).
    pub max_slew_ppm: f64,
    /// Corrections at or above this magnitude step the clock instead of
    /// slewing (ntpd: 128 ms).
    pub step_threshold_ns: f64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig {
            initial_offset_ns: 0.0,
            drift_ppm: 0.0,
            wander_ppm: 0.01,
            max_slew_ppm: 500.0,
            step_threshold_ns: 128.0e6,
        }
    }
}

/// A drifting, disciplinable hardware clock.
#[derive(Clone, Debug)]
pub struct HwClock {
    cfg: ClockConfig,
    /// True time of the segment origin.
    base_true: SimTime,
    /// Local reading at the segment origin, ns.
    base_local: f64,
    /// Current frequency error, ppm (drift + accumulated wander + discipline).
    freq_ppm: f64,
    /// Remaining offset correction to slew out, ns (signed).
    pending_slew_ns: f64,
}

impl HwClock {
    pub fn new(cfg: ClockConfig) -> Self {
        HwClock {
            base_true: SimTime::ZERO,
            base_local: cfg.initial_offset_ns,
            freq_ppm: cfg.drift_ppm,
            pending_slew_ns: 0.0,
            cfg,
        }
    }

    /// A perfect clock (offset 0, drift 0, no wander).
    pub fn perfect() -> Self {
        HwClock::new(ClockConfig {
            initial_offset_ns: 0.0,
            drift_ppm: 0.0,
            wander_ppm: 0.0,
            ..ClockConfig::default()
        })
    }

    /// A clock with randomized imperfections typical of an undisciplined
    /// commodity node: offset uniform in ±`max_offset_ms`, drift normal with
    /// σ = `drift_sigma_ppm`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, max_offset_ms: f64, drift_sigma_ppm: f64) -> Self {
        let offset = rng.gen_range(-max_offset_ms..=max_offset_ms) * 1e6;
        let drift = dvc_sim_core::rng::normal_sample(rng, 0.0, drift_sigma_ppm);
        HwClock::new(ClockConfig {
            initial_offset_ns: offset,
            drift_ppm: drift,
            ..ClockConfig::default()
        })
    }

    /// Advance the segment origin to `true_now`, consuming pending slew and
    /// (optionally) applying frequency wander. Call this at discipline points
    /// and periodic ticks; between calls the clock runs at constant rate.
    pub fn advance<R: Rng + ?Sized>(&mut self, true_now: SimTime, rng: Option<&mut R>) {
        if true_now <= self.base_true {
            return;
        }
        let dt_ns = (true_now - self.base_true).nanos() as f64;
        let dt_s = dt_ns * 1e-9;

        // Natural progression at the current rate.
        let mut local = self.base_local + dt_ns * (1.0 + self.freq_ppm * PPM);

        // Slew absorption, capped by the max slew rate over this interval.
        if self.pending_slew_ns != 0.0 {
            let cap = self.cfg.max_slew_ppm * PPM * dt_ns;
            let applied = self.pending_slew_ns.clamp(-cap, cap);
            local += applied;
            self.pending_slew_ns -= applied;
        }

        // Frequency wander: random walk with per-√s standard deviation.
        if let Some(rng) = rng {
            if self.cfg.wander_ppm > 0.0 {
                let sigma = self.cfg.wander_ppm * dt_s.sqrt();
                self.freq_ppm += dvc_sim_core::rng::normal_sample(rng, 0.0, sigma);
            }
        }

        self.base_true = true_now;
        self.base_local = local;
    }

    /// Read the local clock at true time `true_now` (≥ the last `advance`).
    pub fn read(&self, true_now: SimTime) -> LocalNs {
        debug_assert!(
            true_now >= self.base_true,
            "clock read before segment origin"
        );
        let dt_ns = true_now.since(self.base_true).nanos() as f64;
        let mut local = self.base_local + dt_ns * (1.0 + self.freq_ppm * PPM);
        // Include in-progress slew so reads between advances stay continuous.
        if self.pending_slew_ns != 0.0 {
            let cap = self.cfg.max_slew_ppm * PPM * dt_ns;
            local += self.pending_slew_ns.clamp(-cap, cap);
        }
        local.round() as LocalNs
    }

    /// Signed error of the local clock vs. true time, ns (positive = fast).
    pub fn error_ns(&self, true_now: SimTime) -> f64 {
        self.read(true_now) as f64 - true_now.nanos() as f64
    }

    /// Apply a measured offset correction `theta_ns` (the amount local time
    /// is *behind*; positive θ moves local time forward). Steps if large,
    /// otherwise queues a slew. Returns `true` if the clock stepped.
    pub fn correct(&mut self, true_now: SimTime, theta_ns: f64) -> bool {
        self.advance::<rand::rngs::SmallRng>(true_now, None);
        if theta_ns.abs() >= self.cfg.step_threshold_ns {
            self.base_local += theta_ns + self.pending_slew_ns;
            self.pending_slew_ns = 0.0;
            true
        } else {
            self.pending_slew_ns += theta_ns;
            false
        }
    }

    /// Like [`HwClock::correct`], but *replaces* any still-queued slew
    /// instead of adding to it. A freshly measured offset already includes
    /// whatever the previous correction has not yet absorbed, so a
    /// discipline loop that updates faster than the slew rate must use this
    /// form to avoid double-counting.
    pub fn set_correction(&mut self, true_now: SimTime, theta_ns: f64) -> bool {
        self.advance::<rand::rngs::SmallRng>(true_now, None);
        if theta_ns.abs() >= self.cfg.step_threshold_ns {
            self.base_local += theta_ns + self.pending_slew_ns;
            self.pending_slew_ns = 0.0;
            true
        } else {
            self.pending_slew_ns = theta_ns;
            false
        }
    }

    /// Adjust the frequency estimate by `adj_ppm` (discipline feedback).
    pub fn adjust_freq(&mut self, true_now: SimTime, adj_ppm: f64) {
        self.advance::<rand::rngs::SmallRng>(true_now, None);
        self.freq_ppm += adj_ppm;
    }

    /// Current frequency error in ppm.
    pub fn freq_ppm(&self) -> f64 {
        self.freq_ppm
    }

    /// Correction still being slewed out, ns.
    pub fn pending_slew_ns(&self) -> f64 {
        self.pending_slew_ns
    }

    /// How long (in *true* nanoseconds, from `true_now`) until the local
    /// clock reads `target_local`. Returns `None` if the target has already
    /// passed. This is what a checkpoint agent uses to arm "save at local
    /// time T" with a microsecond-precision timer.
    pub fn true_delay_until_local(&self, true_now: SimTime, target_local: LocalNs) -> Option<u64> {
        let now_local = self.read(true_now);
        if target_local <= now_local {
            return None;
        }
        let remaining_local = (target_local - now_local) as f64;
        // First-order inversion; slew/wander effects over the interval are
        // second-order (≤ ppm-scale) and the agent re-checks on wake anyway.
        let rate = 1.0 + self.freq_ppm * PPM;
        Some((remaining_local / rate).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvc_sim_core::SimDuration;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn at(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn perfect_clock_tracks_true_time() {
        let c = HwClock::perfect();
        assert_eq!(c.read(at(5.0)), 5_000_000_000);
        assert_eq!(c.error_ns(at(5.0)), 0.0);
    }

    #[test]
    fn drift_accumulates() {
        // +100 ppm fast clock gains 100 µs per second.
        let c = HwClock::new(ClockConfig {
            drift_ppm: 100.0,
            wander_ppm: 0.0,
            ..ClockConfig::default()
        });
        let err = c.error_ns(at(10.0));
        assert!((err - 10.0 * 100_000.0).abs() < 1.0, "err {err}");
    }

    #[test]
    fn initial_offset_visible() {
        let c = HwClock::new(ClockConfig {
            initial_offset_ns: 3.0e6,
            wander_ppm: 0.0,
            ..ClockConfig::default()
        });
        assert!((c.error_ns(at(1.0)) - 3.0e6).abs() < 1.0);
    }

    #[test]
    fn small_correction_slews_monotonically() {
        let mut c = HwClock::perfect();
        c.correct(at(0.0), 1.0e6); // +1 ms, below the step threshold
                                   // Immediately after, only a sliver is applied.
        let e0 = c.error_ns(at(0.001));
        assert!(e0 < 1.0e6 * 0.01, "applied too fast: {e0}");
        // After 10 s at 500 ppm ⇒ capacity 5 ms ≫ 1 ms: fully absorbed.
        c.advance::<SmallRng>(at(10.0), None);
        assert!((c.error_ns(at(10.0)) - 1.0e6).abs() < 10.0);
        assert_eq!(c.pending_slew_ns(), 0.0);
        // Monotonicity through the slew.
        let mut last = c.read(at(10.0));
        for i in 1..100 {
            let t = at(10.0 + i as f64 * 0.01);
            let r = c.read(t);
            assert!(r >= last);
            last = r;
        }
    }

    #[test]
    fn large_correction_steps() {
        let mut c = HwClock::perfect();
        let stepped = c.correct(at(1.0), 500.0e6); // +500 ms
        assert!(stepped);
        assert!((c.error_ns(at(1.0)) - 500.0e6).abs() < 1.0);
    }

    #[test]
    fn negative_slew_converges() {
        let mut c = HwClock::new(ClockConfig {
            initial_offset_ns: 2.0e6,
            wander_ppm: 0.0,
            ..ClockConfig::default()
        });
        c.correct(at(0.0), -2.0e6);
        c.advance::<SmallRng>(at(20.0), None);
        assert!(c.error_ns(at(20.0)).abs() < 100.0);
    }

    #[test]
    fn freq_adjustment_changes_rate() {
        let mut c = HwClock::new(ClockConfig {
            drift_ppm: 50.0,
            wander_ppm: 0.0,
            ..ClockConfig::default()
        });
        c.adjust_freq(at(0.0), -50.0);
        assert_eq!(c.freq_ppm(), 0.0);
        assert!(c.error_ns(at(10.0)).abs() < 1.0);
    }

    #[test]
    fn wander_perturbs_frequency() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut c = HwClock::new(ClockConfig {
            wander_ppm: 1.0,
            ..ClockConfig::default()
        });
        for i in 1..=100 {
            c.advance(at(i as f64 * 10.0), Some(&mut rng));
        }
        assert_ne!(c.freq_ppm(), 0.0);
        // Random walk: 100 steps of σ = √10 ppm ⇒ total σ ≈ 32 ppm; 5σ bound.
        assert!(c.freq_ppm().abs() < 160.0, "freq {}", c.freq_ppm());
    }

    #[test]
    fn true_delay_until_local_inverts_rate() {
        let c = HwClock::new(ClockConfig {
            drift_ppm: 1000.0, // exaggerated for a visible effect
            wander_ppm: 0.0,
            ..ClockConfig::default()
        });
        let now = at(0.0);
        let target: LocalNs = 1_000_000_000; // local t=1s
        let d = c.true_delay_until_local(now, target).unwrap();
        // A fast clock reaches local 1 s *earlier* than true 1 s.
        assert!(d < 1_000_000_000);
        let fire = now + SimDuration::from_nanos(d);
        let local_at_fire = c.read(fire);
        assert!(
            (local_at_fire - target).abs() < 1_000,
            "fired at local {local_at_fire}"
        );
    }

    #[test]
    fn true_delay_none_when_past() {
        let c = HwClock::perfect();
        assert!(c.true_delay_until_local(at(2.0), 1_000_000_000).is_none());
    }

    #[test]
    fn random_clock_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let c = HwClock::random(&mut rng, 50.0, 20.0);
            assert!(c.error_ns(SimTime::ZERO).abs() <= 50.0e6);
        }
    }

    #[test]
    fn advance_is_idempotent_for_same_instant() {
        let mut c = HwClock::new(ClockConfig {
            drift_ppm: 10.0,
            wander_ppm: 0.0,
            ..ClockConfig::default()
        });
        c.advance::<SmallRng>(at(5.0), None);
        let r1 = c.read(at(5.0));
        c.advance::<SmallRng>(at(5.0), None);
        assert_eq!(c.read(at(5.0)), r1);
    }
}
