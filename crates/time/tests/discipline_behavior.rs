//! Integration tests for the clock + discipline stack through its public
//! API: step-vs-slew behavior at the ntpd 128 ms threshold, slew-rate
//! capping, end-to-end convergence, recovery from a clock step that lands
//! during an NTP outage, and the local-deadline misfire a stepped clock
//! causes — the exact mechanism behind blown LSC windows (see the
//! `hardened-clock-step-blown-window` fuzz-corpus case in `dvc-bench`).

use dvc_sim_core::SimTime;
use dvc_time::clock::{ClockConfig, HwClock, LocalNs};
use dvc_time::ntp::{offset_delay, Discipline, DisciplineConfig, NtpSample};
use proptest::prelude::*;

const STEP_THRESHOLD_NS: f64 = 128.0e6;

/// One symmetric client↔server exchange against a perfect server with
/// fixed 100 µs one-way delays; returns the sample and its completion
/// (true) time.
fn exchange(clock: &HwClock, t: SimTime) -> (NtpSample, SimTime) {
    let one_way = 100_000u64;
    let t1 = clock.read(t);
    let t2 = (t.nanos() + one_way) as LocalNs; // perfect server clock
    let t3 = t2 + 10_000; // 10 µs server processing
    let t_back = SimTime(t3 as u64 + one_way);
    let t4 = clock.read(t_back);
    let (offset_ns, delay_ns) = offset_delay(t1, t2, t3, t4);
    (
        NtpSample {
            offset_ns,
            delay_ns,
            completed_at: t4,
        },
        t_back,
    )
}

proptest! {
    /// `correct()` steps exactly when |θ| reaches the 128 ms threshold and
    /// slews below it — the boundary itself steps (ntpd semantics: "at or
    /// above").
    #[test]
    fn step_threshold_is_exact(theta_ms in -400.0f64..400.0) {
        let mut clock = HwClock::perfect();
        let t = SimTime::from_secs(1);
        let theta_ns = theta_ms * 1e6;
        let stepped = clock.correct(t, theta_ns);
        prop_assert_eq!(stepped, theta_ns.abs() >= STEP_THRESHOLD_NS);
        if stepped {
            // The whole correction lands instantly.
            prop_assert!((clock.error_ns(t) - theta_ns).abs() < 2.0);
            prop_assert_eq!(clock.pending_slew_ns(), 0.0);
        } else {
            // Queued, not applied... yet absorbed only at the slew cap.
            prop_assert_eq!(clock.pending_slew_ns(), theta_ns);
        }
    }
}

/// A sub-threshold correction is absorbed at no more than `max_slew_ppm`
/// — 500 ppm means 100 ms takes 200 s to slew out, not one tick.
#[test]
fn slew_rate_is_capped() {
    let mut clock = HwClock::perfect();
    let t0 = SimTime::from_secs(1);
    assert!(!clock.correct(t0, 100.0e6)); // 100 ms: below threshold
                                          // 10 s later at 500 ppm at most 5 ms may have been absorbed.
    let t1 = SimTime::from_secs(11);
    clock.advance::<rand::rngs::SmallRng>(t1, None);
    let absorbed = 100.0e6 - clock.pending_slew_ns();
    assert!(
        (absorbed - 5.0e6).abs() < 1e3,
        "absorbed {absorbed} ns in 10 s, expected ~5 ms at the 500 ppm cap"
    );
    // After 200 s the whole correction is in.
    let t2 = SimTime::from_secs(250);
    clock.advance::<rand::rngs::SmallRng>(t2, None);
    assert_eq!(clock.pending_slew_ns(), 0.0);
    assert!((clock.error_ns(t2) - 100.0e6).abs() < 1e3);
}

/// A badly-set drifting clock polling every 4 s steps once at boot and
/// then converges to sub-ms residuals — the paper's operating assumption.
#[test]
fn discipline_converges_from_boot_offset() {
    let mut clock = HwClock::new(ClockConfig {
        initial_offset_ns: 500.0e6,
        drift_ppm: 30.0,
        wander_ppm: 0.0,
        ..ClockConfig::default()
    });
    let mut disc = Discipline::new(DisciplineConfig::default());
    let mut worst_late = 0.0f64;
    for i in 1..=100 {
        let t = SimTime::from_secs(4 * i);
        clock.advance::<rand::rngs::SmallRng>(t, None);
        let (sample, t_back) = exchange(&clock, t);
        disc.on_sample(&mut clock, t_back, sample);
        if i > 25 {
            worst_late = worst_late.max(clock.error_ns(t_back).abs());
        }
    }
    assert_eq!(disc.steps, 1, "exactly the boot offset should step");
    assert!(
        worst_late < 1.0e6,
        "steady-state residual should be < 1 ms, got {} ms",
        worst_late / 1e6
    );
}

/// A +6 s step landing while NTP is unreachable goes uncorrected for the
/// whole outage, and the first exchange after service resumes steps the
/// clock straight back.
#[test]
fn step_during_outage_is_recovered_on_resume() {
    let mut clock = HwClock::new(ClockConfig {
        initial_offset_ns: 3.0e6,
        drift_ppm: 20.0,
        wander_ppm: 0.0,
        ..ClockConfig::default()
    });
    let mut disc = Discipline::new(DisciplineConfig::default());
    // Phase 1: disciplined normally for 200 s.
    for i in 1..=50 {
        let t = SimTime::from_secs(4 * i);
        clock.advance::<rand::rngs::SmallRng>(t, None);
        let (sample, t_back) = exchange(&clock, t);
        disc.on_sample(&mut clock, t_back, sample);
    }
    let steps_before = disc.steps;

    // Phase 2: outage begins; a fault steps the clock +6 s. No samples
    // arrive, so the error persists across the entire outage.
    let t_step = SimTime::from_secs(210);
    assert!(clock.correct(t_step, 6.0e9));
    let t_mid_outage = SimTime::from_secs(400);
    clock.advance::<rand::rngs::SmallRng>(t_mid_outage, None);
    assert!(
        clock.error_ns(t_mid_outage) > 5.9e9,
        "nothing may correct the step while NTP is out"
    );

    // Phase 3: service resumes; the first sample measures ~-6 s and steps.
    let mut recovered = f64::INFINITY;
    for i in 0..10 {
        let t = SimTime::from_secs(410 + 4 * i);
        clock.advance::<rand::rngs::SmallRng>(t, None);
        let (sample, t_back) = exchange(&clock, t);
        disc.on_sample(&mut clock, t_back, sample);
        recovered = recovered.min(clock.error_ns(t_back).abs());
    }
    assert!(
        disc.steps > steps_before,
        "recovery must be a step, not a slew"
    );
    assert!(
        recovered < 1.0e6,
        "post-outage residual should be < 1 ms, got {} ms",
        recovered / 1e6
    );
}

/// A single high-delay ("popcorn") sample is discarded by the filter and
/// moves nothing, even if its offset estimate is wildly wrong.
#[test]
fn popcorn_sample_is_ignored() {
    let mut clock = HwClock::perfect();
    let mut disc = Discipline::new(DisciplineConfig::default());
    for i in 1..=10 {
        let t = SimTime::from_secs(4 * i);
        clock.advance::<rand::rngs::SmallRng>(t, None);
        let (sample, t_back) = exchange(&clock, t);
        disc.on_sample(&mut clock, t_back, sample);
    }
    let t = SimTime::from_secs(60);
    let completed_at = clock.read(t);
    let applied = disc.on_sample(
        &mut clock,
        t,
        NtpSample {
            offset_ns: 1.0e9, // claims we're a second off...
            delay_ns: 50.0e6, // ...through 250x the usual round-trip
            completed_at,
        },
    );
    assert_eq!(applied, None, "popcorn sample must be suppressed");
    assert!(clock.error_ns(t).abs() < 1e3);
}

/// The LSC failure mechanism in miniature: "fire at shared local time T"
/// armed on a clock that stepped +6 s fires immediately (6 s early),
/// because the local deadline has already "passed". This is why the
/// clock-based hardened coordinator cannot promise an in-budget window
/// under adversarial steps — only the clock-free GO broadcast can.
#[test]
fn shared_local_deadline_misfires_on_stepped_clock() {
    let head = HwClock::perfect();
    let mut member = HwClock::perfect();
    let now = SimTime::from_secs(100);
    let lead = 2_000_000_000i64; // fire 2 s from now, by the head's clock
    let target_local = head.read(now) + lead;

    // Sane member: the timer arms ~2 s out.
    let delay = member.true_delay_until_local(now, target_local).unwrap();
    assert!((delay as f64 - 2.0e9).abs() < 2.0);

    // Member stepped +6 s: the deadline reads as 4 s in the past.
    assert!(member.correct(now, 6.0e9));
    assert_eq!(
        member.true_delay_until_local(now, target_local),
        None,
        "a fast clock sees the shared deadline as already passed"
    );
}
