//! Property tests for the DES kernel's ordering guarantees.

use dvc_sim_core::{Sim, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events fire in nondecreasing time order, and ties fire in scheduling
    /// order — for arbitrary schedules.
    #[test]
    fn events_fire_sorted_with_stable_ties(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut sim = Sim::new(Vec::<(u64, usize)>::new(), 1);
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime(t), move |sim| sim.world.push((t, i)));
        }
        sim.run_to_completion(10_000);
        let log = &sim.world;
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke FIFO: {w:?}");
            }
        }
    }

    /// Cancelling an arbitrary subset suppresses exactly that subset.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..1000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim = Sim::new(Vec::<usize>::new(), 1);
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| sim.schedule_at(SimTime(t), move |sim| sim.world.push(i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, h) in handles.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                sim.cancel(*h);
            } else {
                expected.push(i);
            }
        }
        sim.run_to_completion(10_000);
        let mut got = sim.world.clone();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Handlers scheduling follow-on events never violate causality: a
    /// follow-on scheduled with +d fires at parent time + d.
    #[test]
    fn chained_events_respect_offsets(offsets in prop::collection::vec(1u64..500, 1..50)) {
        struct W {
            offsets: Vec<u64>,
            idx: usize,
            fire_times: Vec<u64>,
        }
        fn step(sim: &mut Sim<W>) {
            let now = sim.now().nanos();
            sim.world.fire_times.push(now);
            let i = sim.world.idx;
            if i < sim.world.offsets.len() {
                let d = sim.world.offsets[i];
                sim.world.idx += 1;
                sim.schedule_at(SimTime(now + d), step);
            }
        }
        let n = offsets.len();
        let mut sim = Sim::new(
            W { offsets: offsets.clone(), idx: 0, fire_times: vec![] },
            1,
        );
        sim.schedule_at(SimTime(0), step);
        sim.run_to_completion(100_000);
        prop_assert_eq!(sim.world.fire_times.len(), n + 1);
        let mut expect = 0u64;
        prop_assert_eq!(sim.world.fire_times[0], 0);
        for (i, d) in offsets.iter().enumerate() {
            expect += d;
            prop_assert_eq!(sim.world.fire_times[i + 1], expect);
        }
    }
}
