//! The oracle layer — a uniform end-of-trial verdict over the stream
//! checkers.
//!
//! PRs 1–4 grew several [`EventSink`] analyzers that each know how to
//! detect one family of misbehavior: [`InvariantChecker`] (cross-layer
//! invariants), [`SpanChecker`] (causal-tree well-formedness). Each exposes
//! its own `violations()` / `report()` surface, which is fine for a
//! hand-written experiment but awkward for a fuzzer that wants to attach
//! *all* of them to a randomized trial and ask one question at the end:
//! did anything object, and was the check even exercised?
//!
//! [`Oracle`] is that question. An oracle is an event sink with a name and
//! an end-of-trial [`OracleReport`]: the violations it found plus a count
//! of how many opportunities it had to find one. The count matters because
//! a fuzzer biased toward degenerate scenarios (zero checkpoint rounds,
//! zero spans) would otherwise report thousands of vacuously "clean"
//! trials; see [`CheckCounts`](crate::CheckCounts) for the same idea on the
//! invariant checker alone.

use crate::check::InvariantChecker;
use crate::sim::EventSink;
use crate::span::SpanChecker;

/// One oracle's end-of-trial verdict.
#[derive(Clone, Debug)]
pub struct OracleReport {
    /// Which oracle produced this (stable identifier, used by the fuzzer's
    /// failure signatures and shrinking loop).
    pub oracle: &'static str,
    /// Everything the oracle objected to. Empty ⇒ clean.
    pub violations: Vec<String>,
    /// How many chances the oracle had to object (windows closed, spans
    /// opened…). Zero means the trial never exercised this oracle and a
    /// clean verdict is vacuous.
    pub exercised: u64,
}

impl OracleReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for campaign logs.
    pub fn summary(&self) -> String {
        if self.violations.is_empty() {
            format!("{}: ok ({} checked)", self.oracle, self.exercised)
        } else {
            format!(
                "{}: {} violation(s) ({} checked)",
                self.oracle,
                self.violations.len(),
                self.exercised
            )
        }
    }
}

/// An event-sink analyzer that can render an end-of-trial verdict.
pub trait Oracle: EventSink {
    /// Stable identifier (used in failure signatures and shrink replays).
    fn oracle_name(&self) -> &'static str;

    fn verdict(&self) -> OracleReport;
}

impl Oracle for InvariantChecker {
    fn oracle_name(&self) -> &'static str {
        "invariants"
    }

    fn verdict(&self) -> OracleReport {
        let c = self.counts();
        OracleReport {
            oracle: self.oracle_name(),
            violations: self.violations().to_vec(),
            exercised: c.windows + c.sets + c.job_starts,
        }
    }
}

impl Oracle for SpanChecker {
    fn oracle_name(&self) -> &'static str {
        "spans"
    }

    /// Structural violations plus any span still open — at trial end every
    /// opened span must have closed (trials drain through the coordinator's
    /// timeouts before the verdict is taken).
    fn verdict(&self) -> OracleReport {
        OracleReport {
            oracle: self.oracle_name(),
            violations: self.findings(),
            exercised: self.opened(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, SpanEvent};
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn invariant_checker_verdict_counts_exercise() {
        let c = InvariantChecker::new(SimDuration::from_secs(3));
        let v = c.verdict();
        assert_eq!(v.oracle, "invariants");
        assert!(v.is_clean());
        assert_eq!(v.exercised, 0, "nothing fed ⇒ vacuous");
    }

    #[test]
    fn span_checker_verdict_includes_unclosed() {
        let mut c = SpanChecker::new();
        c.on_event(
            SimTime(0),
            &Event::Span(SpanEvent::Open {
                id: 1,
                parent: 0,
                name: "lsc.round",
                arg: 1,
            }),
        );
        let v = c.verdict();
        assert_eq!(v.violations.len(), 1, "unclosed span is a violation");
        assert_eq!(v.exercised, 1);
    }
}
