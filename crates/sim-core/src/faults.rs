//! The unified fault-injection plane.
//!
//! A [`FaultPlan`] is a *pre-generated, seeded* schedule of fault windows
//! plus steady-state fault probabilities, built before the simulation runs.
//! Model layers consult the plan at their injection points (a storage
//! transfer completing, a control message being dispatched, an NTP request
//! arriving) and ask "does this fault fire here, now?". Because the plan is
//! data generated from its own seed — not ambient mutation of the world —
//! an experiment's entire fault history is replayable from `(plan seed,
//! sim seed)` alone, and two arms of an experiment can face *identical*
//! fault schedules while differing only in policy.
//!
//! Fault *kinds* are open-ended string labels; the conventions used by the
//! cluster layers are:
//!
//! | kind                | target         | magnitude                      |
//! |---------------------|----------------|--------------------------------|
//! | `storage.fail`      | —              | probability a transfer fails   |
//! | `storage.brownout`  | —              | bandwidth multiplier (0..1]    |
//! | `control.drop`      | node           | probability a message vanishes |
//! | `control.partition` | node           | 1.0 (all messages dropped)     |
//! | `ntp.outage`        | —              | 1.0 (server silent)            |
//! | `clock.step`        | node           | step size, seconds (signed)    |
//! | `image.corrupt`     | —              | probability a stored image rots|
//!
//! Steady probabilities apply for the whole run; windows override them while
//! active (the window's magnitude replaces the steady value). Rolls are
//! drawn from the caller's RNG stream, so installing a plan with all-zero
//! rates never perturbs an existing simulation's random draws — zero-
//! probability rolls return without sampling.

use crate::time::SimTime;
use rand::Rng;
use std::collections::BTreeMap;

/// Every fault kind the cluster layers consult (the table above). Plans
/// built from serialized scenarios (fuzz corpus cases travel as TOML, where
/// kinds are plain strings) map back through [`kind_from_str`] — an unknown
/// kind in a stored scenario is a malformed-case error, not a silently
/// inert fault.
pub const FAULT_KINDS: &[&str] = &[
    "storage.fail",
    "storage.brownout",
    "control.drop",
    "control.partition",
    "ntp.outage",
    "clock.step",
    "image.corrupt",
];

/// Map a fault kind from a serialized scenario back to its registry entry.
pub fn kind_from_str(s: &str) -> Option<&'static str> {
    FAULT_KINDS.iter().find(|k| **k == s).copied()
}

/// One scheduled fault window.
#[derive(Clone, Debug)]
pub struct FaultWindow {
    pub kind: &'static str,
    /// Restrict to one entity (e.g. a node id); `None` = everywhere.
    pub target: Option<u64>,
    pub from: SimTime,
    pub until: SimTime,
    /// Kind-specific magnitude (probability, rate factor, step seconds…).
    pub magnitude: f64,
}

impl FaultWindow {
    fn covers(&self, target: Option<u64>, now: SimTime) -> bool {
        now >= self.from && now < self.until && (self.target.is_none() || self.target == target)
    }
}

/// The seeded fault schedule for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed the plan was generated from (diagnostics/replay bookkeeping).
    pub seed: u64,
    windows: Vec<FaultWindow>,
    steady: BTreeMap<&'static str, f64>,
    /// Count of faults actually injected, per kind (deterministic order).
    injected: BTreeMap<&'static str, u64>,
}

impl FaultPlan {
    /// The empty plan: nothing ever fires, no RNG is ever consumed.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// True when no fault can ever fire (lets hot paths skip entirely).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.steady.values().all(|&p| p <= 0.0)
    }

    /// Add one explicit window.
    pub fn window(
        &mut self,
        kind: &'static str,
        target: Option<u64>,
        from: SimTime,
        until: SimTime,
        magnitude: f64,
    ) -> &mut Self {
        assert!(from <= until, "window ends before it starts");
        self.windows.push(FaultWindow {
            kind,
            target,
            from,
            until,
            magnitude,
        });
        self
    }

    /// Set a steady-state probability for `kind` (applies outside windows).
    pub fn steady(&mut self, kind: &'static str, prob: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.steady.insert(kind, prob);
        self
    }

    /// Generate Poisson-arriving windows of `kind` over `[0, horizon)`:
    /// exponential gaps with the given mean, each window `duration` long.
    /// Deterministic for a given RNG state — feed it a stream derived from
    /// the plan seed to make the schedule replayable.
    #[allow(clippy::too_many_arguments)]
    pub fn poisson_windows<R: Rng + ?Sized>(
        &mut self,
        kind: &'static str,
        target: Option<u64>,
        mean_gap_s: f64,
        duration_s: f64,
        magnitude: f64,
        horizon: SimTime,
        rng: &mut R,
    ) -> &mut Self {
        assert!(mean_gap_s > 0.0 && duration_s > 0.0);
        let mut t = crate::rng::exp_sample(rng, mean_gap_s);
        while t < horizon.as_secs_f64() {
            let from = SimTime::from_secs_f64(t);
            let until = SimTime::from_secs_f64(t + duration_s);
            self.window(kind, target, from, until, magnitude);
            t += duration_s + crate::rng::exp_sample(rng, mean_gap_s);
        }
        self
    }

    /// The active window of `kind` covering (`target`, `now`), if any.
    /// Later-added windows win overlaps (they are refinements).
    pub fn active(
        &self,
        kind: &'static str,
        target: Option<u64>,
        now: SimTime,
    ) -> Option<&FaultWindow> {
        self.windows
            .iter()
            .rev()
            .find(|w| w.kind == kind && w.covers(target, now))
    }

    /// Effective magnitude of `kind` at (`target`, `now`): the covering
    /// window's magnitude, else the steady value, else 0.
    pub fn magnitude(&self, kind: &'static str, target: Option<u64>, now: SimTime) -> f64 {
        match self.active(kind, target, now) {
            Some(w) => w.magnitude,
            None => self.steady.get(kind).copied().unwrap_or(0.0),
        }
    }

    /// Roll the dice for a probabilistic fault. Returns `true` when the
    /// fault fires (and counts it). A zero effective probability returns
    /// `false` **without consuming randomness**, so fault-free plans leave
    /// every other consumer's draws untouched.
    pub fn roll<R: Rng + ?Sized>(
        &mut self,
        kind: &'static str,
        target: Option<u64>,
        now: SimTime,
        rng: &mut R,
    ) -> bool {
        let p = self.magnitude(kind, target, now);
        if p <= 0.0 {
            return false;
        }
        let fired = p >= 1.0 || rng.gen_bool(p);
        if fired {
            *self.injected.entry(kind).or_insert(0) += 1;
        }
        fired
    }

    /// Count a non-probabilistic injection (window-driven effects like
    /// brownouts or clock steps, applied by an installer).
    pub fn note_injected(&mut self, kind: &'static str) {
        *self.injected.entry(kind).or_insert(0) += 1;
    }

    /// Faults injected so far, per kind, in deterministic order.
    pub fn injected(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.injected.iter().map(|(&k, &v)| (k, v))
    }

    pub fn injected_total(&self) -> u64 {
        self.injected.values().sum()
    }

    /// All windows of one kind, in insertion order.
    pub fn windows_of(&self, kind: &'static str) -> impl Iterator<Item = &FaultWindow> {
        self.windows.iter().filter(move |w| w.kind == kind)
    }

    /// All windows (installers walk this to schedule boundary events).
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_plan_never_fires_and_consumes_no_rng() {
        let mut p = FaultPlan::none();
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for i in 0..100 {
            assert!(!p.roll("storage.fail", None, SimTime::from_secs(i), &mut a));
        }
        // RNG untouched: next draw matches a fresh twin.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        assert!(p.is_empty());
        assert_eq!(p.injected_total(), 0);
    }

    #[test]
    fn window_overrides_steady_probability() {
        let mut p = FaultPlan::new(7);
        p.steady("control.drop", 0.0);
        p.window(
            "control.drop",
            Some(3),
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            1.0,
        );
        let mut rng = SmallRng::seed_from_u64(2);
        // Outside the window: steady 0 → never.
        assert!(!p.roll("control.drop", Some(3), SimTime::from_secs(5), &mut rng));
        // Inside, wrong target → steady.
        assert!(!p.roll("control.drop", Some(4), SimTime::from_secs(15), &mut rng));
        // Inside, right target, magnitude 1 → always.
        assert!(p.roll("control.drop", Some(3), SimTime::from_secs(15), &mut rng));
        // End is exclusive.
        assert!(!p.roll("control.drop", Some(3), SimTime::from_secs(20), &mut rng));
        assert_eq!(p.injected().collect::<Vec<_>>(), vec![("control.drop", 1)]);
    }

    #[test]
    fn untargeted_window_covers_every_target() {
        let mut p = FaultPlan::new(1);
        p.window(
            "ntp.outage",
            None,
            SimTime::ZERO,
            SimTime::from_secs(60),
            1.0,
        );
        assert!(p
            .active("ntp.outage", None, SimTime::from_secs(1))
            .is_some());
        assert!(p
            .active("ntp.outage", Some(9), SimTime::from_secs(1))
            .is_some());
        assert!(p
            .active("ntp.outage", None, SimTime::from_secs(61))
            .is_none());
    }

    #[test]
    fn poisson_windows_are_seed_deterministic() {
        let gen = |seed| {
            let mut p = FaultPlan::new(seed);
            let mut rng = SmallRng::seed_from_u64(seed);
            p.poisson_windows(
                "storage.brownout",
                None,
                100.0,
                20.0,
                0.2,
                SimTime::from_secs(2000),
                &mut rng,
            );
            p.windows_of("storage.brownout")
                .map(|w| (w.from, w.until))
                .collect::<Vec<_>>()
        };
        let a = gen(42);
        let b = gen(42);
        let c = gen(43);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "expected some windows over 2000 s");
        assert_ne!(a, c, "different seeds should differ");
        // Windows never overlap (gap sampled after each window ends).
        for w in a.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
    }

    #[test]
    fn every_registered_kind_round_trips() {
        for k in FAULT_KINDS {
            assert_eq!(kind_from_str(k), Some(*k));
        }
        assert_eq!(kind_from_str("node.melt"), None);
    }

    #[test]
    fn probabilistic_roll_tracks_magnitude() {
        let mut p = FaultPlan::new(5);
        p.steady("image.corrupt", 0.3);
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 4000;
        let mut hits = 0;
        for i in 0..n {
            if p.roll("image.corrupt", None, SimTime::from_millis(i), &mut rng) {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
        assert_eq!(p.injected_total(), hits);
    }
}
