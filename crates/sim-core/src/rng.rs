//! Deterministic, named random streams.
//!
//! All randomness in a simulation flows from one master seed. Consumers ask
//! for a stream by label (`"net.loss"`, `"lsc.naive.jitter"`, …); each label
//! maps to an independent `SmallRng` seeded by `splitmix64(master ⊕ fnv(label))`.
//!
//! This gives two properties the experiment campaigns rely on:
//!
//! 1. **Reproducibility** — a `(seed, label)` pair fully determines a stream.
//! 2. **Insensitivity** — adding a new random consumer (new label) never
//!    perturbs draws on existing labels, so an experiment's control and
//!    treatment arms stay comparable across code revisions.
//!
//! The module also carries the distribution helpers used by the models
//! (exponential, log-normal, truncated normal) so callers don't each reinvent
//! inverse-CDF sampling.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// FNV-1a, used only to map labels to seeds (not security sensitive).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finalizer: turns correlated inputs into well-mixed seeds.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A registry of independent named RNG streams derived from one master seed.
pub struct RngStreams {
    master: u64,
    streams: HashMap<u64, SmallRng>,
}

impl RngStreams {
    pub fn new(master_seed: u64) -> Self {
        RngStreams {
            master: master_seed,
            streams: HashMap::new(),
        }
    }

    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// The stream for `label`, created on first use.
    pub fn stream(&mut self, label: &str) -> &mut SmallRng {
        let key = fnv1a(label.as_bytes());
        let master = self.master;
        self.streams
            .entry(key)
            .or_insert_with(|| SmallRng::seed_from_u64(splitmix64(master ^ key)))
    }

    /// A stream keyed by label *and* an index (e.g. per-node jitter streams).
    pub fn stream_idx(&mut self, label: &str, idx: u64) -> &mut SmallRng {
        let key = fnv1a(label.as_bytes()) ^ splitmix64(idx.wrapping_add(1));
        let master = self.master;
        self.streams
            .entry(key)
            .or_insert_with(|| SmallRng::seed_from_u64(splitmix64(master ^ key)))
    }

    /// Derive a fresh child seed (for spawning sub-simulations / trials).
    pub fn derive_seed(&self, label: &str, idx: u64) -> u64 {
        derive_seed(self.master, label, idx)
    }
}

/// Derive a child seed from `(master, label, idx)` without materializing an
/// [`RngStreams`]. This is the scenario-serialization contract: a fuzz
/// trial's entire randomness is reachable from one `u64` plus string
/// labels, so a scenario written to disk as `(seed, parameters)` replays
/// bit-for-bit — the generator, the fault plan, and the world all re-derive
/// their streams from the same master. Same derivation as
/// [`RngStreams::derive_seed`].
pub fn derive_seed(master: u64, label: &str, idx: u64) -> u64 {
    splitmix64(master ^ fnv1a(label.as_bytes()) ^ splitmix64(idx))
}

/// Sample an exponential with the given mean (inverse-CDF method).
pub fn exp_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Sample a standard normal via Box–Muller (deterministic given the stream).
pub fn normal_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Log-normal with the given *underlying* normal parameters (μ, σ).
///
/// Mean of the sample is exp(μ + σ²/2); heavy right tail grows with σ.
pub fn lognormal_sample<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal_sample(rng, mu, sigma).exp()
}

/// Normal truncated below at `min` (rejection-free: clamps rare tail draws).
pub fn truncated_normal_sample<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    min: f64,
) -> f64 {
    normal_sample(rng, mean, std_dev).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = RngStreams::new(42);
        let mut b = RngStreams::new(42);
        let xa: Vec<u32> = (0..16).map(|_| a.stream("x").gen()).collect();
        let xb: Vec<u32> = (0..16).map(|_| b.stream("x").gen()).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn streams_are_independent_of_creation_order() {
        let mut a = RngStreams::new(7);
        let mut b = RngStreams::new(7);
        // `a` touches an extra stream first; `x` draws must be unaffected.
        let _: u64 = a.stream("extra").gen();
        let xa: u64 = a.stream("x").gen();
        let xb: u64 = b.stream("x").gen();
        assert_eq!(xa, xb);
    }

    #[test]
    fn different_labels_differ() {
        let mut s = RngStreams::new(1);
        let a: u64 = s.stream("a").gen();
        let b: u64 = s.stream("b").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_differ() {
        let mut s = RngStreams::new(1);
        let a: u64 = s.stream_idx("node", 0).gen();
        let b: u64 = s.stream_idx("node", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_seed_varies() {
        let s = RngStreams::new(99);
        assert_ne!(s.derive_seed("trial", 0), s.derive_seed("trial", 1));
        assert_ne!(s.derive_seed("trial", 0), s.derive_seed("other", 0));
        // and is stable
        assert_eq!(s.derive_seed("trial", 3), s.derive_seed("trial", 3));
    }

    #[test]
    fn exp_sample_has_right_mean() {
        let mut s = RngStreams::new(5);
        let r = s.stream("exp");
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp_sample(r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_sample_has_right_moments() {
        let mut s = RngStreams::new(6);
        let r = s.stream("norm");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal_sample(r, 3.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_is_positive_and_heavy_tailed() {
        let mut s = RngStreams::new(8);
        let r = s.stream("ln");
        let xs: Vec<f64> = (0..10_000).map(|_| lognormal_sample(r, 0.0, 1.0)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[xs.len() / 2];
        // log-normal: mean (≈ e^0.5 ≈ 1.65) well above median (≈ 1.0)
        assert!(mean > median * 1.3, "mean {mean} median {median}");
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let mut s = RngStreams::new(9);
        let r = s.stream("tn");
        for _ in 0..5_000 {
            assert!(truncated_normal_sample(r, 0.0, 10.0, 0.25) >= 0.25);
        }
    }
}
