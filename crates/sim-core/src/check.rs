//! Stream-checked invariants and exporters — [`crate::EventSink`]
//! implementations that consume the typed event spine.
//!
//! [`InvariantChecker`] watches the stream online and records violations of
//! the three cross-layer invariants the DVC correctness argument rests on:
//!
//! 1. **LSC window** — within one coordinated save, every member's pause
//!    instant must fall inside the transport silence budget of the first
//!    (the paper's "save every VM before any TCP timeout expires"). The
//!    checker derives the window from [`LscEvent::SaveFired`] times itself
//!    rather than trusting the coordinator's own skew arithmetic, and flags
//!    only windows the coordinator *closed as stored* — a blown window on a
//!    failed attempt is the system working as designed.
//! 2. **Checkpoint-generation monotonicity** — per VC, stored set ids and
//!    store instants strictly advance ([`LscEvent::SetStored`]).
//! 3. **No job on a dead node** — the resource manager never starts a job
//!    on a node currently down ([`RmEvent`] lifecycle vs. node liveness).
//!
//! Attach with `sim.attach_sink(checker.clone())`, run, then read
//! [`InvariantChecker::findings`]. The bench binaries surface this as
//! `--check-invariants`.

use crate::event::{Event, LscEvent, RmEvent};
use crate::sim::EventSink;
use crate::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Clone, Copy, Debug, Default)]
struct RunWindow {
    first_fire: Option<SimTime>,
    last_fire: Option<SimTime>,
    fires: u32,
}

/// Counts of how often each invariant was actually exercised — so "no
/// violations" from a run that closed zero windows is distinguishable from
/// a clean bill of health.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckCounts {
    /// Save windows closed as stored and checked against the budget.
    pub windows: u64,
    /// Stored sets checked for monotonicity.
    pub sets: u64,
    /// Job starts checked against node liveness.
    pub job_starts: u64,
}

/// Online checker for the three DVC invariants. See the module docs.
#[derive(Debug)]
pub struct InvariantChecker {
    budget: SimDuration,
    windows: BTreeMap<u64, RunWindow>,
    last_set: BTreeMap<u32, (u64, SimTime)>,
    down: BTreeSet<u32>,
    violations: Vec<String>,
    window_violation_runs: Vec<u64>,
    counts: CheckCounts,
}

impl InvariantChecker {
    /// `budget` is the transport silence budget the LSC window is checked
    /// against — `rto_min · (2^retries − 1)` for the world's TCP config.
    pub fn new(budget: SimDuration) -> Self {
        InvariantChecker {
            budget,
            windows: BTreeMap::new(),
            last_set: BTreeMap::new(),
            down: BTreeSet::new(),
            violations: Vec::new(),
            window_violation_runs: Vec::new(),
            counts: CheckCounts::default(),
        }
    }

    /// The silence budget for the default world TCP config
    /// (`rto_min` 200 ms, 4 retries ⇒ 3 s).
    pub fn default_budget() -> SimDuration {
        SimDuration::from_secs_f64(0.2 * ((1u64 << 4) - 1) as f64)
    }

    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Run ids of the stored windows that blew the budget, in detection
    /// order. Structured counterpart to the `lsc window` strings in
    /// [`violations`](Self::violations) — cross-checkers (the fuzz oracle
    /// stack compares this against the margins
    /// [`crate::PhaseAttribution`] derives independently) should consume
    /// this rather than parse messages.
    pub fn window_violation_runs(&self) -> &[u64] {
        &self.window_violation_runs
    }

    pub fn counts(&self) -> CheckCounts {
        self.counts
    }

    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line report: `ok (…)` or `N violation(s) (…)`.
    pub fn report(&self) -> String {
        let c = self.counts;
        let exercised = format!(
            "{} save windows, {} stored sets, {} job starts checked",
            c.windows, c.sets, c.job_starts
        );
        if self.violations.is_empty() {
            format!("ok ({exercised})")
        } else {
            format!("{} violation(s) ({exercised})", self.violations.len())
        }
    }
}

impl EventSink for InvariantChecker {
    fn on_event(&mut self, time: SimTime, event: &Event) {
        match event {
            Event::Lsc(LscEvent::SaveFired { run, .. }) => {
                let w = self.windows.entry(*run).or_default();
                if w.first_fire.is_none() {
                    w.first_fire = Some(time);
                }
                w.last_fire = Some(time);
                w.fires += 1;
            }
            Event::Lsc(LscEvent::WindowClosed {
                run, vc, stored, ..
            }) => {
                if let Some(w) = self.windows.remove(run) {
                    if *stored {
                        self.counts.windows += 1;
                        if let (Some(a), Some(b)) = (w.first_fire, w.last_fire) {
                            let spread = b - a;
                            if spread > self.budget {
                                self.window_violation_runs.push(*run);
                                self.violations.push(format!(
                                    "lsc window: run {run} on vc {vc} stored a set with \
                                     pause spread {spread} > budget {} ({} fires)",
                                    self.budget, w.fires
                                ));
                            }
                        }
                    }
                }
            }
            Event::Lsc(LscEvent::RunFinished { run, .. }) => {
                // A run that never closed its window (failed mid-save)
                // leaves no stale state behind.
                self.windows.remove(run);
            }
            Event::Lsc(LscEvent::SetStored { vc, set, .. }) => {
                self.counts.sets += 1;
                if let Some((last_id, last_t)) = self.last_set.get(vc) {
                    if set <= last_id {
                        self.violations.push(format!(
                            "generation monotonicity: vc {vc} stored set {set} after set {last_id}"
                        ));
                    }
                    if time < *last_t {
                        self.violations.push(format!(
                            "generation monotonicity: vc {vc} set {set} stored at {time} \
                             before previous at {last_t}"
                        ));
                    }
                }
                self.last_set.insert(*vc, (*set, time));
            }
            Event::Rm(RmEvent::NodeDown { node }) => {
                self.down.insert(*node);
            }
            Event::Rm(RmEvent::NodeUp { node }) => {
                self.down.remove(node);
            }
            Event::Rm(RmEvent::JobStarted { job, nodes }) => {
                self.counts.job_starts += 1;
                for n in nodes {
                    if self.down.contains(n) {
                        self.violations.push(format!(
                            "job on dead node: job {job} started on down node {n}"
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    fn findings(&self) -> Vec<String> {
        self.violations.clone()
    }
}

/// Collects every event as one JSONL line (see [`Event::jsonl`]), bounded so
/// a runaway campaign cannot exhaust memory.
#[derive(Debug)]
pub struct JsonlSink {
    pub lines: Vec<String>,
    cap: usize,
    pub dropped: u64,
}

impl JsonlSink {
    pub fn new(cap: usize) -> Self {
        JsonlSink {
            lines: Vec::new(),
            cap,
            dropped: 0,
        }
    }
}

impl EventSink for JsonlSink {
    fn on_event(&mut self, time: SimTime, event: &Event) {
        if self.lines.len() < self.cap {
            self.lines.push(event.jsonl(time));
        } else {
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, LscEvent, RmEvent};

    fn fire(t: u64, run: u64) -> (SimTime, Event) {
        (
            SimTime(t),
            Event::Lsc(LscEvent::SaveFired {
                run,
                vc: 0,
                member: 0,
                vm: 0,
            }),
        )
    }

    fn close(t: u64, run: u64, stored: bool) -> (SimTime, Event) {
        (
            SimTime(t),
            Event::Lsc(LscEvent::WindowClosed {
                run,
                vc: 0,
                skew: SimDuration::ZERO,
                stored,
            }),
        )
    }

    fn feed(c: &mut InvariantChecker, evs: &[(SimTime, Event)]) {
        for (t, e) in evs {
            c.on_event(*t, e);
        }
    }

    #[test]
    fn tight_window_is_clean() {
        let mut c = InvariantChecker::new(SimDuration::from_secs(3));
        feed(&mut c, &[fire(0, 1), fire(1_000_000, 1), close(5, 1, true)]);
        assert!(c.is_clean(), "{:?}", c.violations());
        assert_eq!(c.counts().windows, 1);
    }

    #[test]
    fn blown_stored_window_fires() {
        let mut c = InvariantChecker::new(SimDuration::from_secs(3));
        feed(
            &mut c,
            &[
                fire(0, 1),
                fire(6_000_000_000, 1),
                close(7_000_000_000, 1, true),
            ],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("lsc window"));
        assert_eq!(c.window_violation_runs(), &[1]);
    }

    #[test]
    fn blown_unstored_window_is_the_system_working() {
        let mut c = InvariantChecker::new(SimDuration::from_secs(3));
        feed(
            &mut c,
            &[
                fire(0, 1),
                fire(6_000_000_000, 1),
                close(7_000_000_000, 1, false),
            ],
        );
        assert!(c.is_clean());
        assert_eq!(c.counts().windows, 0, "unstored windows are not counted");
    }

    #[test]
    fn set_ids_must_advance() {
        let mut c = InvariantChecker::new(SimDuration::from_secs(3));
        let stored = |t, set| {
            (
                SimTime(t),
                Event::Lsc(LscEvent::SetStored {
                    vc: 0,
                    set,
                    skew: SimDuration::ZERO,
                }),
            )
        };
        feed(&mut c, &[stored(10, 1), stored(20, 2), stored(30, 2)]);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("monotonicity"));
        assert_eq!(c.counts().sets, 3);
    }

    #[test]
    fn job_on_dead_node_fires_and_repair_clears() {
        let mut c = InvariantChecker::new(SimDuration::from_secs(3));
        let start = |t, job, nodes: &[u32]| {
            (
                SimTime(t),
                Event::Rm(RmEvent::JobStarted {
                    job,
                    nodes: nodes.to_vec(),
                }),
            )
        };
        feed(
            &mut c,
            &[
                (SimTime(0), Event::Rm(RmEvent::NodeDown { node: 3 })),
                start(1, 1, &[1, 2, 3]),
                (SimTime(2), Event::Rm(RmEvent::NodeUp { node: 3 })),
                start(3, 2, &[3]),
            ],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("job 1"));
        assert_eq!(c.counts().job_starts, 2);
    }

    #[test]
    fn jsonl_sink_caps() {
        let mut s = JsonlSink::new(2);
        for i in 0..4 {
            s.on_event(SimTime(i), &Event::Rm(RmEvent::JobQueued { job: i }));
        }
        assert_eq!(s.lines.len(), 2);
        assert_eq!(s.dropped, 2);
    }
}
