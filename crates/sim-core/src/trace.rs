//! Lightweight event tracing.
//!
//! Models call [`Trace::emit`] with a category and a lazily-formatted message.
//! Tracing is off by default and costs one branch per call when disabled; when
//! enabled, records accumulate in a bounded ring so long campaigns cannot
//! exhaust memory. Categories can be filtered so a test can watch, say, only
//! `"tcp"` events.

use crate::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    pub time: SimTime,
    pub category: &'static str,
    pub message: String,
}

/// A bounded, category-filtered trace sink.
pub struct Trace {
    enabled: bool,
    /// If non-empty, only these categories are recorded.
    categories: Vec<&'static str>,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
    /// Total records emitted per category — counted even after the record
    /// itself is evicted from the ring, so campaign summaries stay accurate.
    emitted: BTreeMap<&'static str, u64>,
    /// Also print records to stderr as they are emitted (debugging aid).
    pub echo: bool,
}

/// A snapshot of one trace's accounting, cheap to ship between threads.
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    /// Records currently retained in the ring.
    pub retained: usize,
    /// Records evicted due to the capacity bound.
    pub dropped: u64,
    /// Total emits per category (evicted records included).
    pub by_category: BTreeMap<&'static str, u64>,
}

impl TraceStats {
    pub fn total_emitted(&self) -> u64 {
        self.by_category.values().sum()
    }
}

impl Trace {
    /// A disabled sink (the default for `Sim`).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            categories: Vec::new(),
            capacity: 0,
            records: VecDeque::new(),
            dropped: 0,
            emitted: BTreeMap::new(),
            echo: false,
        }
    }

    /// An enabled sink retaining up to `capacity` records.
    pub fn enabled(capacity: usize) -> Self {
        Trace {
            enabled: true,
            categories: Vec::new(),
            capacity,
            records: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
            emitted: BTreeMap::new(),
            echo: false,
        }
    }

    /// Restrict recording to the given categories.
    pub fn with_categories(mut self, cats: &[&'static str]) -> Self {
        self.categories = cats.to_vec();
        self
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True when `category` would currently be recorded — check this before
    /// doing expensive formatting.
    #[inline]
    pub fn wants(&self, category: &'static str) -> bool {
        self.enabled && (self.categories.is_empty() || self.categories.contains(&category))
    }

    /// Record an event. `msg` is only evaluated by the caller; use
    /// [`Trace::wants`] to guard costly formatting.
    pub fn emit(&mut self, time: SimTime, category: &'static str, msg: String) {
        if !self.wants(category) {
            return;
        }
        if self.echo {
            eprintln!("[{time}] {category}: {msg}");
        }
        *self.emitted.entry(category).or_insert(0) += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            time,
            category,
            message: msg,
        });
    }

    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Records in a single category.
    pub fn in_category<'a>(&'a self, cat: &'static str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.category == cat)
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total emits in one category, evicted records included.
    pub fn emitted_in(&self, cat: &'static str) -> u64 {
        self.emitted.get(cat).copied().unwrap_or(0)
    }

    /// Snapshot the accounting for campaign aggregation.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            retained: self.records.len(),
            dropped: self.dropped,
            by_category: self.emitted.clone(),
        }
    }
}

/// Convenience macro: trace with lazy formatting.
///
/// ```ignore
/// sim_trace!(sim, "tcp", "conn {} retransmit seq={}", cid, seq);
/// ```
#[macro_export]
macro_rules! sim_trace {
    ($sim:expr, $cat:expr, $($arg:tt)*) => {{
        if $sim.trace.wants($cat) {
            let now = $sim.now();
            $sim.trace.emit(now, $cat, format!($($arg)*));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.emit(SimTime(1), "x", "hello".into());
        assert!(t.is_empty());
        assert!(!t.wants("x"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::enabled(3);
        for i in 0..5 {
            t.emit(SimTime(i), "c", format!("m{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<_> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
        // Per-category accounting survives eviction.
        assert_eq!(t.emitted_in("c"), 5);
        let st = t.stats();
        assert_eq!(st.retained, 3);
        assert_eq!(st.dropped, 2);
        assert_eq!(st.total_emitted(), 5);
    }

    #[test]
    fn category_filter() {
        let mut t = Trace::enabled(10).with_categories(&["tcp"]);
        t.emit(SimTime(0), "tcp", "kept".into());
        t.emit(SimTime(0), "vmm", "filtered".into());
        assert_eq!(t.len(), 1);
        assert!(t.wants("tcp"));
        assert!(!t.wants("vmm"));
        assert_eq!(t.in_category("tcp").count(), 1);
        assert_eq!(t.in_category("vmm").count(), 0);
    }
}
