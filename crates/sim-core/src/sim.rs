//! The simulation engine.
//!
//! [`Sim<W>`] bundles the clock, the event queue, the RNG streams, a trace
//! sink and the user world `W` into one value, so event handlers — boxed
//! `FnOnce(&mut Sim<W>)` — can mutate the world *and* schedule further events
//! without fighting the borrow checker.
//!
//! Cancellation uses tombstones inside the [`EventQueue`]: [`Sim::cancel`]
//! marks a handle dead; when the dead entry surfaces it still advances the
//! clock to its timestamp (so the engine's step timeline is identical to the
//! generation-guard scheme it replaced) but nothing is dispatched — the pop
//! is counted as a no-op. Components that re-arm timers aggressively (the
//! TCP stack, NTP pollers) should hold the [`EventHandle`] of their armed
//! wakeup and cancel it on re-arm — the legacy alternative, a generation
//! counter checked inside the closure, still works but pays the closure
//! dispatch and the caller-side staleness lookup for every stale pop.
//! [`Sim::stats`] exposes the no-op ratio so that flood is visible.

use crate::event::{Event, SpanEvent};
use crate::metrics::Metrics;
use crate::queue::EventQueue;
use crate::rng::RngStreams;
use crate::span::SpanId;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;
use std::cell::RefCell;
use std::rc::Rc;

/// A subscriber on the typed event spine (see [`crate::event`]).
///
/// Sinks are attached to a [`Sim`] as `Rc<RefCell<…>>` so the caller keeps a
/// handle and can read results (findings, collected lines) after the run:
///
/// ```ignore
/// let checker = Rc::new(RefCell::new(InvariantChecker::new(budget)));
/// sim.attach_sink(checker.clone());
/// // … run …
/// assert!(checker.borrow().is_clean());
/// ```
///
/// `on_event` must be passive: it observes the stream but cannot reach back
/// into the sim, so attaching a sink can never perturb scheduling, RNG
/// draws, or any simulated outcome.
pub trait EventSink {
    fn on_event(&mut self, time: SimTime, event: &Event);

    /// Human-readable findings accumulated so far (violations, summaries).
    fn findings(&self) -> Vec<String> {
        Vec::new()
    }
}

/// A handle to a scheduled event, usable with [`Sim::cancel`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

/// Engine-level counters for perf accounting (see [`Sim::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events ever scheduled (live + cancelled + fired).
    pub scheduled: u64,
    /// Handlers actually dispatched.
    pub executed: u64,
    /// Cancelled entries discarded at the heap head without dispatch.
    pub noop_pops: u64,
    /// High-water mark of the event-queue depth.
    pub peak_queue_depth: u64,
}

impl SimStats {
    /// Fraction of pops that were dead on arrival. High values mean some
    /// component is flooding the heap with events it then abandons.
    pub fn noop_ratio(&self) -> f64 {
        let pops = self.executed + self.noop_pops;
        if pops == 0 {
            0.0
        } else {
            self.noop_pops as f64 / pops as f64
        }
    }
}

type BoxedEvent<W> = Box<dyn FnOnce(&mut Sim<W>)>;

/// Why [`Sim::run`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The event queue drained.
    QueueEmpty,
    /// The time horizon was reached (clock is set to the horizon).
    Horizon,
    /// The event budget was exhausted (livelock guard).
    EventBudget,
    /// A handler called [`Sim::request_stop`].
    Requested,
}

/// The discrete-event simulation engine.
pub struct Sim<W> {
    now: SimTime,
    queue: EventQueue<BoxedEvent<W>>,
    executed: u64,
    stop_requested: bool,
    /// Named deterministic RNG streams (see [`RngStreams`]).
    pub rng: RngStreams,
    /// Event trace sink (disabled by default).
    pub trace: Trace,
    /// Metrics registry fed by [`Sim::emit`] (disabled by default).
    pub metrics: Metrics,
    /// The user world: every model layer keeps its state here.
    pub world: W,
    sinks: Vec<Rc<RefCell<dyn EventSink>>>,
    next_span: u64,
}

impl<W> Sim<W> {
    pub fn new(world: W, seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            executed: 0,
            stop_requested: false,
            rng: RngStreams::new(seed),
            trace: Trace::disabled(),
            metrics: Metrics::disabled(),
            world,
            sinks: Vec::new(),
            next_span: 0,
        }
    }

    /// Subscribe a sink to the typed event spine. The caller keeps its own
    /// `Rc` handle to read results after the run (see [`EventSink`]).
    pub fn attach_sink(&mut self, sink: Rc<RefCell<dyn EventSink>>) {
        self.sinks.push(sink);
    }

    /// Detach every sink (they stay alive through the callers' handles).
    pub fn clear_sinks(&mut self) {
        self.sinks.clear();
    }

    /// Emit a typed observability event (see [`crate::event`]). Fans out to
    /// the metrics registry, the legacy string trace (only for events that
    /// carry a [`Event::trace_category`], rendering their byte-identical
    /// legacy message), and every attached sink. With everything disabled —
    /// the default — this is a few branches, which is what keeps the spine
    /// out of the hot path.
    pub fn emit(&mut self, ev: Event) {
        let traced = ev.trace_category().is_some_and(|c| self.trace.wants(c));
        if !traced && self.sinks.is_empty() && !self.metrics.is_enabled() {
            return;
        }
        let now = self.now;
        self.metrics.record(&ev);
        if traced {
            let cat = ev.trace_category().expect("checked above");
            self.trace.emit(now, cat, ev.to_string());
        }
        for s in &self.sinks {
            s.borrow_mut().on_event(now, &ev);
        }
    }

    /// Open a causal span (see [`crate::span`]): allocate an id, emit a
    /// [`SpanEvent::Open`] to the attached sinks, and return the id for the
    /// matching [`Sim::close_span`]. With **no sink attached** this returns
    /// [`SpanId::NONE`] without touching the id counter or emitting — the
    /// instrumented layers cost two branches and produce a byte-identical
    /// run, and same-seed runs with the same sinks see the same ids.
    pub fn open_span(&mut self, name: &'static str, parent: SpanId, arg: u64) -> SpanId {
        if self.sinks.is_empty() {
            return SpanId::NONE;
        }
        self.next_span += 1;
        let id = SpanId(self.next_span);
        self.emit(Event::Span(SpanEvent::Open {
            id: id.0,
            parent: parent.0,
            name,
            arg,
        }));
        id
    }

    /// Close a span opened by [`Sim::open_span`]. Closing [`SpanId::NONE`]
    /// (the no-sink case) is a no-op, so call sites never branch themselves.
    pub fn close_span(&mut self, id: SpanId) {
        if id.is_none() || self.sinks.is_empty() {
            return;
        }
        self.emit(Event::Span(SpanEvent::Close { id: id.0 }));
    }

    /// Current simulated (true) time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (includes not-yet-reclaimed
    /// tombstones of cancelled events).
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Engine counters: scheduled/executed totals, no-op (cancelled) pops and
    /// the event-queue high-water mark.
    pub fn stats(&self) -> SimStats {
        SimStats {
            scheduled: self.queue.scheduled_total(),
            executed: self.executed,
            noop_pops: self.queue.noop_pops(),
            peak_queue_depth: self.queue.peak_len() as u64,
        }
    }

    /// Schedule `f` to run at absolute time `at` (clamped to now if in the past).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventHandle
    where
        F: FnOnce(&mut Sim<W>) + 'static,
    {
        let t = at.max(self.now);
        EventHandle(self.queue.push(t, Box::new(f)))
    }

    /// Schedule `f` to run after `delay`.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, f: F) -> EventHandle
    where
        F: FnOnce(&mut Sim<W>) + 'static,
    {
        let at = self.now + delay;
        EventHandle(self.queue.push(at, Box::new(f)))
    }

    /// Schedule `f` to run as the next event at the current instant.
    pub fn schedule_now<F>(&mut self, f: F) -> EventHandle
    where
        F: FnOnce(&mut Sim<W>) + 'static,
    {
        EventHandle(self.queue.push(self.now, Box::new(f)))
    }

    /// Cancel a scheduled event. Cancelling an already-fired or already-
    /// cancelled event is a no-op.
    pub fn cancel(&mut self, h: EventHandle) {
        self.queue.cancel(h.0);
    }

    /// Ask the run loop to stop after the current handler returns.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Execute the next event, if any. Returns `false` when the queue is
    /// empty. A cancelled entry at the head still advances the clock to its
    /// timestamp (it remains a queue instant — see the queue docs) but
    /// dispatches nothing and does not count as executed.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.time >= self.now, "time went backwards");
        self.now = entry.time;
        if let Some(f) = entry.event {
            self.executed += 1;
            f(self);
        }
        true
    }

    /// Run until the queue empties, `horizon` is reached, `max_events` are
    /// executed, or a handler requests a stop. Events scheduled exactly at
    /// the horizon do not run; the clock is left at the horizon.
    pub fn run(&mut self, horizon: SimTime, max_events: u64) -> StopReason {
        let budget_end = self.executed.saturating_add(max_events);
        self.stop_requested = false;
        loop {
            if self.stop_requested {
                return StopReason::Requested;
            }
            if self.executed >= budget_end {
                return StopReason::EventBudget;
            }
            match self.queue.peek_time() {
                None => return StopReason::QueueEmpty,
                Some(t) if t >= horizon => {
                    self.now = horizon;
                    return StopReason::Horizon;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Run with no time horizon (still bounded by `max_events`).
    pub fn run_to_completion(&mut self, max_events: u64) -> StopReason {
        self.run(SimTime::NEVER, max_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
        ticks: u32,
    }

    fn logit(sim: &mut Sim<World>, tag: &'static str) {
        let t = sim.now().nanos();
        sim.world.log.push((t, tag));
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(World::default(), 1);
        sim.schedule_at(SimTime(300), |s| logit(s, "c"));
        sim.schedule_at(SimTime(100), |s| logit(s, "a"));
        sim.schedule_at(SimTime(200), |s| logit(s, "b"));
        assert_eq!(sim.run_to_completion(1000), StopReason::QueueEmpty);
        assert_eq!(sim.world.log, vec![(100, "a"), (200, "b"), (300, "c")]);
        assert_eq!(sim.now(), SimTime(300));
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim = Sim::new(World::default(), 1);
        fn tick(sim: &mut Sim<World>) {
            sim.world.ticks += 1;
            if sim.world.ticks < 5 {
                sim.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        sim.schedule_now(tick);
        sim.run_to_completion(1000);
        assert_eq!(sim.world.ticks, 5);
        assert_eq!(sim.now(), SimTime::from_secs_f64(4.0));
    }

    #[test]
    fn cancel_suppresses_event() {
        let mut sim = Sim::new(World::default(), 1);
        let h = sim.schedule_at(SimTime(50), |s| logit(s, "dead"));
        sim.schedule_at(SimTime(60), |s| logit(s, "alive"));
        sim.cancel(h);
        sim.run_to_completion(100);
        assert_eq!(sim.world.log, vec![(60, "alive")]);
    }

    #[test]
    fn stats_count_noops_and_peak_depth() {
        let mut sim = Sim::new(World::default(), 1);
        let handles: Vec<EventHandle> = (0..8)
            .map(|i| sim.schedule_at(SimTime(10 + i), |s| logit(s, "t")))
            .collect();
        for h in &handles[..6] {
            sim.cancel(*h);
        }
        sim.run_to_completion(100);
        let st = sim.stats();
        assert_eq!(st.scheduled, 8);
        assert_eq!(st.executed, 2);
        assert_eq!(st.noop_pops, 6);
        assert_eq!(st.peak_queue_depth, 8);
        assert!((st.noop_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn horizon_stops_before_future_events() {
        let mut sim = Sim::new(World::default(), 1);
        sim.schedule_at(SimTime(100), |s| logit(s, "early"));
        sim.schedule_at(SimTime(500), |s| logit(s, "late"));
        let r = sim.run(SimTime(200), 1000);
        assert_eq!(r, StopReason::Horizon);
        assert_eq!(sim.now(), SimTime(200));
        assert_eq!(sim.world.log, vec![(100, "early")]);
        // resuming picks the late event back up
        sim.run_to_completion(1000);
        assert_eq!(sim.world.log.len(), 2);
    }

    #[test]
    fn event_budget_guards_livelock() {
        let mut sim = Sim::new(World::default(), 1);
        fn forever(sim: &mut Sim<World>) {
            sim.schedule_now(forever);
        }
        sim.schedule_now(forever);
        assert_eq!(sim.run_to_completion(100), StopReason::EventBudget);
        assert_eq!(sim.events_executed(), 100);
    }

    #[test]
    fn request_stop_halts_loop() {
        let mut sim = Sim::new(World::default(), 1);
        sim.schedule_at(SimTime(10), |s| s.request_stop());
        sim.schedule_at(SimTime(20), |s| logit(s, "never"));
        assert_eq!(sim.run_to_completion(1000), StopReason::Requested);
        assert!(sim.world.log.is_empty());
    }

    #[test]
    fn same_instant_fifo() {
        let mut sim = Sim::new(World::default(), 1);
        for i in 0..10u64 {
            sim.schedule_at(SimTime(42), move |s| {
                s.world.log.push((i, "x"));
            });
        }
        sim.run_to_completion(100);
        let seq: Vec<u64> = sim.world.log.iter().map(|&(i, _)| i).collect();
        assert_eq!(seq, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn emit_routes_legacy_events_into_the_trace_byte_identically() {
        use crate::event::{Event, FaultEvent};
        let mut sim = Sim::new(World::default(), 1);
        sim.trace = Trace::enabled(16).with_categories(&["fault"]);
        sim.schedule_at(SimTime(100), |s| {
            s.emit(Event::Fault(FaultEvent::CtrlDropped { node: 3 }));
        });
        sim.run_to_completion(10);
        let recs: Vec<_> = sim.trace.records().collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].time, SimTime(100));
        assert_eq!(recs[0].category, "fault");
        assert_eq!(recs[0].message, "control msg to NodeId(3) dropped");
    }

    #[test]
    fn emit_skips_the_trace_for_typed_only_events_but_feeds_sinks() {
        use crate::event::{Event, RmEvent};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Recorder(Vec<(SimTime, &'static str)>);
        impl EventSink for Recorder {
            fn on_event(&mut self, time: SimTime, event: &Event) {
                self.0.push((time, event.key()));
            }
        }

        let mut sim = Sim::new(World::default(), 1);
        sim.trace = Trace::enabled(16);
        sim.metrics = Metrics::enabled();
        let rec = Rc::new(RefCell::new(Recorder::default()));
        sim.attach_sink(rec.clone());
        sim.schedule_at(SimTime(5), |s| {
            s.emit(Event::Rm(RmEvent::JobQueued { job: 7 }));
        });
        sim.run_to_completion(10);
        assert!(
            sim.trace.is_empty(),
            "typed-only events must not hit the ring"
        );
        assert_eq!(sim.metrics.counter("rm.job_queued"), 1);
        assert_eq!(rec.borrow().0, vec![(SimTime(5), "rm.job_queued")]);
    }

    #[test]
    fn emit_with_everything_disabled_is_a_noop() {
        use crate::event::{Event, TcpEvent};
        let mut sim = Sim::new(World::default(), 1);
        sim.emit(Event::Tcp(TcpEvent::Retransmit { ep: 0 }));
        assert!(sim.trace.is_empty());
        assert!(sim.metrics.snapshot().is_empty());
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut sim = Sim::new(World::default(), 1);
        sim.schedule_at(SimTime(100), |s| {
            // attempt to schedule in the past: must fire at `now` instead
            s.schedule_at(SimTime(10), |s2| logit(s2, "clamped"));
        });
        sim.run_to_completion(100);
        assert_eq!(sim.world.log, vec![(100, "clamped")]);
    }
}
