//! Statistics collection for models and experiment harnesses.
//!
//! * [`Counter`] — monotonically increasing event counts.
//! * [`OnlineStats`] — Welford single-pass mean/variance (no sample storage).
//! * [`Histogram`] — stores samples for exact quantiles; the experiment
//!   campaigns are small enough (≤ millions of samples) that exact quantiles
//!   beat the complexity of a sketch.

use std::fmt;

/// A monotonically increasing counter.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Welford's online mean/variance accumulator.
#[derive(Clone, Copy, Default, Debug)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// A sample-storing histogram with exact quantiles.
#[derive(Clone, Default, Debug)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in histogram"));
            self.sorted = true;
        }
    }

    /// Exact quantile with linear interpolation; `q` in [0, 1]. An empty
    /// histogram reports 0.0 (not NaN), so rollups over runs that never
    /// exercised a phase render as zeros instead of poisoning comparisons.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let frac = pos - lo as f64;
            self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
        }
    }

    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            f64::NAN
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Smallest sample, or 0.0 when empty (see [`Histogram::quantile`]).
    pub fn min(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        self.samples[0]
    }

    /// Largest sample, or 0.0 when empty (see [`Histogram::quantile`]).
    pub fn max(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.samples.last().unwrap()
    }

    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn online_stats_match_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // naive sample variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean());
        a.merge(&OnlineStats::new());
        assert_eq!((a.count(), a.mean()), before);

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for i in (1..=100).rev() {
            h.push(i as f64);
        }
        assert_eq!(h.len(), 100);
        assert!((h.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((h.quantile(1.0) - 100.0).abs() < 1e-12);
        assert!((h.median() - 50.5).abs() < 1e-12);
        assert!((h.mean() - 50.5).abs() < 1e-12);
        assert!((h.min() - 1.0).abs() < 1e-12);
        assert!((h.max() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.push(1.0);
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.median() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let mut h = Histogram::new();
        assert_eq!(h.median(), 0.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        // mean stays NaN: an undefined average is a fact, not a zero.
        assert!(h.mean().is_nan());
    }
}
