//! Metrics registry: counters, gauges and log-scale histograms keyed by
//! `&'static str`, snapshot-able like [`crate::trace::TraceStats`].
//!
//! The registry is owned by [`crate::Sim`] and fed automatically by
//! [`crate::Sim::emit`]: every event increments the counter named by
//! [`crate::Event::key`], and events carrying a measurement
//! ([`crate::Event::measure`]) feed a histogram. Models may also record
//! directly (`sim.metrics.inc(…)`) for quantities that are not events.
//!
//! Like tracing, metrics are **off by default** and cost one branch per
//! emission when disabled, so the spine stays out of the hot path unless a
//! campaign asks for it. Snapshots are plain values that merge across
//! trials, which is how per-campaign rollups are built in the bench
//! binaries.

use std::collections::BTreeMap;
use std::fmt;

/// A log₂-bucketed histogram of non-negative samples. Bucket `i` holds
/// samples in `[2^(i-1), 2^i)` (bucket 0 holds `[0, 1)`), so ns-scale
/// latencies and byte counts both fit 64 buckets with ~2× resolution —
/// enough to read p50/p99 orders of magnitude without storing samples.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }
}

fn bucket_of(v: f64) -> usize {
    if v < 1.0 {
        return 0;
    }
    let b = 64 - (v as u64).leading_zeros() as usize;
    b.min(63)
}

impl LogHistogram {
    pub fn observe(&mut self, v: f64) {
        let v = v.max(0.0);
        self.buckets[bucket_of(v)] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the bucket where the
    /// cumulative count crosses `q·count` (so within 2× of the true value),
    /// clamped to the observed max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i == 0 { 1.0 } else { (1u64 << i) as f64 };
                return upper.min(self.max());
            }
        }
        self.max()
    }

    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The live registry owned by [`crate::Sim`].
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    enabled: bool,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, LogHistogram>,
}

impl Metrics {
    /// The default: recording is a no-op (one branch per call).
    pub fn disabled() -> Self {
        Metrics::default()
    }

    pub fn enabled() -> Self {
        Metrics {
            enabled: true,
            ..Metrics::default()
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn inc(&mut self, key: &'static str, by: u64) {
        if self.enabled {
            *self.counters.entry(key).or_insert(0) += by;
        }
    }

    pub fn set_gauge(&mut self, key: &'static str, v: f64) {
        if self.enabled {
            self.gauges.insert(key, v);
        }
    }

    pub fn observe(&mut self, key: &'static str, v: f64) {
        if self.enabled {
            self.hists.entry(key).or_default().observe(v);
        }
    }

    /// Record one typed event: count its key and feed its measurement.
    /// Called by [`crate::Sim::emit`]; callers do not normally use this.
    /// Span boundaries are skipped: whether a trial had a span sink attached
    /// must not change its metrics snapshot, or campaign rollups would
    /// depend on which trial exported a trace.
    pub fn record(&mut self, ev: &crate::Event) {
        if !self.enabled || matches!(ev, crate::Event::Span(_)) {
            return;
        }
        self.inc(ev.key(), 1);
        if let Some((k, v)) = ev.measure() {
            self.observe(k, v);
        }
    }

    /// Fold the engine's own counters ([`crate::SimStats`]) into the
    /// registry so queue health rolls up across a campaign: the event
    /// totals sum, the queue high-water mark takes the per-trial max.
    pub fn record_sim_stats(&mut self, s: &crate::SimStats) {
        if !self.enabled {
            return;
        }
        self.inc("sim.events_scheduled", s.scheduled);
        self.inc("sim.events_executed", s.executed);
        self.inc("sim.noop_pops", s.noop_pops);
        let peak = self
            .gauges
            .get("sim.peak_queue_depth")
            .copied()
            .unwrap_or(0.0);
        self.set_gauge("sim.peak_queue_depth", peak.max(s.peak_queue_depth as f64));
    }

    pub fn counter(&self, key: &'static str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Freeze the registry contents for aggregation across trials.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hists: self.hists.clone(),
        }
    }
}

/// A frozen, mergeable copy of one registry's contents.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<&'static str, u64>,
    pub gauges: BTreeMap<&'static str, f64>,
    pub hists: BTreeMap<&'static str, LogHistogram>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Fold another snapshot in: counters add, histograms merge, gauges keep
    /// the maximum (the only cross-trial reduction that is order-free).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k).or_insert(*v);
            *e = e.max(*v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k).or_default().merge(h);
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Multi-line rollup: counters first (sorted by key), then histograms
    /// with approximate quantiles.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "  {k} = {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "  {k} = {v:.3} (gauge)")?;
        }
        for (k, h) in &self.hists {
            writeln!(
                f,
                "  {k}: n={} mean={:.0} p50≈{:.0} p99≈{:.0} max={:.0}",
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = Metrics::disabled();
        m.inc("a", 1);
        m.observe("h", 10.0);
        m.set_gauge("g", 1.0);
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let mut m = Metrics::enabled();
        m.inc("tcp.retransmit", 2);
        m.inc("tcp.retransmit", 3);
        for v in [1.0, 2.0, 4.0, 1000.0] {
            m.observe("lat", v);
        }
        assert_eq!(m.counter("tcp.retransmit"), 5);
        let s = m.snapshot();
        let h = &s.hists["lat"];
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1000.0);
        assert!(h.quantile(0.5) >= 2.0 && h.quantile(0.5) <= 4.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn log_buckets_span_magnitudes() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(0.9), 0);
        assert_eq!(bucket_of(1.0), 1);
        assert_eq!(bucket_of(2.0), 2);
        assert_eq!(bucket_of(3.0), 2);
        assert_eq!(bucket_of(1e18), 60);
        assert_eq!(bucket_of(f64::MAX.min(1e300)), 63);
    }

    #[test]
    fn snapshots_merge_across_trials() {
        let mut a = Metrics::enabled();
        a.inc("c", 1);
        a.observe("h", 10.0);
        a.set_gauge("g", 2.0);
        let mut b = Metrics::enabled();
        b.inc("c", 2);
        b.observe("h", 1000.0);
        b.set_gauge("g", 1.0);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counters["c"], 3);
        assert_eq!(s.hists["h"].count(), 2);
        assert_eq!(s.hists["h"].max(), 1000.0);
        assert_eq!(s.gauges["g"], 2.0);
    }

    #[test]
    fn event_record_counts_key_and_measure() {
        use crate::event::{Event, LscEvent};
        use crate::time::SimDuration;
        let mut m = Metrics::enabled();
        m.record(&Event::Lsc(LscEvent::WindowClosed {
            run: 1,
            vc: 0,
            skew: SimDuration::from_secs(1),
            stored: true,
        }));
        assert_eq!(m.counter("lsc.window_closed"), 1);
        assert_eq!(m.snapshot().hists["lsc.pause_skew_ns"].count(), 1);
    }
}
