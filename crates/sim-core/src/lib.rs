//! # dvc-sim-core
//!
//! Deterministic discrete-event simulation (DES) kernel underpinning the
//! Dynamic Virtual Clustering reproduction.
//!
//! The kernel is deliberately small and fully deterministic:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time.
//! * [`Sim`] — the engine. It owns the simulated clock, a stable-ordered
//!   event queue of boxed `FnOnce(&mut Sim<W>)` handlers, the user-supplied
//!   world `W`, and a set of named deterministic RNG streams.
//! * [`rng::RngStreams`] — independent random streams derived from one master
//!   seed by hashing stream labels, so adding a consumer never perturbs the
//!   draws seen by existing consumers.
//! * [`stats`] — counters, online mean/variance and sample histograms used by
//!   every experiment harness.
//! * [`trial`] — a data-parallel campaign runner that fans independent
//!   simulation trials out across OS threads (each trial is single-threaded
//!   and seeded, so campaigns are reproducible and embarrassingly parallel).
//! * [`event`] / [`metrics`] / [`check`] — the typed observability spine:
//!   structured [`Event`]s emitted via [`Sim::emit`], a [`Metrics`] registry
//!   fed from them, and [`EventSink`] subscribers (invariant checkers, JSONL
//!   export) that observe runs without perturbing them.
//!
//! Everything above this crate (network, hypervisor, MPI, DVC itself) is
//! expressed as state inside `W` plus events scheduled on the same queue.

pub mod attrib;
pub mod check;
pub mod event;
pub mod faults;
pub mod metrics;
pub mod oracle;
pub mod perfetto;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod span;
pub mod stats;
pub mod time;
pub mod trace;
pub mod trial;

pub use attrib::{PhaseAttribution, PhaseSample, RoundRecord};
pub use check::{CheckCounts, InvariantChecker, JsonlSink};
pub use event::{
    Event, FaultEvent, LscEvent, MpiEvent, NtpEvent, RmEvent, SpanEvent, StorageEvent, TcpEvent,
    VmmEvent,
};
pub use faults::{kind_from_str, FaultPlan, FaultWindow, FAULT_KINDS};
pub use metrics::{LogHistogram, Metrics, MetricsSnapshot};
pub use oracle::{Oracle, OracleReport};
pub use perfetto::PerfettoTrace;
pub use rng::RngStreams;
pub use sim::{EventHandle, EventSink, Sim, SimStats};
pub use span::{name_from_str, SpanChecker, SpanId, SPAN_NAMES};
pub use time::{SimDuration, SimTime};
