//! The event queue: a binary heap of `(time, sequence)`-ordered entries.
//!
//! Ties on `time` are broken by insertion sequence number, giving stable FIFO
//! semantics for simultaneous events — a hard requirement for determinism
//! (two events scheduled for the same instant always run in scheduling
//! order, on every platform, for every seed).
//!
//! Cancellation is lazy (tombstones): [`EventQueue::cancel`] marks a sequence
//! number dead and when the entry reaches the head it pops with `event:
//! None`, counted in [`EventQueue::noop_pops`]. Crucially, a tombstone is
//! *not* invisible: it still defines a queue instant — callers advance their
//! clock over it without dispatching anything. This keeps the engine's
//! timeline bit-identical to the generation-guarded no-op events this
//! mechanism replaced (those executed, advancing `now`, then returned
//! early); harness loops that overrun a horizon by one event therefore stop
//! at exactly the same instant either way. Sequence allocation is never
//! affected by cancellation, so the relative order of live events — and
//! therefore every downstream random draw — is identical whether or not
//! anything was cancelled. What cancellation buys is skipping the closure
//! dispatch and the caller-side staleness bookkeeping, not the heap pop.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A queued event: an opaque handler plus its firing time and sequence.
pub struct Entry<E> {
    pub time: SimTime,
    pub seq: u64,
    pub event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the *earliest* entry is the max.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable min-priority queue over `(SimTime, seq)` with lazy cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    noop_pops: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            noop_pops: 0,
            peak_len: 0,
        }
    }

    /// Insert an event at `time`, returning its unique sequence number.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        if self.heap.len() > self.peak_len {
            self.peak_len = self.heap.len();
        }
        seq
    }

    /// Tombstone a scheduled event. Cancelling an already-cancelled or never-
    /// allocated sequence is a no-op; cancelling an already-fired one leaves a
    /// harmless tombstone (sequence numbers are never reused).
    pub fn cancel(&mut self, seq: u64) {
        if seq < self.next_seq {
            self.cancelled.insert(seq);
        }
    }

    /// Remove and return the earliest entry. A cancelled entry comes back
    /// with `event: None` (counted as a no-op pop): its timestamp is still a
    /// queue instant the caller's clock must advance over, but there is
    /// nothing to dispatch.
    pub fn pop(&mut self) -> Option<Entry<Option<E>>> {
        let entry = self.heap.pop()?;
        let event = if self.cancelled.remove(&entry.seq) {
            self.noop_pops += 1;
            None
        } else {
            Some(entry.event)
        };
        Some(Entry {
            time: entry.time,
            seq: entry.seq,
            event,
        })
    }

    /// The firing time of the earliest entry, if any — including a cancelled
    /// head: its instant is still part of the timeline (see module docs).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Entries currently in the heap (live + not-yet-reclaimed tombstones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (== next sequence number).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Cancelled entries discarded at pop/peek so far. With callers that
    /// cancel their stale timers this stays near zero; a high value means
    /// something is flooding the heap with events it then abandons.
    pub fn noop_pops(&self) -> u64 {
        self.noop_pops
    }

    /// High-water mark of the heap length.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .filter_map(|e| e.event)
            .collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .filter_map(|e| e.event)
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(5), 0);
        assert_eq!(q.pop().unwrap().event, Some(0));
        q.push(SimTime(7), 2);
        q.push(SimTime(7), 3);
        assert_eq!(q.pop().unwrap().event, Some(2));
        assert_eq!(q.pop().unwrap().event, Some(3));
        assert_eq!(q.pop().unwrap().event, Some(1));
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 4);
    }

    #[test]
    fn cancelled_entries_pop_as_timed_noops() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        let c = q.push(SimTime(30), "c");
        q.cancel(a);
        q.cancel(c);
        // A tombstoned head still defines the next queue instant.
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        let p = q.pop().unwrap();
        assert_eq!((p.time, p.event), (SimTime(10), None));
        assert_eq!(q.pop().unwrap().event, Some("b"));
        let p = q.pop().unwrap();
        assert_eq!((p.time, p.event), (SimTime(30), None));
        assert!(q.pop().is_none());
        assert_eq!(q.noop_pops(), 2);
    }

    #[test]
    fn cancel_does_not_disturb_seq_allocation() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(5), 0);
        q.cancel(a);
        // The next push still gets seq 1: cancellation never reuses numbers.
        assert_eq!(q.push(SimTime(5), 1), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn cancel_unknown_or_fired_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        assert_eq!(q.pop().unwrap().event, Some("a"));
        q.cancel(a); // already fired
        q.cancel(999); // never allocated
        q.push(SimTime(2), "b");
        assert_eq!(q.pop().unwrap().event, Some("b"));
        assert_eq!(q.noop_pops(), 0);
    }

    #[test]
    fn peak_len_tracks_high_water() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime(i), i);
        }
        for _ in 0..5 {
            q.pop();
        }
        q.push(SimTime(99), 99);
        assert_eq!(q.peak_len(), 10);
    }
}
