//! The event queue: a binary heap of `(time, sequence)`-ordered entries.
//!
//! Ties on `time` are broken by insertion sequence number, giving stable FIFO
//! semantics for simultaneous events — a hard requirement for determinism
//! (two events scheduled for the same instant always run in scheduling
//! order, on every platform, for every seed).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A queued event: an opaque handler plus its firing time and sequence.
pub struct Entry<E> {
    pub time: SimTime,
    pub seq: u64,
    pub event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the *earliest* entry is the max.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable min-priority queue over `(SimTime, seq)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Insert an event at `time`, returning its unique sequence number.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        seq
    }

    /// Remove and return the earliest entry.
    pub fn pop(&mut self) -> Option<Entry<E>> {
        self.heap.pop()
    }

    /// The firing time of the earliest entry, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (== next sequence number).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(5), 0);
        assert_eq!(q.pop().unwrap().event, 0);
        q.push(SimTime(7), 2);
        q.push(SimTime(7), 3);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 1);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 4);
    }
}
