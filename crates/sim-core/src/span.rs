//! Causal spans — parent-linked intervals carried on the typed event spine.
//!
//! Flat events say *what* happened; spans say *where the time went*. A span
//! is an interval opened and closed around a phase of work, linked to the
//! span that caused it, so one checkpoint round becomes a tree:
//!
//! ```text
//! lsc.round (run)
//! ├── lsc.dispatch (member)      arm send → member pause
//! ├── vmm.save (vm)              pause + snapshot + persist, per member
//! │   └── storage.write (bytes)  the shared-array transfer
//! ├── lsc.ack_collect            first pause → every save resolved
//! └── lsc.resume                 coordinated resume → run finished
//! ```
//!
//! Spans ride the existing [`crate::Event`] stream as
//! [`Event::Span`] values, so every
//! [`crate::EventSink`] sees them with zero new plumbing — and when no sink
//! is attached, [`Sim::open_span`](crate::Sim::open_span) returns
//! [`SpanId::NONE`] without allocating an id or emitting anything, which is
//! what keeps the instrumented hot paths byte-identical (and cost-free) in
//! legacy runs.
//!
//! Ids are per-[`Sim`](crate::Sim) and only advance while a sink is
//! attached, so same-seed runs with the same sinks see the same ids — the
//! [`SpanChecker::digest`] replay test depends on that.

use crate::event::{Event, SpanEvent};
use crate::sim::EventSink;
use crate::time::SimTime;
use std::collections::BTreeMap;

/// Identifier of an open span. `NONE` (id 0) is the null parent: a span
/// with parent `NONE` is a root of its causal tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: used as "no parent" and returned by
    /// [`Sim::open_span`](crate::Sim::open_span) when no sink is attached.
    pub const NONE: SpanId = SpanId(0);

    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Every span name the instrumented layers emit. The registry exists so
/// exported streams (where names travel as strings) can be mapped back to
/// `&'static str` by [`name_from_str`] — an unknown name in a stream is a
/// malformed-stream error, not a silently new phase.
pub const SPAN_NAMES: &[&str] = &[
    "lsc.round",
    "lsc.dispatch",
    "lsc.ack_collect",
    "lsc.resume",
    "lsc.restore",
    "lsc.restore_resume",
    "vmm.save",
    "storage.write",
    "storage.stage",
    "migrate.live",
    "migrate.precopy",
    "migrate.cutover",
];

/// Map a span name from an exported stream back to its registry entry.
pub fn name_from_str(s: &str) -> Option<&'static str> {
    SPAN_NAMES.iter().find(|n| **n == s).copied()
}

#[derive(Clone, Copy, Debug)]
struct OpenSpan {
    parent: u64,
    name: &'static str,
    open_children: u32,
}

/// Checks span-tree well-formedness online and digests the stream for
/// replay-stability tests.
///
/// Violations recorded: reused ids, opens naming a parent that is not
/// currently open, closes of unknown ids, and closes of spans that still
/// have open children (parents must outlive children). At trial end
/// [`SpanChecker::unclosed`] must be zero — every opened span closed.
#[derive(Debug)]
pub struct SpanChecker {
    open: BTreeMap<u64, OpenSpan>,
    seen_ids: u64,
    opened: u64,
    closed: u64,
    violations: Vec<String>,
    digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Default for SpanChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanChecker {
    pub fn new() -> Self {
        SpanChecker {
            open: BTreeMap::new(),
            seen_ids: 0,
            opened: 0,
            closed: 0,
            violations: Vec::new(),
            digest: FNV_OFFSET,
        }
    }

    pub fn opened(&self) -> u64 {
        self.opened
    }

    pub fn closed(&self) -> u64 {
        self.closed
    }

    /// Spans still open — must be 0 at trial end.
    pub fn unclosed(&self) -> usize {
        self.open.len()
    }

    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// FNV-1a digest over `(t, kind, id, parent, name, arg)` of every span
    /// event seen, in stream order. Two same-seed runs with the same sinks
    /// attached must produce equal digests.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// One-line report: `ok (N spans)` or the violation/unclosed counts.
    pub fn report(&self) -> String {
        if self.violations.is_empty() && self.open.is_empty() {
            format!("ok ({} spans opened+closed)", self.opened)
        } else {
            format!(
                "{} violation(s), {} unclosed of {} opened",
                self.violations.len(),
                self.open.len(),
                self.opened
            )
        }
    }
}

impl EventSink for SpanChecker {
    fn on_event(&mut self, time: SimTime, event: &Event) {
        let Event::Span(se) = event else { return };
        match *se {
            SpanEvent::Open {
                id,
                parent,
                name,
                arg,
            } => {
                self.digest = fnv(self.digest, &time.nanos().to_le_bytes());
                self.digest = fnv(self.digest, &[0u8]);
                self.digest = fnv(self.digest, &id.to_le_bytes());
                self.digest = fnv(self.digest, &parent.to_le_bytes());
                self.digest = fnv(self.digest, name.as_bytes());
                self.digest = fnv(self.digest, &arg.to_le_bytes());
                self.opened += 1;
                if id == 0 || id <= self.seen_ids {
                    self.violations
                        .push(format!("span {id} ({name}): id reused or zero"));
                } else {
                    self.seen_ids = id;
                }
                if parent != 0 {
                    match self.open.get_mut(&parent) {
                        Some(p) => p.open_children += 1,
                        None => self
                            .violations
                            .push(format!("span {id} ({name}): parent {parent} is not open")),
                    }
                }
                self.open.insert(
                    id,
                    OpenSpan {
                        parent,
                        name,
                        open_children: 0,
                    },
                );
            }
            SpanEvent::Close { id } => {
                self.digest = fnv(self.digest, &time.nanos().to_le_bytes());
                self.digest = fnv(self.digest, &[1u8]);
                self.digest = fnv(self.digest, &id.to_le_bytes());
                self.closed += 1;
                match self.open.remove(&id) {
                    Some(s) => {
                        if s.open_children > 0 {
                            self.violations.push(format!(
                                "span {id} ({}): closed with {} open child(ren)",
                                s.name, s.open_children
                            ));
                        }
                        if s.parent != 0 {
                            if let Some(p) = self.open.get_mut(&s.parent) {
                                p.open_children = p.open_children.saturating_sub(1);
                            }
                        }
                    }
                    None => self
                        .violations
                        .push(format!("span {id}: closed but never opened")),
                }
            }
        }
    }

    fn findings(&self) -> Vec<String> {
        let mut v = self.violations.clone();
        for (id, s) in &self.open {
            v.push(format!("span {id} ({}): never closed", s.name));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(t: u64, id: u64, parent: u64, name: &'static str) -> (SimTime, Event) {
        (
            SimTime(t),
            Event::Span(SpanEvent::Open {
                id,
                parent,
                name,
                arg: 0,
            }),
        )
    }

    fn close(t: u64, id: u64) -> (SimTime, Event) {
        (SimTime(t), Event::Span(SpanEvent::Close { id }))
    }

    fn feed(c: &mut SpanChecker, evs: &[(SimTime, Event)]) {
        for (t, e) in evs {
            c.on_event(*t, e);
        }
    }

    #[test]
    fn well_formed_tree_is_clean() {
        let mut c = SpanChecker::new();
        feed(
            &mut c,
            &[
                open(0, 1, 0, "lsc.round"),
                open(1, 2, 1, "lsc.dispatch"),
                close(2, 2),
                open(3, 3, 1, "vmm.save"),
                open(3, 4, 3, "storage.write"),
                close(5, 4),
                close(5, 3),
                close(6, 1),
            ],
        );
        assert!(c.is_clean(), "{:?}", c.violations());
        assert_eq!(c.unclosed(), 0);
        assert_eq!(c.opened(), 4);
        assert_eq!(c.closed(), 4);
    }

    #[test]
    fn parent_closed_before_child_fires() {
        let mut c = SpanChecker::new();
        feed(
            &mut c,
            &[
                open(0, 1, 0, "lsc.round"),
                open(1, 2, 1, "vmm.save"),
                close(2, 1),
                close(3, 2),
            ],
        );
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("open child"));
    }

    #[test]
    fn unknown_parent_and_reused_id_fire() {
        let mut c = SpanChecker::new();
        feed(
            &mut c,
            &[
                open(0, 5, 9, "lsc.dispatch"),
                close(1, 5),
                open(2, 5, 0, "lsc.round"),
            ],
        );
        assert_eq!(c.violations().len(), 2);
        assert!(c.violations()[0].contains("not open"));
        assert!(c.violations()[1].contains("reused"));
    }

    #[test]
    fn unclosed_spans_surface_in_findings() {
        let mut c = SpanChecker::new();
        feed(&mut c, &[open(0, 1, 0, "lsc.round")]);
        assert_eq!(c.unclosed(), 1);
        assert!(c.findings()[0].contains("never closed"));
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let mut a = SpanChecker::new();
        let mut b = SpanChecker::new();
        let evs = [open(0, 1, 0, "lsc.round"), close(9, 1)];
        feed(&mut a, &evs);
        feed(&mut b, &evs);
        assert_eq!(a.digest(), b.digest());
        let mut c = SpanChecker::new();
        feed(&mut c, &[open(0, 1, 0, "lsc.round"), close(10, 1)]);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn every_emitted_name_is_registered() {
        for n in SPAN_NAMES {
            assert_eq!(name_from_str(n), Some(*n));
        }
        assert_eq!(name_from_str("bogus.phase"), None);
    }
}
