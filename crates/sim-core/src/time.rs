//! Simulated time.
//!
//! The whole simulation runs on a single *true time* axis with nanosecond
//! resolution. Per-node *local* clocks (with offset/drift/jitter) are modelled
//! in `dvc-time` on top of this axis; the engine itself only ever sees
//! [`SimTime`].

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation's true-time axis, in nanoseconds
/// since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds. Durations are unsigned; code
/// that needs signed clock *offsets* (e.g. NTP) works in `i64` nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const NANOS_PER_MICRO: u64 = 1_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// Far-future sentinel used for "no deadline".
    pub const NEVER: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn from_secs_f64(secs: f64) -> SimTime {
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * NANOS_PER_SEC)
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * NANOS_PER_MILLI)
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Saturating difference: `self - earlier`, clamped at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    #[inline]
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }

    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub const fn from_nanos(n: u64) -> SimDuration {
        SimDuration(n)
    }
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * NANOS_PER_MICRO)
    }
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * NANOS_PER_MILLI)
    }
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * NANOS_PER_SEC)
    }
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        debug_assert!(s >= 0.0, "negative duration: {s}");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The time a `bytes`-sized transfer takes at `bytes_per_sec` bandwidth.
    #[inline]
    pub fn for_transfer(bytes: u64, bytes_per_sec: f64) -> SimDuration {
        debug_assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < NANOS_PER_MICRO {
            write!(f, "{}ns", self.0)
        } else if self.0 < NANOS_PER_MILLI {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(1500);
        assert_eq!(t.nanos(), 1_500_000_000);
        assert_eq!(t.as_secs_f64(), 1.5);
        let d = t - SimTime(500_000_000);
        assert_eq!(d, SimDuration::from_secs(1));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(100);
        let b = SimTime(200);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration(100));
    }

    #[test]
    fn transfer_time() {
        // 1 MiB at 1 MiB/s takes one second.
        let d = SimDuration::for_transfer(1 << 20, (1 << 20) as f64);
        assert_eq!(d, SimDuration::from_secs(1));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3u64, SimDuration::from_millis(30));
        assert_eq!(d * 0.5f64, SimDuration::from_millis(5));
        assert_eq!(d / 2, SimDuration::from_millis(5));
    }

    #[test]
    fn display_is_human_scaled() {
        assert_eq!(format!("{}", SimDuration(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "3.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).nanos(), 500_000_000);
        assert_eq!(SimTime::from_secs_f64(2.25).nanos(), 2_250_000_000);
    }
}
