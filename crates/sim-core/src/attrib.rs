//! Phase attribution — decomposing each checkpoint round's wall time.
//!
//! [`PhaseAttribution`] is an [`EventSink`] that folds the causal span
//! stream (see [`crate::span`]) together with the LSC lifecycle events into
//! one [`RoundRecord`] per coordinated checkpoint round: when the round
//! started and ended, which phase spans it contained, how many storage
//! retries and control-channel losses landed inside it, and — the
//! paper-critical quantity — its **margin**:
//!
//! > margin = TCP silence budget − observed pause spread
//!
//! For a *stored* round the spread is the fan of the members' pause
//! instants (`last SaveFired − first SaveFired`), exactly what
//! [`crate::InvariantChecker`] checks against the budget. For a *failed*
//! round the paused members stay silent until the coordinator resolves the
//! window, so the exposure runs from the first pause to the window close —
//! which is why failed rounds report negative margins: the guests' peers
//! saw silence past the retransmission budget.
//!
//! Records are campaign-mergeable ([`PhaseAttribution::merge`]) and the
//! per-phase duration histograms use the exact-quantile
//! [`crate::stats::Histogram`].

use crate::event::{Event, FaultEvent, LscEvent, SpanEvent, StorageEvent};
use crate::sim::EventSink;
use crate::stats::Histogram;
use crate::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// One closed phase span, attributed to a round (or free-floating for
/// restore/migration trees).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseSample {
    pub name: &'static str,
    /// The span's `arg` (member index, vm id, byte count — span-specific).
    pub arg: u64,
    pub start: SimTime,
    pub end: SimTime,
    /// `false` for a span still open when the stream ended ([`seal`]ed
    /// with the stream end): a dispatch whose member never fired, an ack
    /// collection that never resolved. Excluded from duration histograms.
    ///
    /// [`seal`]: PhaseAttribution::seal
    pub complete: bool,
}

impl PhaseSample {
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Everything attributed to one coordinated checkpoint round.
#[derive(Clone, Debug, Default)]
pub struct RoundRecord {
    pub run: u64,
    pub vc: u32,
    pub start: SimTime,
    pub end: Option<SimTime>,
    /// `Some(true)` once a set was stored, `Some(false)` once the window
    /// closed without storing, `None` if the window never closed.
    pub stored: Option<bool>,
    pub success: Option<bool>,
    pub first_fire: Option<SimTime>,
    pub last_fire: Option<SimTime>,
    pub fires: u32,
    pub window_closed_at: Option<SimTime>,
    pub phases: Vec<PhaseSample>,
    pub aborts: u32,
    pub storage_retries: u32,
    pub storage_failures: u32,
    pub ctrl_losses: u32,
}

impl RoundRecord {
    /// A round counts as failed unless its window closed with a stored set.
    pub fn is_failed(&self) -> bool {
        self.stored != Some(true)
    }

    /// The observed pause exposure: fan of pause instants for stored
    /// rounds, first pause → window resolution for failed ones. `None` for
    /// rounds that never paused anybody (e.g. aborted pre-fire).
    pub fn spread(&self) -> Option<SimDuration> {
        let first = self.first_fire?;
        if self.stored == Some(true) {
            Some(self.last_fire? - first)
        } else {
            Some(self.window_closed_at.or(self.end)? - first)
        }
    }

    /// margin = budget − spread, in seconds (negative: the round held
    /// guests silent past their peers' retransmission budget).
    pub fn margin_s(&self, budget: SimDuration) -> Option<f64> {
        self.spread()
            .map(|s| budget.as_secs_f64() - s.as_secs_f64())
    }
}

#[derive(Clone, Copy, Debug)]
struct OpenSpan {
    name: &'static str,
    arg: u64,
    start: SimTime,
    /// Index into `rounds` of the `lsc.round` ancestor, if any.
    round: Option<usize>,
}

/// The attribution sink. Attach alongside the other sinks, run, then read
/// [`PhaseAttribution::rounds`] / [`PhaseAttribution::margin_hist`].
#[derive(Debug)]
pub struct PhaseAttribution {
    budget: SimDuration,
    rounds: Vec<RoundRecord>,
    by_run: BTreeMap<u64, usize>,
    active: BTreeSet<u64>,
    open: BTreeMap<u64, OpenSpan>,
    /// Closed spans with no `lsc.round` ancestor (restore/migration trees).
    free_phases: Vec<PhaseSample>,
    /// Latest event time seen — the stream's observed end.
    stream_end: Option<SimTime>,
}

impl PhaseAttribution {
    /// `budget` is the guest TCP silence budget margins are computed
    /// against (see [`crate::InvariantChecker::default_budget`]).
    pub fn new(budget: SimDuration) -> Self {
        PhaseAttribution {
            budget,
            rounds: Vec::new(),
            by_run: BTreeMap::new(),
            active: BTreeSet::new(),
            open: BTreeMap::new(),
            free_phases: Vec::new(),
            stream_end: None,
        }
    }

    /// Extend the observed stream end past the last *typed* event — replay
    /// tools call this with the last timestamp of the raw export, since a
    /// dead job's trial keeps logging transport/fault noise (evidence the
    /// members were still paused) that never reconstructs into an
    /// [`Event`] this sink consumes.
    pub fn observe_end(&mut self, t: SimTime) {
        self.stream_end = Some(self.stream_end.map_or(t, |e| e.max(t)));
    }

    /// Close the books on a finished stream: a round whose `lsc.round`
    /// span never closed (the job died mid-round and the trial ended with
    /// members still paused) gets the stream's last event time as its
    /// observed end, so [`RoundRecord::spread`] reports the real exposure
    /// — first pause to end of evidence — instead of `None`.
    pub fn seal(&mut self) {
        let Some(end) = self.stream_end else { return };
        for r in &mut self.rounds {
            if r.end.is_none() {
                r.end = Some(end);
            }
        }
        // Spans still open at stream end become *incomplete* samples: a
        // dispatch whose member never fired or an ack collection that
        // never resolved is exactly the evidence a failed round's
        // waterfall needs to show.
        let open = std::mem::take(&mut self.open);
        for (_, s) in open {
            if s.name == "lsc.round" {
                continue;
            }
            let sample = PhaseSample {
                name: s.name,
                arg: s.arg,
                start: s.start,
                end,
                complete: false,
            };
            match s.round {
                Some(i) => self.rounds[i].phases.push(sample),
                None => self.free_phases.push(sample),
            }
        }
    }

    pub fn budget(&self) -> SimDuration {
        self.budget
    }

    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    pub fn free_phases(&self) -> &[PhaseSample] {
        &self.free_phases
    }

    /// Fold another campaign's attribution in (records concatenate; the
    /// budgets must agree for merged margins to mean anything).
    pub fn merge(&mut self, other: &PhaseAttribution) {
        self.rounds.extend(other.rounds.iter().cloned());
        self.free_phases.extend(other.free_phases.iter().copied());
    }

    /// Per-phase duration histograms (seconds), across every round and the
    /// free-floating restore/migration spans.
    pub fn phase_histograms(&self) -> BTreeMap<&'static str, Histogram> {
        let mut out: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        let all = self
            .rounds
            .iter()
            .flat_map(|r| r.phases.iter())
            .chain(self.free_phases.iter());
        for p in all {
            if !p.complete {
                continue;
            }
            out.entry(p.name)
                .or_default()
                .push(p.duration().as_secs_f64());
        }
        out
    }

    /// Histogram of per-round margins in seconds (rounds that paused
    /// nobody contribute no sample).
    pub fn margin_hist(&self) -> Histogram {
        let mut h = Histogram::new();
        for r in &self.rounds {
            if let Some(m) = r.margin_s(self.budget) {
                h.push(m);
            }
        }
        h
    }

    fn round_mut(&mut self, run: u64, t: SimTime) -> &mut RoundRecord {
        let idx = *self.by_run.entry(run).or_insert_with(|| {
            self.rounds.push(RoundRecord {
                run,
                start: t,
                ..RoundRecord::default()
            });
            self.active.insert(run);
            self.rounds.len() - 1
        });
        &mut self.rounds[idx]
    }
}

impl EventSink for PhaseAttribution {
    fn on_event(&mut self, time: SimTime, event: &Event) {
        self.stream_end = Some(self.stream_end.map_or(time, |e| e.max(time)));
        match event {
            Event::Span(SpanEvent::Open {
                id,
                parent,
                name,
                arg,
            }) => {
                let round = if *name == "lsc.round" {
                    self.round_mut(*arg, time);
                    Some(self.by_run[arg])
                } else {
                    self.open.get(parent).and_then(|p| p.round)
                };
                self.open.insert(
                    *id,
                    OpenSpan {
                        name,
                        arg: *arg,
                        start: time,
                        round,
                    },
                );
            }
            Event::Span(SpanEvent::Close { id }) => {
                if let Some(s) = self.open.remove(id) {
                    if s.name == "lsc.round" {
                        if let Some(i) = self.by_run.get(&s.arg) {
                            self.rounds[*i].end = Some(time);
                        }
                        return;
                    }
                    let sample = PhaseSample {
                        name: s.name,
                        arg: s.arg,
                        start: s.start,
                        end: time,
                        complete: true,
                    };
                    match s.round {
                        Some(i) => self.rounds[i].phases.push(sample),
                        None => self.free_phases.push(sample),
                    }
                }
            }
            Event::Lsc(LscEvent::SaveFired { run, vc, .. }) => {
                let r = self.round_mut(*run, time);
                r.vc = *vc;
                if r.first_fire.is_none() {
                    r.first_fire = Some(time);
                }
                r.last_fire = Some(time);
                r.fires += 1;
            }
            Event::Lsc(LscEvent::WindowClosed {
                run, vc, stored, ..
            }) => {
                let r = self.round_mut(*run, time);
                r.vc = *vc;
                r.stored = Some(*stored);
                r.window_closed_at = Some(time);
            }
            Event::Lsc(LscEvent::AbortReArm { run, vc, .. }) => {
                let r = self.round_mut(*run, time);
                r.vc = *vc;
                r.aborts += 1;
            }
            Event::Lsc(LscEvent::RunFinished { run, vc, success }) => {
                let r = self.round_mut(*run, time);
                r.vc = *vc;
                r.success = Some(*success);
                if r.end.is_none() {
                    r.end = Some(time);
                }
                self.active.remove(run);
            }
            Event::Storage(StorageEvent::TransferRetry { .. }) => {
                for run in self.active.clone() {
                    self.round_mut(run, time).storage_retries += 1;
                }
            }
            Event::Storage(StorageEvent::TransferFailed { .. }) => {
                for run in self.active.clone() {
                    self.round_mut(run, time).storage_failures += 1;
                }
            }
            Event::Fault(FaultEvent::CtrlDropped { .. } | FaultEvent::CtrlPartitioned { .. }) => {
                for run in self.active.clone() {
                    self.round_mut(run, time).ctrl_losses += 1;
                }
            }
            _ => {}
        }
    }

    fn findings(&self) -> Vec<String> {
        let failed = self.rounds.iter().filter(|r| r.is_failed()).count();
        if self.rounds.is_empty() {
            Vec::new()
        } else {
            vec![format!(
                "{} round(s), {} failed, worst margin {:.3}s",
                self.rounds.len(),
                failed,
                self.margin_hist().min()
            )]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink_feed(p: &mut PhaseAttribution, evs: &[(u64, Event)]) {
        for (t, e) in evs {
            p.on_event(SimTime(*t), e);
        }
    }

    fn open(id: u64, parent: u64, name: &'static str, arg: u64) -> Event {
        Event::Span(SpanEvent::Open {
            id,
            parent,
            name,
            arg,
        })
    }

    fn close(id: u64) -> Event {
        Event::Span(SpanEvent::Close { id })
    }

    fn fired(run: u64) -> Event {
        Event::Lsc(LscEvent::SaveFired {
            run,
            vc: 0,
            member: 0,
            vm: 0,
        })
    }

    fn window(run: u64, stored: bool) -> Event {
        Event::Lsc(LscEvent::WindowClosed {
            run,
            vc: 0,
            skew: SimDuration::ZERO,
            stored,
        })
    }

    fn finished(run: u64, success: bool) -> Event {
        Event::Lsc(LscEvent::RunFinished {
            run,
            vc: 0,
            success,
        })
    }

    const S: u64 = 1_000_000_000;

    #[test]
    fn stored_round_margin_is_budget_minus_fire_spread() {
        let mut p = PhaseAttribution::new(SimDuration::from_secs(3));
        sink_feed(
            &mut p,
            &[
                (0, open(1, 0, "lsc.round", 7)),
                (S, fired(7)),
                (S + S / 2, fired(7)),
                (3 * S, window(7, true)),
                (4 * S, close(1)),
                (4 * S, finished(7, true)),
            ],
        );
        let r = &p.rounds()[0];
        assert_eq!(r.run, 7);
        assert!(!r.is_failed());
        assert!((r.margin_s(p.budget()).unwrap() - 2.5).abs() < 1e-9);
        assert_eq!(r.end, Some(SimTime(4 * S)));
    }

    #[test]
    fn failed_round_margin_uses_window_close_and_goes_negative() {
        let mut p = PhaseAttribution::new(SimDuration::from_secs(3));
        sink_feed(
            &mut p,
            &[
                (0, open(1, 0, "lsc.round", 8)),
                (S, fired(8)),
                (9 * S, window(8, false)),
                (10 * S, close(1)),
                (10 * S, finished(8, false)),
            ],
        );
        let r = &p.rounds()[0];
        assert!(r.is_failed());
        // exposure 8 s > 3 s budget
        assert!((r.margin_s(p.budget()).unwrap() + 5.0).abs() < 1e-9);
    }

    #[test]
    fn seal_gives_unfinished_rounds_the_stream_end() {
        let mut p = PhaseAttribution::new(SimDuration::from_secs(3));
        sink_feed(
            &mut p,
            &[
                (0, open(1, 0, "lsc.round", 9)),
                (0, open(2, 1, "lsc.dispatch", 0)),
                (S, fired(9)),
                // The job dies with members still paused; fault noise
                // keeps the stream alive but the round never closes.
                (30 * S, Event::Fault(FaultEvent::CtrlDropped { node: 0 })),
            ],
        );
        assert_eq!(p.rounds()[0].spread(), None);
        p.seal();
        let r = &p.rounds()[0];
        assert!(r.is_failed());
        // Exposure runs 1 s → 30 s: 29 s against a 3 s budget.
        assert!((r.margin_s(p.budget()).unwrap() + 26.0).abs() < 1e-9);
        // The dispatch that never resolved surfaces as an incomplete
        // sample (visible in waterfalls, excluded from histograms).
        assert_eq!(r.phases.len(), 1);
        assert!(!r.phases[0].complete);
        assert_eq!(r.phases[0].end, SimTime(30 * S));
        assert!(p.phase_histograms().is_empty());
    }

    #[test]
    fn phases_attach_to_their_round_through_the_parent_chain() {
        let mut p = PhaseAttribution::new(SimDuration::from_secs(3));
        sink_feed(
            &mut p,
            &[
                (0, open(1, 0, "lsc.round", 1)),
                (0, open(2, 1, "vmm.save", 4)),
                (0, open(3, 2, "storage.write", 999)),
                (2 * S, close(3)),
                (2 * S, close(2)),
                (3 * S, close(1)),
                (3 * S, finished(1, true)),
            ],
        );
        let r = &p.rounds()[0];
        assert_eq!(r.phases.len(), 2);
        let h = p.phase_histograms();
        assert_eq!(h["storage.write"].len(), 1);
        assert!((h["vmm.save"].clone().max() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn retries_and_ctrl_losses_land_on_the_active_round_only() {
        let mut p = PhaseAttribution::new(SimDuration::from_secs(3));
        sink_feed(
            &mut p,
            &[
                (
                    0,
                    Event::Storage(StorageEvent::TransferRetry {
                        attempt: 1,
                        max_attempts: 4,
                        bytes: 10,
                        backoff: SimDuration::ZERO,
                    }),
                ),
                (S, open(1, 0, "lsc.round", 2)),
                (S, Event::Fault(FaultEvent::CtrlDropped { node: 3 })),
                (2 * S, close(1)),
                (2 * S, finished(2, true)),
                (3 * S, Event::Fault(FaultEvent::CtrlDropped { node: 3 })),
            ],
        );
        let r = &p.rounds()[0];
        assert_eq!(r.ctrl_losses, 1);
        assert_eq!(r.storage_retries, 0);
    }

    #[test]
    fn restore_spans_float_free_and_merge_concatenates() {
        let mut a = PhaseAttribution::new(SimDuration::from_secs(3));
        sink_feed(
            &mut a,
            &[
                (0, open(1, 0, "lsc.restore", 0)),
                (0, open(2, 1, "storage.stage", 5)),
                (S, close(2)),
                (2 * S, close(1)),
            ],
        );
        assert_eq!(a.free_phases().len(), 2);
        assert!(a.rounds().is_empty());

        let mut b = PhaseAttribution::new(SimDuration::from_secs(3));
        sink_feed(
            &mut b,
            &[
                (0, open(1, 0, "lsc.round", 1)),
                (S, fired(1)),
                (S, window(1, true)),
                (2 * S, close(1)),
                (2 * S, finished(1, true)),
            ],
        );
        a.merge(&b);
        assert_eq!(a.rounds().len(), 1);
        assert_eq!(a.margin_hist().len(), 1);
    }
}
