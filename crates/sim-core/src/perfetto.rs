//! Chrome-trace / Perfetto JSON export of the causal span stream.
//!
//! [`PerfettoTrace`] is an [`EventSink`] that records every span and
//! renders the closed ones as Chrome-trace "X" (complete) events —
//! loadable in `ui.perfetto.dev` or `chrome://tracing`. Each causal tree
//! gets its own track (`tid` = the root span's id, named after the root),
//! so one checkpoint round's dispatch fan-out, VMM saves, storage writes
//! and ack collection stack up visually under the round that caused them.
//!
//! The format is hand-rolled: every value is numeric or a registry name
//! (see [`crate::span::SPAN_NAMES`]), so no escaping machinery is needed.

use crate::event::{Event, SpanEvent};
use crate::sim::EventSink;
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write;

#[derive(Clone, Copy, Debug)]
struct OpenSpan {
    parent: u64,
    name: &'static str,
    arg: u64,
    start: SimTime,
    root: u64,
}

#[derive(Clone, Copy, Debug)]
struct DoneSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    arg: u64,
    start: SimTime,
    end: SimTime,
    root: u64,
}

/// Collects spans and renders Chrome-trace JSON. See the module docs.
#[derive(Debug, Default)]
pub struct PerfettoTrace {
    open: BTreeMap<u64, OpenSpan>,
    done: Vec<DoneSpan>,
    /// Root span id → (name, arg), for track naming.
    roots: BTreeMap<u64, (&'static str, u64)>,
    /// Closes that matched no open span (malformed input stream).
    pub unmatched_closes: u64,
}

impl PerfettoTrace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Spans closed and ready for export.
    pub fn span_count(&self) -> usize {
        self.done.len()
    }

    /// Spans still open — nonzero at end of run means the stream was
    /// truncated; they are not exported.
    pub fn unclosed(&self) -> usize {
        self.open.len()
    }

    /// Render the collected spans as one Chrome-trace JSON document.
    /// Timestamps are microseconds (the format's unit), durations too.
    pub fn to_json(&self) -> String {
        let us = |t: SimTime| t.nanos() as f64 / 1000.0;
        let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        for (root, (name, arg)) in &self.roots {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{root},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name} {arg}\"}}}}"
            );
        }
        for d in &self.done {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                 \"name\":\"{}\",\"args\":{{\"id\":{},\"parent\":{},\"arg\":{}}}}}",
                d.root,
                us(d.start),
                us(d.end) - us(d.start),
                d.name,
                d.id,
                d.parent,
                d.arg
            );
        }
        s.push_str("\n]}\n");
        s
    }
}

impl EventSink for PerfettoTrace {
    fn on_event(&mut self, time: SimTime, event: &Event) {
        let Event::Span(se) = event else { return };
        match *se {
            SpanEvent::Open {
                id,
                parent,
                name,
                arg,
            } => {
                let root = if parent == 0 {
                    self.roots.insert(id, (name, arg));
                    id
                } else {
                    self.open.get(&parent).map(|p| p.root).unwrap_or(id)
                };
                self.open.insert(
                    id,
                    OpenSpan {
                        parent,
                        name,
                        arg,
                        start: time,
                        root,
                    },
                );
            }
            SpanEvent::Close { id } => match self.open.remove(&id) {
                Some(o) => self.done.push(DoneSpan {
                    id,
                    parent: o.parent,
                    name: o.name,
                    arg: o.arg,
                    start: o.start,
                    end: time,
                    root: o.root,
                }),
                None => self.unmatched_closes += 1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_share_their_roots_track() {
        let mut p = PerfettoTrace::new();
        let evs = [
            (
                0,
                SpanEvent::Open {
                    id: 1,
                    parent: 0,
                    name: "lsc.round",
                    arg: 3,
                },
            ),
            (
                1_000,
                SpanEvent::Open {
                    id: 2,
                    parent: 1,
                    name: "vmm.save",
                    arg: 0,
                },
            ),
            (2_000, SpanEvent::Close { id: 2 }),
            (3_000, SpanEvent::Close { id: 1 }),
        ];
        for (t, e) in evs {
            p.on_event(SimTime(t), &Event::Span(e));
        }
        assert_eq!(p.span_count(), 2);
        assert_eq!(p.unclosed(), 0);
        let json = p.to_json();
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"lsc.round 3\""));
        // both X events sit on the round's track (tid 1)
        assert_eq!(json.matches("\"ph\":\"X\",\"pid\":1,\"tid\":1,").count(), 2);
        assert!(json.contains("\"ts\":1.000,\"dur\":1.000,\"name\":\"vmm.save\""));
    }

    #[test]
    fn unclosed_spans_are_counted_not_exported() {
        let mut p = PerfettoTrace::new();
        p.on_event(
            SimTime(0),
            &Event::Span(SpanEvent::Open {
                id: 1,
                parent: 0,
                name: "lsc.round",
                arg: 0,
            }),
        );
        p.on_event(SimTime(1), &Event::Span(SpanEvent::Close { id: 9 }));
        assert_eq!(p.span_count(), 0);
        assert_eq!(p.unclosed(), 1);
        assert_eq!(p.unmatched_closes, 1);
    }
}
