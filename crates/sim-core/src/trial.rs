//! Data-parallel campaign runner.
//!
//! Experiment campaigns (e.g. the paper's ">2000 checkpoint tests") run many
//! *independent, single-threaded, seeded* simulations. This module fans the
//! trials out across OS threads with a shared atomic work index — the
//! simplest correct work-distribution scheme, and the right one here because
//! trials are coarse-grained (milliseconds to seconds each) so stealing
//! granularity doesn't matter.
//!
//! Results stream back over a channel and are reassembled **in trial order**,
//! so campaign output is identical whatever the thread count — determinism
//! survives parallelism.

use crate::trace::TraceStats;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Aggregated trace accounting for a whole campaign: per-category event
/// totals plus how many records fell out of the bounded rings. Experiments
/// fold one [`TraceStats`] per trial into this and print it under the
/// results table, so fault-injection volume (and any trace loss) is visible
/// alongside the outcomes it produced.
#[derive(Clone, Debug, Default)]
pub struct CampaignSummary {
    pub trials: usize,
    pub dropped: u64,
    pub by_category: BTreeMap<&'static str, u64>,
}

impl CampaignSummary {
    pub fn absorb(&mut self, stats: &TraceStats) {
        self.trials += 1;
        self.dropped += stats.dropped;
        for (&cat, &n) in &stats.by_category {
            *self.by_category.entry(cat).or_insert(0) += n;
        }
    }

    pub fn total_events(&self) -> u64 {
        self.by_category.values().sum()
    }

    /// An explicit warning line when the bounded trace rings evicted
    /// records during the campaign — per-category counts above are still
    /// exact (eviction drops retained records, not accounting), but any
    /// per-record forensics would be working from an incomplete ring.
    pub fn dropped_warning(&self) -> Option<String> {
        (self.dropped > 0).then(|| {
            format!(
                "warning: trace rings evicted {} record(s) across {} trials; \
                 raise `Trace` capacity or narrow its categories for full-fidelity rings",
                self.dropped, self.trials
            )
        })
    }
}

impl fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace: {} events across {} trials",
            self.total_events(),
            self.trials
        )?;
        if !self.by_category.is_empty() {
            write!(f, " (")?;
            for (i, (cat, n)) in self.by_category.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{cat}: {n}")?;
            }
            write!(f, ")")?;
        }
        if self.dropped > 0 {
            write!(f, "; {} records dropped by ring bound", self.dropped)?;
        }
        Ok(())
    }
}

/// Run `f(trial_index, seed)` for `n_trials` trials in parallel, deriving the
/// seed of trial *i* as `splitmix64(master_seed ⊕ splitmix64(i))`.
///
/// Returns results indexed by trial number (order-independent of threading).
pub fn run_trials<T, F>(n_trials: usize, master_seed: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n_trials.max(1)) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_trials {
                    break;
                }
                let seed = crate::rng::splitmix64(master_seed ^ crate::rng::splitmix64(i as u64));
                let out = f(i, seed);
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<T>> = Vec::with_capacity(n_trials);
        slots.resize_with(n_trials, || None);
        for (i, out) in rx {
            slots[i] = Some(out);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("trial {i} produced no result")))
            .collect()
    })
}

/// A sensible default worker count: available parallelism, capped at 16
/// (campaign trials are memory-bandwidth-bound; more threads stop helping).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(64, 9, 8, |i, _seed| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_are_thread_count_independent() {
        let a = run_trials(32, 123, 1, |_i, seed| seed);
        let b = run_trials(32, 123, 8, |_i, seed| seed);
        assert_eq!(a, b);
        // and distinct per trial
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len());
    }

    #[test]
    fn campaign_summary_aggregates_trace_stats() {
        use crate::trace::Trace;
        let stats: Vec<TraceStats> = run_trials(6, 11, 3, |i, _seed| {
            let mut t = Trace::enabled(2);
            for k in 0..=i as u64 {
                t.emit(crate::time::SimTime(k), "fault", format!("f{k}"));
            }
            t.emit(crate::time::SimTime(0), "lsc", "x".into());
            t.stats()
        });
        let mut summary = CampaignSummary::default();
        for s in &stats {
            summary.absorb(s);
        }
        assert_eq!(summary.trials, 6);
        // 1+2+3+4+5+6 fault emits, 6 lsc emits.
        assert_eq!(summary.by_category.get("fault"), Some(&21));
        assert_eq!(summary.by_category.get("lsc"), Some(&6));
        assert_eq!(summary.total_events(), 27);
        // ring capacity 2 → later trials dropped records, and we can see it
        assert!(summary.dropped > 0);
        let text = summary.to_string();
        assert!(text.contains("fault: 21"), "{text}");
        assert!(text.contains("dropped"), "{text}");
        let warn = summary.dropped_warning().expect("rings evicted records");
        assert!(warn.contains("evicted"), "{warn}");
        assert_eq!(CampaignSummary::default().dropped_warning(), None);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(0, 1, 4, |_, s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_works() {
        let out = run_trials(5, 7, 1, |i, _| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_trials_actually_run_concurrently_safe() {
        // Hammer with enough trials to exercise contention on the index.
        let out = run_trials(1000, 5, default_threads(), |i, seed| (i, seed));
        for (i, (ti, _)) in out.iter().enumerate() {
            assert_eq!(i, *ti);
        }
    }
}
