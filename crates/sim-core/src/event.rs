//! Typed observability events — the structured spine behind the string trace.
//!
//! Every model layer emits [`Event`]s through [`crate::Sim::emit`] instead of
//! formatting strings at the call site. One emission fans out three ways:
//!
//! * the [`crate::Metrics`] registry counts the event by [`Event::key`] and
//!   feeds its measurement (if any) into a log-scale histogram;
//! * the legacy string [`crate::trace::Trace`] receives the [`std::fmt::Display`]
//!   rendering — but **only** for events that were traced before the spine
//!   existed ([`Event::trace_category`] returns `Some`), so ring contents,
//!   category counts and campaign summaries are byte-identical to the
//!   `sim_trace!` era;
//! * every attached [`crate::EventSink`] observes the typed value, which is
//!   how invariant checkers and exporters subscribe without the emitting
//!   layer knowing.
//!
//! Identifiers are deliberately raw integers (`vm`/`node`/`vc` as `u32`,
//! `run`/`set`/`job` as `u64`): `dvc-sim-core` sits below the crates that
//! define `VmId`/`NodeId`/`VcId`, and the spine must not invert the crate
//! DAG. The `Display` impl re-creates the upper layers' debug renderings
//! (`VmId(2)`, `NodeId(3)`, `p4`…) where the legacy trace used them.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A structured observability event. See the module docs for routing.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    Tcp(TcpEvent),
    Vmm(VmmEvent),
    Lsc(LscEvent),
    Rm(RmEvent),
    Storage(StorageEvent),
    Fault(FaultEvent),
    Ntp(NtpEvent),
    Mpi(MpiEvent),
    Span(SpanEvent),
}

/// Causal span boundaries (see [`crate::span`]). `name` always comes from
/// the [`crate::span::SPAN_NAMES`] registry; `parent` is 0 for roots.
/// Emitted only via [`crate::Sim::open_span`] / [`crate::Sim::close_span`],
/// which short-circuit to nothing when no sink is attached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanEvent {
    Open {
        id: u64,
        parent: u64,
        name: &'static str,
        /// Span-specific payload: the member/vm index for per-node spans,
        /// the run id for `lsc.round`, bytes for storage spans.
        arg: u64,
    },
    Close {
        id: u64,
    },
}

/// Transport anomalies, surfaced from the per-guest TCP stacks when the
/// host layer drains them. `ep` is the emitting endpoint: a `VmId` index in
/// cluster worlds, a host index in net-level test worlds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpEvent {
    Retransmit {
        ep: u32,
    },
    FastRetransmit {
        ep: u32,
    },
    /// A retransmission timer expired (RTO backoff round).
    RtoFired {
        ep: u32,
    },
    ZeroWindowProbe {
        ep: u32,
    },
    KeepaliveProbe {
        ep: u32,
    },
    ConnAborted {
        ep: u32,
    },
}

/// Hypervisor-side lifecycle events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmmEvent {
    SnapshotBegin {
        vm: u32,
    },
    SnapshotEnd {
        vm: u32,
        bytes: u64,
    },
    /// Dirty-page census at snapshot time (before the dirty set resets).
    PagesDirty {
        vm: u32,
        dirty: u64,
        total: u64,
    },
    /// Live migration entered its stop-and-copy cutover for this VM.
    MigrateCutover {
        vm: u32,
    },
}

/// Coordinated-checkpoint (LSC) lifecycle events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LscEvent {
    /// The coordinator dispatched a save arm to one member.
    ArmSent { run: u64, vc: u32, member: u32 },
    /// A member's guest actually paused and its image was captured.
    SaveFired {
        run: u64,
        vc: u32,
        member: u32,
        vm: u32,
    },
    /// A member's save resolved (image persisted or definitively lost).
    SaveAcked {
        run: u64,
        vc: u32,
        member: u32,
        ok: bool,
    },
    /// Legacy `"lsc"` trace: a stored image failed checksum; re-saving.
    ChecksumResave { vm: u32, attempt: u32 },
    /// Legacy `"lsc"` trace: retries exhausted, the image stays corrupt.
    ChecksumGiveUp { vm: u32, retries: u32 },
    /// Legacy `"lsc"` trace: the save phase failed; members resume unsaved.
    SavePhaseFailed,
    /// The save window closed: every member resolved. `skew` is the spread
    /// of the members' pause instants; `stored` whether a set was kept.
    WindowClosed {
        run: u64,
        vc: u32,
        skew: SimDuration,
        stored: bool,
    },
    /// A checkpoint set entered the store.
    SetStored {
        vc: u32,
        set: u64,
        skew: SimDuration,
    },
    /// A hardened coordinator aborted the attempt pre-fire and re-armed.
    AbortReArm { run: u64, vc: u32, attempt: u32 },
    /// The whole run (save + resume) finished.
    RunFinished { run: u64, vc: u32, success: bool },
}

/// Resource-manager and node-liveness events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RmEvent {
    JobQueued {
        job: u64,
    },
    JobStarted {
        job: u64,
        nodes: Vec<u32>,
    },
    JobCompleted {
        job: u64,
        success: bool,
    },
    /// EASY backfill computed the blocked head job's shadow time.
    BackfillReservation {
        head_job: u64,
        shadow: SimTime,
    },
    /// A queued job was started out of order by backfill.
    BackfillStarted {
        job: u64,
    },
    NodeDown {
        node: u32,
    },
    NodeUp {
        node: u32,
    },
}

/// Shared-storage data-path events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageEvent {
    /// Legacy `"fault"` trace: a transfer failed terminally.
    TransferFailed { bytes: u64 },
    /// Legacy `"fault"` trace: a failed transfer is being retried.
    TransferRetry {
        attempt: u32,
        max_attempts: u32,
        bytes: u64,
        backoff: SimDuration,
    },
    /// Legacy `"fault"` trace: a checkpoint image was lost to storage.
    SaveLost { vm: u32 },
    /// Legacy `"fault"` trace: a stored image was silently corrupted.
    ChecksumFail { vm: u32 },
}

/// Fault-plane events (injections and environment boundary crossings).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// A seeded fault fired; `what` is the fault-plan kind key.
    Injected { what: &'static str },
    /// Legacy `"fault"` trace: storage brownout window opened.
    BrownoutBegin { factor: f64 },
    /// Legacy `"fault"` trace: storage brownout window closed.
    BrownoutEnd,
    /// Legacy `"fault"` trace: a host clock was stepped.
    ClockStep { node: u32, step_s: f64 },
    /// Legacy `"fault"` trace: a control message was dropped.
    CtrlDropped { node: u32 },
    /// Legacy `"fault"` trace: a control message was lost to a partition
    /// (`in_flight` distinguishes the loss at send vs. in transit).
    CtrlPartitioned { node: u32, in_flight: bool },
}

/// Time-synchronisation events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NtpEvent {
    /// Legacy `"fault"` trace: an NTP request was consumed by a server
    /// outage. `phys` selects the `p{host}`/`v{host}` address family.
    Unanswered { phys: bool, host: u32 },
    /// Legacy `"rel"` trace: sync too stale, degrading to clock-free.
    SyncStale { vc: u32 },
}

/// MPI harness events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpiEvent {
    JobLaunched { ranks: u32 },
}

impl Event {
    /// Stable dotted taxonomy key (`"layer.event"`) used to name metrics
    /// counters and JSONL records.
    pub fn key(&self) -> &'static str {
        match self {
            Event::Tcp(e) => match e {
                TcpEvent::Retransmit { .. } => "tcp.retransmit",
                TcpEvent::FastRetransmit { .. } => "tcp.fast_retransmit",
                TcpEvent::RtoFired { .. } => "tcp.rto_fired",
                TcpEvent::ZeroWindowProbe { .. } => "tcp.zero_window_probe",
                TcpEvent::KeepaliveProbe { .. } => "tcp.keepalive_probe",
                TcpEvent::ConnAborted { .. } => "tcp.conn_aborted",
            },
            Event::Vmm(e) => match e {
                VmmEvent::SnapshotBegin { .. } => "vmm.snapshot_begin",
                VmmEvent::SnapshotEnd { .. } => "vmm.snapshot_end",
                VmmEvent::PagesDirty { .. } => "vmm.pages_dirty",
                VmmEvent::MigrateCutover { .. } => "vmm.migrate_cutover",
            },
            Event::Lsc(e) => match e {
                LscEvent::ArmSent { .. } => "lsc.arm_sent",
                LscEvent::SaveFired { .. } => "lsc.save_fired",
                LscEvent::SaveAcked { .. } => "lsc.save_acked",
                LscEvent::ChecksumResave { .. } => "lsc.checksum_resave",
                LscEvent::ChecksumGiveUp { .. } => "lsc.checksum_give_up",
                LscEvent::SavePhaseFailed => "lsc.save_phase_failed",
                LscEvent::WindowClosed { .. } => "lsc.window_closed",
                LscEvent::SetStored { .. } => "lsc.set_stored",
                LscEvent::AbortReArm { .. } => "lsc.abort_rearm",
                LscEvent::RunFinished { .. } => "lsc.run_finished",
            },
            Event::Rm(e) => match e {
                RmEvent::JobQueued { .. } => "rm.job_queued",
                RmEvent::JobStarted { .. } => "rm.job_started",
                RmEvent::JobCompleted { .. } => "rm.job_completed",
                RmEvent::BackfillReservation { .. } => "rm.backfill_reservation",
                RmEvent::BackfillStarted { .. } => "rm.backfill_started",
                RmEvent::NodeDown { .. } => "rm.node_down",
                RmEvent::NodeUp { .. } => "rm.node_up",
            },
            Event::Storage(e) => match e {
                StorageEvent::TransferFailed { .. } => "storage.transfer_failed",
                StorageEvent::TransferRetry { .. } => "storage.transfer_retry",
                StorageEvent::SaveLost { .. } => "storage.save_lost",
                StorageEvent::ChecksumFail { .. } => "storage.checksum_fail",
            },
            Event::Fault(e) => match e {
                FaultEvent::Injected { .. } => "fault.injected",
                FaultEvent::BrownoutBegin { .. } => "fault.brownout_begin",
                FaultEvent::BrownoutEnd => "fault.brownout_end",
                FaultEvent::ClockStep { .. } => "fault.clock_step",
                FaultEvent::CtrlDropped { .. } => "fault.ctrl_dropped",
                FaultEvent::CtrlPartitioned { .. } => "fault.ctrl_partitioned",
            },
            Event::Ntp(e) => match e {
                NtpEvent::Unanswered { .. } => "ntp.unanswered",
                NtpEvent::SyncStale { .. } => "ntp.sync_stale",
            },
            Event::Mpi(e) => match e {
                MpiEvent::JobLaunched { .. } => "mpi.job_launched",
            },
            Event::Span(e) => match e {
                SpanEvent::Open { .. } => "span.open",
                SpanEvent::Close { .. } => "span.close",
            },
        }
    }

    /// The legacy string-trace category this event used to be emitted under,
    /// or `None` for events born typed. Routing only `Some` events into
    /// [`crate::trace::Trace`] keeps ring contents and campaign summaries
    /// byte-identical to the `sim_trace!` era.
    pub fn trace_category(&self) -> Option<&'static str> {
        match self {
            Event::Storage(_) => Some("fault"),
            Event::Fault(FaultEvent::Injected { .. }) => None,
            Event::Fault(_) => Some("fault"),
            Event::Ntp(NtpEvent::Unanswered { .. }) => Some("fault"),
            Event::Ntp(NtpEvent::SyncStale { .. }) => Some("rel"),
            Event::Lsc(
                LscEvent::ChecksumResave { .. }
                | LscEvent::ChecksumGiveUp { .. }
                | LscEvent::SavePhaseFailed,
            ) => Some("lsc"),
            _ => None,
        }
    }

    /// The measurement this event contributes to a log-scale histogram, if
    /// any: `(histogram key, value)`.
    pub fn measure(&self) -> Option<(&'static str, f64)> {
        match self {
            Event::Vmm(VmmEvent::SnapshotEnd { bytes, .. }) => {
                Some(("vmm.snapshot_bytes", *bytes as f64))
            }
            Event::Vmm(VmmEvent::PagesDirty { dirty, .. }) => {
                Some(("vmm.dirty_pages", *dirty as f64))
            }
            Event::Lsc(LscEvent::WindowClosed { skew, .. }) => {
                Some(("lsc.pause_skew_ns", skew.nanos() as f64))
            }
            Event::Storage(StorageEvent::TransferRetry { backoff, .. }) => {
                Some(("storage.retry_backoff_ns", backoff.nanos() as f64))
            }
            _ => None,
        }
    }

    /// One JSONL record for this event: `{"t":…,"key":…,fields…}`. Field
    /// names mirror the variant fields; no escaping is needed because every
    /// serialized value is numeric or a static identifier.
    pub fn jsonl(&self, t: SimTime) -> String {
        use std::fmt::Write;
        let mut s = format!("{{\"t\":{},\"key\":\"{}\"", t.nanos(), self.key());
        match self {
            Event::Tcp(
                TcpEvent::Retransmit { ep }
                | TcpEvent::FastRetransmit { ep }
                | TcpEvent::RtoFired { ep }
                | TcpEvent::ZeroWindowProbe { ep }
                | TcpEvent::KeepaliveProbe { ep }
                | TcpEvent::ConnAborted { ep },
            ) => {
                let _ = write!(s, ",\"ep\":{ep}");
            }
            Event::Vmm(e) => match e {
                VmmEvent::SnapshotBegin { vm } | VmmEvent::MigrateCutover { vm } => {
                    let _ = write!(s, ",\"vm\":{vm}");
                }
                VmmEvent::SnapshotEnd { vm, bytes } => {
                    let _ = write!(s, ",\"vm\":{vm},\"bytes\":{bytes}");
                }
                VmmEvent::PagesDirty { vm, dirty, total } => {
                    let _ = write!(s, ",\"vm\":{vm},\"dirty\":{dirty},\"total\":{total}");
                }
            },
            Event::Lsc(e) => match e {
                LscEvent::ArmSent { run, vc, member } => {
                    let _ = write!(s, ",\"run\":{run},\"vc\":{vc},\"member\":{member}");
                }
                LscEvent::SaveFired {
                    run,
                    vc,
                    member,
                    vm,
                } => {
                    let _ = write!(
                        s,
                        ",\"run\":{run},\"vc\":{vc},\"member\":{member},\"vm\":{vm}"
                    );
                }
                LscEvent::SaveAcked {
                    run,
                    vc,
                    member,
                    ok,
                } => {
                    let _ = write!(
                        s,
                        ",\"run\":{run},\"vc\":{vc},\"member\":{member},\"ok\":{ok}"
                    );
                }
                LscEvent::ChecksumResave { vm, attempt } => {
                    let _ = write!(s, ",\"vm\":{vm},\"attempt\":{attempt}");
                }
                LscEvent::ChecksumGiveUp { vm, retries } => {
                    let _ = write!(s, ",\"vm\":{vm},\"retries\":{retries}");
                }
                LscEvent::SavePhaseFailed => {}
                LscEvent::WindowClosed {
                    run,
                    vc,
                    skew,
                    stored,
                } => {
                    let _ = write!(
                        s,
                        ",\"run\":{run},\"vc\":{vc},\"skew_ns\":{},\"stored\":{stored}",
                        skew.nanos()
                    );
                }
                LscEvent::SetStored { vc, set, skew } => {
                    let _ = write!(s, ",\"vc\":{vc},\"set\":{set},\"skew_ns\":{}", skew.nanos());
                }
                LscEvent::AbortReArm { run, vc, attempt } => {
                    let _ = write!(s, ",\"run\":{run},\"vc\":{vc},\"attempt\":{attempt}");
                }
                LscEvent::RunFinished { run, vc, success } => {
                    let _ = write!(s, ",\"run\":{run},\"vc\":{vc},\"success\":{success}");
                }
            },
            Event::Rm(e) => match e {
                RmEvent::JobQueued { job } | RmEvent::BackfillStarted { job } => {
                    let _ = write!(s, ",\"job\":{job}");
                }
                RmEvent::JobStarted { job, nodes } => {
                    let _ = write!(s, ",\"job\":{job},\"nodes\":[");
                    for (i, n) in nodes.iter().enumerate() {
                        let _ = write!(s, "{}{n}", if i > 0 { "," } else { "" });
                    }
                    s.push(']');
                }
                RmEvent::JobCompleted { job, success } => {
                    let _ = write!(s, ",\"job\":{job},\"success\":{success}");
                }
                RmEvent::BackfillReservation { head_job, shadow } => {
                    let _ = write!(s, ",\"head_job\":{head_job},\"shadow\":{}", shadow.nanos());
                }
                RmEvent::NodeDown { node } | RmEvent::NodeUp { node } => {
                    let _ = write!(s, ",\"node\":{node}");
                }
            },
            Event::Storage(e) => match e {
                StorageEvent::TransferFailed { bytes } => {
                    let _ = write!(s, ",\"bytes\":{bytes}");
                }
                StorageEvent::TransferRetry {
                    attempt,
                    max_attempts,
                    bytes,
                    backoff,
                } => {
                    let _ = write!(
                        s,
                        ",\"attempt\":{attempt},\"max\":{max_attempts},\"bytes\":{bytes},\"backoff_ns\":{}",
                        backoff.nanos()
                    );
                }
                StorageEvent::SaveLost { vm } | StorageEvent::ChecksumFail { vm } => {
                    let _ = write!(s, ",\"vm\":{vm}");
                }
            },
            Event::Fault(e) => match e {
                FaultEvent::Injected { what } => {
                    let _ = write!(s, ",\"what\":\"{what}\"");
                }
                FaultEvent::BrownoutBegin { factor } => {
                    let _ = write!(s, ",\"factor\":{factor}");
                }
                FaultEvent::BrownoutEnd => {}
                FaultEvent::ClockStep { node, step_s } => {
                    let _ = write!(s, ",\"node\":{node},\"step_s\":{step_s}");
                }
                FaultEvent::CtrlDropped { node } => {
                    let _ = write!(s, ",\"node\":{node}");
                }
                FaultEvent::CtrlPartitioned { node, in_flight } => {
                    let _ = write!(s, ",\"node\":{node},\"in_flight\":{in_flight}");
                }
            },
            Event::Ntp(e) => match e {
                NtpEvent::Unanswered { phys, host } => {
                    let _ = write!(s, ",\"src\":\"{}{host}\"", if *phys { 'p' } else { 'v' });
                }
                NtpEvent::SyncStale { vc } => {
                    let _ = write!(s, ",\"vc\":{vc}");
                }
            },
            Event::Mpi(MpiEvent::JobLaunched { ranks }) => {
                let _ = write!(s, ",\"ranks\":{ranks}");
            }
            Event::Span(e) => match e {
                SpanEvent::Open {
                    id,
                    parent,
                    name,
                    arg,
                } => {
                    let _ = write!(
                        s,
                        ",\"id\":{id},\"parent\":{parent},\"name\":\"{name}\",\"arg\":{arg}"
                    );
                }
                SpanEvent::Close { id } => {
                    let _ = write!(s, ",\"id\":{id}");
                }
            },
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Event {
    /// Human-readable rendering. For every variant with a `trace_category`,
    /// this reproduces the legacy `sim_trace!` format string byte-for-byte
    /// (including upper-layer debug forms like `VmId(2)` / `NodeId(3)` /
    /// `p4`), so echoed traces and trace-derived digests are unchanged.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Tcp(e) => match e {
                TcpEvent::Retransmit { ep } => write!(f, "tcp retransmit on ep{ep}"),
                TcpEvent::FastRetransmit { ep } => write!(f, "tcp fast retransmit on ep{ep}"),
                TcpEvent::RtoFired { ep } => write!(f, "tcp rto fired on ep{ep}"),
                TcpEvent::ZeroWindowProbe { ep } => write!(f, "tcp zero-window probe on ep{ep}"),
                TcpEvent::KeepaliveProbe { ep } => write!(f, "tcp keepalive probe on ep{ep}"),
                TcpEvent::ConnAborted { ep } => write!(f, "tcp connection aborted on ep{ep}"),
            },
            Event::Vmm(e) => match e {
                VmmEvent::SnapshotBegin { vm } => write!(f, "snapshot of VmId({vm}) begins"),
                VmmEvent::SnapshotEnd { vm, bytes } => {
                    write!(f, "snapshot of VmId({vm}) captured {bytes} B")
                }
                VmmEvent::PagesDirty { vm, dirty, total } => {
                    write!(f, "VmId({vm}) has {dirty}/{total} pages dirty")
                }
                VmmEvent::MigrateCutover { vm } => {
                    write!(f, "live migration cutover of VmId({vm})")
                }
            },
            Event::Lsc(e) => match e {
                LscEvent::ArmSent { run, vc, member } => {
                    write!(f, "run {run}: arm sent to member {member} of VcId({vc})")
                }
                LscEvent::SaveFired {
                    run,
                    vc,
                    member,
                    vm,
                } => write!(
                    f,
                    "run {run}: save fired for member {member} (VmId({vm})) of VcId({vc})"
                ),
                LscEvent::SaveAcked {
                    run,
                    vc,
                    member,
                    ok,
                } => write!(
                    f,
                    "run {run}: save of member {member} of VcId({vc}) acked (ok={ok})"
                ),
                LscEvent::ChecksumResave { vm, attempt } => write!(
                    f,
                    "image of VmId({vm}) failed checksum; re-saving (attempt {attempt})"
                ),
                LscEvent::ChecksumGiveUp { vm, retries } => write!(
                    f,
                    "image of VmId({vm}) still corrupt after {retries} re-saves; giving up"
                ),
                LscEvent::SavePhaseFailed => {
                    write!(
                        f,
                        "save phase failed; resuming members without storing a set"
                    )
                }
                LscEvent::WindowClosed {
                    run,
                    vc,
                    skew,
                    stored,
                } => write!(
                    f,
                    "run {run}: save window of VcId({vc}) closed, skew {skew}, stored={stored}"
                ),
                LscEvent::SetStored { vc, set, skew } => {
                    write!(f, "set {set} of VcId({vc}) stored, pause skew {skew}")
                }
                LscEvent::AbortReArm { run, vc, attempt } => write!(
                    f,
                    "run {run}: attempt {attempt} on VcId({vc}) aborted; re-arming"
                ),
                LscEvent::RunFinished { run, vc, success } => {
                    write!(f, "run {run} on VcId({vc}) finished (success={success})")
                }
            },
            Event::Rm(e) => match e {
                RmEvent::JobQueued { job } => write!(f, "job {job} queued"),
                RmEvent::JobStarted { job, nodes } => {
                    write!(f, "job {job} started on {} nodes", nodes.len())
                }
                RmEvent::JobCompleted { job, success } => {
                    write!(f, "job {job} completed (success={success})")
                }
                RmEvent::BackfillReservation { head_job, shadow } => {
                    write!(
                        f,
                        "backfill reservation for head job {head_job} at {shadow}"
                    )
                }
                RmEvent::BackfillStarted { job } => write!(f, "job {job} backfilled"),
                RmEvent::NodeDown { node } => write!(f, "NodeId({node}) down"),
                RmEvent::NodeUp { node } => write!(f, "NodeId({node}) up"),
            },
            Event::Storage(e) => match e {
                StorageEvent::TransferFailed { bytes } => {
                    write!(f, "storage transfer of {bytes} B failed")
                }
                StorageEvent::TransferRetry {
                    attempt,
                    max_attempts,
                    bytes,
                    backoff,
                } => write!(
                    f,
                    "storage retry {attempt}/{max_attempts} for {bytes} B after {backoff}"
                ),
                StorageEvent::SaveLost { vm } => {
                    write!(f, "save of VmId({vm}) lost to storage failure")
                }
                StorageEvent::ChecksumFail { vm } => {
                    write!(f, "stored image of VmId({vm}) silently corrupted")
                }
            },
            Event::Fault(e) => match e {
                FaultEvent::Injected { what } => write!(f, "fault injected: {what}"),
                FaultEvent::BrownoutBegin { factor } => {
                    write!(f, "storage brownout begins: ×{factor:.2}")
                }
                FaultEvent::BrownoutEnd => write!(f, "storage brownout ends"),
                FaultEvent::ClockStep { node, step_s } => {
                    write!(f, "clock on NodeId({node}) stepped by {step_s:+.3} s")
                }
                FaultEvent::CtrlDropped { node } => {
                    write!(f, "control msg to NodeId({node}) dropped")
                }
                FaultEvent::CtrlPartitioned { node, in_flight } => {
                    if *in_flight {
                        write!(f, "control msg to NodeId({node}) lost in flight: partition")
                    } else {
                        write!(f, "control msg to NodeId({node}) lost: partition")
                    }
                }
            },
            Event::Ntp(e) => match e {
                NtpEvent::Unanswered { phys, host } => write!(
                    f,
                    "ntp request from {}{host} unanswered: outage",
                    if *phys { 'p' } else { 'v' }
                ),
                NtpEvent::SyncStale { vc } => {
                    write!(f, "VcId({vc}): NTP sync stale, clock-free checkpoint")
                }
            },
            Event::Mpi(MpiEvent::JobLaunched { ranks }) => {
                write!(f, "mpi job launched with {ranks} ranks")
            }
            Event::Span(e) => match e {
                SpanEvent::Open {
                    id,
                    parent,
                    name,
                    arg,
                } => write!(f, "span {id} ({name}, arg {arg}) opened under {parent}"),
                SpanEvent::Close { id } => write!(f, "span {id} closed"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_trace_strings_are_byte_identical() {
        // These literals are the exact `sim_trace!` format results the spine
        // replaced; consumers (echo logs, trace digests) depend on them.
        let cases: Vec<(Event, &str, &str)> = vec![
            (
                Event::Fault(FaultEvent::CtrlPartitioned {
                    node: 3,
                    in_flight: false,
                }),
                "control msg to NodeId(3) lost: partition",
                "fault",
            ),
            (
                Event::Fault(FaultEvent::CtrlPartitioned {
                    node: 3,
                    in_flight: true,
                }),
                "control msg to NodeId(3) lost in flight: partition",
                "fault",
            ),
            (
                Event::Fault(FaultEvent::CtrlDropped { node: 7 }),
                "control msg to NodeId(7) dropped",
                "fault",
            ),
            (
                Event::Storage(StorageEvent::TransferFailed { bytes: 1024 }),
                "storage transfer of 1024 B failed",
                "fault",
            ),
            (
                Event::Storage(StorageEvent::SaveLost { vm: 2 }),
                "save of VmId(2) lost to storage failure",
                "fault",
            ),
            (
                Event::Storage(StorageEvent::ChecksumFail { vm: 2 }),
                "stored image of VmId(2) silently corrupted",
                "fault",
            ),
            (
                Event::Fault(FaultEvent::BrownoutBegin { factor: 0.3 }),
                "storage brownout begins: ×0.30",
                "fault",
            ),
            (
                Event::Fault(FaultEvent::BrownoutEnd),
                "storage brownout ends",
                "fault",
            ),
            (
                Event::Fault(FaultEvent::ClockStep {
                    node: 2,
                    step_s: 6.0,
                }),
                "clock on NodeId(2) stepped by +6.000 s",
                "fault",
            ),
            (
                Event::Ntp(NtpEvent::Unanswered {
                    phys: true,
                    host: 4,
                }),
                "ntp request from p4 unanswered: outage",
                "fault",
            ),
            (
                Event::Lsc(LscEvent::ChecksumResave { vm: 5, attempt: 1 }),
                "image of VmId(5) failed checksum; re-saving (attempt 1)",
                "lsc",
            ),
            (
                Event::Lsc(LscEvent::ChecksumGiveUp { vm: 5, retries: 3 }),
                "image of VmId(5) still corrupt after 3 re-saves; giving up",
                "lsc",
            ),
            (
                Event::Lsc(LscEvent::SavePhaseFailed),
                "save phase failed; resuming members without storing a set",
                "lsc",
            ),
            (
                Event::Ntp(NtpEvent::SyncStale { vc: 0 }),
                "VcId(0): NTP sync stale, clock-free checkpoint",
                "rel",
            ),
        ];
        for (ev, want, cat) in cases {
            assert_eq!(ev.to_string(), want, "display drifted for {:?}", ev.key());
            assert_eq!(ev.trace_category(), Some(cat), "category of {:?}", ev.key());
        }
    }

    #[test]
    fn storage_retry_backoff_renders_like_simduration() {
        let ev = Event::Storage(StorageEvent::TransferRetry {
            attempt: 2,
            max_attempts: 4,
            bytes: 500,
            backoff: SimDuration::from_secs_f64(1.0),
        });
        assert_eq!(
            ev.to_string(),
            format!(
                "storage retry 2/4 for 500 B after {}",
                SimDuration::from_secs_f64(1.0)
            )
        );
    }

    #[test]
    fn new_events_are_not_string_traced() {
        for ev in [
            Event::Tcp(TcpEvent::Retransmit { ep: 1 }),
            Event::Vmm(VmmEvent::SnapshotBegin { vm: 1 }),
            Event::Lsc(LscEvent::ArmSent {
                run: 1,
                vc: 0,
                member: 0,
            }),
            Event::Rm(RmEvent::JobQueued { job: 1 }),
            Event::Fault(FaultEvent::Injected { what: "x" }),
            Event::Mpi(MpiEvent::JobLaunched { ranks: 4 }),
            Event::Span(SpanEvent::Open {
                id: 1,
                parent: 0,
                name: "lsc.round",
                arg: 1,
            }),
            Event::Span(SpanEvent::Close { id: 1 }),
        ] {
            assert_eq!(
                ev.trace_category(),
                None,
                "{} must stay typed-only",
                ev.key()
            );
        }
    }

    #[test]
    fn jsonl_is_wellformed_and_keyed() {
        let ev = Event::Lsc(LscEvent::SetStored {
            vc: 0,
            set: 3,
            skew: SimDuration::from_secs(1),
        });
        let line = ev.jsonl(SimTime(42));
        assert_eq!(
            line,
            "{\"t\":42,\"key\":\"lsc.set_stored\",\"vc\":0,\"set\":3,\"skew_ns\":1000000000}"
        );
        let nodes = Event::Rm(RmEvent::JobStarted {
            job: 9,
            nodes: vec![1, 2, 3],
        });
        assert_eq!(
            nodes.jsonl(SimTime(1)),
            "{\"t\":1,\"key\":\"rm.job_started\",\"job\":9,\"nodes\":[1,2,3]}"
        );
        let open = Event::Span(SpanEvent::Open {
            id: 7,
            parent: 2,
            name: "vmm.save",
            arg: 3,
        });
        assert_eq!(
            open.jsonl(SimTime(5)),
            "{\"t\":5,\"key\":\"span.open\",\"id\":7,\"parent\":2,\"name\":\"vmm.save\",\"arg\":3}"
        );
        assert_eq!(
            Event::Span(SpanEvent::Close { id: 7 }).jsonl(SimTime(6)),
            "{\"t\":6,\"key\":\"span.close\",\"id\":7}"
        );
    }
}
