//! Full workload runs over the simulated cluster: distributed HPL with
//! residual verification, PTRANS with element-wise checks, STREAM, ring.

use dvc_cluster::world::ClusterBuilder;
use dvc_mpi::harness::{self, run_job};
use dvc_sim_core::{Sim, SimTime};
use dvc_workloads::{hpl, ptrans, ring, stream};

fn sim(nodes: usize) -> Sim<dvc_cluster::world::ClusterWorld> {
    Sim::new(
        ClusterBuilder::new()
            .nodes_per_cluster(nodes)
            .perfect_clocks()
            .build(55),
        55,
    )
}

fn horizon() -> SimTime {
    SimTime::from_secs_f64(3600.0)
}

#[test]
fn distributed_hpl_verifies_residual() {
    for (n, nb, ranks) in [(64, 8, 4), (96, 8, 3), (128, 16, 4)] {
        let mut s = sim(ranks);
        let nodes = s.world.node_ids();
        let cfg = hpl::HplConfig::new(n, nb, 99);
        let job = harness::launch(&mut s, &nodes, ranks, 128, move |r, sz| {
            hpl::program(cfg, r, sz)
        });
        run_job(&mut s, &job, horizon())
            .unwrap_or_else(|e| panic!("hpl n={n} ranks={ranks} failed: {e}"));
        for r in 0..ranks {
            let res = harness::rank(&s, &job, r).data.f64("hpl.residual");
            assert!(
                res.is_finite() && res < 1e-10,
                "n={n} ranks={ranks} rank {r}: residual {res}"
            );
        }
        // Both markers present → self-reported runtime is measurable.
        let st = &harness::rank(&s, &job, 0).stats;
        let names: Vec<_> = st.markers.iter().map(|m| m.0).collect();
        assert!(names.contains(&"hpl-start") && names.contains(&"hpl-end"));
    }
}

#[test]
fn hpl_app_level_checkpoints_write_to_disk() {
    let mut s = sim(4);
    let nodes = s.world.node_ids();
    let mut cfg = hpl::HplConfig::new(64, 8, 3);
    cfg.app_ckpt_every = Some(2);
    let job = harness::launch(&mut s, &nodes, 4, 128, move |r, sz| {
        hpl::program(cfg, r, sz)
    });
    run_job(&mut s, &job, horizon()).expect("hpl with app ckpt failed");
    for r in 0..4 {
        let vm = s.world.vm(job.vms[r]).unwrap();
        assert!(
            vm.guest.disk.bytes_written > 0,
            "rank {r} never wrote an app checkpoint"
        );
        let st = &harness::rank(&s, &job, r).stats;
        let ckpts = st.markers.iter().filter(|m| m.0 == "hpl-app-ckpt").count();
        // Panels 2,4,6 of 8 → 3 app checkpoints.
        assert_eq!(ckpts, 3, "rank {r}");
    }
    // Residual still verifies.
    assert!(harness::rank(&s, &job, 0).data.f64("hpl.residual") < 1e-10);
}

#[test]
fn ptrans_transposes_correctly_across_ranks() {
    for (n, ranks) in [(48, 4), (64, 8), (60, 5)] {
        let mut s = sim(ranks.min(8));
        let nodes = s.world.node_ids();
        let cfg = ptrans::PtransConfig::new(n, 12).with_reps(2);
        let job = harness::launch(&mut s, &nodes, ranks, 128, move |r, sz| {
            ptrans::program(cfg, r, sz)
        });
        run_job(&mut s, &job, horizon())
            .unwrap_or_else(|e| panic!("ptrans n={n} ranks={ranks} failed: {e}"));
        for r in 0..ranks {
            let d = &harness::rank(&s, &job, r).data;
            assert_eq!(d.f64("pt.worst_err"), 0.0, "rank {r} corrupted");
            assert!(!d.contains("pt.corrupt"));
        }
    }
}

#[test]
fn stream_runs_and_verifies() {
    let mut s = sim(1);
    let nodes = s.world.node_ids();
    let cfg = stream::StreamConfig {
        len: 1 << 12,
        reps: 10,
        ..Default::default()
    };
    let job = harness::launch(&mut s, &nodes, 1, 128, move |r, sz| {
        stream::program(cfg, r, sz)
    });
    run_job(&mut s, &job, horizon()).expect("stream failed");
    let d = &harness::rank(&s, &job, 0).data;
    assert_eq!(d.f64("st.worst_err"), 0.0);
    // Wall time ≈ reps × pass time (plus small overheads), stretched by the
    // para-virt CPU factor.
    let st = &harness::rank(&s, &job, 0).stats;
    let t0 = st.markers.iter().find(|m| m.0 == "stream-start").unwrap().1;
    let t1 = st.markers.iter().find(|m| m.0 == "stream-end").unwrap().1;
    let measured = (t1 - t0) as f64;
    let ideal = cfg.pass_ns() as f64 * cfg.reps as f64;
    assert!(
        measured >= ideal,
        "measured {measured} must include the modelled passes {ideal}"
    );
    assert!(
        measured < ideal * 1.3,
        "overhead too large: {measured} vs {ideal}"
    );
}

#[test]
fn ring_completes_with_zero_errors() {
    let ranks = 6;
    let mut s = sim(ranks);
    let nodes = s.world.node_ids();
    let cfg = ring::RingConfig {
        payload_len: 2048,
        iters: 30,
        compute_ns: 100_000,
    };
    let job = harness::launch(&mut s, &nodes, ranks, 128, move |r, sz| {
        ring::program(cfg, r, sz)
    });
    run_job(&mut s, &job, horizon()).expect("ring failed");
    for r in 0..ranks {
        assert!(
            ring::ring_ok(&harness::rank(&s, &job, r).data),
            "rank {r} had ring errors"
        );
    }
}

#[test]
fn hpl_partitions_compute_evenly_across_ranks() {
    // At laptop-scale matrix sizes communication latency dominates wall
    // time (as on a real cluster), so the meaningful scaling check is that
    // the *computational* load splits ~evenly: each of 4 ranks should burn
    // ≈ 1/4 of the single-rank compute time.
    let compute_ns_for = |ranks: usize| -> Vec<u64> {
        let mut s = sim(ranks);
        let nodes = s.world.node_ids();
        let cfg = hpl::HplConfig::new(128, 16, 2);
        let job = harness::launch(&mut s, &nodes, ranks, 128, move |r, sz| {
            hpl::program(cfg, r, sz)
        });
        run_job(&mut s, &job, horizon()).expect("hpl failed");
        (0..ranks)
            .map(|r| harness::rank(&s, &job, r).stats.compute_ns)
            .collect()
    };
    let solo = compute_ns_for(1)[0] as f64;
    let four = compute_ns_for(4);
    let total: u64 = four.iter().sum();
    // Work conserved (within a few % for the panel-factor duplication).
    assert!(
        (total as f64 - solo).abs() / solo < 0.1,
        "work not conserved: solo={solo} four={total}"
    );
    for (r, &c) in four.iter().enumerate() {
        let share = c as f64 / solo;
        assert!(
            (0.15..0.40).contains(&share),
            "rank {r} got share {share:.3} of the flops"
        );
    }
}
