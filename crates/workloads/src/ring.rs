//! Ring-exchange stressor: keeps the interconnect busy so LSC experiments
//! have in-flight TCP traffic to preserve (or break).
//!
//! Each iteration every rank sends a payload to its right neighbour and
//! receives from its left, verifies the payload's checksum, does a little
//! compute, and repeats. Iterations either run a fixed count or until a
//! `stop` flag is observed (the open-ended mode used by long-running
//! reliability experiments).

use dvc_mpi::data::{RankData, Value};
use dvc_mpi::ops::Op;

const TAG_RING: u32 = 30_000;

/// Ring job parameters.
#[derive(Clone, Copy, Debug)]
pub struct RingConfig {
    /// Payload doubles per hop.
    pub payload_len: usize,
    /// Iterations (laps) to run.
    pub iters: u64,
    /// Compute charged per hop, ns.
    pub compute_ns: u64,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            payload_len: 4096,
            iters: 50,
            compute_ns: 200_000,
        }
    }
}

/// Build the per-rank ring program.
pub fn program(cfg: RingConfig, rank: usize, size: usize) -> (Vec<Op>, RankData) {
    let mut data = RankData::new();
    data.set("ring.iters", Value::U64(cfg.iters));
    data.set("ring.iter", Value::U64(0));
    data.set("ring.compute_ns", Value::U64(cfg.compute_ns));
    data.set("ring.errors", Value::U64(0));
    // Payload: rank-stamped pattern, re-stamped each lap.
    data.set(
        "ring.out",
        Value::F64Vec(
            (0..cfg.payload_len)
                .map(|i| payload_elem(rank as u64, 0, i))
                .collect(),
        ),
    );
    let _ = size;
    (vec![Op::Marker("ring-start"), Op::Gen(step)], data)
}

/// Expected payload element for (origin rank, lap, index).
fn payload_elem(origin: u64, lap: u64, i: usize) -> f64 {
    (origin as f64) * 1e6 + (lap as f64) * 1e3 + (i % 997) as f64
}

fn step(data: &mut RankData, rank: usize, size: usize) -> Vec<Op> {
    let iter = data.u64("ring.iter");
    let iters = data.u64("ring.iters");
    if iter >= iters {
        return vec![Op::Marker("ring-end")];
    }
    data.set("ring.iter", Value::U64(iter + 1));
    let next = (rank + 1) % size;
    let prev = (rank + size - 1) % size;
    let tag = TAG_RING + (iter % 512) as u32;
    let compute = data.u64("ring.compute_ns");

    let mut ops = vec![Op::Apply(stamp_out), Op::ComputeNs(compute.max(1))];
    if size > 1 {
        // Even ranks send then receive; odd ranks receive then send — no
        // cyclic wait even with rendezvous-style blocking.
        if rank.is_multiple_of(2) {
            ops.push(Op::send(next, tag, "ring.out"));
            ops.push(Op::recv(prev, tag, "ring.in"));
        } else {
            ops.push(Op::recv(prev, tag, "ring.in"));
            ops.push(Op::send(next, tag, "ring.out"));
        }
        ops.push(Op::Apply(check_in));
    }
    ops.push(Op::Gen(step));
    ops
}

fn stamp_out(data: &mut RankData, rank: usize, _size: usize) {
    let lap = data.u64("ring.iter") - 1; // step already incremented it
    let out = data.vec_f64_mut("ring.out");
    for (i, v) in out.iter_mut().enumerate() {
        *v = payload_elem(rank as u64, lap, i);
    }
}

fn check_in(data: &mut RankData, rank: usize, size: usize) {
    let lap = data.u64("ring.iter") - 1;
    let prev = ((rank + size - 1) % size) as u64;
    let inn = data.vec_f64("ring.in").clone();
    let mut bad = 0u64;
    for (i, &v) in inn.iter().enumerate() {
        if v != payload_elem(prev, lap, i) {
            bad += 1;
        }
    }
    if bad > 0 {
        let e = data.u64("ring.errors");
        data.set("ring.errors", Value::U64(e + bad));
    }
}

/// Post-run check used by experiments: all ranks finished all laps with
/// zero payload errors.
pub fn ring_ok(data: &RankData) -> bool {
    data.u64("ring.errors") == 0 && data.u64("ring.iter") == data.u64("ring.iters")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_origin_and_lap_dependent() {
        assert_ne!(payload_elem(1, 0, 5), payload_elem(2, 0, 5));
        assert_ne!(payload_elem(1, 0, 5), payload_elem(1, 1, 5));
        assert_eq!(payload_elem(3, 7, 11), payload_elem(3, 7, 11));
    }

    #[test]
    fn stamp_and_check_agree() {
        let cfg = RingConfig {
            payload_len: 64,
            iters: 3,
            compute_ns: 10,
        };
        let size = 4;
        let (_, mut d1) = program(cfg, 1, size);
        let (_, mut d2) = program(cfg, 2, size);
        // Simulate lap 0: rank 1 stamps, rank 2 receives it.
        d1.set("ring.iter", Value::U64(1));
        stamp_out(&mut d1, 1, size);
        d2.set("ring.iter", Value::U64(1));
        d2.set("ring.in", d1.get("ring.out").cloned().unwrap());
        check_in(&mut d2, 2, size);
        assert_eq!(d2.u64("ring.errors"), 0);
        // Corrupt one element: detected.
        let mut bad = d1.get("ring.out").cloned().unwrap();
        if let Value::F64Vec(v) = &mut bad {
            v[10] += 0.5;
        }
        d2.set("ring.in", bad);
        check_in(&mut d2, 2, size);
        assert_eq!(d2.u64("ring.errors"), 1);
    }
}
