//! HPL-like distributed LU factorization with partial pivoting.
//!
//! Layout: 1-D **column-block-cyclic**. The n×n matrix is split into
//! `n/nb` column panels; panel `k` lives on rank `k % size`. Each rank
//! stores its panels as one column-major local matrix (full `n` rows).
//!
//! Per iteration `k`:
//!
//! 1. the owner factors the panel locally (pivot search over whole columns
//!    it owns entirely, row swaps, multipliers) — real arithmetic;
//! 2. the factored panel + pivot indices are **broadcast** (binomial tree);
//! 3. every rank applies the row swaps to its columns, solves the `U12`
//!    triangular block, and rank-`nb` updates its trailing columns —
//!    real arithmetic, plus an [`Op::Compute`] charge for the flops.
//!
//! The run ends with a gather to rank 0 and a residual check
//! `max|P·A − L·U| / (n · max|A|)` against the regenerated source matrix, so
//! any message lost or duplicated across a checkpoint shows up numerically.
//!
//! Timing: the program stamps `hpl-start` / `hpl-end` markers with the
//! *guest wall clock*. Because time is not virtualized, a checkpoint's
//! downtime lands inside the self-reported runtime — the paper's observed
//! "greatly increased execution time" (§3.2), reproduced by experiment E7.

use crate::gen_a;
use dvc_mpi::collectives;
use dvc_mpi::data::{RankData, Value};
use dvc_mpi::ops::Op;

/// Tag space: panel k uses tags `TAG_BASE + k·TAGS_PER_STEP ..`.
const TAG_BASE: u32 = 10_000;
const TAGS_PER_STEP: u32 = collectives::TAGS_PER_COLLECTIVE;
/// Gather tags at the end.
const TAG_GATHER: u32 = 5_000;
const TAG_RESIDUAL: u32 = 5_500;

/// HPL job parameters.
#[derive(Clone, Copy, Debug)]
pub struct HplConfig {
    /// Matrix dimension (must be divisible by `nb`).
    pub n: usize,
    /// Panel (block) width.
    pub nb: usize,
    /// Source matrix seed.
    pub seed: u64,
    /// Write an application-level checkpoint of the live state every this
    /// many panels (the app-level arm of experiment E6).
    pub app_ckpt_every: Option<usize>,
}

impl HplConfig {
    pub fn new(n: usize, nb: usize, seed: u64) -> Self {
        assert!(n.is_multiple_of(nb), "n must be a multiple of nb");
        HplConfig {
            n,
            nb,
            seed,
            app_ckpt_every: None,
        }
    }

    /// Total flops of the factorization (the classic 2n³/3).
    pub fn total_flops(&self) -> f64 {
        2.0 * (self.n as f64).powi(3) / 3.0
    }
}

// ---------------------------------------------------------------------
// Layout helpers
// ---------------------------------------------------------------------

/// Number of column blocks.
fn nblocks(n: usize, nb: usize) -> usize {
    n / nb
}

/// Number of local columns on `rank`.
pub fn n_local_cols(n: usize, nb: usize, size: usize, rank: usize) -> usize {
    (0..nblocks(n, nb)).filter(|kb| kb % size == rank).count() * nb
}

/// Local column index of global column `j` on `rank` (None if not owned).
pub fn local_col(n: usize, nb: usize, size: usize, rank: usize, j: usize) -> Option<usize> {
    let _ = n;
    let kb = j / nb;
    if kb % size != rank {
        return None;
    }
    Some((kb / size) * nb + j % nb)
}

/// Global column of local column `lc` on `rank`.
pub fn global_col(nb: usize, size: usize, rank: usize, lc: usize) -> usize {
    let lb = lc / nb;
    (lb * size + rank) * nb + lc % nb
}

// ---------------------------------------------------------------------
// Program construction
// ---------------------------------------------------------------------

/// Build the per-rank HPL program.
pub fn program(cfg: HplConfig, rank: usize, size: usize) -> (Vec<Op>, RankData) {
    let mut data = RankData::new();
    data.set("hpl.n", Value::U64(cfg.n as u64));
    data.set("hpl.nb", Value::U64(cfg.nb as u64));
    data.set("hpl.seed", Value::U64(cfg.seed));
    data.set("hpl.k", Value::U64(0));
    data.set(
        "hpl.ckpt_every",
        Value::U64(cfg.app_ckpt_every.unwrap_or(0) as u64),
    );
    data.set("piv", Value::U64Vec(vec![0; cfg.n]));

    // Materialize the local columns.
    let ncols = n_local_cols(cfg.n, cfg.nb, size, rank);
    let mut a = vec![0.0f64; cfg.n * ncols];
    for lc in 0..ncols {
        let j = global_col(cfg.nb, size, rank, lc);
        for i in 0..cfg.n {
            a[lc * cfg.n + i] = gen_a(cfg.seed, i, j);
        }
    }
    data.set("A", Value::F64Vec(a));

    let ops = vec![Op::Marker("hpl-start"), Op::Gen(step)];
    (ops, data)
}

/// One iteration of the outer loop, emitted dynamically.
fn step(data: &mut RankData, rank: usize, size: usize) -> Vec<Op> {
    let n = data.u64("hpl.n") as usize;
    let nb = data.u64("hpl.nb") as usize;
    let k = data.u64("hpl.k") as usize;
    let nbl = nblocks(n, nb);

    if k == nbl {
        return finale(data, rank, size);
    }

    let j0 = k * nb;
    let j1 = j0 + nb;
    let owner = k % size;
    let tag = TAG_BASE + (k as u32) * TAGS_PER_STEP;

    let mut ops = Vec::new();
    if rank == owner {
        ops.push(Op::Apply(factor_panel));
        // Panel factorization flops: pivot scan + rank-1 updates within the
        // panel ≈ (n−j0)·nb² .
        ops.push(Op::Compute {
            flops: (n - j0) as f64 * (nb * nb) as f64,
        });
    }
    ops.extend(collectives::bcast(owner, rank, size, tag, "panel"));
    ops.push(Op::Apply(apply_panel));

    // Trailing-update flops for THIS rank: triangular solve (nb² per local
    // trailing column) + GEMM (2·(n−j1)·nb per element column).
    let my_trailing = (j1..n)
        .filter(|&j| local_col(n, nb, size, rank, j).is_some())
        .count();
    let flops = (nb * nb) as f64 * my_trailing as f64
        + 2.0 * (n - j1) as f64 * nb as f64 * my_trailing as f64;
    if flops > 0.0 {
        ops.push(Op::Compute { flops });
    }

    // Application-level checkpoint of the live state (trailing matrix +
    // factors this rank still needs), if configured.
    let every = data.u64("hpl.ckpt_every") as usize;
    if every > 0 && k > 0 && k.is_multiple_of(every) {
        let ncols = n_local_cols(n, nb, size, rank);
        let bytes = (n * ncols * 8 + n * 8) as u64; // local panels + pivots
        ops.push(Op::DiskWrite { bytes });
        ops.push(Op::Marker("hpl-app-ckpt"));
    }

    ops.push(Op::Apply(inc_k));
    ops.push(Op::Gen(step));
    ops
}

fn inc_k(data: &mut RankData, _rank: usize, _size: usize) {
    let k = data.u64("hpl.k");
    data.set("hpl.k", Value::U64(k + 1));
}

/// Owner-side panel factorization (partial pivoting, real arithmetic).
fn factor_panel(data: &mut RankData, rank: usize, size: usize) {
    let n = data.u64("hpl.n") as usize;
    let nb = data.u64("hpl.nb") as usize;
    let k = data.u64("hpl.k") as usize;
    let j0 = k * nb;

    // Split borrows: take A out, work, put back.
    let mut a = match data.take("A") {
        Some(Value::F64Vec(v)) => v,
        _ => panic!("A missing"),
    };
    let mut piv_new = vec![0u64; nb];
    let ncols = a.len() / n;

    for (jj, piv_slot) in piv_new.iter_mut().enumerate() {
        let j = j0 + jj;
        let lc = local_col(n, nb, size, rank, j).expect("owner owns the panel");
        let col = lc * n;
        // Pivot search in rows j..n.
        let mut p = j;
        let mut best = a[col + j].abs();
        for i in (j + 1)..n {
            let v = a[col + i].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        *piv_slot = p as u64;
        // Swap rows j <-> p across ALL local columns.
        if p != j {
            for c in 0..ncols {
                a.swap(c * n + j, c * n + p);
            }
        }
        // Multipliers + rank-1 update of the remaining panel columns.
        let d = a[col + j];
        debug_assert!(d != 0.0, "zero pivot");
        for i in (j + 1)..n {
            a[col + i] /= d;
        }
        for jj2 in (jj + 1)..nb {
            let lc2 = local_col(n, nb, size, rank, j0 + jj2).unwrap();
            let col2 = lc2 * n;
            let u = a[col2 + j];
            for i in (j + 1)..n {
                a[col2 + i] -= a[col + i] * u;
            }
        }
    }

    // Record pivots globally.
    if let Some(Value::U64Vec(piv)) = data.get_mut("piv") {
        piv[j0..j0 + nb].copy_from_slice(&piv_new);
    }

    // Assemble the panel message: [piv(nb) | rows j0..n × nb cols].
    let rows = n - j0;
    let mut panel = Vec::with_capacity(nb + rows * nb);
    panel.extend(piv_new.iter().map(|&p| p as f64));
    for jj in 0..nb {
        let lc = local_col(n, nb, size, rank, j0 + jj).unwrap();
        let col = lc * n;
        panel.extend_from_slice(&a[col + j0..col + n]);
    }
    data.set("A", Value::F64Vec(a));
    data.set("panel", Value::F64Vec(panel));
}

/// Every rank: apply pivots, solve U12, update the trailing matrix.
fn apply_panel(data: &mut RankData, rank: usize, size: usize) {
    let n = data.u64("hpl.n") as usize;
    let nb = data.u64("hpl.nb") as usize;
    let k = data.u64("hpl.k") as usize;
    let j0 = k * nb;
    let j1 = j0 + nb;
    let rows = n - j0;
    let owner = k % size;

    let panel = match data.get("panel") {
        Some(Value::F64Vec(v)) => v.clone(),
        _ => panic!("panel missing"),
    };
    assert_eq!(panel.len(), nb + rows * nb, "panel shape");
    let piv: Vec<usize> = panel[..nb].iter().map(|&x| x as usize).collect();
    let l = &panel[nb..]; // column-major, rows j0..n × nb

    // Non-owners record the pivots too (needed for verification).
    if rank != owner {
        if let Some(Value::U64Vec(pv)) = data.get_mut("piv") {
            for (jj, &p) in piv.iter().enumerate() {
                pv[j0 + jj] = p as u64;
            }
        }
    }

    let mut a = match data.take("A") {
        Some(Value::F64Vec(v)) => v,
        _ => panic!("A missing"),
    };
    let ncols = a.len() / n;

    for lc in 0..ncols {
        let j = global_col(nb, size, rank, lc);
        if (j0..j1).contains(&j) {
            continue; // the owner's freshly factored panel columns
        }
        let col = lc * n;
        // Row swaps (all columns, left and trailing).
        for (jj, &p) in piv.iter().enumerate() {
            let r0 = j0 + jj;
            if p != r0 {
                a.swap(col + r0, col + p);
            }
        }
        if j < j1 {
            continue; // already-factored left columns only get the swaps
        }
        // U12: forward substitution with unit-lower L11 (panel rows 0..nb).
        for lrow in 0..nb {
            let mut v = a[col + j0 + lrow];
            for m in 0..lrow {
                v -= l[m * rows + lrow] * a[col + j0 + m];
            }
            a[col + j0 + lrow] = v;
        }
        // A22 −= L21 · U12 for this column.
        for i in j1..n {
            let li = i - j0;
            let mut v = a[col + i];
            for m in 0..nb {
                v -= l[m * rows + li] * a[col + j0 + m];
            }
            a[col + i] = v;
        }
    }

    data.set("A", Value::F64Vec(a));
}

/// End of factorization: gather to rank 0, verify, share the residual.
fn finale(_data: &mut RankData, rank: usize, size: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    if rank == 0 {
        for r in 1..size {
            ops.push(Op::recv(r, TAG_GATHER + r as u32, format!("A.from.{r}")));
            ops.push(Op::recv(
                r,
                TAG_GATHER + 1000 + r as u32,
                format!("piv.from.{r}"),
            ));
        }
        ops.push(Op::Apply(verify));
    } else {
        ops.push(Op::send(0, TAG_GATHER + rank as u32, "A"));
        ops.push(Op::send(0, TAG_GATHER + 1000 + rank as u32, "piv"));
    }
    // Residual broadcast doubles as the final synchronization.
    ops.extend(collectives::bcast(
        0,
        rank,
        size,
        TAG_RESIDUAL,
        "hpl.residual",
    ));
    ops.push(Op::Marker("hpl-end"));
    ops
}

/// Rank 0: rebuild the global factors and compute the residual.
fn verify(data: &mut RankData, rank: usize, size: usize) {
    assert_eq!(rank, 0);
    let n = data.u64("hpl.n") as usize;
    let nb = data.u64("hpl.nb") as usize;
    let seed = data.u64("hpl.seed");

    // Assemble the full factored matrix F (column-major n×n).
    let mut f = vec![0.0f64; n * n];
    for r in 0..size {
        let local = if r == 0 {
            data.vec_f64("A").clone()
        } else {
            data.vec_f64(&format!("A.from.{r}")).clone()
        };
        let ncols = local.len() / n;
        for lc in 0..ncols {
            let j = global_col(nb, size, r, lc);
            f[j * n..(j + 1) * n].copy_from_slice(&local[lc * n..(lc + 1) * n]);
        }
    }
    // Merge pivot vectors: panel k's entries came from its owner.
    let mut piv = vec![0usize; n];
    {
        let own = data.get("piv").and_then(Value::as_u64_vec).unwrap().clone();
        for (j, p) in own.iter().enumerate() {
            piv[j] = *p as usize;
        }
        for r in 1..size {
            let theirs = data
                .get(&format!("piv.from.{r}"))
                .and_then(Value::as_u64_vec)
                .unwrap()
                .clone();
            for kb in 0..nblocks(n, nb) {
                if kb % size == r {
                    for jj in 0..nb {
                        let j = kb * nb + jj;
                        piv[j] = theirs[j] as usize;
                    }
                }
            }
        }
    }

    // P·A: regenerate the source and apply the pivot swaps in order.
    let mut pa = vec![0.0f64; n * n];
    for j in 0..n {
        for i in 0..n {
            pa[j * n + i] = gen_a(seed, i, j);
        }
    }
    for (j, &p) in piv.iter().enumerate() {
        if p != j {
            for c in 0..n {
                pa.swap(c * n + j, c * n + p);
            }
        }
    }

    // R = P·A − L·U, computed column by column: (L·U)[i][j] =
    // Σ_m L[i][m]·U[m][j] with L unit-lower, U upper (both stored in F).
    let mut max_r: f64 = 0.0;
    let mut max_a: f64 = 0.0;
    for j in 0..n {
        for i in 0..n {
            // (L·U)[i][j] = Σ_{m ≤ min(i,j)} L[i][m]·U[m][j], with
            // L[i][i] = 1 (unit lower) and both factors stored in F.
            let mut lu = 0.0;
            for m in 0..=i.min(j) {
                let lval = if m == i { 1.0 } else { f[m * n + i] };
                lu += lval * f[j * n + m];
            }
            let r = pa[j * n + i] - lu;
            max_r = max_r.max(r.abs());
            max_a = max_a.max(pa[j * n + i].abs());
        }
    }
    let residual = max_r / (max_a * n as f64);
    data.set("hpl.residual", Value::F64(residual));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_roundtrips() {
        let (n, nb, size) = (96, 8, 5);
        for j in 0..n {
            let owner = (j / nb) % size;
            for r in 0..size {
                match local_col(n, nb, size, r, j) {
                    Some(lc) => {
                        assert_eq!(r, owner);
                        assert_eq!(global_col(nb, size, r, lc), j);
                    }
                    None => assert_ne!(r, owner),
                }
            }
        }
        let total: usize = (0..size).map(|r| n_local_cols(n, nb, size, r)).sum();
        assert_eq!(total, n);
    }

    /// Single-rank LU through the real Apply functions: residual must be at
    /// machine-precision level.
    #[test]
    fn single_rank_lu_is_numerically_correct() {
        let cfg = HplConfig::new(48, 8, 7);
        let (_, mut data) = program(cfg, 0, 1);
        for _k in 0..nblocks(cfg.n, cfg.nb) {
            factor_panel(&mut data, 0, 1);
            apply_panel(&mut data, 0, 1);
            inc_k(&mut data, 0, 1);
        }
        verify(&mut data, 0, 1);
        let res = data.f64("hpl.residual");
        assert!(res < 1e-12, "residual {res}");
    }

    #[test]
    fn total_flops_formula() {
        let cfg = HplConfig::new(100, 10, 1);
        assert!((cfg.total_flops() - 2.0 / 3.0 * 1e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "multiple of nb")]
    fn bad_block_size_panics() {
        HplConfig::new(100, 7, 1);
    }
}
