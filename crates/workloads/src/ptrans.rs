//! PTRANS-like distributed matrix transpose.
//!
//! Layout: **row-block**. Rank r owns rows `r·m .. (r+1)·m` of the n×n
//! matrix A (m = n / size). Computing B = Aᵀ needs rank r to obtain column
//! slice `r·m..(r+1)·m` of every other rank's rows — a textbook pairwise
//! all-to-all, which is why the paper calls PTRANS "a communication heavy
//! test … the most important test for verifying that our conclusions about
//! consistent network states were correct" (§3.2).
//!
//! Every rank ends by verifying `B[i][j] == A[j][i]` element-wise against
//! the regenerated source, so any message corruption across a checkpoint is
//! detected locally, without a gather.

use crate::gen_a;
use dvc_mpi::collectives;
use dvc_mpi::data::{RankData, Value};
use dvc_mpi::ops::Op;

const TAG_XCHG: u32 = 20_000;
const TAG_SYNC: u32 = 21_000;

/// PTRANS job parameters.
#[derive(Clone, Copy, Debug)]
pub struct PtransConfig {
    /// Matrix dimension (must be divisible by the rank count at launch).
    pub n: usize,
    pub seed: u64,
    /// Number of transpose repetitions (HPCC runs several).
    pub reps: usize,
}

impl PtransConfig {
    pub fn new(n: usize, seed: u64) -> Self {
        PtransConfig { n, seed, reps: 1 }
    }

    pub fn with_reps(mut self, reps: usize) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// Bytes each rank ships per transpose (everything except its own block).
    pub fn bytes_per_rank(&self, size: usize) -> u64 {
        let m = self.n / size;
        ((size - 1) * m * m * 8) as u64
    }
}

/// Build the per-rank PTRANS program.
pub fn program(cfg: PtransConfig, rank: usize, size: usize) -> (Vec<Op>, RankData) {
    assert!(
        cfg.n.is_multiple_of(size),
        "n must be divisible by the rank count"
    );
    let m = cfg.n / size;
    let mut data = RankData::new();
    data.set("pt.n", Value::U64(cfg.n as u64));
    data.set("pt.seed", Value::U64(cfg.seed));
    data.set("pt.rep", Value::U64(0));
    data.set("pt.reps", Value::U64(cfg.reps as u64));

    // Own rows, row-major m×n.
    let mut rows = vec![0.0f64; m * cfg.n];
    for li in 0..m {
        let i = rank * m + li;
        for j in 0..cfg.n {
            rows[li * cfg.n + j] = gen_a(cfg.seed, i, j);
        }
    }
    data.set("rows", Value::F64Vec(rows));

    let ops = vec![Op::Marker("ptrans-start"), Op::Gen(rep_step)];
    (ops, data)
}

/// One transpose repetition.
fn rep_step(data: &mut RankData, rank: usize, size: usize) -> Vec<Op> {
    let rep = data.u64("pt.rep");
    let reps = data.u64("pt.reps");
    if rep >= reps {
        let mut ops = collectives::barrier(rank, size, TAG_SYNC);
        ops.push(Op::Marker("ptrans-end"));
        return ops;
    }
    data.set("pt.rep", Value::U64(rep + 1));

    let n = data.u64("pt.n") as usize;
    let m = n / size;
    let tag = TAG_XCHG + rep as u32 * collectives::TAGS_PER_COLLECTIVE;

    let mut ops = Vec::new();
    // Cut the row block into per-destination m×m column slices.
    ops.push(Op::Apply(slice_blocks));
    // Packing/unpacking cost: ~1 op per element shipped.
    ops.push(Op::Compute {
        flops: ((size - 1) * m * m) as f64,
    });
    ops.extend(collectives::alltoall(rank, size, tag, "pt"));
    // Assemble B's rows from received blocks (plus the local diagonal one).
    ops.push(Op::Apply(assemble_transpose));
    ops.push(Op::Compute {
        flops: (m * n) as f64,
    });
    ops.push(Op::Apply(verify_rep));
    ops.push(Op::Gen(rep_step));
    ops
}

/// Split own rows into `pt.send.{to}` blocks: block for `to` is columns
/// `to·m..(to+1)·m`, stored row-major m×m.
fn slice_blocks(data: &mut RankData, rank: usize, size: usize) {
    let n = data.u64("pt.n") as usize;
    let m = n / size;
    let rows = data.vec_f64("rows").clone();
    for to in 0..size {
        if to == rank {
            continue;
        }
        let mut blk = Vec::with_capacity(m * m);
        for li in 0..m {
            blk.extend_from_slice(&rows[li * n + to * m..li * n + (to + 1) * m]);
        }
        data.set(format!("pt.send.{to}"), Value::F64Vec(blk));
    }
}

/// Build `brows` (m×n row-major) = our rows of B = Aᵀ.
fn assemble_transpose(data: &mut RankData, rank: usize, size: usize) {
    let n = data.u64("pt.n") as usize;
    let m = n / size;
    let rows = data.vec_f64("rows").clone();
    let mut b = vec![0.0f64; m * n];
    // Diagonal block comes from our own rows: B[i][j] = A[j][i] with both
    // i and j in our stripe.
    for li in 0..m {
        for lj in 0..m {
            b[li * n + rank * m + lj] = rows[lj * n + rank * m + li];
        }
    }
    // Off-diagonal blocks from peers: the block received from `from`
    // contains A[from-rows][our-cols], i.e. A[j][i] values we transpose in.
    for from in 0..size {
        if from == rank {
            continue;
        }
        let blk = data.vec_f64(&format!("pt.recv.{from}")).clone();
        assert_eq!(blk.len(), m * m, "bad block from {from}");
        for bj in 0..m {
            for bi in 0..m {
                // blk[bj][bi] = A[from·m + bj][rank·m + bi]
                b[bi * n + from * m + bj] = blk[bj * m + bi];
            }
        }
    }
    data.set("brows", Value::F64Vec(b));
}

/// Verify our stripe of B against the regenerated source.
fn verify_rep(data: &mut RankData, rank: usize, size: usize) {
    let n = data.u64("pt.n") as usize;
    let seed = data.u64("pt.seed");
    let m = n / size;
    let b = data.vec_f64("brows").clone();
    let mut worst: f64 = 0.0;
    for li in 0..m {
        let i = rank * m + li;
        for j in 0..n {
            let want = gen_a(seed, j, i); // B[i][j] = A[j][i]
            worst = worst.max((b[li * n + j] - want).abs());
        }
    }
    data.set("pt.worst_err", Value::F64(worst));
    if worst != 0.0 {
        // Transpose moves bits unchanged: anything non-zero is corruption.
        data.set("pt.corrupt", Value::U64(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run the data plane of one transpose locally for 3 "ranks" by wiring
    /// the send slots straight into recv slots.
    #[test]
    fn local_transpose_roundtrip() {
        let size = 3;
        let cfg = PtransConfig::new(12, 5);
        let mut datas: Vec<RankData> = (0..size).map(|r| program(cfg, r, size).1).collect();
        for (r, d) in datas.iter_mut().enumerate() {
            slice_blocks(d, r, size);
        }
        // Deliver blocks.
        for from in 0..size {
            for to in 0..size {
                if from == to {
                    continue;
                }
                let blk = datas[from].get(&format!("pt.send.{to}")).cloned().unwrap();
                datas[to].set(format!("pt.recv.{from}"), blk);
            }
        }
        for (r, d) in datas.iter_mut().enumerate() {
            assemble_transpose(d, r, size);
            verify_rep(d, r, size);
            assert_eq!(d.f64("pt.worst_err"), 0.0, "rank {r} corrupted");
            assert!(!d.contains("pt.corrupt"));
        }
    }

    #[test]
    fn bytes_per_rank_accounts_offdiagonal() {
        let cfg = PtransConfig::new(120, 1);
        // 4 ranks, m=30: 3 blocks of 900 doubles.
        assert_eq!(cfg.bytes_per_rank(4), 3 * 900 * 8);
    }
}
