//! # dvc-workloads
//!
//! The benchmark applications the paper evaluates LSC with, rebuilt as rank
//! programs for `dvc-mpi`:
//!
//! * [`hpl`] — an HPL-like distributed LU factorization with partial
//!   pivoting (1-D column-block-cyclic layout): panel factorization on the
//!   owner, panel broadcast, pivot application and trailing-matrix update on
//!   every rank. It computes on **real matrices** and ends with a residual
//!   check, so a checkpoint that loses or duplicates a single message is
//!   caught numerically. It also self-reports its runtime using the guest
//!   wall clock — reproducing the paper's observation that the un-virtualized
//!   clock jump inflates HPL's reported time.
//! * [`ptrans`] — a PTRANS-like distributed matrix transpose (row-block
//!   layout, pairwise all-to-all exchange), "the most important test for
//!   verifying that our conclusions about consistent network states were
//!   correct" (paper §3.2) because it is communication-dominated.
//! * [`stream`] — a STREAM-like sequential (single-rank) memory benchmark,
//!   the "sequential job" arm of the overhead experiments.
//! * [`ring`] — a continuous ring-exchange stressor used by the LSC failure
//!   experiments: it keeps TCP traffic in flight so checkpoint skew has
//!   something to break.
//!
//! All generators are deterministic in their parameters, so any two ranks
//! (or a verifier) can regenerate the same source matrices independently.

pub mod hpl;
pub mod ptrans;
pub mod ring;
pub mod stream;

/// Deterministic matrix element generator: well-conditioned, non-symmetric.
/// `gen_a(seed, i, j)` is the (i, j) element of the virtual source matrix.
pub fn gen_a(seed: u64, i: usize, j: usize) -> f64 {
    // Hash (seed, i, j) into [-0.5, 0.5), plus diagonal dominance for a
    // stable LU without pathological pivot growth.
    let h = dvc_sim_core::rng::splitmix64(
        seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ (j as u64).wrapping_mul(0xC2B2AE3D27D4EB4F),
    );
    let frac = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    if i == j {
        frac + 4.0
    } else {
        frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_a_is_deterministic_and_spread() {
        assert_eq!(gen_a(1, 3, 5), gen_a(1, 3, 5));
        assert_ne!(gen_a(1, 3, 5), gen_a(2, 3, 5));
        assert_ne!(gen_a(1, 3, 5), gen_a(1, 5, 3), "non-symmetric");
        // Diagonal dominance.
        assert!(gen_a(9, 7, 7) > 3.0);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..50 {
            for j in 0..50 {
                if i != j {
                    let v = gen_a(42, i, j);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        assert!(lo >= -0.5 && hi < 0.5);
        assert!(hi - lo > 0.8, "values should fill the range");
    }
}
