//! STREAM-like sequential memory benchmark (the "sequential job" arm of the
//! virtualization-overhead experiments).
//!
//! A single rank runs `reps` triad passes `a[i] = b[i] + s·c[i]` over
//! `len`-element arrays. The arithmetic really happens (and is verified);
//! the *time* charged per pass is `3·8·len / mem_bw` — STREAM is bandwidth-
//! bound, so memory bandwidth, not flops, sets the pace.

use dvc_mpi::data::{RankData, Value};
use dvc_mpi::ops::Op;

/// STREAM job parameters.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Elements per array.
    pub len: usize,
    /// Triad passes.
    pub reps: usize,
    /// Node memory bandwidth, bytes/s (2007-era node: ~6 GB/s).
    pub mem_bw_bps: f64,
    pub scalar: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            len: 1 << 16,
            reps: 20,
            mem_bw_bps: 6.0e9,
            scalar: 3.0,
        }
    }
}

impl StreamConfig {
    /// Modelled wall time of one triad pass, ns.
    pub fn pass_ns(&self) -> u64 {
        (3.0 * 8.0 * self.len as f64 / self.mem_bw_bps * 1e9) as u64
    }
}

/// Build the (single-rank) STREAM program.
pub fn program(cfg: StreamConfig, rank: usize, size: usize) -> (Vec<Op>, RankData) {
    assert_eq!(size, 1, "STREAM is the sequential workload");
    assert_eq!(rank, 0);
    let mut data = RankData::new();
    data.set("st.len", Value::U64(cfg.len as u64));
    data.set("st.reps", Value::U64(cfg.reps as u64));
    data.set("st.rep", Value::U64(0));
    data.set("st.scalar", Value::F64(cfg.scalar));
    data.set("st.pass_ns", Value::U64(cfg.pass_ns()));
    data.set("a", Value::F64Vec(vec![0.0; cfg.len]));
    data.set(
        "b",
        Value::F64Vec((0..cfg.len).map(|i| i as f64 * 0.25).collect()),
    );
    data.set(
        "c",
        Value::F64Vec((0..cfg.len).map(|i| (cfg.len - i) as f64).collect()),
    );
    (vec![Op::Marker("stream-start"), Op::Gen(step)], data)
}

fn step(data: &mut RankData, _rank: usize, _size: usize) -> Vec<Op> {
    let rep = data.u64("st.rep");
    let reps = data.u64("st.reps");
    if rep >= reps {
        return vec![Op::Apply(verify), Op::Marker("stream-end")];
    }
    data.set("st.rep", Value::U64(rep + 1));
    let pass_ns = data.u64("st.pass_ns");
    vec![Op::Apply(triad), Op::ComputeNs(pass_ns), Op::Gen(step)]
}

fn triad(data: &mut RankData, _rank: usize, _size: usize) {
    let s = data.f64("st.scalar");
    let b = data.vec_f64("b").clone();
    let c = data.vec_f64("c").clone();
    let a = data.vec_f64_mut("a");
    for i in 0..a.len() {
        a[i] = b[i] + s * c[i];
    }
}

fn verify(data: &mut RankData, _rank: usize, _size: usize) {
    let s = data.f64("st.scalar");
    let len = data.u64("st.len") as usize;
    let a = data.vec_f64("a");
    let mut worst: f64 = 0.0;
    for (i, &v) in a.iter().enumerate() {
        let want = i as f64 * 0.25 + s * (len - i) as f64;
        worst = worst.max((v - want).abs());
    }
    data.set("st.worst_err", Value::F64(worst));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_math_verifies() {
        let cfg = StreamConfig {
            len: 128,
            reps: 2,
            ..StreamConfig::default()
        };
        let (_, mut data) = program(cfg, 0, 1);
        triad(&mut data, 0, 1);
        verify(&mut data, 0, 1);
        assert_eq!(data.f64("st.worst_err"), 0.0);
    }

    #[test]
    fn pass_time_scales_with_length_and_bw() {
        let a = StreamConfig {
            len: 1 << 20,
            mem_bw_bps: 6.0e9,
            ..StreamConfig::default()
        };
        let b = StreamConfig {
            len: 1 << 21,
            mem_bw_bps: 6.0e9,
            ..StreamConfig::default()
        };
        assert!((b.pass_ns() as f64 / a.pass_ns() as f64 - 2.0).abs() < 0.01);
        let fast = StreamConfig {
            mem_bw_bps: 12.0e9,
            ..a
        };
        assert!((a.pass_ns() as f64 / fast.pass_ns() as f64 - 2.0).abs() < 0.01);
    }
}
