//! Property tests: the wire encoding of rank values is lossless for
//! arbitrary contents, and collective op sequences always pair up.

use dvc_mpi::collectives;
use dvc_mpi::data::Value;
use dvc_mpi::ops::Op;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<f64>()
            .prop_filter("no NaN (NaN != NaN)", |x| !x.is_nan())
            .prop_map(Value::F64),
        any::<u64>().prop_map(Value::U64),
        prop::collection::vec(any::<f64>().prop_filter("no NaN", |x| !x.is_nan()), 0..300)
            .prop_map(Value::F64Vec),
        prop::collection::vec(any::<u64>(), 0..300).prop_map(Value::U64Vec),
        prop::collection::vec(any::<u8>(), 0..1000).prop_map(Value::Bytes),
    ]
}

proptest! {
    #[test]
    fn value_encoding_roundtrips(v in arb_value()) {
        let enc = v.encode();
        prop_assert_eq!(enc.len(), v.wire_len());
        let dec = Value::decode(enc).unwrap();
        prop_assert_eq!(dec, v);
    }

    /// Truncating an encoded value anywhere must be a decode error, never a
    /// silently wrong value (frame boundaries protect us, but defence in
    /// depth for the reassembly path).
    #[test]
    fn truncated_values_fail_loudly(v in arb_value(), cut in any::<prop::sample::Index>()) {
        let enc = v.encode();
        if enc.len() > 1 {
            let n = cut.index(enc.len() - 1); // 0..len-1: always a strict prefix
            let r = Value::decode(enc.slice(..n));
            // Either an error, or — for vector types — impossible.
            prop_assert!(r.is_err(), "decoded a truncated value: {r:?}");
        }
    }

    /// Every collective, at every size and root, produces exactly matched
    /// send/recv pairs across the rank set (no orphan receives, no lost
    /// sends — the static guarantee behind deadlock-freedom).
    #[test]
    fn collectives_pair_exactly(
        size in 1usize..20,
        root_pick in any::<prop::sample::Index>(),
        which in 0usize..4,
    ) {
        let root = root_pick.index(size);
        let all: Vec<Vec<Op>> = (0..size)
            .map(|r| match which {
                0 => collectives::barrier(r, size, 10),
                1 => collectives::bcast(root, r, size, 10, "x"),
                2 => collectives::gather(root, r, size, 10, "x"),
                _ => collectives::alltoall(r, size, 10, "x"),
            })
            .collect();
        let mut sends = std::collections::HashMap::new();
        let mut recvs = std::collections::HashMap::new();
        for (rank, ops) in all.iter().enumerate() {
            for op in ops {
                match op {
                    Op::Send { to, tag, .. } => {
                        prop_assert!(*to < size, "send outside the communicator");
                        *sends.entry((rank, *to, *tag)).or_insert(0u32) += 1;
                    }
                    Op::Recv { from, tag, .. } => {
                        prop_assert!(*from < size);
                        *recvs.entry((*from, rank, *tag)).or_insert(0u32) += 1;
                    }
                    _ => {}
                }
            }
        }
        prop_assert_eq!(sends, recvs);
    }
}
