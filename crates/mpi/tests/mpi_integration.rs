//! End-to-end MPI tests: real rank programs over guest TCP on the fabric.

use dvc_cluster::world::ClusterBuilder;
use dvc_mpi::collectives;
use dvc_mpi::data::{RankData, Value};
use dvc_mpi::harness::{self, run_job};
use dvc_mpi::ops::Op;
use dvc_sim_core::{Sim, SimTime};

fn sim(nodes: usize) -> Sim<dvc_cluster::world::ClusterWorld> {
    Sim::new(
        ClusterBuilder::new()
            .nodes_per_cluster(nodes)
            .perfect_clocks()
            .build(77),
        77,
    )
}

fn horizon() -> SimTime {
    SimTime::from_secs_f64(300.0)
}

#[test]
fn two_rank_pingpong() {
    let mut s = sim(2);
    let nodes = s.world.node_ids();
    let job = harness::launch(&mut s, &nodes, 2, 128, |rank, _size| {
        let mut data = RankData::new();
        let ops = if rank == 0 {
            data.set("ping", Value::U64(41));
            vec![
                Op::send(1, 1, "ping"),
                Op::recv(1, 2, "pong"),
                Op::Marker("done"),
            ]
        } else {
            vec![
                Op::recv(0, 1, "ping"),
                Op::Apply(|d, _r, _s| {
                    let v = d.u64("ping") + 1;
                    d.set("pong", Value::U64(v));
                }),
                Op::send(0, 2, "pong"),
            ]
        };
        (ops, data)
    });
    run_job(&mut s, &job, horizon()).expect("pingpong failed");
    assert_eq!(harness::rank(&s, &job, 0).data.u64("pong"), 42);
    let st = &harness::rank(&s, &job, 0).stats;
    assert_eq!(st.msgs_sent, 1);
    assert_eq!(st.msgs_received, 1);
    assert_eq!(st.markers.len(), 1);
}

#[test]
fn barrier_synchronizes_all_ranks() {
    for size in [3, 7, 8] {
        let mut s = sim(size);
        let nodes = s.world.node_ids();
        let job = harness::launch(&mut s, &nodes, size, 128, |rank, size| {
            let mut ops = Vec::new();
            // Stagger ranks with different compute so the barrier is real.
            ops.push(Op::ComputeNs(1_000_000 * (rank as u64 + 1)));
            ops.extend(collectives::barrier(rank, size, 100));
            ops.push(Op::Marker("past-barrier"));
            ops.extend(collectives::barrier(rank, size, 200));
            (ops, RankData::new())
        });
        run_job(&mut s, &job, horizon()).expect("barrier job failed");
        for r in 0..size {
            assert_eq!(
                harness::rank(&s, &job, r).stats.markers.len(),
                1,
                "rank {r} missed the barrier marker (size {size})"
            );
        }
    }
}

#[test]
fn bcast_delivers_payload_to_all() {
    let size = 9;
    let root = 4;
    let mut s = sim(size);
    let nodes = s.world.node_ids();
    let payload: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
    let expect = payload.clone();
    let job = harness::launch(&mut s, &nodes, size, 128, move |rank, size| {
        let mut data = RankData::new();
        if rank == root {
            data.set("blob", Value::F64Vec(payload.clone()));
        }
        (collectives::bcast(root, rank, size, 300, "blob"), data)
    });
    run_job(&mut s, &job, horizon()).expect("bcast failed");
    for r in 0..size {
        assert_eq!(
            harness::rank(&s, &job, r).data.vec_f64("blob"),
            &expect,
            "rank {r} got a wrong broadcast"
        );
    }
}

fn fold_sum(d: &mut RankData, rank: usize, size: usize) {
    let _ = rank;
    let mut total = d.f64("x");
    for i in 0..size {
        let key = format!("x.from.{i}");
        if d.contains(&key) {
            total += d.f64(&key);
        }
    }
    d.set("x", Value::F64(total));
}

#[test]
fn allreduce_sums_across_ranks() {
    let size = 6;
    let mut s = sim(size);
    let nodes = s.world.node_ids();
    let job = harness::launch(&mut s, &nodes, size, 128, |rank, size| {
        let mut data = RankData::new();
        data.set("x", Value::F64((rank + 1) as f64));
        (collectives::allreduce(rank, size, 400, "x", fold_sum), data)
    });
    run_job(&mut s, &job, horizon()).expect("allreduce failed");
    let expect = (size * (size + 1) / 2) as f64;
    for r in 0..size {
        assert_eq!(
            harness::rank(&s, &job, r).data.f64("x"),
            expect,
            "rank {r} sum mismatch"
        );
    }
}

#[test]
fn alltoall_exchanges_distinct_blocks() {
    let size = 5;
    let mut s = sim(size);
    let nodes = s.world.node_ids();
    let job = harness::launch(&mut s, &nodes, size, 128, |rank, size| {
        let mut data = RankData::new();
        for to in 0..size {
            if to == rank {
                continue;
            }
            // Block content encodes (sender, receiver).
            data.set(
                format!("t.send.{to}"),
                Value::U64Vec(vec![
                    rank as u64,
                    to as u64,
                    1000 + (rank * size + to) as u64,
                ]),
            );
        }
        (collectives::alltoall(rank, size, 500, "t"), data)
    });
    run_job(&mut s, &job, horizon()).expect("alltoall failed");
    for r in 0..size {
        let rt = harness::rank(&s, &job, r);
        for from in 0..size {
            if from == r {
                continue;
            }
            let blk = rt
                .data
                .get(&format!("t.recv.{from}"))
                .and_then(Value::as_u64_vec)
                .unwrap_or_else(|| panic!("rank {r} missing block from {from}"));
            assert_eq!(
                blk,
                &vec![from as u64, r as u64, 1000 + (from * size + r) as u64]
            );
        }
    }
}

#[test]
fn iterative_ring_with_gen_loops() {
    // Each rank circulates a counter around the ring ITER times using a
    // Gen-driven loop; total hops = ITER * size.
    const ITER: u64 = 20;
    fn loop_gen(d: &mut RankData, rank: usize, size: usize) -> Vec<Op> {
        let iter = d.u64("iter");
        if iter >= ITER {
            return vec![Op::Marker("ring-done")];
        }
        d.set("iter", Value::U64(iter + 1));
        let next = (rank + 1) % size;
        let prev = (rank + size - 1) % size;
        let mut ops = vec![Op::ComputeNs(50_000)];
        if rank == 0 {
            ops.push(Op::Apply(|d, _r, _s| {
                let v = d.u64("token") + 1;
                d.set("token", Value::U64(v));
            }));
            ops.push(Op::send(next, 900, "token"));
            ops.push(Op::recv(prev, 900, "token"));
        } else {
            ops.push(Op::recv(prev, 900, "token"));
            ops.push(Op::Apply(|d, _r, _s| {
                let v = d.u64("token") + 1;
                d.set("token", Value::U64(v));
            }));
            ops.push(Op::send(next, 900, "token"));
        }
        ops.push(Op::Gen(loop_gen));
        ops
    }
    let size = 8;
    let mut s = sim(4); // 8 ranks on 4 nodes: two VMs per node
    let nodes = s.world.node_ids();
    let job = harness::launch(&mut s, &nodes, size, 128, |_rank, _size| {
        let mut data = RankData::new();
        data.set("iter", Value::U64(0));
        data.set("token", Value::U64(0));
        (vec![Op::Gen(loop_gen)], data)
    });
    run_job(&mut s, &job, horizon()).expect("ring failed");
    // Token was incremented once per rank per lap.
    let token = harness::rank(&s, &job, 0).data.u64("token");
    assert_eq!(token, ITER * size as u64);
}

#[test]
fn job_runs_are_deterministic() {
    let run = || {
        let size = 4;
        let mut s = sim(size);
        let nodes = s.world.node_ids();
        let job = harness::launch(&mut s, &nodes, size, 128, |rank, size| {
            let mut ops = vec![Op::ComputeNs(123_456 * (rank as u64 + 1))];
            ops.extend(collectives::barrier(rank, size, 100));
            ops.extend(collectives::alltoall(rank, size, 600, "t"));
            let mut data = RankData::new();
            for to in 0..size {
                if to != rank {
                    data.set(format!("t.send.{to}"), Value::U64(to as u64));
                }
            }
            (ops, data)
        });
        let end = run_job(&mut s, &job, horizon()).expect("job failed");
        let st = harness::rank(&s, &job, 0).stats.clone();
        (end, st.msgs_sent, st.bytes_sent)
    };
    assert_eq!(run(), run());
}

#[test]
fn large_sparse_ring_avoids_full_mesh() {
    // 128 ranks on 16 nodes with the ring hint: only 2 connections per rank.
    let size = 128;
    let mut s = sim(16);
    let nodes = s.world.node_ids();
    fn lap(d: &mut RankData, rank: usize, size: usize) -> Vec<Op> {
        let iter = d.u64("iter");
        if iter >= 3 {
            return vec![Op::Marker("done")];
        }
        d.set("iter", Value::U64(iter + 1));
        let next = (rank + 1) % size;
        let prev = (rank + size - 1) % size;
        let tag = 700 + iter as u32;
        let mut ops = vec![Op::Apply(|d, r, _s| d.set("tok", Value::U64(r as u64)))];
        if rank.is_multiple_of(2) {
            ops.push(Op::send(next, tag, "tok"));
            ops.push(Op::recv(prev, tag, "got"));
        } else {
            ops.push(Op::recv(prev, tag, "got"));
            ops.push(Op::send(next, tag, "tok"));
        }
        ops.push(Op::Gen(lap));
        ops
    }
    let job = dvc_mpi::harness::launch_hinted(
        &mut s,
        &nodes,
        size,
        64,
        |_r, _s| {
            let mut d = RankData::new();
            d.set("iter", Value::U64(0));
            (vec![Op::Gen(lap)], d)
        },
        dvc_mpi::harness::ring_hint,
    );
    run_job(&mut s, &job, horizon()).expect("sparse ring failed");
    for r in 0..size {
        let rt = harness::rank(&s, &job, r);
        let prev = (r + size - 1) % size;
        assert_eq!(rt.data.u64("got"), prev as u64);
        // Guest TCP really only holds the sparse connection set.
        let vm = s.world.vm(job.vms[r]).unwrap();
        assert!(
            vm.guest.tcp.socket_count() <= 4,
            "rank {r} has {} sockets",
            vm.guest.tcp.socket_count()
        );
    }
}
