//! # dvc-mpi
//!
//! An MPI-flavoured message-passing runtime that runs *inside guests* over
//! the simulated TCP stack — the workload layer whose transparent
//! checkpointing DVC exists to provide.
//!
//! Architecture:
//!
//! * [`data`] — [`data::RankData`], a rank's named value store, and the wire
//!   encoding of [`data::Value`]s. Everything is `Clone`, so a whole-VM
//!   snapshot carries rank state for free.
//! * [`ops`] — rank programs are [`ops::Op`] scripts: compute, tagged
//!   send/recv, data transforms (`Apply`) and dynamic expansion (`Gen`) via
//!   plain `fn` pointers (keeping programs `Clone` without any serialization
//!   framework).
//! * [`collectives`] — barrier (dissemination), broadcast (binomial tree),
//!   reduce/allreduce, gather, and all-to-all (pairwise exchange), each
//!   expanded into point-to-point ops.
//! * [`runtime`] — [`runtime::MpiRuntime`], a [`dvc_vmm::GuestProc`]: eager
//!   full-mesh connection establishment with rank hellos, length-prefixed
//!   message framing with per-peer reassembly, a tag/source-matched inbox,
//!   and the script executor.
//! * [`harness`] — helpers that build a virtual cluster of single-rank VMs
//!   and launch a program on it (used by workloads, dvc-core, tests and
//!   benches).

pub mod collectives;
pub mod data;
pub mod harness;
pub mod ops;
pub mod runtime;

pub use data::{RankData, Value};
pub use ops::Op;
pub use runtime::{MpiRuntime, RankMap, MPI_PORT};
