//! The rank runtime: a guest process executing a rank program.
//!
//! Wire protocol: length-prefixed frames over the guest TCP stream —
//! `src_rank:u32 | tag:u32 | len:u32 | payload[len]` — with a per-peer
//! reassembly buffer. Connections form a full mesh: rank r actively connects
//! to every lower rank and accepts from every higher rank; the first frame
//! on an accepted stream is a `HELLO` identifying the sender.
//!
//! The runtime is a plain `Clone` value: a VM snapshot captures a rank
//! mid-collective, in-flight frames and all. That is the entire point.

use crate::data::{RankData, Value};
use crate::ops::{push_front, Op};
use bytes::{BufMut, Bytes, BytesMut};
use dvc_net::tcp::{LocalNs, SockId, TcpState};
use dvc_net::{Addr, ByteQueue};
use dvc_sim_core::SimDuration;
use dvc_vmm::guest::{GuestCtx, GuestProc, ProcPoll};
use std::collections::{HashMap, VecDeque};

/// The port every rank's runtime listens on (one rank per VM).
pub const MPI_PORT: u16 = 6000;

/// Frame tag reserved for connection hellos.
const HELLO_TAG: u32 = u32::MAX;

/// Frame header bytes.
const HDR: usize = 12;

/// rank → virtual address of the VM hosting it.
pub type RankMap = Vec<Addr>;

/// Progress/traffic counters for one rank.
#[derive(Clone, Debug, Default)]
pub struct MpiStats {
    pub msgs_sent: u64,
    pub msgs_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub compute_ns: u64,
    pub ops_executed: u64,
    pub started_at: Option<LocalNs>,
    pub finished_at: Option<LocalNs>,
    /// `Op::Marker` hits with their guest wall-clock stamps.
    pub markers: Vec<(&'static str, LocalNs)>,
}

#[derive(Clone, Debug, PartialEq)]
enum Phase {
    Connecting,
    Running,
    Draining,
    Done,
    Failed(String),
}

#[derive(Clone, Debug, Default)]
struct PeerConn {
    sock: Option<SockId>,
    /// Framed chunks the stack has not yet accepted. Each frame is built
    /// once and handed to the stack without further copies.
    tx: ByteQueue,
    /// Reassembly buffer (drained into by `TcpStack::recv_into`).
    rx: Vec<u8>,
}

/// The per-rank message-passing runtime (a guest process).
#[derive(Clone)]
pub struct MpiRuntime {
    pub rank: usize,
    pub size: usize,
    map: RankMap,
    /// Node speed used to convert `Op::Compute{flops}` into time.
    gflops: f64,
    phase: Phase,
    listener: Option<SockId>,
    peers: HashMap<usize, PeerConn>,
    /// Ranks this rank communicates with (None = all). A sparse hint keeps
    /// large jobs (e.g. a 1024-rank ring) from building a full mesh.
    peer_hint: Option<Vec<usize>>,
    /// Accepted sockets awaiting their HELLO frame.
    pending_accepts: Vec<(SockId, Vec<u8>)>,
    inbox: HashMap<(usize, u32), VecDeque<Vec<u8>>>,
    script: VecDeque<Op>,
    pub data: RankData,
    pub stats: MpiStats,
}

impl MpiRuntime {
    pub fn new(
        rank: usize,
        size: usize,
        map: RankMap,
        gflops: f64,
        program: Vec<Op>,
        data: RankData,
    ) -> Self {
        assert_eq!(map.len(), size, "rank map must cover all ranks");
        assert!(rank < size);
        assert!(gflops > 0.0);
        MpiRuntime {
            rank,
            size,
            map,
            gflops,
            phase: Phase::Connecting,
            listener: None,
            peers: HashMap::new(),
            peer_hint: None,
            pending_accepts: Vec::new(),
            inbox: HashMap::new(),
            script: program.into(),
            data,
            stats: MpiStats::default(),
        }
    }

    /// Restrict eager connection establishment to the given peer ranks
    /// (e.g. ring neighbours). Messages to ranks outside the hint are a
    /// programming error in lazy jobs.
    pub fn with_peer_hint(mut self, peers: Vec<usize>) -> Self {
        let mut p = peers;
        p.retain(|&r| r != self.rank && r < self.size);
        p.sort_unstable();
        p.dedup();
        self.peer_hint = Some(p);
        self
    }

    fn peer_ranks(&self) -> Vec<usize> {
        match &self.peer_hint {
            Some(p) => p.clone(),
            None => (0..self.size).filter(|&r| r != self.rank).collect(),
        }
    }

    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    pub fn failure(&self) -> Option<&str> {
        match &self.phase {
            Phase::Failed(e) => Some(e),
            _ => None,
        }
    }

    /// Remaining ops (diagnostics).
    pub fn remaining_ops(&self) -> usize {
        self.script.len()
    }

    fn frame(&self, tag: u32, payload: &[u8]) -> Bytes {
        let mut b = BytesMut::with_capacity(HDR + payload.len());
        b.put_u32_le(self.rank as u32);
        b.put_u32_le(tag);
        b.put_u32_le(payload.len() as u32);
        b.put_slice(payload);
        b.freeze()
    }

    /// Queue a framed message toward `to` (or loop it back locally).
    fn post(&mut self, to: usize, tag: u32, payload: Vec<u8>) {
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        if to == self.rank {
            self.stats.msgs_received += 1;
            self.stats.bytes_received += payload.len() as u64;
            self.inbox.entry((to, tag)).or_default().push_back(payload);
            return;
        }
        let framed = self.frame(tag, &payload);
        self.peers.entry(to).or_default().tx.push_bytes(framed);
    }

    /// Parse complete frames out of a peer's reassembly buffer.
    fn parse_frames(&mut self, from: usize) {
        loop {
            let peer = self.peers.entry(from).or_default();
            let rxlen = peer.rx.len();
            if rxlen < HDR {
                return;
            }
            let rx = &peer.rx;
            let src = u32::from_le_bytes(rx[0..4].try_into().unwrap()) as usize;
            let tag = u32::from_le_bytes(rx[4..8].try_into().unwrap());
            let len = u32::from_le_bytes(rx[8..12].try_into().unwrap()) as usize;
            if rxlen < HDR + len {
                return;
            }
            let payload = peer.rx[HDR..HDR + len].to_vec();
            peer.rx.drain(..HDR + len);
            if tag == HELLO_TAG {
                continue; // duplicate hello (harmless)
            }
            self.stats.msgs_received += 1;
            self.stats.bytes_received += payload.len() as u64;
            self.inbox.entry((src, tag)).or_default().push_back(payload);
        }
    }

    /// Drive connection establishment, reads, and tx flushing.
    fn pump_io(&mut self, ctx: &mut GuestCtx<'_>) -> Result<(), String> {
        // Listener.
        if self.listener.is_none() && self.size > 1 {
            self.listener = Some(
                ctx.tcp
                    .listen(MPI_PORT)
                    .map_err(|e| format!("listen: {e}"))?,
            );
        }

        // Active opens toward lower-ranked peers (once).
        for r in self.peer_ranks() {
            if r >= self.rank {
                continue;
            }
            if self.peers.entry(r).or_default().sock.is_none() {
                let sock = ctx.tcp.connect(ctx.now, self.map[r], MPI_PORT);
                let hello = self.frame(HELLO_TAG, &[]);
                let peer = self.peers.get_mut(&r).unwrap();
                peer.sock = Some(sock);
                // Say hello as the first frame on the stream.
                peer.tx.push_bytes(hello);
            }
        }

        // Accept from higher ranks.
        if let Some(listener) = self.listener {
            while let Some(sock) = ctx.tcp.accept(listener) {
                self.pending_accepts.push((sock, Vec::new()));
            }
        }

        // Identify pending accepts by their hello.
        let mut identified = Vec::new();
        for i in 0..self.pending_accepts.len() {
            let (sock, ref mut buf) = self.pending_accepts[i];
            ctx.tcp.recv_into(ctx.now, sock, buf, usize::MAX);
            let buf = &self.pending_accepts[i].1;
            if buf.len() >= HDR {
                let src = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
                let tag = u32::from_le_bytes(buf[4..8].try_into().unwrap());
                if tag != HELLO_TAG || src >= self.size {
                    return Err(format!("bad hello from socket {sock}: src={src} tag={tag}"));
                }
                identified.push((i, src));
            }
        }
        for &(i, src) in identified.iter().rev() {
            let (sock, buf) = self.pending_accepts.remove(i);
            let peer = self.peers.entry(src).or_default();
            peer.sock = Some(sock);
            peer.rx.extend_from_slice(&buf[HDR..]);
            self.parse_frames(src);
        }

        // Per-peer reads, error checks, tx flushing (sorted: HashMap order
        // must never leak into event ordering — determinism).
        let mut ranks: Vec<usize> = self.peers.keys().copied().collect();
        ranks.sort_unstable();
        for r in ranks {
            let Some(sock) = self.peers[&r].sock else {
                continue;
            };
            if let Some(err) = ctx.tcp.error(sock) {
                return Err(format!(
                    "rank {}: connection to rank {r} failed: {err:?}",
                    self.rank
                ));
            }
            {
                let peer = self.peers.get_mut(&r).unwrap();
                ctx.tcp.recv_into(ctx.now, sock, &mut peer.rx, usize::MAX);
            }
            self.parse_frames(r);
            // Flush queued tx chunks (only possible once established). The
            // chunks pass to the stack's send queue without being copied.
            if matches!(
                ctx.tcp.state(sock),
                Some(TcpState::Established) | Some(TcpState::CloseWait)
            ) {
                let peer = self.peers.get_mut(&r).unwrap();
                while !peer.tx.is_empty() {
                    let cap = ctx.tcp.send_capacity(sock);
                    if cap == 0 {
                        break;
                    }
                    let chunk = peer.tx.pop_bytes(cap);
                    let sent = chunk.len();
                    let n = ctx.tcp.send_bytes(ctx.now, sock, chunk);
                    debug_assert_eq!(n, sent, "capacity-bounded send must be accepted");
                    if n == 0 {
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// The mesh is up when every peer connection is *established* and its
    /// hello has been flushed — only then may the rank program start
    /// (MPI_Init semantics). Starting earlier would let a long first
    /// compute slice sit on an unsent hello and starve the peer.
    fn mesh_ready(&self, ctx: &mut GuestCtx<'_>) -> bool {
        self.peer_ranks().iter().all(|r| {
            self.peers.get(r).is_some_and(|p| {
                p.tx.is_empty()
                    && p.sock.is_some_and(|sock| {
                        matches!(
                            ctx.tcp.state(sock),
                            Some(TcpState::Established) | Some(TcpState::CloseWait)
                        )
                    })
            })
        })
    }

    fn tx_drained(&self) -> bool {
        self.peers.values().all(|p| p.tx.is_empty())
    }

    /// Execute script ops until one blocks/yields.
    fn step_script(&mut self, ctx: &mut GuestCtx<'_>) -> ProcPoll {
        loop {
            let Some(op) = self.script.pop_front() else {
                self.phase = Phase::Draining;
                return self.drain(ctx);
            };
            self.stats.ops_executed += 1;
            match op {
                Op::Compute { flops } => {
                    let ns = (flops / self.gflops).max(1.0); // gflops ⇒ flops/ns
                    self.stats.compute_ns += ns as u64;
                    return ProcPoll::Compute(SimDuration::from_nanos(ns as u64));
                }
                Op::ComputeNs(ns) => {
                    self.stats.compute_ns += ns;
                    return ProcPoll::Compute(SimDuration::from_nanos(ns.max(1)));
                }
                Op::Send { to, tag, slot } => {
                    let Some(v) = self.data.get(&slot) else {
                        return self.fail(format!("send: no value at '{slot}'"));
                    };
                    let payload = v.encode().to_vec();
                    self.post(to, tag, payload);
                    // Opportunistic flush keeps latency low.
                    if let Err(e) = self.pump_io(ctx) {
                        return self.fail(e);
                    }
                }
                Op::Recv { from, tag, into } => {
                    let msg = self.inbox.get_mut(&(from, tag)).and_then(|q| q.pop_front());
                    match msg {
                        Some(payload) => match Value::decode(bytes::Bytes::from(payload)) {
                            Ok(v) => self.data.set(into, v),
                            Err(e) => return self.fail(format!("recv decode: {e}")),
                        },
                        None => {
                            // Not here yet: retry on the next wakeup.
                            self.script.push_front(Op::Recv { from, tag, into });
                            self.stats.ops_executed -= 1;
                            return ProcPoll::Blocked;
                        }
                    }
                }
                Op::Apply(f) => f(&mut self.data, self.rank, self.size),
                Op::Gen(f) => {
                    let ops = f(&mut self.data, self.rank, self.size);
                    push_front(&mut self.script, ops);
                }
                Op::DiskWriteSlot { slot } => {
                    let bytes = self
                        .data
                        .get(&slot)
                        .map(|v| v.wire_len() as u64)
                        .unwrap_or(0);
                    let done_at = ctx.disk.write(ctx.now, bytes);
                    return ProcPoll::SleepUntil(done_at);
                }
                Op::DiskWrite { bytes } => {
                    let done_at = ctx.disk.write(ctx.now, bytes);
                    return ProcPoll::SleepUntil(done_at);
                }
                Op::Marker(m) => {
                    self.stats.markers.push((m, ctx.now));
                }
            }
        }
    }

    fn drain(&mut self, ctx: &mut GuestCtx<'_>) -> ProcPoll {
        if let Err(e) = self.pump_io(ctx) {
            return self.fail(e);
        }
        if self.tx_drained() {
            self.phase = Phase::Done;
            self.stats.finished_at = Some(ctx.now);
            ProcPoll::Done
        } else {
            ProcPoll::Blocked
        }
    }

    fn fail(&mut self, msg: String) -> ProcPoll {
        self.phase = Phase::Failed(msg.clone());
        ProcPoll::Failed(msg)
    }
}

impl GuestProc for MpiRuntime {
    fn poll(&mut self, ctx: &mut GuestCtx<'_>) -> ProcPoll {
        if self.stats.started_at.is_none() {
            self.stats.started_at = Some(ctx.now);
        }
        match &self.phase {
            Phase::Done => return ProcPoll::Done,
            Phase::Failed(e) => return ProcPoll::Failed(e.clone()),
            _ => {}
        }
        if let Err(e) = self.pump_io(ctx) {
            return self.fail(e);
        }
        match self.phase {
            Phase::Connecting => {
                if self.mesh_ready(ctx) {
                    self.phase = Phase::Running;
                    self.step_script(ctx)
                } else {
                    ProcPoll::Blocked
                }
            }
            Phase::Running => self.step_script(ctx),
            Phase::Draining => self.drain(ctx),
            _ => unreachable!(),
        }
    }

    fn clone_box(&self) -> Box<dyn GuestProc> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "mpi-rank"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout() {
        let rt = MpiRuntime::new(
            3,
            4,
            vec![Addr::Virt(dvc_net::VirtAddr(0)); 4],
            1.0,
            vec![],
            RankData::new(),
        );
        let f = rt.frame(7, b"abc");
        assert_eq!(f.len(), HDR + 3);
        assert_eq!(u32::from_le_bytes(f[0..4].try_into().unwrap()), 3);
        assert_eq!(u32::from_le_bytes(f[4..8].try_into().unwrap()), 7);
        assert_eq!(u32::from_le_bytes(f[8..12].try_into().unwrap()), 3);
        assert_eq!(&f[12..], b"abc");
    }

    #[test]
    fn self_send_loops_back() {
        let mut rt = MpiRuntime::new(
            0,
            1,
            vec![Addr::Virt(dvc_net::VirtAddr(0))],
            1.0,
            vec![],
            RankData::new(),
        );
        rt.post(0, 5, Value::U64(9).encode().to_vec());
        let msg = rt.inbox.get_mut(&(0, 5)).unwrap().pop_front().unwrap();
        assert_eq!(
            Value::decode(bytes::Bytes::from(msg)).unwrap(),
            Value::U64(9)
        );
        assert_eq!(rt.stats.msgs_sent, 1);
        assert_eq!(rt.stats.msgs_received, 1);
    }

    #[test]
    fn parse_frames_handles_partials() {
        let mut rt = MpiRuntime::new(
            0,
            2,
            vec![Addr::Virt(dvc_net::VirtAddr(0)); 2],
            1.0,
            vec![],
            RankData::new(),
        );
        let payload = Value::F64(2.5).encode().to_vec();
        let mut f = MpiRuntime::new(
            1,
            2,
            vec![Addr::Virt(dvc_net::VirtAddr(0)); 2],
            1.0,
            vec![],
            RankData::new(),
        )
        .frame(9, &payload);
        let second_half = f.split_off(7);
        rt.peers.entry(1).or_default().rx.extend_from_slice(&f);
        rt.parse_frames(1);
        assert!(rt.inbox.is_empty(), "partial frame must not parse");
        rt.peers
            .entry(1)
            .or_default()
            .rx
            .extend_from_slice(&second_half);
        rt.parse_frames(1);
        let msg = rt.inbox.get_mut(&(1, 9)).unwrap().pop_front().unwrap();
        assert_eq!(
            Value::decode(bytes::Bytes::from(msg)).unwrap(),
            Value::F64(2.5)
        );
        assert!(rt.peers[&1].rx.is_empty());
    }
}
