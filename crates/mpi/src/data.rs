//! Rank-local data: named values and their wire encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;

/// A value a rank can hold and ship.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    F64(f64),
    U64(u64),
    F64Vec(Vec<f64>),
    U64Vec(Vec<u64>),
    Bytes(Vec<u8>),
}

impl Value {
    /// Payload size on the wire (excluding framing), bytes.
    pub fn wire_len(&self) -> usize {
        1 + match self {
            Value::F64(_) | Value::U64(_) => 8,
            Value::F64Vec(v) => 8 + v.len() * 8,
            Value::U64Vec(v) => 8 + v.len() * 8,
            Value::Bytes(b) => 8 + b.len(),
        }
    }

    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.wire_len());
        match self {
            Value::F64(x) => {
                b.put_u8(0);
                b.put_f64_le(*x);
            }
            Value::U64(x) => {
                b.put_u8(1);
                b.put_u64_le(*x);
            }
            Value::F64Vec(v) => {
                b.put_u8(2);
                b.put_u64_le(v.len() as u64);
                for x in v {
                    b.put_f64_le(*x);
                }
            }
            Value::U64Vec(v) => {
                b.put_u8(3);
                b.put_u64_le(v.len() as u64);
                for x in v {
                    b.put_u64_le(*x);
                }
            }
            Value::Bytes(v) => {
                b.put_u8(4);
                b.put_u64_le(v.len() as u64);
                b.put_slice(v);
            }
        }
        b.freeze()
    }

    pub fn decode(mut buf: Bytes) -> Result<Value, String> {
        if buf.is_empty() {
            return Err("empty value".into());
        }
        let tag = buf.get_u8();
        let need = |b: &Bytes, n: usize| -> Result<(), String> {
            if b.len() < n {
                Err(format!("short value: need {n}, have {}", b.len()))
            } else {
                Ok(())
            }
        };
        match tag {
            0 => {
                need(&buf, 8)?;
                Ok(Value::F64(buf.get_f64_le()))
            }
            1 => {
                need(&buf, 8)?;
                Ok(Value::U64(buf.get_u64_le()))
            }
            2 => {
                need(&buf, 8)?;
                let n = buf.get_u64_le() as usize;
                need(&buf, n * 8)?;
                Ok(Value::F64Vec((0..n).map(|_| buf.get_f64_le()).collect()))
            }
            3 => {
                need(&buf, 8)?;
                let n = buf.get_u64_le() as usize;
                need(&buf, n * 8)?;
                Ok(Value::U64Vec((0..n).map(|_| buf.get_u64_le()).collect()))
            }
            4 => {
                need(&buf, 8)?;
                let n = buf.get_u64_le() as usize;
                need(&buf, n)?;
                Ok(Value::Bytes(buf.slice(..n).to_vec()))
            }
            t => Err(format!("unknown value tag {t}")),
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_f64_vec(&self) -> Option<&Vec<f64>> {
        match self {
            Value::F64Vec(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64_vec(&self) -> Option<&Vec<u64>> {
        match self {
            Value::U64Vec(v) => Some(v),
            _ => None,
        }
    }
}

/// A rank's named-value store. All application state lives here so that
/// programs stay `Clone` (snapshots) while still being expressed with plain
/// `fn` pointers.
#[derive(Clone, Debug, Default)]
pub struct RankData {
    map: HashMap<String, Value>,
}

impl RankData {
    pub fn new() -> Self {
        RankData::default()
    }

    pub fn set(&mut self, key: impl Into<String>, v: Value) {
        self.map.insert(key.into(), v);
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.map.get(key)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.map.get_mut(key)
    }

    pub fn take(&mut self, key: &str) -> Option<Value> {
        self.map.remove(key)
    }

    pub fn f64(&self, key: &str) -> f64 {
        self.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
    }

    pub fn u64(&self, key: &str) -> u64 {
        self.get(key).and_then(Value::as_u64).unwrap_or(0)
    }

    pub fn vec_f64(&self, key: &str) -> &Vec<f64> {
        self.get(key)
            .and_then(Value::as_f64_vec)
            .unwrap_or_else(|| panic!("no f64 vec at '{key}'"))
    }

    pub fn vec_f64_mut(&mut self, key: &str) -> &mut Vec<f64> {
        match self.get_mut(key) {
            Some(Value::F64Vec(v)) => v,
            _ => panic!("no f64 vec at '{key}'"),
        }
    }

    pub fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// Total wire size of all values (used by app-level checkpoint sizing).
    pub fn total_wire_len(&self) -> u64 {
        self.map.values().map(|v| v.wire_len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let vals = vec![
            Value::F64(3.5),
            Value::U64(42),
            Value::F64Vec(vec![1.0, -2.0, 3.25]),
            Value::U64Vec(vec![7, 8]),
            Value::Bytes(vec![1, 2, 3, 4, 5]),
        ];
        for v in vals {
            let enc = v.encode();
            assert_eq!(enc.len(), v.wire_len());
            let dec = Value::decode(enc).unwrap();
            assert_eq!(dec, v);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Value::decode(Bytes::new()).is_err());
        assert!(Value::decode(Bytes::from_static(&[9, 0, 0])).is_err());
        assert!(Value::decode(Bytes::from_static(&[2, 255, 0, 0, 0, 0, 0, 0, 0])).is_err());
    }

    #[test]
    fn rankdata_accessors() {
        let mut d = RankData::new();
        d.set("x", Value::F64(1.5));
        d.set("v", Value::F64Vec(vec![1.0, 2.0]));
        assert_eq!(d.f64("x"), 1.5);
        assert!(d.f64("missing").is_nan());
        d.vec_f64_mut("v").push(3.0);
        assert_eq!(d.vec_f64("v").len(), 3);
        assert!(d.contains("x"));
        let taken = d.take("x").unwrap();
        assert_eq!(taken, Value::F64(1.5));
        assert!(!d.contains("x"));
    }

    #[test]
    fn total_wire_len_sums() {
        let mut d = RankData::new();
        d.set("a", Value::U64(1)); // 9
        d.set("b", Value::Bytes(vec![0; 10])); // 19
        assert_eq!(d.total_wire_len(), 28);
    }
}
