//! Launch helpers: put an MPI program onto a set of VMs.
//!
//! One rank per VM; VMs are placed round-robin onto the given physical
//! nodes. Returns a handle used to query progress, extract results, and —
//! by the DVC layer — to checkpoint the whole set.

use crate::data::RankData;
use crate::ops::Op;
use crate::runtime::MpiRuntime;
use dvc_cluster::glue::{create_vm, spawn_proc};
use dvc_cluster::node::NodeId;
use dvc_cluster::world::ClusterWorld;
use dvc_sim_core::{Event, MpiEvent, Sim, SimTime};
use dvc_vmm::VmId;

/// A launched MPI job.
#[derive(Clone, Debug)]
pub struct MpiJob {
    /// `vms[i]` hosts rank i.
    pub vms: Vec<VmId>,
    pub size: usize,
}

/// Create `n_ranks` VMs (round-robin over `nodes`) and start `program(rank)`
/// in each. The per-rank program builder receives `(rank, size)`.
pub fn launch(
    sim: &mut Sim<ClusterWorld>,
    nodes: &[NodeId],
    n_ranks: usize,
    mem_mb: u32,
    program: impl Fn(usize, usize) -> (Vec<Op>, RankData),
) -> MpiJob {
    assert!(!nodes.is_empty());
    // Pass 1: create the VMs so every rank's address is known.
    let mut vms = Vec::with_capacity(n_ranks);
    for i in 0..n_ranks {
        let node = nodes[i % nodes.len()];
        let vm = create_vm(sim, node, mem_mb, 1);
        vms.push(vm);
    }
    let map: Vec<dvc_net::Addr> = vms
        .iter()
        .map(|&vm| sim.world.vm(vm).unwrap().guest.addr)
        .collect();
    // Pass 2: spawn the rank runtimes.
    for (rank, &vm) in vms.iter().enumerate() {
        let node = sim.world.vm_host[&vm];
        let gflops = sim.world.node(node).cpu_gflops;
        let (ops, data) = program(rank, n_ranks);
        let rt = MpiRuntime::new(rank, n_ranks, map.clone(), gflops, ops, data);
        spawn_proc(sim, vm, format!("rank{rank}"), Box::new(rt));
    }
    sim.emit(Event::Mpi(MpiEvent::JobLaunched {
        ranks: n_ranks as u32,
    }));
    MpiJob { vms, size: n_ranks }
}

/// Start `program(rank, size)` on an *existing* set of VMs (one rank per
/// VM) — e.g. the vnodes of a provisioned virtual cluster. The rank map is
/// taken from the VMs' virtual addresses in order.
pub fn launch_on_vms(
    sim: &mut Sim<ClusterWorld>,
    vms: &[VmId],
    program: impl Fn(usize, usize) -> (Vec<Op>, RankData),
) -> MpiJob {
    let n_ranks = vms.len();
    let map: Vec<dvc_net::Addr> = vms
        .iter()
        .map(|&vm| sim.world.vm(vm).expect("vm exists").guest.addr)
        .collect();
    for (rank, &vm) in vms.iter().enumerate() {
        let node = sim.world.vm_host[&vm];
        let gflops = sim.world.node(node).cpu_gflops;
        let (ops, data) = program(rank, n_ranks);
        let rt = MpiRuntime::new(rank, n_ranks, map.clone(), gflops, ops, data);
        spawn_proc(sim, vm, format!("rank{rank}"), Box::new(rt));
    }
    sim.emit(Event::Mpi(MpiEvent::JobLaunched {
        ranks: n_ranks as u32,
    }));
    MpiJob {
        vms: vms.to_vec(),
        size: n_ranks,
    }
}

/// Like [`launch`], but with a sparse connectivity hint: `hint(rank, size)`
/// names the only peers each rank talks to (e.g. ring neighbours), avoiding
/// a full mesh on very large jobs.
pub fn launch_hinted(
    sim: &mut Sim<ClusterWorld>,
    nodes: &[NodeId],
    n_ranks: usize,
    mem_mb: u32,
    program: impl Fn(usize, usize) -> (Vec<Op>, RankData),
    hint: impl Fn(usize, usize) -> Vec<usize>,
) -> MpiJob {
    assert!(!nodes.is_empty());
    let mut vms = Vec::with_capacity(n_ranks);
    for i in 0..n_ranks {
        let node = nodes[i % nodes.len()];
        let vm = create_vm(sim, node, mem_mb, 1);
        vms.push(vm);
    }
    let map: Vec<dvc_net::Addr> = vms
        .iter()
        .map(|&vm| sim.world.vm(vm).unwrap().guest.addr)
        .collect();
    for (rank, &vm) in vms.iter().enumerate() {
        let node = sim.world.vm_host[&vm];
        let gflops = sim.world.node(node).cpu_gflops;
        let (ops, data) = program(rank, n_ranks);
        let rt = MpiRuntime::new(rank, n_ranks, map.clone(), gflops, ops, data)
            .with_peer_hint(hint(rank, n_ranks));
        spawn_proc(sim, vm, format!("rank{rank}"), Box::new(rt));
    }
    sim.emit(Event::Mpi(MpiEvent::JobLaunched {
        ranks: n_ranks as u32,
    }));
    MpiJob { vms, size: n_ranks }
}

/// The ring-neighbour hint: `{rank−1, rank+1} mod size`.
pub fn ring_hint(rank: usize, size: usize) -> Vec<usize> {
    if size <= 1 {
        return vec![];
    }
    vec![(rank + 1) % size, (rank + size - 1) % size]
}

/// Borrow rank `r`'s runtime (panics if the VM or process is gone).
pub fn rank<'a>(sim: &'a Sim<ClusterWorld>, job: &MpiJob, r: usize) -> &'a MpiRuntime {
    let vm = sim.world.vm(job.vms[r]).expect("rank VM missing");
    vm.guest.procs[0]
        .app
        .as_any()
        .downcast_ref::<MpiRuntime>()
        .expect("proc 0 is the MPI runtime")
}

/// True when every rank finished successfully.
pub fn all_done(sim: &Sim<ClusterWorld>, job: &MpiJob) -> bool {
    job.vms.iter().all(|&vm| {
        sim.world
            .vm(vm)
            .is_some_and(|v| v.is_running() && v.guest.all_done())
    })
}

/// First failure across ranks, if any: (rank, error).
pub fn first_failure(sim: &Sim<ClusterWorld>, job: &MpiJob) -> Option<(usize, String)> {
    for (r, &vm) in job.vms.iter().enumerate() {
        match sim.world.vm(vm) {
            None => return Some((r, "vm destroyed".into())),
            Some(v) => {
                if v.state == dvc_vmm::VmState::Dead {
                    return Some((r, "vm dead".into()));
                }
                if let Some((_, err)) = v.guest.first_failure() {
                    return Some((r, err.to_string()));
                }
            }
        }
    }
    None
}

/// Run the sim until the job completes, fails, or the horizon passes.
/// Returns `Ok(completion_time)` or `Err(description)`.
pub fn run_job(
    sim: &mut Sim<ClusterWorld>,
    job: &MpiJob,
    horizon: SimTime,
) -> Result<SimTime, String> {
    loop {
        if all_done(sim, job) {
            return Ok(sim.now());
        }
        if let Some((r, e)) = first_failure(sim, job) {
            return Err(format!("rank {r}: {e}"));
        }
        if sim.now() > horizon {
            return Err(format!(
                "horizon exceeded at {} (remaining ops: {:?})",
                sim.now(),
                (0..job.size)
                    .map(|r| rank(sim, job, r).remaining_ops())
                    .collect::<Vec<_>>()
            ));
        }
        if !sim.step() {
            return Err("event queue drained before completion".into());
        }
    }
}
