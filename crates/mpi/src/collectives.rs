//! Collective operations, expanded to point-to-point op sequences.
//!
//! Tags: every collective invocation needs a tag range disjoint from other
//! traffic. Callers pass a `tag_base`; a collective consumes at most
//! [`TAGS_PER_COLLECTIVE`] consecutive tags.

use crate::data::Value;
use crate::ops::Op;

/// Reserve this many tags per collective invocation.
pub const TAGS_PER_COLLECTIVE: u32 = 64;

/// Dissemination barrier: ⌈log₂ n⌉ rounds; in round k, rank r sends a token
/// to (r + 2^k) mod n and receives from (r − 2^k) mod n.
pub fn barrier(rank: usize, size: usize, tag_base: u32) -> Vec<Op> {
    let mut ops = Vec::new();
    if size <= 1 {
        return ops;
    }
    let rounds = (usize::BITS - (size - 1).leading_zeros()) as usize;
    for k in 0..rounds {
        let stride = 1usize << k;
        let to = (rank + stride) % size;
        let from = (rank + size - stride) % size;
        let tag = tag_base + k as u32;
        let slot = format!("__bar.{tag}.{k}");
        ops.push(Op::Apply(set_token));
        // The token value lives at a fixed slot written by `set_token`.
        ops.push(Op::Send {
            to,
            tag,
            slot: "__token".into(),
        });
        ops.push(Op::Recv {
            from,
            tag,
            into: slot,
        });
    }
    ops
}

fn set_token(data: &mut crate::data::RankData, _rank: usize, _size: usize) {
    data.set("__token", Value::U64(1));
}

/// Binomial-tree broadcast of `slot` from `root`.
///
/// Ranks are renumbered relative to the root; in round k (from the top),
/// holders send to their partner `vrank + 2^k`.
pub fn bcast(root: usize, rank: usize, size: usize, tag_base: u32, slot: &str) -> Vec<Op> {
    let mut ops = Vec::new();
    if size <= 1 {
        return ops;
    }
    let vrank = (rank + size - root) % size;
    let rounds = (usize::BITS - (size - 1).leading_zeros()) as usize;
    // Receive once (if not root): from the highest set bit of vrank.
    if vrank != 0 {
        let bit = usize::BITS as usize - 1 - vrank.leading_zeros() as usize;
        let vfrom = vrank - (1 << bit);
        let from = (vfrom + root) % size;
        ops.push(Op::Recv {
            from,
            tag: tag_base + bit as u32,
            into: slot.to_string(),
        });
        // Then forward to children in higher rounds.
        for k in (bit + 1)..rounds {
            let vto = vrank + (1 << k);
            if vto < size {
                ops.push(Op::Send {
                    to: (vto + root) % size,
                    tag: tag_base + k as u32,
                    slot: slot.to_string(),
                });
            }
        }
    } else {
        for k in 0..rounds {
            let vto = 1usize << k;
            if vto < size {
                ops.push(Op::Send {
                    to: (vto + root) % size,
                    tag: tag_base + k as u32,
                    slot: slot.to_string(),
                });
            }
        }
    }
    ops
}

/// Linear gather of `slot` to `root`; rank i's contribution lands at
/// `{slot}.from.{i}` on the root.
pub fn gather(root: usize, rank: usize, size: usize, tag_base: u32, slot: &str) -> Vec<Op> {
    let mut ops = Vec::new();
    if rank == root {
        for i in 0..size {
            if i == root {
                continue;
            }
            ops.push(Op::Recv {
                from: i,
                tag: tag_base + i as u32,
                into: format!("{slot}.from.{i}"),
            });
        }
    } else {
        ops.push(Op::Send {
            to: root,
            tag: tag_base + rank as u32,
            slot: slot.to_string(),
        });
    }
    ops
}

/// Reduce `slot` to `root` along a flat tree: everyone sends, the root folds
/// contributions into its own `slot` with `combine` (an [`Op::Apply`]-style
/// fn that reads `{slot}.from.{i}` slots is awkward, so the fold happens in
/// the runtime-visible way: recv then apply a caller-provided fold fn).
pub fn reduce(
    root: usize,
    rank: usize,
    size: usize,
    tag_base: u32,
    slot: &str,
    fold: crate::ops::ApplyFn,
) -> Vec<Op> {
    let mut ops = gather(root, rank, size, tag_base, slot);
    if rank == root {
        ops.push(Op::Apply(fold));
    }
    ops
}

/// Allreduce = reduce to 0 + broadcast. The fold fn must combine all
/// `{slot}.from.{i}` values into `slot`.
pub fn allreduce(
    rank: usize,
    size: usize,
    tag_base: u32,
    slot: &str,
    fold: crate::ops::ApplyFn,
) -> Vec<Op> {
    let mut ops = reduce(0, rank, size, tag_base, slot, fold);
    ops.extend(bcast(0, rank, size, tag_base + size as u32, slot));
    ops
}

/// Pairwise-exchange all-to-all: in step k = 1..n, rank r sends
/// `{prefix}.send.{(r+k)%n}` to (r+k)%n and receives into
/// `{prefix}.recv.{(r−k)%n}`. The rank's own block is moved locally first
/// by the caller (or via an `Apply`).
pub fn alltoall(rank: usize, size: usize, tag_base: u32, prefix: &str) -> Vec<Op> {
    let mut ops = Vec::new();
    for k in 1..size {
        let to = (rank + k) % size;
        let from = (rank + size - k) % size;
        // Tag must identify the step uniquely; both directions of a pair use
        // the step tag, disambiguated by source matching.
        let tag = tag_base + k as u32;
        ops.push(Op::Send {
            to,
            tag,
            slot: format!("{prefix}.send.{to}"),
        });
        ops.push(Op::Recv {
            from,
            tag,
            into: format!("{prefix}.recv.{from}"),
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)]
    fn sends_and_recvs(ops: &[Op]) -> (Vec<(usize, u32)>, Vec<(usize, u32)>) {
        let mut s = Vec::new();
        let mut r = Vec::new();
        for op in ops {
            match op {
                Op::Send { to, tag, .. } => s.push((*to, *tag)),
                Op::Recv { from, tag, .. } => r.push((*from, *tag)),
                _ => {}
            }
        }
        (s, r)
    }

    /// Check a collective's send/recv multiset matches across ranks:
    /// every (src→dst, tag) send has exactly one matching recv.
    fn check_matched(all: &[Vec<Op>]) {
        let mut sends = std::collections::HashMap::new();
        let mut recvs = std::collections::HashMap::new();
        for (rank, ops) in all.iter().enumerate() {
            let (s, r) = sends_and_recvs(ops);
            for (to, tag) in s {
                *sends.entry((rank, to, tag)).or_insert(0) += 1;
            }
            for (from, tag) in r {
                *recvs.entry((from, rank, tag)).or_insert(0) += 1;
            }
        }
        assert_eq!(sends, recvs, "unmatched send/recv pairs");
    }

    #[test]
    fn barrier_is_matched_for_many_sizes() {
        for size in [2, 3, 4, 5, 8, 13, 26] {
            let all: Vec<Vec<Op>> = (0..size).map(|r| barrier(r, size, 100)).collect();
            check_matched(&all);
            // log2 rounds each
            let rounds = (usize::BITS - (size - 1_usize).leading_zeros()) as usize;
            let (s, _) = sends_and_recvs(&all[0]);
            assert_eq!(s.len(), rounds);
        }
    }

    #[test]
    fn barrier_trivial_for_one_rank() {
        assert!(barrier(0, 1, 0).is_empty());
    }

    #[test]
    fn bcast_is_matched_and_rooted() {
        for size in [2, 3, 6, 7, 16, 26] {
            for root in [0, 1, size - 1] {
                let all: Vec<Vec<Op>> = (0..size).map(|r| bcast(root, r, size, 200, "x")).collect();
                check_matched(&all);
                // Root only sends; every other rank receives exactly once.
                let (s, r) = sends_and_recvs(&all[root]);
                assert!(r.is_empty());
                assert!(!s.is_empty());
                for (i, ops) in all.iter().enumerate() {
                    if i == root {
                        continue;
                    }
                    let (_, r) = sends_and_recvs(ops);
                    assert_eq!(r.len(), 1, "rank {i} must receive exactly once");
                }
            }
        }
    }

    #[test]
    fn gather_collects_from_everyone() {
        let size = 9;
        let all: Vec<Vec<Op>> = (0..size).map(|r| gather(2, r, size, 300, "g")).collect();
        check_matched(&all);
        let (_, r) = sends_and_recvs(&all[2]);
        assert_eq!(r.len(), size - 1);
    }

    #[test]
    fn alltoall_is_fully_matched() {
        for size in [2, 3, 4, 8, 13] {
            let all: Vec<Vec<Op>> = (0..size).map(|r| alltoall(r, size, 400, "t")).collect();
            check_matched(&all);
            let (s, r) = sends_and_recvs(&all[0]);
            assert_eq!(s.len(), size - 1);
            assert_eq!(r.len(), size - 1);
        }
    }

    #[test]
    fn allreduce_ends_with_everyone_receiving_or_sending() {
        let size = 5;
        let all: Vec<Vec<Op>> = (0..size)
            .map(|r| allreduce(r, size, 500, "sum", |_d, _r, _s| {}))
            .collect();
        check_matched(&all);
    }
}
