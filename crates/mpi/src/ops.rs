//! Rank program operations.
//!
//! A rank's program is a queue of [`Op`]s executed by the runtime. Control
//! flow (loops, data-dependent branching) is expressed with [`Op::Gen`]: a
//! plain `fn` pointer that inspects [`crate::RankData`] and emits the next
//! batch of ops. Using `fn` pointers (not closures) keeps programs `Clone`,
//! which is what lets a whole-VM snapshot capture a rank mid-program.

use crate::data::RankData;

/// Reduction operator applied pairwise (into the left operand).
pub type ReduceFn = fn(&mut crate::data::Value, &crate::data::Value);

/// A dynamic program generator: `(data, rank, size) -> ops` pushed to the
/// *front* of the script, preserving program order.
pub type GenFn = fn(&mut RankData, usize, usize) -> Vec<Op>;

/// A data transform executed locally.
pub type ApplyFn = fn(&mut RankData, usize, usize);

/// One program step.
#[derive(Clone, Debug)]
pub enum Op {
    /// Burn `flops` floating-point operations of CPU (converted to time by
    /// the node speed and stretched by virtualization overhead).
    Compute { flops: f64 },
    /// Burn a fixed amount of guest CPU time, ns.
    ComputeNs(u64),
    /// Send the value stored at `slot` to rank `to` with `tag`.
    /// The slot is left in place (copied onto the wire).
    Send { to: usize, tag: u32, slot: String },
    /// Block until a message from `from` with `tag` arrives; store it at
    /// `into`.
    Recv { from: usize, tag: u32, into: String },
    /// Run a local transform.
    Apply(ApplyFn),
    /// Expand dynamically: the generated ops run next, in order.
    Gen(GenFn),
    /// Write the value at `slot` to the guest's local scratch disk (models
    /// application-level checkpointing I/O); blocks until the write lands.
    DiskWriteSlot { slot: String },
    /// Write `bytes` raw bytes to the local scratch disk.
    DiskWrite { bytes: u64 },
    /// Mark an application-visible label (progress tracing / tests).
    Marker(&'static str),
}

impl Op {
    /// Convenience constructors keep workload code terse.
    pub fn send(to: usize, tag: u32, slot: impl Into<String>) -> Op {
        Op::Send {
            to,
            tag,
            slot: slot.into(),
        }
    }

    pub fn recv(from: usize, tag: u32, into: impl Into<String>) -> Op {
        Op::Recv {
            from,
            tag,
            into: into.into(),
        }
    }

    pub fn compute_flops(flops: f64) -> Op {
        Op::Compute { flops }
    }
}

/// Push `ops` onto the front of `script`, preserving their order.
pub fn push_front(script: &mut std::collections::VecDeque<Op>, ops: Vec<Op>) {
    for op in ops.into_iter().rev() {
        script.push_front(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn push_front_preserves_order() {
        let mut script: VecDeque<Op> = VecDeque::new();
        script.push_back(Op::Marker("tail"));
        push_front(
            &mut script,
            vec![Op::Marker("a"), Op::Marker("b"), Op::Marker("c")],
        );
        let names: Vec<&str> = script
            .iter()
            .map(|op| match op {
                Op::Marker(m) => *m,
                _ => "?",
            })
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "tail"]);
    }

    #[test]
    fn ops_are_clone() {
        let op = Op::send(1, 7, "x");
        let op2 = op.clone();
        match (op, op2) {
            (Op::Send { to: a, .. }, Op::Send { to: b, .. }) => assert_eq!(a, b),
            _ => panic!(),
        }
    }
}
