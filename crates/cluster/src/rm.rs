//! The resource manager: a Torque/Moab-flavoured batch scheduler.
//!
//! FIFO queue with EASY backfill, node allocation that can stay within one
//! cluster or span clusters (DVC goal 3), and failure bookkeeping. The
//! paper's §4 names "integration with resource managers and schedulers like
//! Torque and Moab" as required future work — this module plus
//! `dvc-core::reliability` is that integration.

use crate::node::{ClusterId, NodeId};
use crate::world::ClusterWorld;
use dvc_sim_core::{Event, RmEvent, Sim, SimDuration, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};

/// Batch job identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u64);

/// Where a job's nodes may come from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// All nodes from any *single* cluster.
    SingleCluster,
    /// All nodes from the given cluster.
    Cluster(ClusterId),
    /// Nodes may span clusters (requires DVC to homogenize the stack).
    AllowSpan,
}

/// A job request.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub name: String,
    pub nodes: usize,
    /// User walltime estimate (drives backfill reservations).
    pub est_duration: SimDuration,
    pub placement: Placement,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    Queued,
    Running,
    Completed,
    Failed,
    Cancelled,
}

/// A job record.
#[derive(Clone, Debug)]
pub struct Job {
    pub id: JobId,
    pub spec: JobSpec,
    pub state: JobState,
    pub submitted: SimTime,
    pub started: Option<SimTime>,
    pub finished: Option<SimTime>,
    pub assigned: Vec<NodeId>,
}

type Launcher = Box<dyn FnOnce(&mut Sim<ClusterWorld>, JobId, Vec<NodeId>)>;

/// Scheduler state (a field of the world).
pub struct ResourceManager {
    pub jobs: HashMap<JobId, Job>,
    queue: VecDeque<JobId>,
    busy: HashSet<NodeId>,
    launchers: HashMap<JobId, Launcher>,
    next_id: u64,
    /// Enable EASY backfill (on by default).
    pub backfill: bool,
    /// Jobs that lost a node to a crash, for the reliability layer.
    pub failed_by_node_loss: Vec<JobId>,
}

impl Default for ResourceManager {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceManager {
    pub fn new() -> Self {
        ResourceManager {
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            busy: HashSet::new(),
            launchers: HashMap::new(),
            next_id: 1,
            backfill: true,
            failed_by_node_loss: Vec::new(),
        }
    }

    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    pub fn queued_count(&self) -> usize {
        self.queue.len()
    }

    pub fn busy_nodes(&self) -> usize {
        self.busy.len()
    }

    pub fn is_busy(&self, n: NodeId) -> bool {
        self.busy.contains(&n)
    }

    /// Called when a node crashes: running jobs that used it fail.
    pub fn note_node_down(&mut self, node: NodeId) {
        self.busy.remove(&node);
        let victims: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running && j.assigned.contains(&node))
            .map(|j| j.id)
            .collect();
        for id in victims {
            if let Some(j) = self.jobs.get_mut(&id) {
                j.state = JobState::Failed;
                for n in &j.assigned {
                    self.busy.remove(n);
                }
            }
            self.failed_by_node_loss.push(id);
        }
    }

    pub fn note_node_up(&mut self, _node: NodeId) {
        // Nothing to do eagerly; the next try_schedule will see it free.
    }
}

/// Submit a job; `launcher` runs when the scheduler starts it.
pub fn submit(
    sim: &mut Sim<ClusterWorld>,
    spec: JobSpec,
    launcher: impl FnOnce(&mut Sim<ClusterWorld>, JobId, Vec<NodeId>) + 'static,
) -> JobId {
    let now = sim.now();
    let rm = &mut sim.world.rm;
    let id = JobId(rm.next_id);
    rm.next_id += 1;
    rm.jobs.insert(
        id,
        Job {
            id,
            spec,
            state: JobState::Queued,
            submitted: now,
            started: None,
            finished: None,
            assigned: Vec::new(),
        },
    );
    rm.queue.push_back(id);
    rm.launchers.insert(id, Box::new(launcher));
    sim.emit(Event::Rm(RmEvent::JobQueued { job: id.0 }));
    try_schedule(sim);
    id
}

/// Free nodes (up and not busy), per cluster.
fn free_by_cluster(world: &ClusterWorld) -> Vec<Vec<NodeId>> {
    world
        .clusters
        .iter()
        .map(|c| {
            c.nodes
                .iter()
                .copied()
                .filter(|&n| world.node(n).up && !world.rm.busy.contains(&n))
                .collect()
        })
        .collect()
}

/// Try to allocate nodes for a spec from the current free set.
fn allocate(world: &ClusterWorld, spec: &JobSpec) -> Option<Vec<NodeId>> {
    let free = free_by_cluster(world);
    match spec.placement {
        Placement::Cluster(c) => {
            let f = &free[c.0 as usize];
            (f.len() >= spec.nodes).then(|| f[..spec.nodes].to_vec())
        }
        Placement::SingleCluster => free
            .iter()
            .find(|f| f.len() >= spec.nodes)
            .map(|f| f[..spec.nodes].to_vec()),
        Placement::AllowSpan => {
            let total: usize = free.iter().map(|f| f.len()).sum();
            if total < spec.nodes {
                return None;
            }
            // Prefer a single cluster; otherwise take greedily from the
            // fullest clusters to minimize the span.
            if let Some(f) = free.iter().find(|f| f.len() >= spec.nodes) {
                return Some(f[..spec.nodes].to_vec());
            }
            let mut order: Vec<&Vec<NodeId>> = free.iter().collect();
            order.sort_by_key(|f| std::cmp::Reverse(f.len()));
            let mut out = Vec::with_capacity(spec.nodes);
            for f in order {
                for &n in f {
                    if out.len() == spec.nodes {
                        break;
                    }
                    out.push(n);
                }
            }
            Some(out)
        }
    }
}

/// Scheduling pass: FIFO head first; EASY backfill behind a blocked head.
pub fn try_schedule(sim: &mut Sim<ClusterWorld>) {
    loop {
        let Some(&head) = sim.world.rm.queue.front() else {
            return;
        };
        let spec = sim.world.rm.jobs[&head].spec.clone();
        if let Some(nodes) = allocate(&sim.world, &spec) {
            sim.world.rm.queue.pop_front();
            start_job(sim, head, nodes);
            continue;
        }
        // Head is blocked: EASY backfill behind its reservation.
        if sim.world.rm.backfill {
            backfill_pass(sim, head, &spec);
        }
        return;
    }
}

/// EASY backfill: compute the head job's shadow time (earliest instant its
/// allocation fits, assuming running jobs end at their estimates), then
/// start any later queued job that fits now without pushing the head past
/// its shadow time.
fn backfill_pass(sim: &mut Sim<ClusterWorld>, _head: JobId, head_spec: &JobSpec) {
    let now = sim.now();
    // Free count now and release schedule of running jobs.
    let free_now: usize = free_by_cluster(&sim.world).iter().map(|f| f.len()).sum();
    let mut releases: Vec<(SimTime, usize)> = sim
        .world
        .rm
        .jobs
        .values()
        .filter(|j| j.state == JobState::Running)
        .map(|j| {
            let end = j.started.unwrap_or(now) + j.spec.est_duration;
            (end.max(now), j.assigned.len())
        })
        .collect();
    releases.sort();
    let mut avail = free_now;
    let mut shadow = SimTime::NEVER;
    let mut avail_at_shadow = 0usize;
    for (t, n) in releases {
        avail += n;
        if avail >= head_spec.nodes {
            shadow = t;
            avail_at_shadow = avail;
            break;
        }
    }
    sim.emit(Event::Rm(RmEvent::BackfillReservation {
        head_job: _head.0,
        shadow,
    }));
    // Nodes spare even after the head starts at shadow time.
    let extra = avail_at_shadow.saturating_sub(head_spec.nodes);

    let candidates: Vec<JobId> = sim.world.rm.queue.iter().skip(1).copied().collect();
    for cand in candidates {
        let spec = sim.world.rm.jobs[&cand].spec.clone();
        let fits_now = allocate(&sim.world, &spec);
        let Some(nodes) = fits_now else { continue };
        let ends_before_shadow = now + spec.est_duration <= shadow;
        let within_extra = spec.nodes <= extra;
        if ends_before_shadow || within_extra {
            sim.world.rm.queue.retain(|&j| j != cand);
            sim.emit(Event::Rm(RmEvent::BackfillStarted { job: cand.0 }));
            start_job(sim, cand, nodes);
        }
    }
}

fn start_job(sim: &mut Sim<ClusterWorld>, id: JobId, nodes: Vec<NodeId>) {
    let now = sim.now();
    {
        let rm = &mut sim.world.rm;
        let j = rm.jobs.get_mut(&id).expect("starting unknown job");
        j.state = JobState::Running;
        j.started = Some(now);
        j.assigned = nodes.clone();
        for &n in &nodes {
            rm.busy.insert(n);
        }
    }
    sim.emit(Event::Rm(RmEvent::JobStarted {
        job: id.0,
        nodes: nodes.iter().map(|n| n.0).collect(),
    }));
    if let Some(launcher) = sim.world.rm.launchers.remove(&id) {
        launcher(sim, id, nodes);
    }
}

/// Mark a job finished (success or failure), free its nodes, reschedule.
pub fn complete_job(sim: &mut Sim<ClusterWorld>, id: JobId, success: bool) {
    let now = sim.now();
    {
        let rm = &mut sim.world.rm;
        let Some(j) = rm.jobs.get_mut(&id) else {
            return;
        };
        if j.state != JobState::Running {
            return;
        }
        j.state = if success {
            JobState::Completed
        } else {
            JobState::Failed
        };
        j.finished = Some(now);
        let assigned = j.assigned.clone();
        for n in assigned {
            rm.busy.remove(&n);
        }
    }
    sim.emit(Event::Rm(RmEvent::JobCompleted { job: id.0, success }));
    try_schedule(sim);
}

/// Cancel a queued job.
pub fn cancel_job(sim: &mut Sim<ClusterWorld>, id: JobId) {
    let rm = &mut sim.world.rm;
    if let Some(j) = rm.jobs.get_mut(&id) {
        if j.state == JobState::Queued {
            j.state = JobState::Cancelled;
            rm.queue.retain(|&q| q != id);
            rm.launchers.remove(&id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::ClusterBuilder;

    fn sim(clusters: usize, nodes: usize) -> Sim<ClusterWorld> {
        Sim::new(
            ClusterBuilder::new()
                .clusters(clusters)
                .nodes_per_cluster(nodes)
                .build(11),
            11,
        )
    }

    fn spec(nodes: usize, est_s: u64, placement: Placement) -> JobSpec {
        JobSpec {
            name: format!("job{nodes}"),
            nodes,
            est_duration: SimDuration::from_secs(est_s),
            placement,
        }
    }

    /// Record (job, started-at, node-count) into ext.
    fn recording_launcher() -> impl FnOnce(&mut Sim<ClusterWorld>, JobId, Vec<NodeId>) {
        |sim, id, nodes| {
            let t = sim.now().as_secs_f64();
            sim.world
                .ext
                .get_or_default::<Vec<(JobId, f64, usize)>>()
                .push((id, t, nodes.len()));
        }
    }

    #[test]
    fn fifo_start_and_completion_frees_nodes() {
        let mut sim = sim(1, 4);
        let a = submit(
            &mut sim,
            spec(3, 100, Placement::SingleCluster),
            recording_launcher(),
        );
        let b = submit(
            &mut sim,
            spec(3, 100, Placement::SingleCluster),
            recording_launcher(),
        );
        assert_eq!(sim.world.rm.job(a).unwrap().state, JobState::Running);
        assert_eq!(sim.world.rm.job(b).unwrap().state, JobState::Queued);
        complete_job(&mut sim, a, true);
        assert_eq!(sim.world.rm.job(a).unwrap().state, JobState::Completed);
        assert_eq!(sim.world.rm.job(b).unwrap().state, JobState::Running);
        assert_eq!(sim.world.rm.busy_nodes(), 3);
    }

    #[test]
    fn easy_backfill_starts_small_job_behind_blocked_head() {
        let mut sim = sim(1, 4);
        // A takes 3 nodes for 100 s; head B needs 4 (blocked); C needs 1
        // node for 10 s → backfills into the idle node.
        let _a = submit(
            &mut sim,
            spec(3, 100, Placement::SingleCluster),
            recording_launcher(),
        );
        let b = submit(
            &mut sim,
            spec(4, 50, Placement::SingleCluster),
            recording_launcher(),
        );
        let c = submit(
            &mut sim,
            spec(1, 10, Placement::SingleCluster),
            recording_launcher(),
        );
        assert_eq!(sim.world.rm.job(b).unwrap().state, JobState::Queued);
        assert_eq!(
            sim.world.rm.job(c).unwrap().state,
            JobState::Running,
            "C should backfill"
        );
        assert_eq!(sim.world.rm.busy_nodes(), 4);
    }

    #[test]
    fn backfill_never_delays_the_head() {
        let mut sim = sim(1, 4);
        // A: 3 nodes, ends at t=100 (shadow for the 4-node head B).
        // C wants the idle node for 200 s — starting it would push B.
        let _a = submit(
            &mut sim,
            spec(3, 100, Placement::SingleCluster),
            recording_launcher(),
        );
        let b = submit(
            &mut sim,
            spec(4, 50, Placement::SingleCluster),
            recording_launcher(),
        );
        let c = submit(
            &mut sim,
            spec(1, 200, Placement::SingleCluster),
            recording_launcher(),
        );
        assert_eq!(sim.world.rm.job(c).unwrap().state, JobState::Queued);
        assert_eq!(sim.world.rm.job(b).unwrap().state, JobState::Queued);
    }

    #[test]
    fn single_cluster_placement_rejects_fragmented_space() {
        let mut sim = sim(2, 4);
        // Occupy 2 nodes in each cluster: 4 free total, max 2 contiguous.
        let _fill1 = submit(
            &mut sim,
            spec(2, 100, Placement::Cluster(ClusterId(0))),
            recording_launcher(),
        );
        let _fill2 = submit(
            &mut sim,
            spec(2, 100, Placement::Cluster(ClusterId(1))),
            recording_launcher(),
        );
        let narrow = submit(
            &mut sim,
            spec(3, 10, Placement::SingleCluster),
            recording_launcher(),
        );
        let wide = submit(
            &mut sim,
            spec(3, 10, Placement::AllowSpan),
            recording_launcher(),
        );
        assert_eq!(sim.world.rm.job(narrow).unwrap().state, JobState::Queued);
        // AllowSpan backfills across the two clusters.
        assert_eq!(sim.world.rm.job(wide).unwrap().state, JobState::Running);
        let w = sim.world.rm.job(wide).unwrap();
        let c0: usize = w
            .assigned
            .iter()
            .filter(|&&n| sim.world.node(n).cluster == ClusterId(0))
            .count();
        assert!(c0 > 0 && c0 < 3, "must actually span: {c0} in cluster 0");
    }

    #[test]
    fn spanning_head_is_not_starved_by_backfill() {
        let mut sim = sim(2, 3);
        // A pins 2 nodes of cluster 0 until t=100; B pins all of cluster 1
        // until t=40. One node (in cluster 0) is free.
        let _a = submit(
            &mut sim,
            spec(2, 100, Placement::Cluster(ClusterId(0))),
            recording_launcher(),
        );
        let b = submit(
            &mut sim,
            spec(3, 40, Placement::Cluster(ClusterId(1))),
            recording_launcher(),
        );
        // Head H needs 4 nodes spanning clusters: blocked, shadow = t=40
        // (B's release gives 1 + 3 ≥ 4) with zero spare nodes at shadow.
        let h = submit(
            &mut sim,
            spec(4, 50, Placement::AllowSpan),
            recording_launcher(),
        );
        // C wants the free node far past the shadow: starting it would
        // push the spanning head — EASY must hold it back.
        let c = submit(
            &mut sim,
            spec(1, 200, Placement::SingleCluster),
            recording_launcher(),
        );
        // D fits entirely before the shadow: legitimate backfill.
        let d = submit(
            &mut sim,
            spec(1, 10, Placement::SingleCluster),
            recording_launcher(),
        );
        assert_eq!(sim.world.rm.job(h).unwrap().state, JobState::Queued);
        assert_eq!(
            sim.world.rm.job(c).unwrap().state,
            JobState::Queued,
            "long filler would delay the spanning head past its shadow"
        );
        assert_eq!(
            sim.world.rm.job(d).unwrap().state,
            JobState::Running,
            "short filler backfills without touching the head's reservation"
        );
        // B releases cluster 1: still only 3 free (D holds the 4th), so the
        // spanning head keeps waiting rather than starting short.
        complete_job(&mut sim, b, true);
        assert_eq!(sim.world.rm.job(h).unwrap().state, JobState::Queued);
        complete_job(&mut sim, d, true);
        let job_h = sim.world.rm.job(h).unwrap();
        assert_eq!(job_h.state, JobState::Running);
        let in_c1 = job_h
            .assigned
            .iter()
            .filter(|&&n| sim.world.node(n).cluster == ClusterId(1))
            .count();
        assert!(
            in_c1 > 0 && in_c1 < 4,
            "head must actually span clusters: {in_c1} of 4 in cluster 1"
        );
    }

    #[test]
    fn spanning_allocation_respects_per_cluster_accounting() {
        let mut sim = sim(2, 3);
        // Fragment the free space: 2 busy in each cluster, 1 free in each.
        let fill0 = submit(
            &mut sim,
            spec(2, 100, Placement::Cluster(ClusterId(0))),
            recording_launcher(),
        );
        let fill1 = submit(
            &mut sim,
            spec(2, 100, Placement::Cluster(ClusterId(1))),
            recording_launcher(),
        );
        let span = submit(
            &mut sim,
            spec(2, 10, Placement::AllowSpan),
            recording_launcher(),
        );
        let job = sim.world.rm.job(span).unwrap().clone();
        assert_eq!(job.state, JobState::Running);
        // Exactly one node from each cluster, disjoint from the fillers,
        // every assigned node accounted busy.
        for c in [ClusterId(0), ClusterId(1)] {
            let in_c = job
                .assigned
                .iter()
                .filter(|&&n| sim.world.node(n).cluster == c)
                .count();
            assert_eq!(in_c, 1, "one node from each cluster");
        }
        let mut all: Vec<NodeId> = job.assigned.clone();
        all.extend(&sim.world.rm.job(fill0).unwrap().assigned);
        all.extend(&sim.world.rm.job(fill1).unwrap().assigned);
        let uniq: HashSet<NodeId> = all.iter().copied().collect();
        assert_eq!(uniq.len(), all.len(), "no node is double-assigned");
        assert_eq!(sim.world.rm.busy_nodes(), 6);
        for &n in &job.assigned {
            assert!(sim.world.rm.is_busy(n));
        }
        // Completion frees exactly the spanning job's nodes, in both
        // clusters, so pinned jobs can start in either.
        complete_job(&mut sim, span, true);
        assert_eq!(sim.world.rm.busy_nodes(), 4);
        let pinned = submit(
            &mut sim,
            spec(1, 10, Placement::Cluster(ClusterId(1))),
            recording_launcher(),
        );
        assert_eq!(sim.world.rm.job(pinned).unwrap().state, JobState::Running);
    }

    #[test]
    fn spanning_job_backfills_behind_a_blocked_head() {
        let mut sim = sim(2, 3);
        // 1 node free in each cluster; the head needs 3 in one cluster.
        let _fill0 = submit(
            &mut sim,
            spec(2, 30, Placement::Cluster(ClusterId(0))),
            recording_launcher(),
        );
        let _fill1 = submit(
            &mut sim,
            spec(2, 100, Placement::Cluster(ClusterId(1))),
            recording_launcher(),
        );
        let head = submit(
            &mut sim,
            spec(3, 50, Placement::SingleCluster),
            recording_launcher(),
        );
        // Spanning 2-node candidate that finishes before the head's shadow
        // (t=30): it may take the two cross-cluster leftovers.
        let span = submit(
            &mut sim,
            spec(2, 10, Placement::AllowSpan),
            recording_launcher(),
        );
        assert_eq!(sim.world.rm.job(head).unwrap().state, JobState::Queued);
        assert_eq!(
            sim.world.rm.job(span).unwrap().state,
            JobState::Running,
            "spanning candidate must be allowed to backfill fragmented space"
        );
        assert_eq!(sim.world.rm.busy_nodes(), 6);
    }

    #[test]
    fn node_crash_fails_running_jobs_and_frees_the_rest() {
        let mut sim = sim(1, 4);
        let a = submit(
            &mut sim,
            spec(3, 100, Placement::SingleCluster),
            recording_launcher(),
        );
        let victim = sim.world.rm.job(a).unwrap().assigned[0];
        crate::failure::crash_node(&mut sim, victim);
        assert_eq!(sim.world.rm.job(a).unwrap().state, JobState::Failed);
        assert_eq!(sim.world.rm.failed_by_node_loss, vec![a]);
        assert_eq!(sim.world.rm.busy_nodes(), 0);
    }

    #[test]
    fn cancel_removes_queued_job() {
        let mut sim = sim(1, 2);
        let _a = submit(
            &mut sim,
            spec(2, 100, Placement::SingleCluster),
            recording_launcher(),
        );
        let b = submit(
            &mut sim,
            spec(2, 100, Placement::SingleCluster),
            recording_launcher(),
        );
        cancel_job(&mut sim, b);
        assert_eq!(sim.world.rm.job(b).unwrap().state, JobState::Cancelled);
        assert_eq!(sim.world.rm.queued_count(), 0);
    }
}
