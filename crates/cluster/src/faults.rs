//! Installing a [`FaultPlan`] into a cluster world.
//!
//! Probabilistic faults (`storage.fail`, `control.drop`, `image.corrupt`)
//! are rolled at their injection points as the simulation runs; nothing is
//! scheduled up front. Window-driven effects, however, need *boundary
//! events* — a bandwidth brownout must re-rate in-flight transfers the
//! instant it starts and ends, and a clock step is a one-shot edit to a
//! node's hardware clock. [`install_fault_plan`] walks the plan once,
//! schedules those boundary events, and hands the plan to the world so the
//! per-call injection points can consult it.

use crate::node::NodeId;
use crate::storage;
use crate::world::ClusterWorld;
use dvc_sim_core::{Event, FaultEvent, FaultPlan, Sim};

/// Hand `plan` to the world and schedule boundary events for its
/// window-driven effects. Call once, before (or at) simulation start.
pub fn install_fault_plan(sim: &mut Sim<ClusterWorld>, plan: FaultPlan) {
    let now = sim.now();
    for w in plan.windows() {
        match w.kind {
            "storage.brownout" => {
                let factor = w.magnitude;
                let (from, until) = (w.from.max(now), w.until.max(now));
                sim.schedule_at(from, move |sim| {
                    sim.world.faults.note_injected("storage.brownout");
                    sim.emit(Event::Fault(FaultEvent::Injected {
                        what: "storage.brownout",
                    }));
                    sim.emit(Event::Fault(FaultEvent::BrownoutBegin { factor }));
                    storage::set_rate_factor(sim, factor);
                });
                sim.schedule_at(until, move |sim| {
                    sim.emit(Event::Fault(FaultEvent::BrownoutEnd));
                    storage::set_rate_factor(sim, 1.0);
                });
            }
            "clock.step" => {
                let node = NodeId(w.target.expect("clock.step needs a target node") as u32);
                let step_s = w.magnitude;
                let at = w.from.max(now);
                sim.schedule_at(at, move |sim| {
                    if !sim.world.node(node).up {
                        return;
                    }
                    let now = sim.now();
                    sim.world.node_mut(node).clock.correct(now, step_s * 1e9);
                    sim.world.faults.note_injected("clock.step");
                    sim.emit(Event::Fault(FaultEvent::Injected { what: "clock.step" }));
                    sim.emit(Event::Fault(FaultEvent::ClockStep {
                        node: node.0,
                        step_s,
                    }));
                });
            }
            // Probabilistic / query-time kinds need no boundary events.
            _ => {}
        }
    }
    sim.world.faults = plan;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::ClusterBuilder;
    use dvc_sim_core::SimTime;

    #[test]
    fn clock_step_window_edits_the_target_clock() {
        let w = ClusterBuilder::new()
            .nodes_per_cluster(3)
            .perfect_clocks()
            .build(2);
        let mut sim = Sim::new(w, 2);
        let mut plan = FaultPlan::new(2);
        plan.window(
            "clock.step",
            Some(1),
            SimTime::from_secs(5),
            SimTime::from_secs(5),
            2.5,
        );
        install_fault_plan(&mut sim, plan);
        sim.run(SimTime::from_secs(10), 1000);
        let t = SimTime::from_secs(10);
        let stepped = sim.world.node(NodeId(1)).clock.error_ns(t);
        let other = sim.world.node(NodeId(2)).clock.error_ns(t);
        assert!((stepped - 2.5e9).abs() < 1e3, "stepped err {stepped}");
        assert_eq!(other, 0.0, "non-target untouched");
        assert_eq!(
            sim.world.faults.injected().collect::<Vec<_>>(),
            vec![("clock.step", 1)]
        );
    }

    #[test]
    fn brownout_boundaries_restore_full_rate() {
        let w = ClusterBuilder::new().nodes_per_cluster(2).build(3);
        let mut sim = Sim::new(w, 3);
        let mut plan = FaultPlan::new(3);
        plan.window(
            "storage.brownout",
            None,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            0.25,
        );
        install_fault_plan(&mut sim, plan);
        sim.run(SimTime::from_secs_f64(1.5), 1000);
        assert_eq!(sim.world.storage.rate_factor, 0.25);
        sim.run(SimTime::from_secs(3), 1000);
        assert_eq!(sim.world.storage.rate_factor, 1.0);
    }
}
