//! `ntpd`: the head node serves time; every other node's client polls it
//! over simulated UDP and disciplines its hardware clock.
//!
//! The paper's prototype "relies on the synchronization of host clocks with
//! NTP … network time protocols can synchronize time to within a few
//! milliseconds" — here that property *emerges* from the four-timestamp
//! exchange over the same fabric the application uses, including queueing
//! jitter and (for spanning clusters) WAN asymmetry.

use crate::glue::{drain_host_udp, local_now};
use crate::node::NodeId;
use crate::world::ClusterWorld;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dvc_net::tcp::LocalNs;
use dvc_sim_core::{Event, FaultEvent, NtpEvent, Sim, SimDuration};
use dvc_time::ntp::{offset_delay, NtpSample};

/// Well-known server port.
pub const NTP_PORT: u16 = 123;
/// Client reply port.
pub const NTP_CLIENT_PORT: u16 = 1123;

/// Server processing time between receive (t2) and transmit (t3).
const SERVER_PROC_NS: i64 = 10_000;

fn encode_request(t1: LocalNs) -> Bytes {
    let mut b = BytesMut::with_capacity(8);
    b.put_i64_le(t1);
    b.freeze()
}

fn encode_reply(t1: LocalNs, t2: LocalNs, t3: LocalNs) -> Bytes {
    let mut b = BytesMut::with_capacity(24);
    b.put_i64_le(t1);
    b.put_i64_le(t2);
    b.put_i64_le(t3);
    b.freeze()
}

/// Start the NTP service: server on the head node, a polling client on every
/// other node. Poll phases are staggered so requests don't synchronize.
pub fn start_ntp(sim: &mut Sim<ClusterWorld>, poll_interval: SimDuration) {
    let head = sim.world.head;
    sim.world
        .node_mut(head)
        .host_udp
        .bind(NTP_PORT)
        .expect("NTP server port");
    let ids = sim.world.node_ids();
    for (i, id) in ids.into_iter().enumerate() {
        if id == head {
            continue;
        }
        sim.world
            .node_mut(id)
            .host_udp
            .bind(NTP_CLIENT_PORT)
            .expect("NTP client port");
        // Stagger initial polls across the first interval.
        let phase = poll_interval * (i as f64 / 64.0 % 1.0);
        schedule_poll(sim, id, poll_interval, phase);
    }
}

fn schedule_poll(
    sim: &mut Sim<ClusterWorld>,
    node: NodeId,
    interval: SimDuration,
    delay: SimDuration,
) {
    sim.schedule_in(delay, move |sim| {
        poll_once(sim, node);
        schedule_poll(sim, node, interval, interval);
    });
}

/// Send one client request (no-op while the node is down).
pub fn poll_once(sim: &mut Sim<ClusterWorld>, node: NodeId) {
    if !sim.world.node(node).up {
        return;
    }
    // Apply clock wander up to now (the periodic poll is our wander cadence).
    let now = sim.now();
    {
        let world = &mut sim.world;
        let rng = sim.rng.stream_idx("clock.wander", node.0 as u64);
        world.node_mut(node).clock.advance(now, Some(rng));
    }
    let t1 = local_now(sim, node);
    let head_addr = {
        let head = sim.world.head;
        sim.world.node(head).addr
    };
    sim.world.node_mut(node).host_udp.send_to(
        NTP_CLIENT_PORT,
        head_addr.into(),
        NTP_PORT,
        encode_request(t1),
    );
    drain_host_udp(sim, node);
}

/// Host-UDP dispatch hook: handle any queued NTP traffic on `node`.
pub fn dispatch_host_udp(sim: &mut Sim<ClusterWorld>, node: NodeId) {
    // Server side.
    if node == sim.world.head {
        let outage = sim
            .world
            .faults
            .active("ntp.outage", None, sim.now())
            .is_some();
        while let Some(req) = sim.world.node_mut(node).host_udp.recv_from(NTP_PORT) {
            if outage {
                // Server down: requests are consumed but never answered, so
                // clients silently stop getting samples and re-drift.
                sim.world.faults.note_injected("ntp.outage");
                sim.emit(Event::Fault(FaultEvent::Injected { what: "ntp.outage" }));
                let (phys, host) = match req.src {
                    dvc_net::Addr::Phys(p) => (true, p.0),
                    dvc_net::Addr::Virt(v) => (false, v.0),
                };
                sim.emit(Event::Ntp(NtpEvent::Unanswered { phys, host }));
                continue;
            }
            if req.payload.len() < 8 {
                continue;
            }
            let mut p = req.payload.clone();
            let t1 = p.get_i64_le();
            let t2 = local_now(sim, node);
            let t3 = t2 + SERVER_PROC_NS;
            let reply = encode_reply(t1, t2, t3);
            sim.world
                .node_mut(node)
                .host_udp
                .send_to(NTP_PORT, req.src, req.src_port, reply);
        }
        drain_host_udp(sim, node);
        return;
    }
    // Client side.
    while let Some(rep) = sim.world.node_mut(node).host_udp.recv_from(NTP_CLIENT_PORT) {
        if rep.payload.len() < 24 {
            continue;
        }
        let mut p = rep.payload.clone();
        let t1 = p.get_i64_le();
        let t2 = p.get_i64_le();
        let t3 = p.get_i64_le();
        let t4 = local_now(sim, node);
        let (offset_ns, delay_ns) = offset_delay(t1, t2, t3, t4);
        let now = sim.now();
        let n = sim.world.node_mut(node);
        n.ntp.on_sample(
            &mut n.clock,
            now,
            NtpSample {
                offset_ns,
                delay_ns,
                completed_at: t4,
            },
        );
        n.ntp_last_sync = Some(now);
    }
}

/// True time elapsed since `node` last completed an NTP exchange; `None`
/// until its first sync. The reliability manager treats a large value as
/// "clock sync lost" and degrades to clock-free coordination.
pub fn sync_age(sim: &Sim<ClusterWorld>, node: NodeId) -> Option<SimDuration> {
    sim.world
        .node(node)
        .ntp_last_sync
        .map(|t| sim.now().since(t))
}

/// Worst absolute clock error vs. true time across all up nodes, ns.
pub fn worst_clock_error_ns(sim: &Sim<ClusterWorld>) -> f64 {
    let now = sim.now();
    sim.world
        .nodes
        .iter()
        .filter(|n| n.up)
        .map(|n| n.clock.error_ns(now).abs())
        .fold(0.0, f64::max)
}

/// Worst pairwise clock offset between up nodes, ns (what LSC skew sees).
pub fn worst_pairwise_offset_ns(sim: &Sim<ClusterWorld>) -> f64 {
    let now = sim.now();
    let errs: Vec<f64> = sim
        .world
        .nodes
        .iter()
        .filter(|n| n.up)
        .map(|n| n.clock.error_ns(now))
        .collect();
    let lo = errs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = errs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (hi - lo).max(0.0)
}
