//! Shared checkpoint storage: a processor-sharing bandwidth model.
//!
//! The paper's testbed writes all VM images to "a reliable storage system".
//! When 26 domains save at once they share that system's bandwidth, which is
//! what makes parallel save time grow with cluster size (experiment E9).
//!
//! Model: `n` concurrent transfers each progress at
//! `min(per_stream_bps, agg_bps / n)` — clients are individually capped
//! (their NIC / stripe limit) and collectively capped (the array). Rates are
//! piecewise constant between membership changes, so completions can be
//! scheduled exactly and re-derived whenever a transfer starts or ends.

use crate::world::ClusterWorld;
use dvc_sim_core::{Event, FaultEvent, Sim, SimDuration, SimTime, StorageEvent};
use std::collections::HashMap;

pub type TransferId = u64;

type DoneCb = Box<dyn FnOnce(&mut Sim<ClusterWorld>)>;

struct Transfer {
    remaining: f64,
    cb: Option<DoneCb>,
}

/// The shared storage subsystem state (lives in the world).
pub struct SharedStorage {
    /// Aggregate array bandwidth, bytes/s.
    pub agg_bps: f64,
    /// Per-stream cap, bytes/s.
    pub per_stream_bps: f64,
    active: HashMap<TransferId, Transfer>,
    next_id: TransferId,
    gen: u64,
    last_update: SimTime,
    pub bytes_completed: u64,
    pub transfers_completed: u64,
    /// Bandwidth multiplier applied during brownout windows (1.0 = healthy).
    pub rate_factor: f64,
    /// Transfer attempts that ended in an injected failure.
    pub transfers_failed: u64,
    /// Backoff re-issues performed by [`transfer_with_retry`].
    pub retries: u64,
}

impl SharedStorage {
    pub fn new(agg_bps: f64, per_stream_bps: f64) -> Self {
        assert!(agg_bps > 0.0 && per_stream_bps > 0.0);
        SharedStorage {
            agg_bps,
            per_stream_bps,
            active: HashMap::new(),
            next_id: 1,
            gen: 0,
            last_update: SimTime::ZERO,
            bytes_completed: 0,
            transfers_completed: 0,
            rate_factor: 1.0,
            transfers_failed: 0,
            retries: 0,
        }
    }

    fn rate(&self) -> f64 {
        let n = self.active.len().max(1) as f64;
        self.per_stream_bps.min(self.agg_bps / n) * self.rate_factor.clamp(0.01, 1.0)
    }

    pub fn active_transfers(&self) -> usize {
        self.active.len()
    }
}

/// Begin a transfer of `bytes` (read or write — symmetric); `cb` runs when
/// it completes.
pub fn start_transfer(
    sim: &mut Sim<ClusterWorld>,
    bytes: u64,
    cb: impl FnOnce(&mut Sim<ClusterWorld>) + 'static,
) -> TransferId {
    advance(sim);
    let st = &mut sim.world.storage;
    let id = st.next_id;
    st.next_id += 1;
    st.active.insert(
        id,
        Transfer {
            remaining: bytes as f64,
            cb: Some(Box::new(cb)),
        },
    );
    reschedule(sim);
    id
}

/// Advance all active transfers to `sim.now()` at the current shared rate.
fn advance(sim: &mut Sim<ClusterWorld>) {
    let now = sim.now();
    let st = &mut sim.world.storage;
    let dt = (now - st.last_update).as_secs_f64();
    st.last_update = now;
    if dt <= 0.0 || st.active.is_empty() {
        return;
    }
    let r = st.rate();
    for t in st.active.values_mut() {
        t.remaining -= r * dt;
    }
}

/// Re-derive and schedule the next completion instant.
fn reschedule(sim: &mut Sim<ClusterWorld>) {
    let st = &mut sim.world.storage;
    st.gen += 1;
    let gen = st.gen;
    if st.active.is_empty() {
        return;
    }
    let r = st.rate();
    let min_remaining = st
        .active
        .values()
        .map(|t| t.remaining)
        .fold(f64::INFINITY, f64::min)
        .max(0.0);
    let eta = SimDuration::from_secs_f64(min_remaining / r);
    sim.schedule_in(eta, move |sim| {
        if sim.world.storage.gen != gen {
            return; // membership changed since; a fresher event exists
        }
        settle(sim);
    });
}

/// Complete any finished transfers and run their callbacks.
fn settle(sim: &mut Sim<ClusterWorld>) {
    advance(sim);
    let st = &mut sim.world.storage;
    let mut finished: Vec<TransferId> = st
        .active
        .iter()
        .filter(|(_, t)| t.remaining <= 0.5)
        .map(|(&id, _)| id)
        .collect();
    // HashMap order must never leak into callback ordering — determinism.
    finished.sort_unstable();
    let mut cbs = Vec::new();
    for id in finished {
        if let Some(mut t) = st.active.remove(&id) {
            st.transfers_completed += 1;
            if let Some(cb) = t.cb.take() {
                cbs.push(cb);
            }
        }
    }
    reschedule(sim);
    for cb in cbs {
        cb(sim);
    }
}

/// Account a transfer's size at start for the completion statistics.
/// (Called by higher-level helpers that know the semantic size.)
pub fn note_bytes(sim: &mut Sim<ClusterWorld>, bytes: u64) {
    sim.world.storage.bytes_completed += bytes;
}

/// Change the brownout bandwidth factor, correctly advancing in-flight
/// transfers first so their progress under the old rate is banked before
/// future progress accrues at the new one.
pub fn set_rate_factor(sim: &mut Sim<ClusterWorld>, factor: f64) {
    advance(sim);
    sim.world.storage.rate_factor = factor;
    reschedule(sim);
}

/// Like [`start_transfer`], but the transfer can *fail*: on completion the
/// fault plan's `storage.fail` probability is rolled and the callback learns
/// whether the bytes actually made it. (The time is spent either way — a
/// failed write still occupied the array until the error surfaced.)
pub fn start_transfer_checked(
    sim: &mut Sim<ClusterWorld>,
    bytes: u64,
    cb: impl FnOnce(&mut Sim<ClusterWorld>, bool) + 'static,
) -> TransferId {
    start_transfer(sim, bytes, move |sim| {
        let now = sim.now();
        let rng = sim.rng.stream("fault.storage");
        let failed = sim.world.faults.roll("storage.fail", None, now, rng);
        if failed {
            sim.world.storage.transfers_failed += 1;
            sim.emit(Event::Fault(FaultEvent::Injected {
                what: "storage.fail",
            }));
            sim.emit(Event::Storage(StorageEvent::TransferFailed { bytes }));
        }
        cb(sim, !failed);
    })
}

/// A checked transfer with bounded retry and exponential backoff: up to
/// `cfg.storage_retry.max_attempts` attempts, sleeping `base_backoff_s · 2ᵏ`
/// between them. `cb` receives the final outcome.
pub fn transfer_with_retry(
    sim: &mut Sim<ClusterWorld>,
    bytes: u64,
    cb: impl FnOnce(&mut Sim<ClusterWorld>, bool) + 'static,
) {
    let retry = sim.world.cfg.storage_retry;
    attempt_transfer(
        sim,
        bytes,
        1,
        retry.max_attempts.max(1),
        retry.base_backoff_s,
        Box::new(cb),
    );
}

type RetryCb = Box<dyn FnOnce(&mut Sim<ClusterWorld>, bool)>;

fn attempt_transfer(
    sim: &mut Sim<ClusterWorld>,
    bytes: u64,
    attempt: u32,
    max_attempts: u32,
    base_backoff_s: f64,
    cb: RetryCb,
) {
    start_transfer_checked(sim, bytes, move |sim, ok| {
        if ok || attempt >= max_attempts {
            cb(sim, ok);
            return;
        }
        sim.world.storage.retries += 1;
        let backoff =
            SimDuration::from_secs_f64(base_backoff_s * f64::from(1u32 << (attempt - 1).min(10)));
        sim.emit(Event::Storage(StorageEvent::TransferRetry {
            attempt,
            max_attempts,
            bytes,
            backoff,
        }));
        sim.schedule_in(backoff, move |sim| {
            attempt_transfer(sim, bytes, attempt + 1, max_attempts, base_backoff_s, cb);
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::ClusterBuilder;

    fn world() -> Sim<ClusterWorld> {
        // 1 cluster × 2 nodes is enough; storage params set explicitly.
        let mut w = ClusterBuilder::new()
            .clusters(1)
            .nodes_per_cluster(2)
            .build(7);
        w.storage = SharedStorage::new(100.0e6, 80.0e6); // 100 MB/s agg, 80 MB/s per stream
        Sim::new(w, 7)
    }

    /// Completion times recorded into the world for assertions.
    #[derive(Default)]
    struct Done(Vec<(u64, f64)>);

    fn record(tag: u64) -> impl FnOnce(&mut Sim<ClusterWorld>) + 'static {
        move |sim| {
            let t = sim.now().as_secs_f64();
            sim.world.ext.get_or_default::<Done>().0.push((tag, t));
        }
    }

    #[test]
    fn single_transfer_uses_per_stream_cap() {
        let mut sim = world();
        // 80 MB at 80 MB/s per-stream cap = 1.0 s (agg would allow 100).
        start_transfer(&mut sim, 80_000_000, record(1));
        sim.run_to_completion(1000);
        let done = &sim.world.ext.get::<Done>().unwrap().0;
        assert_eq!(done.len(), 1);
        assert!((done[0].1 - 1.0).abs() < 1e-6, "t = {}", done[0].1);
    }

    #[test]
    fn concurrent_transfers_share_aggregate() {
        let mut sim = world();
        // 4 × 50 MB: each gets 100/4 = 25 MB/s → 2.0 s.
        for i in 0..4 {
            start_transfer(&mut sim, 50_000_000, record(i));
        }
        sim.run_to_completion(1000);
        let done = &sim.world.ext.get::<Done>().unwrap().0;
        assert_eq!(done.len(), 4);
        for &(_, t) in done {
            assert!((t - 2.0).abs() < 1e-6, "t = {t}");
        }
    }

    #[test]
    fn finishing_transfers_release_bandwidth() {
        let mut sim = world();
        // A: 25 MB, B: 75 MB. Phase 1: both at 50 MB/s; A done at 0.5 s
        // (B has 50 MB left). Phase 2: B alone at 80 MB/s → 0.625 s more.
        start_transfer(&mut sim, 25_000_000, record(0));
        start_transfer(&mut sim, 75_000_000, record(1));
        sim.run_to_completion(1000);
        let done = &sim.world.ext.get::<Done>().unwrap().0;
        assert_eq!(done.len(), 2);
        assert!((done[0].1 - 0.5).abs() < 1e-6, "A at {}", done[0].1);
        assert!((done[1].1 - 1.125).abs() < 1e-6, "B at {}", done[1].1);
    }

    #[test]
    fn late_arrivals_slow_existing_transfers() {
        let mut sim = world();
        // A: 80 MB alone at 80 MB/s for 0.5 s (40 MB left). Then B joins:
        // both at 50 MB/s. A needs 0.8 s more → 1.3 s total.
        start_transfer(&mut sim, 80_000_000, record(0));
        sim.schedule_at(SimTime::from_secs_f64(0.5), |sim| {
            start_transfer(sim, 200_000_000, record(1));
        });
        sim.run_to_completion(1000);
        let done = sim.world.ext.get::<Done>().unwrap().0.clone();
        assert!((done[0].1 - 1.3).abs() < 1e-6, "A at {}", done[0].1);
        // B: 200 MB; 0.8 s at 50 (40 MB), then alone at 80: 160/80 = 2 s → 3.3 s.
        assert!((done[1].1 - 3.3).abs() < 1e-6, "B at {}", done[1].1);
    }

    #[test]
    fn callbacks_may_chain_transfers() {
        let mut sim = world();
        start_transfer(&mut sim, 80_000_000, |sim| {
            // Restore follows save: a chained read.
            start_transfer(sim, 40_000_000, record(9));
        });
        sim.run_to_completion(1000);
        let done = &sim.world.ext.get::<Done>().unwrap().0;
        assert_eq!(done.len(), 1);
        assert!((done[0].1 - 1.5).abs() < 1e-6, "chained at {}", done[0].1);
        assert_eq!(sim.world.storage.transfers_completed, 2);
    }

    #[test]
    fn brownout_throttles_then_recovers() {
        let mut sim = world();
        // 80 MB at 80 MB/s. Brownout to 25% over [0.5 s, 1.0 s):
        // 40 MB in the first 0.5 s, 10 MB during the brownout, remaining
        // 30 MB at full rate → 0.375 s more. Total 1.375 s.
        start_transfer(&mut sim, 80_000_000, record(1));
        sim.schedule_at(SimTime::from_secs_f64(0.5), |sim| {
            set_rate_factor(sim, 0.25)
        });
        sim.schedule_at(SimTime::from_secs_f64(1.0), |sim| set_rate_factor(sim, 1.0));
        sim.run_to_completion(1000);
        let done = &sim.world.ext.get::<Done>().unwrap().0;
        assert_eq!(done.len(), 1);
        assert!((done[0].1 - 1.375).abs() < 1e-6, "t = {}", done[0].1);
    }

    #[test]
    fn checked_transfer_fails_under_fault_window_and_retry_recovers() {
        let mut sim = world();
        // Certain failure during [0, 2 s); transfers take 1 s each.
        sim.world.faults.window(
            "storage.fail",
            None,
            SimTime::ZERO,
            SimTime::from_secs(2),
            1.0,
        );
        start_transfer_checked(&mut sim, 80_000_000, |sim, ok| {
            assert!(!ok, "must fail inside the window");
            sim.world.ext.insert(true);
        });
        sim.run_to_completion(1000);
        assert!(sim.world.ext.get::<bool>().copied().unwrap_or(false));
        assert_eq!(sim.world.storage.transfers_failed, 1);

        // With retry: first attempt completes at 1 s and fails (in-window);
        // backoff 0.5 s → second attempt spans [1.5, 2.5] and completes
        // outside the window → success, one retry on the books.
        let mut sim = world();
        sim.world.faults.window(
            "storage.fail",
            None,
            SimTime::ZERO,
            SimTime::from_secs(2),
            1.0,
        );
        transfer_with_retry(&mut sim, 80_000_000, |sim, ok| {
            assert!(ok, "retry should land past the outage");
            let t = sim.now().as_secs_f64();
            sim.world.ext.get_or_default::<Done>().0.push((7, t));
        });
        sim.run_to_completion(1000);
        let done = &sim.world.ext.get::<Done>().unwrap().0;
        assert_eq!(done.len(), 1);
        assert!((done[0].1 - 2.5).abs() < 1e-6, "t = {}", done[0].1);
        assert_eq!(sim.world.storage.retries, 1);
        assert_eq!(sim.world.storage.transfers_failed, 1);
    }

    #[test]
    fn bounded_retry_gives_up() {
        let mut sim = world();
        sim.world.faults.steady("storage.fail", 1.0);
        transfer_with_retry(&mut sim, 10_000_000, |sim, ok| {
            assert!(!ok);
            sim.world.ext.insert(42u64);
        });
        sim.run_to_completion(1000);
        assert_eq!(sim.world.ext.get::<u64>().copied(), Some(42));
        let max = sim.world.cfg.storage_retry.max_attempts as u64;
        assert_eq!(sim.world.storage.transfers_failed, max);
        assert_eq!(sim.world.storage.retries, max - 1);
    }

    #[test]
    fn many_writers_match_analytic_makespan() {
        let mut sim = world();
        // 26 × 10 MB = 260 MB through a 100 MB/s array: 2.6 s makespan.
        for i in 0..26 {
            start_transfer(&mut sim, 10_000_000, record(i));
        }
        sim.run_to_completion(10_000);
        let done = &sim.world.ext.get::<Done>().unwrap().0;
        assert_eq!(done.len(), 26);
        for &(_, t) in done {
            assert!((t - 2.6).abs() < 1e-6);
        }
    }
}
