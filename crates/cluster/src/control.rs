//! The out-of-band management network.
//!
//! Checkpoint coordinators talk to per-node agents over a control plane
//! (think: the head node ssh-ing / RPC-ing into dom0s). Two operations are
//! modelled, both with heavy-tailed (log-normal) latency scaled by the
//! target node's background load — the mechanism behind the naive LSC
//! approach's poor scaling:
//!
//! * [`open_delay`] — establishing a terminal connection to a node;
//! * [`cmd_delay`]  — dispatching one command and having the remote side
//!   begin executing it.
//!
//! [`ctrl_call`] composes a sampled delay with an action that runs on the
//! target node (it silently vanishes if the node crashed meanwhile, like a
//! TCP session to a dead host).

use crate::node::NodeId;
use crate::world::ClusterWorld;
use dvc_sim_core::rng::lognormal_sample;
use dvc_sim_core::{Event, FaultEvent, Sim, SimDuration};

/// Sample the latency of opening a terminal connection to `node`.
pub fn open_delay(sim: &mut Sim<ClusterWorld>, node: NodeId) -> SimDuration {
    let cfg = sim.world.cfg.ctrl;
    let load = sim.world.node(node).load;
    let rng = sim.rng.stream("ctrl.open");
    let s = lognormal_sample(rng, cfg.open_mu, cfg.open_sigma);
    SimDuration::from_secs_f64(cfg.base_latency_s + s * (1.0 + 3.0 * load))
}

/// Sample the latency of dispatching a command to `node`.
pub fn cmd_delay(sim: &mut Sim<ClusterWorld>, node: NodeId) -> SimDuration {
    let cfg = sim.world.cfg.ctrl;
    let load = sim.world.node(node).load;
    let rng = sim.rng.stream("ctrl.cmd");
    let s = lognormal_sample(rng, cfg.cmd_mu, cfg.cmd_sigma);
    SimDuration::from_secs_f64(cfg.base_latency_s + s * (1.0 + 3.0 * load))
}

/// True when the control path to `node` is severed by a partition window
/// right now.
pub fn partitioned(sim: &Sim<ClusterWorld>, node: NodeId) -> bool {
    sim.world
        .faults
        .active("control.partition", Some(node.0 as u64), sim.now())
        .is_some()
}

/// Run `action` on `node` after `delay`, unless the node is down by then.
///
/// Fault injection: the message is lost at dispatch if a `control.partition`
/// window covers the node or a `control.drop` roll fires, and lost at
/// arrival if a partition has started while it was in flight. Losses are
/// silent, like an ssh session into a dead management network — the caller
/// only notices through its own timeouts, which is exactly the failure the
/// hardened coordinator's ack/abort protocol exists to survive.
pub fn ctrl_call(
    sim: &mut Sim<ClusterWorld>,
    node: NodeId,
    delay: SimDuration,
    action: impl FnOnce(&mut Sim<ClusterWorld>) + 'static,
) {
    if partitioned(sim, node) {
        sim.world.faults.note_injected("control.partition");
        sim.emit(Event::Fault(FaultEvent::Injected {
            what: "control.partition",
        }));
        sim.emit(Event::Fault(FaultEvent::CtrlPartitioned {
            node: node.0,
            in_flight: false,
        }));
        return;
    }
    let now = sim.now();
    let rng = sim.rng.stream("fault.control");
    if sim
        .world
        .faults
        .roll("control.drop", Some(node.0 as u64), now, rng)
    {
        sim.emit(Event::Fault(FaultEvent::Injected {
            what: "control.drop",
        }));
        sim.emit(Event::Fault(FaultEvent::CtrlDropped { node: node.0 }));
        return;
    }
    sim.schedule_in(delay, move |sim| {
        if partitioned(sim, node) {
            sim.world.faults.note_injected("control.partition");
            sim.emit(Event::Fault(FaultEvent::Injected {
                what: "control.partition",
            }));
            sim.emit(Event::Fault(FaultEvent::CtrlPartitioned {
                node: node.0,
                in_flight: true,
            }));
            return;
        }
        if sim.world.node(node).up {
            action(sim);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::ClusterBuilder;

    fn sim() -> Sim<ClusterWorld> {
        Sim::new(ClusterBuilder::new().nodes_per_cluster(4).build(5), 5)
    }

    #[test]
    fn delays_are_positive_and_heavy_tailed() {
        let mut sim = sim();
        let mut ds: Vec<f64> = (0..2000)
            .map(|_| open_delay(&mut sim, NodeId(1)).as_secs_f64())
            .collect();
        ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ds[ds.len() / 2];
        let p99 = ds[(ds.len() as f64 * 0.99) as usize];
        assert!(median > 0.3 && median < 1.0, "median {median}");
        assert!(
            p99 > 2.0 * median,
            "tail too light: p99 {p99} median {median}"
        );
    }

    #[test]
    fn load_inflates_latency() {
        let mut sim = sim();
        let base: f64 = (0..500)
            .map(|_| cmd_delay(&mut sim, NodeId(1)).as_secs_f64())
            .sum::<f64>()
            / 500.0;
        sim.world.node_mut(NodeId(2)).load = 0.8;
        let loaded: f64 = (0..500)
            .map(|_| cmd_delay(&mut sim, NodeId(2)).as_secs_f64())
            .sum::<f64>()
            / 500.0;
        assert!(
            loaded > base * 2.0,
            "load 0.8 should ~3.4× latency: {base} -> {loaded}"
        );
    }

    #[test]
    fn ctrl_call_runs_unless_node_died() {
        let mut sim = sim();
        sim.world.ext.insert(0u64);
        ctrl_call(&mut sim, NodeId(1), SimDuration::from_secs(1), |sim| {
            *sim.world.ext.get_mut::<u64>().unwrap() += 1;
        });
        ctrl_call(&mut sim, NodeId(2), SimDuration::from_secs(1), |sim| {
            *sim.world.ext.get_mut::<u64>().unwrap() += 10;
        });
        // Node 2 dies before the command lands.
        sim.schedule_in(SimDuration::from_millis(500), |sim| {
            sim.world.node_mut(NodeId(2)).up = false;
        });
        sim.run_to_completion(100);
        assert_eq!(*sim.world.ext.get::<u64>().unwrap(), 1);
    }

    #[test]
    fn partition_window_severs_control_to_target_only() {
        use dvc_sim_core::SimTime;
        let mut sim = sim();
        sim.world.ext.insert(0u64);
        sim.world.faults.window(
            "control.partition",
            Some(2),
            SimTime::ZERO,
            SimTime::from_secs(10),
            1.0,
        );
        ctrl_call(&mut sim, NodeId(2), SimDuration::from_secs(1), |sim| {
            *sim.world.ext.get_mut::<u64>().unwrap() += 10;
        });
        ctrl_call(&mut sim, NodeId(1), SimDuration::from_secs(1), |sim| {
            *sim.world.ext.get_mut::<u64>().unwrap() += 1;
        });
        // After the window lifts, node 2 is reachable again.
        sim.schedule_at(SimTime::from_secs(11), |sim| {
            ctrl_call(sim, NodeId(2), SimDuration::from_secs(1), |sim| {
                *sim.world.ext.get_mut::<u64>().unwrap() += 100;
            });
        });
        sim.run_to_completion(100);
        assert_eq!(*sim.world.ext.get::<u64>().unwrap(), 101);
        assert!(sim.world.faults.injected_total() >= 1);
    }

    #[test]
    fn partition_starting_mid_flight_eats_the_message() {
        use dvc_sim_core::SimTime;
        let mut sim = sim();
        sim.world.ext.insert(0u64);
        // Dispatch at t=0 (healthy), arrival at t=1 falls inside the window.
        sim.world.faults.window(
            "control.partition",
            Some(1),
            SimTime::from_secs_f64(0.5),
            SimTime::from_secs(5),
            1.0,
        );
        ctrl_call(&mut sim, NodeId(1), SimDuration::from_secs(1), |sim| {
            *sim.world.ext.get_mut::<u64>().unwrap() += 1;
        });
        sim.run_to_completion(100);
        assert_eq!(*sim.world.ext.get::<u64>().unwrap(), 0);
    }

    #[test]
    fn control_drop_probability_one_loses_everything() {
        let mut sim = sim();
        sim.world.ext.insert(0u64);
        sim.world.faults.steady("control.drop", 1.0);
        for n in 1..4 {
            ctrl_call(&mut sim, NodeId(n), SimDuration::from_secs(1), |sim| {
                *sim.world.ext.get_mut::<u64>().unwrap() += 1;
            });
        }
        sim.run_to_completion(100);
        assert_eq!(*sim.world.ext.get::<u64>().unwrap(), 0);
        assert_eq!(sim.world.faults.injected_total(), 3);
    }
}
