//! Failure injection: node crashes, repairs, MTBF-driven failure processes.
//!
//! A crashed node takes its NIC down and destroys every domain it hosts —
//! the failure DVC masks by restoring the virtual cluster's last checkpoint
//! set on different hardware.

use crate::glue::destroy_vm;
use crate::node::NodeId;
use crate::world::ClusterWorld;
use dvc_sim_core::rng::exp_sample;
use dvc_sim_core::{Event, RmEvent, Sim, SimDuration, SimTime};

/// Crash `node`: NIC down, all hosted domains destroyed.
pub fn crash_node(sim: &mut Sim<ClusterWorld>, node: NodeId) {
    let domains: Vec<_> = {
        let n = sim.world.node_mut(node);
        if !n.up {
            return;
        }
        n.up = false;
        n.crashes += 1;
        n.domains.clone()
    };
    let nic = sim.world.node(node).nic;
    sim.world.fabric.set_nic_up(nic, false);
    for vm in domains {
        destroy_vm(sim, vm);
    }
    sim.world.rm.note_node_down(node);
    sim.emit(Event::Rm(RmEvent::NodeDown { node: node.0 }));
}

/// Bring `node` back up (empty, clock unchanged — it kept ticking in BIOS).
pub fn repair_node(sim: &mut Sim<ClusterWorld>, node: NodeId) {
    let nic = {
        let n = sim.world.node_mut(node);
        if n.up {
            return;
        }
        n.up = true;
        n.domains.clear();
        n.nic
    };
    sim.world.fabric.set_nic_up(nic, true);
    sim.world.rm.note_node_up(node);
    sim.emit(Event::Rm(RmEvent::NodeUp { node: node.0 }));
}

/// Configuration of an MTBF-driven failure process.
#[derive(Clone, Copy, Debug)]
pub struct FailureProcess {
    /// Per-node mean time between failures.
    pub mtbf: SimDuration,
    /// Time a crashed node stays down before repair.
    pub repair_time: SimDuration,
    /// Stop injecting failures after this horizon.
    pub horizon: SimTime,
}

/// Arm independent exponential failure processes on `nodes`. Each node
/// crashes at exponential intervals with the given MTBF, stays down for
/// `repair_time`, and the cycle repeats until the horizon.
pub fn arm_failures(sim: &mut Sim<ClusterWorld>, nodes: &[NodeId], p: FailureProcess) {
    for &n in nodes {
        schedule_next_failure(sim, n, p);
    }
}

fn schedule_next_failure(sim: &mut Sim<ClusterWorld>, node: NodeId, p: FailureProcess) {
    let gap = {
        let rng = sim.rng.stream_idx("failure.mtbf", node.0 as u64);
        SimDuration::from_secs_f64(exp_sample(rng, p.mtbf.as_secs_f64()))
    };
    let at = sim.now() + gap;
    if at >= p.horizon {
        return;
    }
    sim.schedule_at(at, move |sim| {
        crash_node(sim, node);
        sim.schedule_in(p.repair_time, move |sim| {
            repair_node(sim, node);
            schedule_next_failure(sim, node, p);
        });
    });
}

/// A *predicted* fault signal (paper §1: "avoidance of job failure when
/// hardware faults can be predicted"): announce at `warn`, crash at `fail`.
/// The announcement invokes `on_warning` so a reliability manager can
/// evacuate the node first.
pub fn arm_predicted_fault(
    sim: &mut Sim<ClusterWorld>,
    node: NodeId,
    warn: SimTime,
    fail: SimTime,
    on_warning: impl FnOnce(&mut Sim<ClusterWorld>, NodeId) + 'static,
) {
    assert!(warn <= fail);
    sim.schedule_at(warn, move |sim| {
        on_warning(sim, node);
    });
    sim.schedule_at(fail, move |sim| {
        crash_node(sim, node);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glue::create_vm;
    use crate::world::ClusterBuilder;
    use dvc_vmm::VmState;

    fn sim() -> Sim<ClusterWorld> {
        Sim::new(ClusterBuilder::new().nodes_per_cluster(4).build(9), 9)
    }

    #[test]
    fn crash_destroys_domains_and_downs_nic() {
        let mut sim = sim();
        let vm = create_vm(&mut sim, NodeId(1), 128, 1);
        crash_node(&mut sim, NodeId(1));
        let n = sim.world.node(NodeId(1));
        assert!(!n.up);
        assert!(n.domains.is_empty());
        assert!(!sim.world.fabric.nic_is_up(n.nic));
        assert_eq!(sim.world.vm(vm).unwrap().state, VmState::Dead);
        // Idempotent.
        crash_node(&mut sim, NodeId(1));
        assert_eq!(sim.world.node(NodeId(1)).crashes, 1);
    }

    #[test]
    fn repair_restores_empty_node() {
        let mut sim = sim();
        crash_node(&mut sim, NodeId(2));
        repair_node(&mut sim, NodeId(2));
        let n = sim.world.node(NodeId(2));
        assert!(n.up);
        assert!(sim.world.fabric.nic_is_up(n.nic));
    }

    #[test]
    fn mtbf_process_produces_plausible_crash_count() {
        let mut sim = sim();
        let nodes = sim.world.node_ids();
        let horizon = SimTime::from_secs_f64(10_000.0);
        arm_failures(
            &mut sim,
            &nodes,
            FailureProcess {
                mtbf: SimDuration::from_secs(1000),
                repair_time: SimDuration::from_secs(60),
                horizon,
            },
        );
        sim.run(horizon, 1_000_000);
        let total: u32 = sim.world.nodes.iter().map(|n| n.crashes).sum();
        // 4 nodes × 10 000 s / (1000 + 60) s per cycle ≈ 38 expected.
        assert!(
            (15..=70).contains(&total),
            "expected ≈38 crashes, got {total}"
        );
    }

    #[test]
    fn predicted_fault_warns_before_crash() {
        let mut sim = sim();
        sim.world.ext.insert(Vec::<f64>::new());
        arm_predicted_fault(
            &mut sim,
            NodeId(3),
            SimTime::from_secs_f64(5.0),
            SimTime::from_secs_f64(8.0),
            |sim, node| {
                assert_eq!(node, NodeId(3));
                assert!(sim.world.node(node).up, "warning precedes the crash");
                let t = sim.now().as_secs_f64();
                sim.world.ext.get_mut::<Vec<f64>>().unwrap().push(t);
            },
        );
        sim.run_to_completion(1000);
        assert_eq!(sim.world.ext.get::<Vec<f64>>().unwrap().as_slice(), &[5.0]);
        assert!(!sim.world.node(NodeId(3)).up);
    }
}
