//! Hypervisor/host glue: the code a Xen dom0 + guest kernel boundary does.
//!
//! Responsibilities:
//!
//! * **Packet delivery** ([`deliver`]): dispatch fabric arrivals to host UDP
//!   (dom0 services like `ntpd`) or to a guest's stacks. Paused or dead
//!   guests silently drop — a suspended domain's vif receives nothing.
//! * **Stack draining** ([`drain_vm`]): guest stack outputs become fabric
//!   packets; socket events wake `Blocked` guest processes.
//! * **Process scheduling**: guest processes are polled with epoch- and
//!   generation-guarded events. `Compute` results are stretched by the VM's
//!   virtualization overhead profile; `SleepUntil` targets are node-local
//!   wall-clock instants converted through the host's drifting clock — this
//!   is precisely the mechanism the NTP-scheduled LSC prototype uses.
//! * **Pause/resume/save/restore** with faithful time semantics: on resume,
//!   expired TCP deadlines fire immediately, the watchdog observes the wall
//!   jump, and compute slices that "expired" during the freeze complete at
//!   once (error bounded by one slice).

use crate::node::NodeId;
use crate::storage;
use crate::world::ClusterWorld;
use dvc_net::addr::Addr;
use dvc_net::fabric;
use dvc_net::packet::{Packet, L4};
use dvc_net::tcp::LocalNs;
use dvc_net::NicId;
use dvc_sim_core::{
    Event, EventHandle, FaultEvent, Sim, SimDuration, SimTime, SpanId, StorageEvent, TcpEvent,
    VmmEvent,
};
use dvc_vmm::guest::{GuestOs, GuestProc, ProcPoll, ProcState};
use dvc_vmm::{Vm, VmId, VmImage, VmState};
use std::collections::HashMap;

/// The armed poll event per (vm, proc). Re-scheduling cancels the previous
/// event instead of leaving it in the heap to fire as a stale no-op.
#[derive(Default)]
struct PollArms(HashMap<(VmId, usize), EventHandle>);

/// The armed TCP timer interrupt per vm (same cancel-on-re-arm contract).
#[derive(Default)]
struct TimerArms(HashMap<VmId, EventHandle>);

/// Node-local wall-clock "now" for a node.
pub fn local_now(sim: &Sim<ClusterWorld>, node: NodeId) -> LocalNs {
    sim.world.node(node).clock.read(sim.now())
}

/// Node-local wall-clock "now" for the host of a VM.
pub fn vm_local_now(sim: &Sim<ClusterWorld>, vm: VmId) -> Option<LocalNs> {
    let host = *sim.world.vm_host.get(&vm)?;
    Some(local_now(sim, host))
}

/// Convert a node-local deadline into an absolute true-time instant
/// (clamped to now when already expired).
pub fn local_deadline_to_true(sim: &Sim<ClusterWorld>, node: NodeId, deadline: LocalNs) -> SimTime {
    let clock = &sim.world.node(node).clock;
    match clock.true_delay_until_local(sim.now(), deadline) {
        Some(d) => sim.now() + SimDuration::from_nanos(d),
        None => sim.now(),
    }
}

// ---------------------------------------------------------------------
// VM lifecycle
// ---------------------------------------------------------------------

/// Create a running domain on `node` with a fresh virtual address.
pub fn create_vm(sim: &mut Sim<ClusterWorld>, node: NodeId, mem_mb: u32, vcpus: u32) -> VmId {
    let cfg = sim.world.cfg;
    let vaddr = sim.world.alloc_vaddr();
    let mut guest = GuestOs::new(vaddr.into(), cfg.guest_tcp);
    guest.watchdog = dvc_vmm::guest::Watchdog::new(cfg.watchdog_period_ns);
    guest.watchdog.pet(local_now(sim, node));
    let id = VmId(sim.world.vms.len() as u32);
    let mut vm = Vm::new(id, mem_mb, vcpus, cfg.vm_overhead, guest);
    vm.state = VmState::Running;
    let nic = sim.world.node(node).nic;
    sim.world.fabric.bind(vaddr.into(), nic);
    sim.world.vaddr_vm.insert(vaddr, id);
    sim.world.vms.push(Some(vm));
    sim.world.vm_host.insert(id, node);
    sim.world.node_mut(node).domains.push(id);
    schedule_watchdog_tick(sim, id);
    id
}

/// Spawn a guest process and schedule its first poll.
pub fn spawn_proc(
    sim: &mut Sim<ClusterWorld>,
    vm: VmId,
    name: impl Into<String>,
    app: Box<dyn GuestProc>,
) -> usize {
    let idx = sim
        .world
        .vm_mut(vm)
        .expect("spawn on missing vm")
        .guest
        .spawn(name, app);
    let at = sim.now();
    schedule_poll_at(sim, vm, idx, at);
    idx
}

/// Pause a running domain (vCPUs stop, timers freeze, vif drops frames).
pub fn pause_vm(sim: &mut Sim<ClusterWorld>, vm: VmId) {
    let now_local = vm_local_now(sim, vm);
    if let Some(v) = sim.world.vm_mut(vm) {
        if v.is_running() {
            v.pause();
            if let Some(now_local) = now_local {
                v.guest.note_suspend(now_local);
            }
        }
    }
}

/// Resume a paused domain in place, with wall-jump semantics.
pub fn resume_vm(sim: &mut Sim<ClusterWorld>, vm: VmId) {
    let Some(host) = sim.world.vm_host.get(&vm).copied() else {
        return;
    };
    let now_local = local_now(sim, host);
    {
        let Some(v) = sim.world.vm_mut(vm) else {
            return;
        };
        if matches!(v.state, VmState::Dead | VmState::Running) {
            return;
        }
        v.resume();
        // A suspended vCPU did no work: shift in-progress compute slices by
        // the suspension length (wall alarms are NOT shifted — time is not
        // virtualized).
        v.guest.note_resume(now_local);
        // The watchdog sees the jump (paper: one timeout per save/restore).
        v.guest.watchdog_check(now_local);
        // Kernel timers whose deadlines passed during the freeze fire now.
        v.guest.tcp.on_timer(now_local);
    }
    schedule_watchdog_tick(sim, vm);
    drain_vm(sim, vm);
    wake_all_procs(sim, vm);
}

/// Save a domain: pause (if needed), snapshot, stream the image to shared
/// storage. The domain is left **paused** (state `Saving` → `Paused`); the
/// caller decides whether to resume, destroy, or migrate. `on_done` receives
/// `Some(image)` when the write (including any configured retries) landed,
/// `None` when storage gave up. A landed image may still be *silently*
/// corrupt — `image.corrupt` faults flip its stored checksum without any
/// error surfacing here; only an end-to-end [`VmImage::verify`] catches it.
pub fn save_vm(
    sim: &mut Sim<ClusterWorld>,
    vm: VmId,
    on_done: impl FnOnce(&mut Sim<ClusterWorld>, Option<VmImage>) + 'static,
) {
    save_vm_in(sim, vm, SpanId::NONE, on_done)
}

/// [`save_vm`] with a parent span: the storage write is wrapped in a
/// `storage.write` span under `parent` (the coordinator's `vmm.save` span),
/// so a trace shows how much of each member's save was spent on the shared
/// storage path vs. snapshotting.
pub fn save_vm_in(
    sim: &mut Sim<ClusterWorld>,
    vm: VmId,
    parent: SpanId,
    on_done: impl FnOnce(&mut Sim<ClusterWorld>, Option<VmImage>) + 'static,
) {
    pause_vm(sim, vm);
    let now = sim.now();
    let Some(v) = sim.world.vm_mut(vm) else {
        return;
    };
    if v.state == VmState::Dead {
        return;
    }
    v.state = VmState::Saving;
    let dirty = v.guest.mem.dirty_pages() as u64;
    let total = v.guest.mem.total_pages() as u64;
    let mut image = v.snapshot(now);
    let bytes = image.size_bytes();
    sim.emit(Event::Vmm(VmmEvent::SnapshotBegin { vm: vm.0 }));
    sim.emit(Event::Vmm(VmmEvent::PagesDirty {
        vm: vm.0,
        dirty,
        total,
    }));
    sim.emit(Event::Vmm(VmmEvent::SnapshotEnd { vm: vm.0, bytes }));
    storage::note_bytes(sim, bytes);
    let wspan = sim.open_span("storage.write", parent, bytes);
    storage::transfer_with_retry(sim, bytes, move |sim, ok| {
        sim.close_span(wspan);
        if let Some(v) = sim.world.vm_mut(vm) {
            if v.state == VmState::Saving {
                v.state = VmState::Paused;
            }
        }
        if !ok {
            sim.emit(Event::Storage(StorageEvent::SaveLost { vm: vm.0 }));
            on_done(sim, None);
            return;
        }
        let now = sim.now();
        let rng = sim.rng.stream("fault.image");
        if sim.world.faults.roll("image.corrupt", None, now, rng) {
            image.corrupt_silently();
            sim.emit(Event::Fault(FaultEvent::Injected {
                what: "image.corrupt",
            }));
            sim.emit(Event::Storage(StorageEvent::ChecksumFail { vm: vm.0 }));
        }
        on_done(sim, Some(image));
    });
}

/// Restore an image onto `target` (any node): stream from storage, then
/// recreate the domain there, re-point its virtual address, and resume.
pub fn restore_vm(
    sim: &mut Sim<ClusterWorld>,
    image: VmImage,
    target: NodeId,
    on_done: impl FnOnce(&mut Sim<ClusterWorld>, VmId) + 'static,
) {
    let bytes = image.size_bytes();
    storage::note_bytes(sim, bytes);
    storage::start_transfer(sim, bytes, move |sim| {
        let id = place_image(sim, &image, target);
        on_done(sim, id);
    });
}

/// Place a saved image onto `target` immediately (the storage read already
/// happened) and resume it.
pub fn place_image(sim: &mut Sim<ClusterWorld>, image: &VmImage, target: NodeId) -> VmId {
    let id = place_image_paused(sim, image, target);
    resume_vm(sim, id);
    id
}

/// Place a saved image onto `target` but leave it **paused** — the building
/// block of coordinated (all-images-staged-first) restores, where no guest
/// may run until every peer is ready to run with it.
pub fn place_image_paused(sim: &mut Sim<ClusterWorld>, image: &VmImage, target: NodeId) -> VmId {
    let id = image.vm;
    let idx = id.0 as usize;
    // Detach from the previous host if the domain still exists somewhere.
    if let Some(old_host) = sim.world.vm_host.remove(&id) {
        let node = sim.world.node_mut(old_host);
        node.domains.retain(|&d| d != id);
    }
    while sim.world.vms.len() <= idx {
        sim.world.vms.push(None);
    }
    let mut vm = Vm::new(
        id,
        image.mem_mb,
        image.vcpus,
        image.overhead,
        image.guest.clone(),
    );
    vm.state = VmState::Paused;
    vm.overhead = image.overhead;
    let vaddr = match image.guest.addr {
        Addr::Virt(v) => v,
        Addr::Phys(_) => panic!("guest must own a virtual address"),
    };
    sim.world.vms[idx] = Some(vm);
    let nic = sim.world.node(target).nic;
    sim.world.fabric.bind(vaddr.into(), nic);
    sim.world.vaddr_vm.insert(vaddr, id);
    sim.world.vm_host.insert(id, target);
    sim.world.node_mut(target).domains.push(id);
    id
}

/// Destroy a domain (shutdown or host crash): unbind its address, mark dead.
pub fn destroy_vm(sim: &mut Sim<ClusterWorld>, vm: VmId) {
    let Some(v) = sim.world.vm_mut(vm) else {
        return;
    };
    let addr = v.guest.addr;
    v.destroy();
    if let Addr::Virt(va) = addr {
        sim.world.fabric.unbind(addr);
        sim.world.vaddr_vm.remove(&va);
    }
    if let Some(host) = sim.world.vm_host.remove(&vm) {
        sim.world.node_mut(host).domains.retain(|&d| d != vm);
    }
}

// ---------------------------------------------------------------------
// Delivery & draining
// ---------------------------------------------------------------------

/// Fabric delivery entry point (called by `NetWorld::deliver`).
pub fn deliver(sim: &mut Sim<ClusterWorld>, nic: NicId, pkt: Packet) {
    let Some(&node_id) = sim.world.nic_node.get(&nic) else {
        return;
    };
    match pkt.dst {
        Addr::Phys(_) => {
            if !sim.world.node(node_id).up {
                return;
            }
            match pkt.l4 {
                L4::Udp(d) => {
                    sim.world.node_mut(node_id).host_udp.on_datagram(pkt.src, d);
                    crate::ntp::dispatch_host_udp(sim, node_id);
                    drain_host_udp(sim, node_id);
                }
                // dom0 TCP services are not modelled; control traffic is
                // out-of-band (see `control.rs`).
                L4::Tcp(_) => {}
            }
        }
        Addr::Virt(va) => {
            let Some(&vm_id) = sim.world.vaddr_vm.get(&va) else {
                return;
            };
            // Virtualization I/O overhead: the guest pays extra per-packet
            // processing over native (para-virt split drivers copy frames;
            // hardware assist nearly eliminates it).
            let (running, epoch, net_factor) = match sim.world.vm(vm_id) {
                Some(v) => (v.is_running(), v.epoch, v.overhead.net_factor),
                None => return,
            };
            if !running {
                return; // suspended guest: the frame is gone
            }
            let cost_ns = (sim.world.cfg.net_pkt_base_ns as f64 * net_factor).round() as u64;
            if cost_ns == 0 {
                guest_rx(sim, vm_id, pkt);
            } else {
                // Serialized ingress processing: each packet occupies the
                // guest's (virtual) NIC receive path for its full cost.
                let now = sim.now();
                let done = {
                    let Some(v) = sim.world.vm_mut(vm_id) else {
                        return;
                    };
                    let start = now.max(v.rx_busy_until);
                    let done = start + SimDuration::from_nanos(cost_ns);
                    v.rx_busy_until = done;
                    done
                };
                sim.schedule_at(done, move |sim| {
                    let ok = sim
                        .world
                        .vm(vm_id)
                        .is_some_and(|v| v.is_running() && v.epoch == epoch);
                    if ok {
                        guest_rx(sim, vm_id, pkt);
                    }
                });
            }
        }
    }
}

/// Hand a packet to a (running) guest's stacks and follow up.
fn guest_rx(sim: &mut Sim<ClusterWorld>, vm_id: VmId, pkt: Packet) {
    let Some(local) = vm_local_now(sim, vm_id) else {
        return;
    };
    {
        let Some(v) = sim.world.vm_mut(vm_id) else {
            return;
        };
        if !v.is_running() {
            return;
        }
        match pkt.l4 {
            L4::Tcp(seg) => v.guest.tcp.on_segment(local, pkt.src, seg),
            L4::Udp(d) => {
                v.guest.udp.on_datagram(pkt.src, d);
            }
        }
    }
    drain_vm(sim, vm_id);
    wake_blocked_procs(sim, vm_id);
}

/// Push a node's pending host-UDP datagrams onto the fabric.
pub fn drain_host_udp(sim: &mut Sim<ClusterWorld>, node: NodeId) {
    loop {
        let out: Vec<Packet> = std::mem::take(&mut sim.world.node_mut(node).host_udp.out);
        if out.is_empty() {
            break;
        }
        for p in out {
            fabric::send(sim, p);
        }
    }
}

/// Drain a guest's stack outputs: packets to the fabric, events as wakeups.
/// Re-arms the guest TCP timer interrupt afterwards.
pub fn drain_vm(sim: &mut Sim<ClusterWorld>, vm: VmId) {
    let mut had_events = false;
    loop {
        let Some(v) = sim.world.vm_mut(vm) else {
            return;
        };
        let tcp_out = std::mem::take(&mut v.guest.tcp.out);
        let udp_out = std::mem::take(&mut v.guest.udp.out);
        if tcp_out.is_empty() && udp_out.is_empty() {
            break;
        }
        for o in tcp_out {
            match o {
                dvc_net::tcp::StackOutput::Packet(p) => fabric::send(sim, p),
                dvc_net::tcp::StackOutput::Event(_, _) => had_events = true,
            }
        }
        for p in udp_out {
            fabric::send(sim, p);
        }
    }
    // Surface the transport anomalies the stack noted while we were away
    // (retransmits, probes, aborts) onto the typed event spine.
    if let Some(v) = sim.world.vm_mut(vm) {
        if v.guest.tcp.has_notes() {
            let notes = v.guest.tcp.take_notes();
            let ep = vm.0;
            for n in notes {
                sim.emit(Event::Tcp(tcp_note_event(n, ep)));
            }
        }
    }
    rearm_guest_timer(sim, vm);
    if had_events {
        wake_blocked_procs(sim, vm);
    }
}

/// Map a stack-level [`dvc_net::tcp::TcpNote`] onto the typed spine,
/// attaching the endpoint (VM) that owns the stack.
fn tcp_note_event(n: dvc_net::tcp::TcpNote, ep: u32) -> TcpEvent {
    use dvc_net::tcp::TcpNote as N;
    match n {
        N::Retransmit => TcpEvent::Retransmit { ep },
        N::FastRetransmit => TcpEvent::FastRetransmit { ep },
        N::RtoFired => TcpEvent::RtoFired { ep },
        N::ZeroWindowProbe => TcpEvent::ZeroWindowProbe { ep },
        N::KeepaliveProbe => TcpEvent::KeepaliveProbe { ep },
        N::ConnAborted => TcpEvent::ConnAborted { ep },
    }
}

/// Keep exactly one TCP timer interrupt armed per guest: re-arming cancels
/// the previously armed event before scheduling the new deadline.
pub fn rearm_guest_timer(sim: &mut Sim<ClusterWorld>, vm: VmId) {
    if let Some(h) = sim.world.ext.get_or_default::<TimerArms>().0.remove(&vm) {
        sim.cancel(h);
    }
    let Some(host) = sim.world.vm_host.get(&vm).copied() else {
        return;
    };
    let (deadline, epoch) = {
        let Some(v) = sim.world.vm(vm) else { return };
        if !v.is_running() {
            return;
        }
        let Some(d) = v.guest.tcp.next_deadline() else {
            return;
        };
        (d, v.epoch)
    };
    let at = local_deadline_to_true(sim, host, deadline);
    let h = sim.schedule_at(at, move |sim| {
        // This is the armed interrupt: clear the slot so a later re-arm
        // doesn't cancel an already-fired handle.
        sim.world.ext.get_or_default::<TimerArms>().0.remove(&vm);
        let Some(local) = vm_local_now(sim, vm) else {
            return;
        };
        let Some(v) = sim.world.vm_mut(vm) else {
            return;
        };
        if !v.is_running() || v.epoch != epoch {
            return;
        }
        v.guest.tcp.on_timer(local);
        drain_vm(sim, vm);
    });
    sim.world.ext.get_or_default::<TimerArms>().0.insert(vm, h);
}

// ---------------------------------------------------------------------
// Process scheduling
// ---------------------------------------------------------------------

/// Schedule a poll of process `idx` at `at` (cancelling any older schedule).
pub fn schedule_poll_at(sim: &mut Sim<ClusterWorld>, vm: VmId, idx: usize, at: SimTime) {
    if let Some(h) = sim
        .world
        .ext
        .get_or_default::<PollArms>()
        .0
        .remove(&(vm, idx))
    {
        sim.cancel(h);
    }
    let Some(epoch) = sim.world.vm(vm).map(|v| v.epoch) else {
        return;
    };
    let h = sim.schedule_at(at, move |sim| {
        sim.world
            .ext
            .get_or_default::<PollArms>()
            .0
            .remove(&(vm, idx));
        let Some(v) = sim.world.vm(vm) else { return };
        if !v.is_running() || v.epoch != epoch {
            return;
        }
        poll_proc(sim, vm, idx);
    });
    sim.world
        .ext
        .get_or_default::<PollArms>()
        .0
        .insert((vm, idx), h);
}

/// Poll one guest process and act on the result.
pub fn poll_proc(sim: &mut Sim<ClusterWorld>, vm: VmId, idx: usize) {
    let Some(host) = sim.world.vm_host.get(&vm).copied() else {
        return;
    };
    let now_local = local_now(sim, host);
    let (poll, overhead) = {
        let Some(v) = sim.world.vm_mut(vm) else {
            return;
        };
        if !v.is_running() {
            return;
        }
        let poll = v.guest.poll_proc(idx, now_local);
        (poll, v.overhead)
    };
    match poll {
        Some(ProcPoll::Compute(d)) => {
            let stretched = overhead.stretch_cpu(d);
            let due_local = now_local + stretched.nanos() as LocalNs;
            if let Some(v) = sim.world.vm_mut(vm) {
                if let Some(p) = v.guest.procs.get_mut(idx) {
                    p.compute_due = Some(due_local);
                }
            }
            let at = sim.now() + stretched;
            schedule_poll_at(sim, vm, idx, at);
        }
        Some(ProcPoll::SleepUntil(t)) => {
            let at = local_deadline_to_true(sim, host, t);
            schedule_poll_at(sim, vm, idx, at);
        }
        Some(ProcPoll::Blocked) | Some(ProcPoll::Done) | Some(ProcPoll::Failed(_)) | None => {}
    }
    drain_vm(sim, vm);
}

/// Wake all `Blocked` processes of a guest (socket events arrived).
pub fn wake_blocked_procs(sim: &mut Sim<ClusterWorld>, vm: VmId) {
    let blocked: Vec<usize> = {
        let Some(v) = sim.world.vm(vm) else { return };
        if !v.is_running() {
            return;
        }
        v.guest
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.state == ProcState::Blocked)
            .map(|(i, _)| i)
            .collect()
    };
    let now = sim.now();
    for idx in blocked {
        schedule_poll_at(sim, vm, idx, now);
    }
}

/// Wake every live process (used on resume/restore). Sleeping processes are
/// re-armed against the (possibly jumped) wall clock; runnable processes
/// whose compute slice expired during the freeze complete immediately.
pub fn wake_all_procs(sim: &mut Sim<ClusterWorld>, vm: VmId) {
    let Some(host) = sim.world.vm_host.get(&vm).copied() else {
        return;
    };
    let now_local = local_now(sim, host);
    let live: Vec<(usize, ProcState, Option<LocalNs>)> = {
        let Some(v) = sim.world.vm(vm) else { return };
        v.guest
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.state.is_live())
            .map(|(i, p)| (i, p.state.clone(), p.compute_due))
            .collect()
    };
    for (idx, state, due) in live {
        let at = match state {
            ProcState::Sleeping(t) => local_deadline_to_true(sim, host, t),
            ProcState::Runnable => match due {
                Some(d) if d > now_local => local_deadline_to_true(sim, host, d),
                _ => sim.now(),
            },
            ProcState::Blocked => sim.now(),
            _ => continue,
        };
        schedule_poll_at(sim, vm, idx, at);
    }
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

fn schedule_watchdog_tick(sim: &mut Sim<ClusterWorld>, vm: VmId) {
    let Some(host) = sim.world.vm_host.get(&vm).copied() else {
        return;
    };
    let (epoch, period) = {
        let Some(v) = sim.world.vm(vm) else { return };
        if !v.is_running() {
            return;
        }
        (v.epoch, v.guest.watchdog.period_ns)
    };
    let tick = SimDuration::from_nanos((period / 2).max(1) as u64);
    sim.schedule_in(tick, move |sim| {
        let Some(v) = sim.world.vm(vm) else { return };
        if !v.is_running() || v.epoch != epoch {
            return;
        }
        let now_local = local_now(sim, host);
        if let Some(v) = sim.world.vm_mut(vm) {
            v.guest.watchdog_check(now_local);
            v.guest.watchdog.pet(now_local);
        }
        schedule_watchdog_tick(sim, vm);
    });
}
