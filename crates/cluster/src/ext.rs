//! A minimal type-map for layering state into the world.
//!
//! `dvc-core` (and experiment harnesses) keep their coordinator state inside
//! `ClusterWorld` via this map, so event closures — which are typed against
//! `Sim<ClusterWorld>` — can reach it without `dvc-cluster` depending on the
//! layers above it.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// Heterogeneous, type-keyed storage.
#[derive(Default)]
pub struct Extensions {
    map: HashMap<TypeId, Box<dyn Any>>,
}

impl Extensions {
    pub fn new() -> Self {
        Extensions::default()
    }

    pub fn insert<T: 'static>(&mut self, value: T) -> Option<T> {
        self.map
            .insert(TypeId::of::<T>(), Box::new(value))
            .and_then(|old| old.downcast::<T>().ok())
            .map(|b| *b)
    }

    pub fn get<T: 'static>(&self) -> Option<&T> {
        self.map
            .get(&TypeId::of::<T>())
            .and_then(|b| b.downcast_ref::<T>())
    }

    pub fn get_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.map
            .get_mut(&TypeId::of::<T>())
            .and_then(|b| b.downcast_mut::<T>())
    }

    pub fn get_or_default<T: 'static + Default>(&mut self) -> &mut T {
        self.map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(T::default()))
            .downcast_mut::<T>()
            .expect("type map invariant")
    }

    pub fn remove<T: 'static>(&mut self) -> Option<T> {
        self.map
            .remove(&TypeId::of::<T>())
            .and_then(|b| b.downcast::<T>().ok())
            .map(|b| *b)
    }

    pub fn contains<T: 'static>(&self) -> bool {
        self.map.contains_key(&TypeId::of::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default, PartialEq, Debug)]
    struct CoordState {
        arms: u32,
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut e = Extensions::new();
        assert!(e.get::<CoordState>().is_none());
        e.insert(CoordState { arms: 3 });
        assert_eq!(e.get::<CoordState>().unwrap().arms, 3);
        e.get_mut::<CoordState>().unwrap().arms += 1;
        assert_eq!(e.get::<CoordState>().unwrap().arms, 4);
    }

    #[test]
    fn get_or_default_creates() {
        let mut e = Extensions::new();
        e.get_or_default::<CoordState>().arms = 7;
        assert_eq!(e.get::<CoordState>().unwrap().arms, 7);
    }

    #[test]
    fn insert_returns_previous() {
        let mut e = Extensions::new();
        assert!(e.insert(CoordState { arms: 1 }).is_none());
        let old = e.insert(CoordState { arms: 2 }).unwrap();
        assert_eq!(old.arms, 1);
    }

    #[test]
    fn remove_takes_ownership() {
        let mut e = Extensions::new();
        e.insert(CoordState { arms: 5 });
        let taken = e.remove::<CoordState>().unwrap();
        assert_eq!(taken.arms, 5);
        assert!(!e.contains::<CoordState>());
    }

    #[test]
    fn distinct_types_coexist() {
        let mut e = Extensions::new();
        e.insert(CoordState { arms: 1 });
        e.insert(42u64);
        assert_eq!(*e.get::<u64>().unwrap(), 42);
        assert_eq!(e.get::<CoordState>().unwrap().arms, 1);
    }
}
