//! The concrete simulation world: clusters of nodes, VMs, fabric, storage.

use crate::ext::Extensions;
use crate::node::{ClusterId, Node, NodeId};
use crate::rm::ResourceManager;
use crate::storage::SharedStorage;
use dvc_net::addr::{PhysAddr, VirtAddr};
use dvc_net::fabric::{Fabric, LinkParams, NetWorld, SwitchId};
use dvc_net::packet::Packet;
use dvc_net::tcp::TcpConfig;
use dvc_net::NicId;
use dvc_sim_core::{FaultPlan, Sim, SimDuration};
use dvc_time::clock::HwClock;
use dvc_vmm::{OverheadProfile, Vm, VmId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Control-channel latency model (see `control.rs` for semantics).
#[derive(Clone, Copy, Debug)]
pub struct ControlCfg {
    /// Log-normal μ/σ of a terminal-connection *open* (seconds).
    pub open_mu: f64,
    pub open_sigma: f64,
    /// Log-normal μ/σ of command dispatch + remote service (seconds).
    pub cmd_mu: f64,
    pub cmd_sigma: f64,
    /// Fixed floor added to every control exchange (seconds).
    pub base_latency_s: f64,
}

/// Bounded-retry policy for shared-storage transfers (the hardened
/// checkpoint pipeline's answer to transient storage failures).
#[derive(Clone, Copy, Debug)]
pub struct StorageRetryCfg {
    /// Total attempts per transfer (1 = no retry, the unhardened baseline).
    pub max_attempts: u32,
    /// First backoff delay, seconds; doubles per failed attempt.
    pub base_backoff_s: f64,
}

impl Default for StorageRetryCfg {
    fn default() -> Self {
        StorageRetryCfg {
            max_attempts: 4,
            base_backoff_s: 0.5,
        }
    }
}

impl Default for ControlCfg {
    fn default() -> Self {
        // Calibrated so serialized terminal fan-out reproduces the paper's
        // naive-LSC failure curve (DESIGN.md §2): e^0.55 ≈ 0.58 s median
        // per-connection open, heavy upper tail.
        ControlCfg {
            open_mu: (0.55f64).ln(),
            open_sigma: 0.55,
            cmd_mu: (0.35f64).ln(),
            cmd_sigma: 0.45,
            base_latency_s: 0.02,
        }
    }
}

/// World-wide configuration knobs.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    pub guest_tcp: TcpConfig,
    /// Guest watchdog period, ns.
    pub watchdog_period_ns: i64,
    pub default_vm_mem_mb: u32,
    pub vm_overhead: OverheadProfile,
    pub ctrl: ControlCfg,
    /// Boot-time clock offsets are uniform in ±this many ms.
    pub clock_max_offset_ms: f64,
    /// Oscillator drift σ, ppm.
    pub clock_drift_sigma_ppm: f64,
    pub node_gflops: f64,
    pub node_mem_mb: u32,
    /// Native per-packet guest ingress processing cost, ns. The guest pays
    /// `net_pkt_base_ns × net_factor` of serialized processing per packet;
    /// when that exceeds the wire's per-packet serialization (~12 µs for a
    /// full GigE frame), receive processing becomes the bottleneck — the
    /// Xen-era "DomU can't saturate GigE" effect.
    pub net_pkt_base_ns: u64,
    /// Retry policy for checkpoint storage transfers.
    pub storage_retry: StorageRetryCfg,
}

impl WorldConfig {
    /// The guest-TCP silence budget this world's transport tolerates:
    /// `rto_min · (2^max_data_retries − 1)` — the span of exponential
    /// backoff a peer sits through before aborting the connection. This is
    /// the budget the LSC window invariant is checked against
    /// ([`dvc_sim_core::InvariantChecker`]); deriving it from the actual
    /// TCP config matters once scenarios randomize `max_data_retries`
    /// instead of using the default 4-retry ≈3 s constant.
    pub fn silence_budget(&self) -> SimDuration {
        let spread = (1u64 << self.guest_tcp.max_data_retries.min(40)) - 1;
        SimDuration(self.guest_tcp.rto_min_ns.max(0) as u64 * spread)
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            guest_tcp: TcpConfig::default(),
            watchdog_period_ns: 30_000_000_000,
            default_vm_mem_mb: 256,
            vm_overhead: OverheadProfile::PARAVIRT,
            ctrl: ControlCfg::default(),
            clock_max_offset_ms: 250.0,
            clock_drift_sigma_ppm: 30.0,
            node_gflops: 8.0, // 2007-era dual-core node
            node_mem_mb: 4096,
            net_pkt_base_ns: 6_000,
            storage_retry: StorageRetryCfg::default(),
        }
    }
}

/// Static description of one cluster.
#[derive(Clone, Debug)]
pub struct ClusterInfo {
    pub id: ClusterId,
    pub switch: SwitchId,
    pub nodes: Vec<NodeId>,
}

/// The whole simulated testbed.
pub struct ClusterWorld {
    pub cfg: WorldConfig,
    pub nodes: Vec<Node>,
    pub clusters: Vec<ClusterInfo>,
    /// Domains by VmId index (`None` after destruction).
    pub vms: Vec<Option<Vm>>,
    /// Current placement of each live domain.
    pub vm_host: HashMap<VmId, NodeId>,
    /// Virtual address → domain (the DVC overlay's directory).
    pub vaddr_vm: HashMap<VirtAddr, VmId>,
    pub fabric: Fabric,
    pub storage: SharedStorage,
    /// The run's fault-injection schedule (empty by default). Install a
    /// populated plan with [`crate::faults::install_fault_plan`] so window-
    /// driven effects (brownouts, clock steps) get their boundary events.
    pub faults: FaultPlan,
    pub rm: ResourceManager,
    /// Layer-private state from `dvc-core` and experiment harnesses.
    pub ext: Extensions,
    /// Head node: NTP server, control-plane origin.
    pub head: NodeId,
    /// Reverse map NIC → owning node (packet delivery dispatch).
    pub nic_node: HashMap<NicId, NodeId>,
    next_vaddr: u32,
}

impl ClusterWorld {
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(id.0 as usize).and_then(|v| v.as_ref())
    }

    pub fn vm_mut(&mut self, id: VmId) -> Option<&mut Vm> {
        self.vms.get_mut(id.0 as usize).and_then(|v| v.as_mut())
    }

    pub fn alloc_vaddr(&mut self) -> VirtAddr {
        let a = VirtAddr(self.next_vaddr);
        self.next_vaddr += 1;
        a
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32).map(NodeId).collect()
    }

    /// Nodes of one cluster.
    pub fn cluster_nodes(&self, c: ClusterId) -> &[NodeId] {
        &self.clusters[c.0 as usize].nodes
    }

    /// Count of live (placed, not Dead) domains.
    pub fn live_vm_count(&self) -> usize {
        self.vms
            .iter()
            .flatten()
            .filter(|v| !matches!(v.state, dvc_vmm::VmState::Dead))
            .count()
    }
}

impl NetWorld for ClusterWorld {
    fn fabric(&mut self) -> &mut Fabric {
        &mut self.fabric
    }
    fn deliver(sim: &mut Sim<Self>, nic: NicId, pkt: Packet) {
        crate::glue::deliver(sim, nic, pkt);
    }
}

/// Builds a multi-cluster world: one switch per cluster, nodes behind LAN
/// edges, cluster switches joined to cluster 0 by WAN-ish trunks, shared
/// storage attached at the head.
pub struct ClusterBuilder {
    n_clusters: usize,
    nodes_per_cluster: usize,
    lan: LinkParams,
    wan: LinkParams,
    storage_agg_bps: f64,
    storage_stream_bps: f64,
    cfg: WorldConfig,
    perfect_clocks: bool,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    pub fn new() -> Self {
        ClusterBuilder {
            n_clusters: 1,
            nodes_per_cluster: 4,
            lan: LinkParams::gige_lan(),
            wan: LinkParams::campus_wan(),
            storage_agg_bps: 400.0e6,
            storage_stream_bps: 110.0e6,
            cfg: WorldConfig::default(),
            perfect_clocks: false,
        }
    }

    pub fn clusters(mut self, n: usize) -> Self {
        self.n_clusters = n.max(1);
        self
    }

    pub fn nodes_per_cluster(mut self, n: usize) -> Self {
        self.nodes_per_cluster = n.max(1);
        self
    }

    pub fn lan(mut self, p: LinkParams) -> Self {
        self.lan = p;
        self
    }

    pub fn wan(mut self, p: LinkParams) -> Self {
        self.wan = p;
        self
    }

    pub fn storage(mut self, agg_bps: f64, stream_bps: f64) -> Self {
        self.storage_agg_bps = agg_bps;
        self.storage_stream_bps = stream_bps;
        self
    }

    pub fn config(mut self, cfg: WorldConfig) -> Self {
        self.cfg = cfg;
        self
    }

    pub fn tweak(mut self, f: impl FnOnce(&mut WorldConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Disable clock imperfections (tests that don't exercise NTP).
    pub fn perfect_clocks(mut self) -> Self {
        self.perfect_clocks = true;
        self
    }

    pub fn build(self, seed: u64) -> ClusterWorld {
        let mut rng = SmallRng::seed_from_u64(dvc_sim_core::rng::splitmix64(seed ^ 0xC10C));
        let mut fabric = Fabric::new();
        let mut nodes = Vec::new();
        let mut clusters = Vec::new();

        let mut switches = Vec::new();
        for _ in 0..self.n_clusters {
            switches.push(fabric.add_switch());
        }
        for c in 1..self.n_clusters {
            fabric.connect_switches(switches[0], switches[c], self.wan);
        }

        for (c, &cluster_switch) in switches.iter().enumerate().take(self.n_clusters) {
            let mut members = Vec::new();
            for _ in 0..self.nodes_per_cluster {
                let id = NodeId(nodes.len() as u32);
                let addr = PhysAddr(id.0);
                let nic = fabric.add_nic(cluster_switch, self.lan);
                fabric.bind(addr.into(), nic);
                let clock = if self.perfect_clocks {
                    HwClock::perfect()
                } else {
                    HwClock::random(
                        &mut rng,
                        self.cfg.clock_max_offset_ms,
                        self.cfg.clock_drift_sigma_ppm,
                    )
                };
                nodes.push(Node::new(
                    id,
                    ClusterId(c as u32),
                    addr,
                    nic,
                    self.cfg.node_gflops,
                    self.cfg.node_mem_mb,
                    clock,
                ));
                members.push(id);
            }
            clusters.push(ClusterInfo {
                id: ClusterId(c as u32),
                switch: cluster_switch,
                nodes: members,
            });
        }

        let nic_node = nodes.iter().map(|n| (n.nic, n.id)).collect();
        ClusterWorld {
            cfg: self.cfg,
            nodes,
            clusters,
            vms: Vec::new(),
            vm_host: HashMap::new(),
            vaddr_vm: HashMap::new(),
            fabric,
            storage: SharedStorage::new(self.storage_agg_bps, self.storage_stream_bps),
            faults: FaultPlan::none(),
            rm: ResourceManager::new(),
            ext: Extensions::new(),
            head: NodeId(0),
            nic_node,
            next_vaddr: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_budget_tracks_the_retry_schedule() {
        let mut cfg = WorldConfig::default();
        cfg.guest_tcp.rto_min_ns = 200_000_000;
        cfg.guest_tcp.max_data_retries = 4;
        // 200 ms · (2^4 − 1) = 3 s — the default-world constant.
        assert_eq!(cfg.silence_budget(), SimDuration::from_secs(3));
        cfg.guest_tcp.max_data_retries = 6;
        assert_eq!(cfg.silence_budget(), SimDuration::from_millis(12_600));
    }

    #[test]
    fn builder_lays_out_multi_cluster_topology() {
        let w = ClusterBuilder::new()
            .clusters(3)
            .nodes_per_cluster(4)
            .build(1);
        assert_eq!(w.nodes.len(), 12);
        assert_eq!(w.clusters.len(), 3);
        assert_eq!(w.cluster_nodes(ClusterId(2)).len(), 4);
        // Every node's address resolves on the fabric.
        for n in &w.nodes {
            assert_eq!(w.fabric.lookup(n.addr.into()), Some(n.nic));
        }
        // Node→cluster assignment is consistent.
        for (c, info) in w.clusters.iter().enumerate() {
            for &nid in &info.nodes {
                assert_eq!(w.node(nid).cluster.0 as usize, c);
            }
        }
    }

    #[test]
    fn clocks_are_imperfect_by_default_and_perfect_on_request() {
        let w = ClusterBuilder::new().nodes_per_cluster(8).build(3);
        let worst = w
            .nodes
            .iter()
            .map(|n| n.clock.error_ns(dvc_sim_core::SimTime::ZERO).abs())
            .fold(0.0f64, f64::max);
        assert!(worst > 0.0, "expected imperfect clocks");
        assert!(worst <= 250.0e6);

        let w = ClusterBuilder::new()
            .nodes_per_cluster(8)
            .perfect_clocks()
            .build(3);
        for n in &w.nodes {
            assert_eq!(n.clock.error_ns(dvc_sim_core::SimTime::ZERO), 0.0);
        }
    }

    #[test]
    fn vaddr_allocation_is_sequential() {
        let mut w = ClusterBuilder::new().build(1);
        assert_eq!(w.alloc_vaddr(), VirtAddr(0));
        assert_eq!(w.alloc_vaddr(), VirtAddr(1));
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = ClusterBuilder::new().nodes_per_cluster(6).build(9);
        let b = ClusterBuilder::new().nodes_per_cluster(6).build(9);
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(
                x.clock.error_ns(dvc_sim_core::SimTime::ZERO),
                y.clock.error_ns(dvc_sim_core::SimTime::ZERO)
            );
        }
        let c = ClusterBuilder::new().nodes_per_cluster(6).build(10);
        let same = a.nodes.iter().zip(&c.nodes).all(|(x, y)| {
            x.clock.error_ns(dvc_sim_core::SimTime::ZERO)
                == y.clock.error_ns(dvc_sim_core::SimTime::ZERO)
        });
        assert!(!same, "different seeds must differ");
    }
}
