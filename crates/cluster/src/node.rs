//! Physical nodes.

use dvc_net::addr::{NicId, PhysAddr};
use dvc_net::udp::UdpStack;
use dvc_sim_core::SimTime;
use dvc_time::clock::HwClock;
use dvc_time::ntp::{Discipline, DisciplineConfig};
use dvc_vmm::VmId;

/// Physical node identifier (index into `ClusterWorld::nodes`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Cluster identifier (index into `ClusterWorld::clusters`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClusterId(pub u32);

/// A physical cluster node.
pub struct Node {
    pub id: NodeId,
    pub cluster: ClusterId,
    pub addr: PhysAddr,
    pub nic: NicId,
    /// Peak double-precision rate used to convert workload flops to time.
    pub cpu_gflops: f64,
    pub mem_mb: u32,
    /// Drifting hardware clock; guests read this (time is not virtualized).
    pub clock: HwClock,
    /// The node's NTP client state.
    pub ntp: Discipline,
    /// True time of the last successful NTP exchange (a reply arrived and
    /// passed the filter). `None` until first sync. Coordinators use this to
    /// detect lost clock synchronization and degrade their scheduling mode.
    pub ntp_last_sync: Option<SimTime>,
    pub up: bool,
    /// Background load ∈ [0, 1); inflates control-plane service latency
    /// ("this implementation does not take into account a heavily loaded
    /// server which may not be able to service a checkpoint request
    /// immediately" — paper §3.1, which we model and sweep in E12).
    pub load: f64,
    /// Domains currently placed on this node.
    pub domains: Vec<VmId>,
    /// dom0 UDP endpoint (NTP and other host services).
    pub host_udp: UdpStack,
    /// Crash/repair counters for diagnostics.
    pub crashes: u32,
}

impl Node {
    pub fn new(
        id: NodeId,
        cluster: ClusterId,
        addr: PhysAddr,
        nic: NicId,
        cpu_gflops: f64,
        mem_mb: u32,
        clock: HwClock,
    ) -> Self {
        Node {
            id,
            cluster,
            addr,
            nic,
            cpu_gflops,
            mem_mb,
            clock,
            ntp: Discipline::new(DisciplineConfig::default()),
            ntp_last_sync: None,
            up: true,
            load: 0.0,
            domains: Vec::new(),
            host_udp: UdpStack::new(addr.into()),
            crashes: 0,
        }
    }

    /// Free memory after accounting for hosted domains' footprints is
    /// tracked by the world (it owns the VMs); the node only knows count.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Node({:?} c{} {:?} up={} domains={})",
            self.id,
            self.cluster.0,
            self.addr,
            self.up,
            self.domains.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvc_time::clock::HwClock;

    #[test]
    fn node_basics() {
        let n = Node::new(
            NodeId(3),
            ClusterId(0),
            PhysAddr(3),
            NicId(3),
            8.0,
            4096,
            HwClock::perfect(),
        );
        assert!(n.up);
        assert_eq!(n.domain_count(), 0);
        assert_eq!(n.load, 0.0);
        assert!(format!("{n:?}").contains("Node"));
    }
}
