//! # dvc-cluster
//!
//! The physical multi-cluster testbed, as one concrete simulation world.
//!
//! This crate glues every substrate together into [`world::ClusterWorld`]:
//!
//! * [`node`] — physical nodes: CPU speed, memory, a drifting hardware
//!   clock, a dom0 UDP endpoint, background load, hosted domains.
//! * [`world`] — the world type + [`builder`](world::ClusterBuilder) that
//!   lays out clusters of nodes behind per-cluster switches with optional
//!   inter-cluster trunks (the paper's Figure-1 topology).
//! * [`glue`] — the hypervisor/host glue: packet delivery into guests,
//!   draining guest stack outputs, process poll scheduling with epoch
//!   guards, VM pause/resume/save/restore including watchdog and timer
//!   semantics across the wall-clock jump.
//! * [`storage`] — the shared checkpoint filesystem: a processor-sharing
//!   bandwidth model, so 26 simultaneous VM saves contend realistically.
//! * [`ntp`] — `ntpd` on every node polling the head-node server over
//!   simulated UDP, driving each node's clock discipline.
//! * [`control`] — the out-of-band management network used by checkpoint
//!   coordinators: terminal-connection opens and command dispatches with
//!   load-sensitive, heavy-tailed latency (the naive-LSC failure source).
//! * [`failure`] — node crash/repair injection and MTBF-driven failure
//!   processes.
//! * [`rm`] — a Torque/Moab-flavoured resource manager: FIFO queue with
//!   EASY backfill, node allocation (single-cluster or spanning), job
//!   lifecycle.
//! * [`ext`] — a small type-map so higher layers (dvc-core) can stash their
//!   coordinator state inside the world without this crate knowing about it.

pub mod control;
pub mod ext;
pub mod failure;
pub mod faults;
pub mod glue;
pub mod node;
pub mod ntp;
pub mod rm;
pub mod storage;
pub mod world;

pub use node::{ClusterId, Node, NodeId};
pub use world::{ClusterBuilder, ClusterWorld, WorldConfig};
