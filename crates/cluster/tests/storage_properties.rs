//! Property tests for the processor-sharing storage model: work
//! conservation and bandwidth bounds for arbitrary transfer patterns.

use dvc_cluster::storage::{self, SharedStorage};
use dvc_cluster::world::{ClusterBuilder, ClusterWorld};
use dvc_sim_core::{Sim, SimTime};
use proptest::prelude::*;

#[derive(Default)]
struct Done(Vec<(usize, f64)>);

fn world(agg: f64, stream: f64) -> Sim<ClusterWorld> {
    let mut w = ClusterBuilder::new().nodes_per_cluster(2).build(3);
    w.storage = SharedStorage::new(agg, stream);
    Sim::new(w, 3)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// For any set of transfers started at arbitrary times:
    /// * every transfer completes;
    /// * no transfer finishes faster than its per-stream floor;
    /// * the makespan is at least the aggregate-bandwidth floor;
    /// * completions are monotone in start order for equal sizes... (too
    ///   strong under sharing; skipped) — and the system goes idle at the end.
    #[test]
    fn processor_sharing_conserves_work(
        jobs in prop::collection::vec((1u64..200_000_000, 0u64..5_000), 1..20),
        agg_mb in 50u64..1000,
        stream_mb in 20u64..500,
    ) {
        let agg = agg_mb as f64 * 1e6;
        let stream = stream_mb as f64 * 1e6;
        let mut sim = world(agg, stream);
        sim.world.ext.insert(Done::default());
        let mut total_bytes = 0u64;
        let mut last_start = 0.0f64;
        for (i, &(bytes, start_ms)) in jobs.iter().enumerate() {
            total_bytes += bytes;
            let start = start_ms as f64 / 1e3;
            last_start = last_start.max(start);
            sim.schedule_at(SimTime::from_secs_f64(start), move |sim| {
                let t0 = sim.now().as_secs_f64();
                storage::start_transfer(sim, bytes, move |sim| {
                    let t1 = sim.now().as_secs_f64();
                    sim.world.ext.get_or_default::<Done>().0.push((i, t1 - t0));
                });
                let _ = t0;
            });
        }
        sim.run_to_completion(1_000_000);

        let done = sim.world.ext.get::<Done>().unwrap().0.clone();
        prop_assert_eq!(done.len(), jobs.len(), "transfers lost");
        prop_assert_eq!(sim.world.storage.active_transfers(), 0);

        // Per-transfer floor: duration ≥ bytes / per-stream cap (within 1 µs).
        for &(i, dur) in &done {
            let floor = jobs[i].0 as f64 / stream;
            prop_assert!(
                dur + 1e-5 >= floor,
                "transfer {i} beat its stream cap: {dur} < {floor}"
            );
        }
        // Aggregate floor: total time from first start to all-done is at
        // least total_bytes / agg (transfers can't sum above the array).
        let end = sim.now().as_secs_f64();
        let agg_floor = total_bytes as f64 / agg;
        prop_assert!(
            end + 1e-5 >= agg_floor,
            "makespan {end} beat the array: {agg_floor}"
        );
    }
}
