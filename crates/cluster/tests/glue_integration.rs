//! Integration tests: guests on the simulated testbed.
//!
//! These exercise the full path — guest process → guest TCP stack → fabric →
//! peer guest — plus VM save/restore with *migration to a different node*,
//! watchdog semantics, and cluster-wide NTP convergence.

use dvc_cluster::glue::{self, create_vm, save_vm, spawn_proc};
use dvc_cluster::node::NodeId;
use dvc_cluster::ntp;
use dvc_cluster::world::{ClusterBuilder, ClusterWorld};
use dvc_net::tcp::{SockId, TcpError};
use dvc_sim_core::{Sim, SimDuration, SimTime};
use dvc_vmm::guest::{GuestCtx, GuestProc, ProcPoll};
use dvc_vmm::VmId;

/// A guest app that sends `total` bytes to a peer and records progress.
#[derive(Clone)]
struct Sender {
    peer: dvc_net::Addr,
    port: u16,
    total: usize,
    sent: usize,
    sock: Option<SockId>,
    done: bool,
}

impl GuestProc for Sender {
    fn poll(&mut self, ctx: &mut GuestCtx<'_>) -> ProcPoll {
        if self.done {
            return ProcPoll::Done;
        }
        let sock = match self.sock {
            Some(s) => s,
            None => {
                let s = ctx.tcp.connect(ctx.now, self.peer, self.port);
                self.sock = Some(s);
                s
            }
        };
        if let Some(err) = ctx.tcp.error(sock) {
            return ProcPoll::Failed(format!("socket error: {err:?}"));
        }
        if self.sent < self.total {
            let len = (self.total - self.sent).min(8192);
            let chunk: Vec<u8> = (0..len).map(|i| ((self.sent + i) % 251) as u8).collect();
            let n = ctx.tcp.send(ctx.now, sock, &chunk);
            self.sent += n;
            if n > 0 {
                // Model some compute between sends.
                return ProcPoll::Compute(dvc_sim_core::SimDuration::from_micros(200));
            }
            return ProcPoll::Blocked;
        }
        self.done = true;
        ProcPoll::Done
    }
    fn clone_box(&self) -> Box<dyn GuestProc> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A guest app that accepts one connection and consumes bytes, verifying
/// the pattern.
#[derive(Clone)]
struct Receiver {
    port: u16,
    expect: usize,
    got: usize,
    listener: Option<SockId>,
    conn: Option<SockId>,
    corrupt: bool,
}

impl GuestProc for Receiver {
    fn poll(&mut self, ctx: &mut GuestCtx<'_>) -> ProcPoll {
        if self.listener.is_none() {
            self.listener = Some(ctx.tcp.listen(self.port).expect("listen"));
        }
        if self.conn.is_none() {
            // Adopt the first established connection on our port.
            // (The runtime surfaces it through stack state: scan via recv on
            // any socket readable — simplest: check socket ids 1..8.)
            for cand in 1..16 {
                if ctx.tcp.state(cand) == Some(dvc_net::tcp::TcpState::Established)
                    && Some(cand) != self.listener
                {
                    self.conn = Some(cand);
                    break;
                }
            }
            if self.conn.is_none() {
                return ProcPoll::Blocked;
            }
        }
        let conn = self.conn.unwrap();
        loop {
            let data = ctx.tcp.recv(ctx.now, conn, 1 << 16);
            if data.is_empty() {
                break;
            }
            for b in data {
                if b != (self.got % 251) as u8 {
                    self.corrupt = true;
                }
                self.got += 1;
            }
        }
        if self.corrupt {
            return ProcPoll::Failed("stream corrupted".into());
        }
        if self.got >= self.expect {
            return ProcPoll::Done;
        }
        ProcPoll::Blocked
    }
    fn clone_box(&self) -> Box<dyn GuestProc> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn world(nodes: usize) -> Sim<ClusterWorld> {
    Sim::new(
        ClusterBuilder::new()
            .nodes_per_cluster(nodes)
            .perfect_clocks()
            .build(21),
        21,
    )
}

/// Build a sender VM on node 1 and a receiver VM on node 2, moving `total`
/// bytes. Returns (sim, sender vm, receiver vm).
fn sender_receiver(total: usize) -> (Sim<ClusterWorld>, VmId, VmId) {
    let mut sim = world(4);
    let vm_rx = create_vm(&mut sim, NodeId(2), 128, 1);
    let rx_addr = sim.world.vm(vm_rx).unwrap().guest.addr;
    let vm_tx = create_vm(&mut sim, NodeId(1), 128, 1);
    spawn_proc(
        &mut sim,
        vm_rx,
        "rx",
        Box::new(Receiver {
            port: 5000,
            expect: total,
            got: 0,
            listener: None,
            conn: None,
            corrupt: false,
        }),
    );
    spawn_proc(
        &mut sim,
        vm_tx,
        "tx",
        Box::new(Sender {
            peer: rx_addr,
            port: 5000,
            total,
            sent: 0,
            sock: None,
            done: false,
        }),
    );
    (sim, vm_tx, vm_rx)
}

fn run_until(
    sim: &mut Sim<ClusterWorld>,
    horizon: SimTime,
    mut pred: impl FnMut(&Sim<ClusterWorld>) -> bool,
) -> bool {
    while !pred(sim) {
        if sim.now() > horizon || !sim.step() {
            return pred(sim);
        }
    }
    true
}

fn rx_done(sim: &Sim<ClusterWorld>, vm: VmId) -> bool {
    sim.world.vm(vm).is_some_and(|v| v.guest.all_done())
}

#[test]
fn guest_to_guest_transfer_completes() {
    let (mut sim, vm_tx, vm_rx) = sender_receiver(500_000);
    let ok = run_until(&mut sim, SimTime::from_secs_f64(120.0), |sim| {
        rx_done(sim, vm_rx) && rx_done(sim, vm_tx)
    });
    assert!(ok, "transfer never finished");
    assert!(sim.world.vm(vm_rx).unwrap().guest.first_failure().is_none());
}

#[test]
fn coordinated_save_restore_on_same_nodes_is_transparent() {
    let (mut sim, vm_tx, vm_rx) = sender_receiver(30_000_000);
    // Let the transfer get going, then save both VMs near-simultaneously.
    sim.schedule_at(SimTime::from_secs_f64(0.1), move |sim| {
        save_vm(sim, vm_tx, move |sim, img_tx| {
            // Resume in place once BOTH saves complete — track via ext.
            sim.world
                .ext
                .get_or_default::<Vec<dvc_vmm::VmImage>>()
                .push(img_tx.expect("save failed"));
        });
    });
    sim.schedule_at(SimTime::from_secs_f64(0.102), move |sim| {
        save_vm(sim, vm_rx, move |sim, img_rx| {
            sim.world
                .ext
                .get_or_default::<Vec<dvc_vmm::VmImage>>()
                .push(img_rx.expect("save failed"));
        });
    });
    // When both images exist, resume both in place.
    fn watch(sim: &mut Sim<ClusterWorld>, vm_tx: VmId, vm_rx: VmId) {
        let ready = sim
            .world
            .ext
            .get::<Vec<dvc_vmm::VmImage>>()
            .is_some_and(|v| v.len() == 2);
        if ready {
            glue::resume_vm(sim, vm_tx);
            glue::resume_vm(sim, vm_rx);
        } else {
            sim.schedule_in(SimDuration::from_millis(100), move |sim| {
                watch(sim, vm_tx, vm_rx)
            });
        }
    }
    sim.schedule_at(SimTime::from_secs_f64(0.15), move |sim| {
        watch(sim, vm_tx, vm_rx)
    });

    let ok = run_until(&mut sim, SimTime::from_secs_f64(300.0), |sim| {
        rx_done(sim, vm_rx)
    });
    assert!(ok, "transfer did not survive the checkpoint");
    // Each VM paused exactly once (the save).
    assert_eq!(sim.world.vm(vm_tx).unwrap().pause_count, 1);
}

#[test]
fn restore_migrates_to_different_nodes_transparently() {
    let (mut sim, vm_tx, vm_rx) = sender_receiver(30_000_000);
    // Save both; destroy the originals ("the node died"); restore the pair
    // on two *different* nodes from the images.
    sim.schedule_at(SimTime::from_secs_f64(0.1), move |sim| {
        save_vm(sim, vm_tx, move |sim, img| {
            sim.world
                .ext
                .get_or_default::<Vec<dvc_vmm::VmImage>>()
                .push(img.expect("save failed"));
        });
        save_vm(sim, vm_rx, move |sim, img| {
            sim.world
                .ext
                .get_or_default::<Vec<dvc_vmm::VmImage>>()
                .push(img.expect("save failed"));
        });
    });
    fn watch(sim: &mut Sim<ClusterWorld>, vm_tx: VmId, vm_rx: VmId) {
        let ready = sim
            .world
            .ext
            .get::<Vec<dvc_vmm::VmImage>>()
            .is_some_and(|v| v.len() == 2);
        if !ready {
            sim.schedule_in(SimDuration::from_millis(50), move |sim| {
                watch(sim, vm_tx, vm_rx)
            });
            return;
        }
        let images = sim.world.ext.remove::<Vec<dvc_vmm::VmImage>>().unwrap();
        glue::destroy_vm(sim, vm_tx);
        glue::destroy_vm(sim, vm_rx);
        for img in images {
            // Swap hosts: whatever ran on node 1 goes to node 3, etc.
            let target = if img.vm == vm_tx {
                NodeId(3)
            } else {
                NodeId(0)
            };
            glue::restore_vm(sim, img, target, |_sim, _id| {});
        }
    }
    sim.schedule_at(SimTime::from_secs_f64(0.15), move |sim| {
        watch(sim, vm_tx, vm_rx)
    });

    let ok = run_until(&mut sim, SimTime::from_secs_f64(600.0), |sim| {
        rx_done(sim, vm_rx)
    });
    assert!(ok, "transfer did not survive migration");
    // Placement really changed.
    assert_eq!(sim.world.vm_host[&vm_tx], NodeId(3));
    assert_eq!(sim.world.vm_host[&vm_rx], NodeId(0));
    assert!(sim.world.vm(vm_tx).unwrap().is_running() || rx_done(&sim, vm_rx));
}

#[test]
fn one_sided_save_without_peer_kills_the_application() {
    let (mut sim, vm_tx, vm_rx) = sender_receiver(4_000_000);
    // Save ONLY the receiver and never restore it: the sender's TCP budget
    // runs out and its app observes the reset.
    sim.schedule_at(SimTime::from_secs_f64(0.05), move |sim| {
        save_vm(sim, vm_rx, |_sim, _img| {});
    });
    let ok = run_until(&mut sim, SimTime::from_secs_f64(600.0), |sim| {
        sim.world
            .vm(vm_tx)
            .is_some_and(|v| v.guest.first_failure().is_some())
    });
    assert!(ok, "sender should have crashed");
    let v = sim.world.vm(vm_tx).unwrap();
    let (_, err) = v.guest.first_failure().unwrap();
    assert!(err.contains("socket error"), "got: {err}");
    assert!(
        v.guest.tcp.counters.conns_aborted >= 1
            || v.guest.tcp.error(2) == Some(TcpError::RetryTimeout)
    );
}

#[test]
fn watchdog_fires_once_per_save_restore_cycle() {
    let (mut sim, vm_tx, _vm_rx) = sender_receiver(100_000_000); // long job
                                                                 // Shrink the watchdog period so short pauses trip it.
    sim.world.vm_mut(vm_tx).unwrap().guest.watchdog.period_ns = 1_000_000_000; // 1 s
    for k in 0..3 {
        let at = SimTime::from_secs_f64(2.0 + k as f64 * 10.0);
        sim.schedule_at(at, move |sim| {
            save_vm(sim, vm_tx, move |sim, _img| {
                // ~1.2 s of storage time has passed; resume in place.
                glue::resume_vm(sim, vm_tx);
            });
        });
    }
    run_until(&mut sim, SimTime::from_secs_f64(40.0), |_| false);
    let v = sim.world.vm(vm_tx).unwrap();
    assert_eq!(
        v.guest.watchdog.timeouts, 3,
        "exactly one watchdog timeout per save/restore cycle; kmsg: {:?}",
        v.guest.kmsg
    );
    assert_eq!(v.pause_count, 3);
    let wd_msgs = v
        .guest
        .kmsg
        .iter()
        .filter(|m| m.msg.contains("watchdog"))
        .count();
    assert_eq!(wd_msgs, 3);
}

#[test]
fn ntp_converges_cluster_wide_to_few_ms() {
    let mut sim = Sim::new(ClusterBuilder::new().nodes_per_cluster(26).build(33), 33);
    ntp::start_ntp(&mut sim, SimDuration::from_secs(4));
    // Initial offsets are up to ±250 ms.
    let before = ntp::worst_pairwise_offset_ns(&sim);
    assert!(before > 10.0e6, "expected big initial offsets: {before}");
    sim.run(SimTime::from_secs_f64(600.0), 10_000_000);
    let after = ntp::worst_pairwise_offset_ns(&sim);
    assert!(
        after < 6.0e6,
        "NTP should reach few-ms pairwise skew, got {} ms",
        after / 1e6
    );
}
