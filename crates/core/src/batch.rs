//! Batch integration: DVC jobs through the resource manager.
//!
//! The paper's §4: "Much work needs to be done … including integration with
//! resource managers and schedulers like Torque and Moab." This module is
//! that integration: a user submits an *MPI program* (not VMs); the RM
//! queues it, allocates physical nodes under a placement policy, DVC
//! provisions a virtual cluster on them (staging images, booting), the
//! program runs one rank per vnode under an optional reliability policy,
//! and completion releases the nodes back to the scheduler.

use crate::reliability::{self, Policy};
use crate::vc::{self, VcId, VcSpec};
use dvc_cluster::rm::{self, JobId, JobSpec, Placement};
use dvc_cluster::world::ClusterWorld;
use dvc_mpi::data::RankData;
use dvc_mpi::harness;
use dvc_mpi::ops::Op;
use dvc_sim_core::{Sim, SimDuration};
use std::collections::HashMap;

/// A batch DVC job: an MPI program plus its virtual-cluster shape.
pub struct DvcJobSpec {
    pub name: String,
    /// vnodes = ranks (one rank per vnode).
    pub vnodes: usize,
    pub mem_mb: u32,
    pub placement: Placement,
    /// Scheduler walltime estimate.
    pub est_duration: SimDuration,
    /// Per-rank program builder.
    pub program: Box<dyn Fn(usize, usize) -> (Vec<Op>, RankData)>,
    /// Optional reliability management while the job runs.
    pub reliability: Option<Policy>,
    /// Horizon after which a running job is killed (walltime limit × slack).
    pub kill_after: SimDuration,
}

/// Lifecycle of a batch DVC job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DvcJobState {
    Queued,
    Provisioning,
    Running,
    Completed,
    Failed,
    Killed,
}

/// Tracking record, queryable by the submitter.
#[derive(Clone, Debug)]
pub struct DvcJobStatus {
    pub rm_job: JobId,
    pub state: DvcJobState,
    pub vc: Option<VcId>,
    pub detail: String,
}

#[derive(Default)]
struct BatchState {
    jobs: HashMap<JobId, DvcJobStatus>,
    mpi: HashMap<JobId, harness::MpiJob>,
}

fn batch(sim: &mut Sim<ClusterWorld>) -> &mut BatchState {
    sim.world.ext.get_or_default::<BatchState>()
}

/// Submit a DVC batch job. Returns the RM job id for status queries.
pub fn submit_dvc_job(sim: &mut Sim<ClusterWorld>, spec: DvcJobSpec) -> JobId {
    let DvcJobSpec {
        name,
        vnodes,
        mem_mb,
        placement,
        est_duration,
        program,
        reliability: rel,
        kill_after,
    } = spec;
    let rm_spec = JobSpec {
        name: name.clone(),
        nodes: vnodes,
        est_duration,
        placement,
    };
    // The launcher runs when the scheduler assigns nodes.
    let id = rm::submit(sim, rm_spec, move |sim, job_id, nodes| {
        if let Some(st) = batch(sim).jobs.get_mut(&job_id) {
            st.state = DvcJobState::Provisioning;
        }
        let mut vc_spec = VcSpec::new(name.clone(), nodes.len(), mem_mb);
        vc_spec.os_image_bytes = 64 << 20;
        vc_spec.boot_time = SimDuration::from_secs(10);
        let program = program; // move the builder into the ready callback
        vc::provision_vc(sim, vc_spec, nodes, move |sim, vc_id| {
            if let Some(st) = batch(sim).jobs.get_mut(&job_id) {
                st.state = DvcJobState::Running;
                st.vc = Some(vc_id);
            }
            let vms = vc::vc(sim, vc_id).unwrap().vms.clone();
            let mpi_job = harness::launch_on_vms(sim, &vms, program);
            batch(sim).mpi.insert(job_id, mpi_job);
            if let Some(policy) = rel {
                reliability::manage(sim, vc_id, policy);
            }
            watch_job(sim, job_id, vc_id, kill_after);
        });
    });
    batch(sim).jobs.insert(
        id,
        DvcJobStatus {
            rm_job: id,
            state: DvcJobState::Queued,
            vc: None,
            detail: String::new(),
        },
    );
    id
}

/// Poll the job every few seconds: completion, failure, or walltime kill.
fn watch_job(sim: &mut Sim<ClusterWorld>, job_id: JobId, vc_id: VcId, kill_after: SimDuration) {
    let deadline = sim.now() + kill_after;
    fn tick(
        sim: &mut Sim<ClusterWorld>,
        job_id: JobId,
        vc_id: VcId,
        deadline: dvc_sim_core::SimTime,
    ) {
        let Some(mpi_job) = batch(sim).mpi.get(&job_id).cloned() else {
            return;
        };
        let rel_active = {
            // A managed job in recovery shows transient failures; only the
            // reliability layer's verdict ("lost") is terminal then.
            let s = reliability::stats(sim, vc_id);
            !s.lost && (s.restores > 0 || s.checkpoints_ok > 0 || s.checkpoints_failed > 0)
        };
        let lost = reliability::stats(sim, vc_id).lost;

        if harness::all_done(sim, &mpi_job) {
            finish(sim, job_id, vc_id, DvcJobState::Completed, "ok".into());
            return;
        }
        if lost {
            finish(
                sim,
                job_id,
                vc_id,
                DvcJobState::Failed,
                "unrecoverable".into(),
            );
            return;
        }
        if let Some((rank, err)) = harness::first_failure(sim, &mpi_job) {
            if !rel_active {
                finish(
                    sim,
                    job_id,
                    vc_id,
                    DvcJobState::Failed,
                    format!("rank {rank}: {err}"),
                );
                return;
            }
        }
        if sim.now() > deadline {
            finish(sim, job_id, vc_id, DvcJobState::Killed, "walltime".into());
            return;
        }
        sim.schedule_in(SimDuration::from_secs(5), move |sim| {
            tick(sim, job_id, vc_id, deadline)
        });
    }
    tick(sim, job_id, vc_id, deadline);
}

fn finish(
    sim: &mut Sim<ClusterWorld>,
    job_id: JobId,
    vc_id: VcId,
    state: DvcJobState,
    detail: String,
) {
    reliability::stop(sim, vc_id);
    vc::teardown_vc(sim, vc_id);
    if let Some(st) = batch(sim).jobs.get_mut(&job_id) {
        st.state = state;
        st.detail = detail;
    }
    rm::complete_job(sim, job_id, state == DvcJobState::Completed);
}

/// Status of a batch DVC job.
pub fn job_status(sim: &mut Sim<ClusterWorld>, id: JobId) -> Option<DvcJobStatus> {
    batch(sim).jobs.get(&id).cloned()
}

/// Borrow the MPI job handle of a running/finished batch job.
pub fn mpi_job(sim: &mut Sim<ClusterWorld>, id: JobId) -> Option<harness::MpiJob> {
    batch(sim).mpi.get(&id).cloned()
}
