//! Lazy Synchronous Checkpointing.
//!
//! "There is a finite amount of time to save all virtual machines
//! participating in the parallel computation before a network timeout occurs
//! and causes the application to crash." (paper §3)
//!
//! This module implements the three coordinators:
//!
//! * [`LscMethod::Naive`] — §3.1's first attempt: the coordinator opens a
//!   terminal connection to every node (serially), then walks the open
//!   terminals issuing `vm save`; each dispatch occupies the coordinator for
//!   a heavy-tailed service time, so the **pause skew grows ~linearly with
//!   node count** and eventually exceeds the transport's retry budget. The
//!   resume side is dispatched the same way — the paper counts "failures to
//!   either save or restore".
//! * [`LscMethod::Ntp`] — §3.1's working prototype: the coordinator picks a
//!   fire instant `T` a lead time in the future, arms every node's agent,
//!   and each agent's microsecond timer fires `vm save` when its *local*
//!   disciplined clock reads `T`. Pause skew = residual NTP error.
//! * [`LscMethod::Hardened`] — §4's future work: arm acknowledgements with
//!   an abort-before-fire guard, per-image verification, health checks and
//!   bounded retry, which is what lets the scheme survive per-agent
//!   failures at large node counts (experiment E4).
//! * [`LscMethod::HardenedNaive`] — the hardened protocol with the clock
//!   taken out: arm every agent in parallel, collect acks, and broadcast GO
//!   instead of scheduling a local-clock fire instant. Pause skew is the
//!   spread of parallel control dispatches — worse than NTP scheduling, far
//!   better than the serial naive walk — and nothing depends on clock
//!   discipline, so the reliability manager degrades to this mode when NTP
//!   sync is lost (experiment E13).
//!
//! Checkpoint failures are **never injected at the transport level** — they
//! emerge from peers of a paused guest exhausting TCP retransmissions. The
//! only injectable fault is an *agent* fault ([`LscFaults`]), modelling the
//! paper's "the larger the likelihood of a single VM checkpoint failing".

use crate::vc::{self, CheckpointSet, VcId, VcState};
use dvc_cluster::control;
use dvc_cluster::glue;
use dvc_cluster::node::NodeId;
use dvc_cluster::storage;
use dvc_cluster::world::ClusterWorld;
use dvc_sim_core::{Event, LscEvent, Sim, SimDuration, SimTime, SpanId};
use dvc_vmm::{VmId, VmImage};
use rand::Rng;
use std::collections::HashMap;

/// Which coordinator to use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LscMethod {
    Naive,
    Ntp {
        /// How far in the future the fire instant is set.
        lead: SimDuration,
    },
    Hardened {
        lead: SimDuration,
        /// Arms must be acknowledged this long before the fire instant or
        /// the attempt is aborted (nothing pauses) and retried.
        ack_guard: SimDuration,
        max_attempts: u32,
        /// Fraction of each image read back for verification after the save.
        verify_fraction: f64,
    },
    /// Clock-free hardened coordination: all agents are armed in parallel
    /// and must ack within `ack_timeout`, then the coordinator broadcasts
    /// GO (repeated, so a dropped control message doesn't strand one
    /// member). No local-clock scheduling anywhere — usable while NTP is
    /// down or a member clock has been stepped.
    HardenedNaive {
        ack_timeout: SimDuration,
        max_attempts: u32,
        verify_fraction: f64,
    },
}

impl LscMethod {
    pub fn ntp_default() -> Self {
        LscMethod::Ntp {
            lead: SimDuration::from_secs(5),
        }
    }

    pub fn hardened_default() -> Self {
        LscMethod::Hardened {
            lead: SimDuration::from_secs(5),
            ack_guard: SimDuration::from_secs(1),
            max_attempts: 5,
            verify_fraction: 0.05,
        }
    }

    pub fn hardened_naive_default() -> Self {
        LscMethod::HardenedNaive {
            ack_timeout: SimDuration::from_secs(5),
            max_attempts: 5,
            verify_fraction: 0.05,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            LscMethod::Naive => "naive",
            LscMethod::Ntp { .. } => "ntp",
            LscMethod::Hardened { .. } => "hardened",
            LscMethod::HardenedNaive { .. } => "hardened-naive",
        }
    }

    /// Every coordinator name [`name`](Self::name) can produce, in a fixed
    /// order — the scenario-space the fuzz generator samples from and the
    /// corpus format validates against.
    pub const NAMES: &'static [&'static str] = &["naive", "ntp", "hardened", "hardened-naive"];

    /// Construct the default-parameterized coordinator for a serialized
    /// method name (inverse of [`name`](Self::name) over [`Self::NAMES`]).
    /// Declarative scenarios (fuzz corpus TOML) carry methods as strings;
    /// an unknown name is a malformed-scenario error.
    pub fn from_name(name: &str) -> Option<LscMethod> {
        match name {
            "naive" => Some(LscMethod::Naive),
            "ntp" => Some(LscMethod::ntp_default()),
            "hardened" => Some(LscMethod::hardened_default()),
            "hardened-naive" => Some(LscMethod::hardened_naive_default()),
            _ => None,
        }
    }

    /// Hardened-family coordinators verify image checksums, re-save corrupt
    /// images, and never leave a partially-paused VC behind.
    pub fn is_hardened(&self) -> bool {
        matches!(
            self,
            LscMethod::Hardened { .. } | LscMethod::HardenedNaive { .. }
        )
    }

    fn verify_fraction(&self) -> f64 {
        match *self {
            LscMethod::Hardened {
                verify_fraction, ..
            }
            | LscMethod::HardenedNaive {
                verify_fraction, ..
            } => verify_fraction,
            _ => 0.0,
        }
    }
}

/// Injectable agent faults (experiment knobs; transport faults are never
/// injected — they emerge).
#[derive(Clone, Copy, Debug, Default)]
pub struct LscFaults {
    /// Probability that a node's checkpoint agent silently dies on arm
    /// (its VM then never pauses — the paper's per-VM failure mode).
    pub arm_loss_prob: f64,
}

/// Set the world-wide agent-fault configuration.
pub fn set_faults(sim: &mut Sim<ClusterWorld>, faults: LscFaults) {
    sim.world.ext.insert(faults);
}

fn faults(sim: &Sim<ClusterWorld>) -> LscFaults {
    sim.world
        .ext
        .get::<LscFaults>()
        .copied()
        .unwrap_or_default()
}

/// Result of one checkpoint (save + coordinated resume) cycle.
#[derive(Clone, Debug)]
pub struct LscOutcome {
    pub vc: VcId,
    pub method: &'static str,
    /// All images captured and all guests resumed.
    pub success: bool,
    pub set_id: Option<u64>,
    /// Max − min guest pause instant (the skew LSC must keep under the
    /// transport budget).
    pub pause_skew: SimDuration,
    /// Max − min guest resume instant.
    pub resume_skew: SimDuration,
    /// Coordinator start → all images stored.
    pub save_duration: SimDuration,
    /// Coordinator start → everything resumed (or failed).
    pub total_duration: SimDuration,
    pub attempts: u32,
    pub detail: String,
}

/// Result of restoring a set onto (possibly different) hosts.
#[derive(Clone, Debug)]
pub struct RestoreOutcome {
    pub vc: VcId,
    pub success: bool,
    pub resume_skew: SimDuration,
    pub duration: SimDuration,
    pub detail: String,
}

/// Alias kept for the public API: a full checkpoint report.
pub type LscReport = LscOutcome;

type DoneCb = Box<dyn FnOnce(&mut Sim<ClusterWorld>, LscOutcome)>;

struct CkptRun {
    vc: VcId,
    method: LscMethod,
    started: SimTime,
    expected: usize,
    images: Vec<Option<VmImage>>,
    resolved: usize,
    failed_members: usize,
    pause_times: Vec<Option<SimTime>>,
    resume_times: Vec<Option<SimTime>>,
    resumed: usize,
    attempts: u32,
    /// Hardened: arm acks collected for the current attempt.
    acks: usize,
    /// Per-member agent liveness: once an agent has come up (acked/armed),
    /// later attempts re-arm it reliably; only dead agents re-roll the
    /// fault dice (a retry restarts the crashed checkpoint process).
    agent_ok: Vec<bool>,
    /// Hardened: attempt epoch; stale arms check this before firing.
    attempt_epoch: u32,
    aborted: bool,
    /// Hardened family: per-member re-save counts (checksum failures).
    save_attempts: Vec<u32>,
    /// False once any member's save is given up on; the hardened family
    /// still resumes everyone, then reports the run as failed.
    save_ok: bool,
    /// Hardened family: resume-side arm/ack state (the abort guard applied
    /// to the resume broadcast).
    resume_epoch: u32,
    resume_acks: usize,
    resume_attempts: u32,
    save_done_at: Option<SimTime>,
    finished: bool,
    on_done: Option<DoneCb>,
    /// Causal spans (all [`SpanId::NONE`] when no sink is attached). The
    /// run record owns them so every code path that can end the run —
    /// watchdogs included — can close what is still open: a child span must
    /// never outlive the `lsc.round` root.
    round_span: SpanId,
    dispatch_spans: Vec<SpanId>,
    ack_span: SpanId,
    save_spans: Vec<SpanId>,
    resume_span: SpanId,
}

#[derive(Default)]
struct LscRuns {
    runs: HashMap<u64, CkptRun>,
    next: u64,
}

fn runs(sim: &mut Sim<ClusterWorld>) -> &mut LscRuns {
    sim.world.ext.get_or_default::<LscRuns>()
}

/// Checkpoint a virtual cluster with the chosen method, then resume it the
/// same way. `on_done` receives the outcome; on success the set is in the
/// [`vc::CheckpointStore`].
pub fn checkpoint_vc(
    sim: &mut Sim<ClusterWorld>,
    vc_id: VcId,
    method: LscMethod,
    on_done: impl FnOnce(&mut Sim<ClusterWorld>, LscOutcome) + 'static,
) -> u64 {
    let Some(v) = vc::vc(sim, vc_id) else {
        panic!("checkpoint of unknown vc {vc_id:?}");
    };
    let n = v.vms.len();
    let started = sim.now();
    if let Some(v) = vc::vc_mut(sim, vc_id) {
        v.state = VcState::Checkpointing;
    }
    let run_id = {
        let r = runs(sim);
        r.next += 1;
        let id = r.next;
        r.runs.insert(
            id,
            CkptRun {
                vc: vc_id,
                method,
                started,
                expected: n,
                images: std::iter::repeat_with(|| None).take(n).collect(),
                resolved: 0,
                failed_members: 0,
                pause_times: vec![None; n],
                resume_times: vec![None; n],
                resumed: 0,
                attempts: 0,
                acks: 0,
                agent_ok: vec![false; n],
                attempt_epoch: 0,
                aborted: false,
                save_attempts: vec![0; n],
                save_ok: true,
                resume_epoch: 0,
                resume_acks: 0,
                resume_attempts: 0,
                save_done_at: None,
                finished: false,
                on_done: Some(Box::new(on_done)),
                round_span: SpanId::NONE,
                dispatch_spans: vec![SpanId::NONE; n],
                ack_span: SpanId::NONE,
                save_spans: vec![SpanId::NONE; n],
                resume_span: SpanId::NONE,
            },
        );
        id
    };
    let round_span = sim.open_span("lsc.round", SpanId::NONE, run_id);
    if let Some(r) = runs(sim).runs.get_mut(&run_id) {
        r.round_span = round_span;
    }
    start_attempt(sim, run_id);
    run_id
}

fn member_hosts(sim: &Sim<ClusterWorld>, vc_id: VcId) -> Vec<(usize, VmId, NodeId)> {
    let v = vc::vc(sim, vc_id).expect("vc");
    v.vms
        .iter()
        .enumerate()
        .map(|(i, &vm)| (i, vm, v.hosts[i]))
        .collect()
}

fn start_attempt(sim: &mut Sim<ClusterWorld>, run_id: u64) {
    let (vc_id, method, attempt, round_span) = {
        let r = runs(sim).runs.get_mut(&run_id).expect("run");
        r.attempts += 1;
        r.attempt_epoch += 1;
        r.acks = 0;
        r.aborted = false;
        (r.vc, r.method, r.attempt_epoch, r.round_span)
    };
    let members = member_hosts(sim, vc_id);
    for &(i, _, _) in &members {
        // A re-arm after an abort replaces the member's dispatch span: the
        // stale one closes here (it covered arm → abort), the fresh one
        // runs arm → pause.
        let stale = {
            let r = runs(sim).runs.get_mut(&run_id).expect("run");
            std::mem::replace(&mut r.dispatch_spans[i], SpanId::NONE)
        };
        sim.close_span(stale);
        let ds = sim.open_span("lsc.dispatch", round_span, i as u64);
        runs(sim).runs.get_mut(&run_id).expect("run").dispatch_spans[i] = ds;
        sim.emit(Event::Lsc(LscEvent::ArmSent {
            run: run_id,
            vc: vc_id.0,
            member: i as u32,
        }));
    }

    match method {
        LscMethod::Naive => {
            // Phase 1: serial terminal opens.
            let mut t = SimDuration::ZERO;
            for &(_, _, host) in &members {
                t += control::open_delay(sim, host);
            }
            // Phase 2: walk the terminals issuing `vm save`; each dispatch
            // occupies the coordinator for a service time, so guest i pauses
            // at the *cumulative* offset — the skew that kills this scheme.
            for (i, vm, host) in members {
                t += control::cmd_delay(sim, host);
                let delay = t;
                control::ctrl_call(sim, host, delay, move |sim| {
                    fire_save(sim, run_id, i, vm);
                });
            }
            arm_run_watchdog(sim, run_id, t + save_timeout());
        }
        LscMethod::Ntp { lead } => {
            let t_fire_local = fire_instant(sim, lead);
            for (i, vm, host) in members {
                if !roll_agent(sim, run_id, i) {
                    continue; // agent died; this VM will never pause
                }
                let d = control::cmd_delay(sim, host);
                control::ctrl_call(sim, host, d, move |sim| {
                    schedule_local_fire(sim, host, t_fire_local, move |sim| {
                        fire_save(sim, run_id, i, vm);
                    });
                });
            }
            arm_run_watchdog(sim, run_id, lead + save_timeout());
        }
        LscMethod::Hardened {
            lead, ack_guard, ..
        } => {
            let t_fire_local = fire_instant(sim, lead);
            for (i, vm, host) in members {
                if !roll_agent(sim, run_id, i) {
                    continue;
                }
                let d = control::cmd_delay(sim, host);
                control::ctrl_call(sim, host, d, move |sim| {
                    // Ack back to the coordinator.
                    let back = control::cmd_delay(sim, host);
                    sim.schedule_in(back, move |sim| {
                        if let Some(r) = runs(sim).runs.get_mut(&run_id) {
                            if r.attempt_epoch == attempt && !r.aborted {
                                r.acks += 1;
                            }
                        }
                    });
                    // Fire unless the attempt was aborted meanwhile.
                    schedule_local_fire(sim, host, t_fire_local, move |sim| {
                        let ok = runs(sim)
                            .runs
                            .get(&run_id)
                            .is_some_and(|r| r.attempt_epoch == attempt && !r.aborted);
                        if ok {
                            fire_save(sim, run_id, i, vm);
                        }
                    });
                });
            }
            // Ack review, `ack_guard` before the fire instant.
            let review_in = lead
                .saturating_sub(ack_guard)
                .max(SimDuration::from_millis(1));
            sim.schedule_in(review_in, move |sim| {
                let (ok, vc_id, attempts_left) = {
                    let Some(r) = runs(sim).runs.get_mut(&run_id) else {
                        return;
                    };
                    if r.attempt_epoch != attempt || r.finished {
                        return;
                    }
                    let max = match r.method {
                        LscMethod::Hardened { max_attempts, .. } => max_attempts,
                        _ => 1,
                    };
                    (r.acks == r.expected, r.vc, r.attempts < max)
                };
                let _ = vc_id;
                if ok {
                    return; // commit: arms fire at T
                }
                // Abort this attempt before anything pauses, then retry.
                if let Some(r) = runs(sim).runs.get_mut(&run_id) {
                    r.aborted = true;
                }
                if attempts_left {
                    let vc = runs(sim).runs.get(&run_id).map(|r| r.vc.0).unwrap_or(0);
                    sim.emit(Event::Lsc(LscEvent::AbortReArm {
                        run: run_id,
                        vc,
                        attempt,
                    }));
                    start_attempt(sim, run_id);
                } else {
                    finish_run(
                        sim,
                        run_id,
                        false,
                        "arm acks incomplete after retries".into(),
                    );
                }
            });
            arm_run_watchdog(sim, run_id, lead + save_timeout());
        }
        LscMethod::HardenedNaive {
            ack_timeout,
            max_attempts,
            ..
        } => {
            // Arm every agent in parallel; each ack back tells the
            // coordinator the control path round-trips *right now*. Only
            // when every member is armed does GO go out — so a partition
            // or drop during arming aborts with nothing paused.
            for &(i, _vm, host) in &members {
                if !roll_agent(sim, run_id, i) {
                    continue;
                }
                let d = control::cmd_delay(sim, host);
                control::ctrl_call(sim, host, d, move |sim| {
                    let back = control::cmd_delay(sim, host);
                    sim.schedule_in(back, move |sim| {
                        let all_armed = {
                            let Some(r) = runs(sim).runs.get_mut(&run_id) else {
                                return;
                            };
                            if r.attempt_epoch != attempt || r.aborted || r.finished {
                                return;
                            }
                            r.acks += 1;
                            r.acks == r.expected
                        };
                        if all_armed {
                            broadcast_save_go(sim, run_id, attempt, GO_REPEATS);
                        }
                    });
                });
            }
            // Ack review at the timeout: an incomplete arm set aborts
            // (nothing has paused yet) and re-arms from scratch, which
            // simply waits out a partition window.
            sim.schedule_in(ack_timeout, move |sim| {
                let (ok, attempts_left) = {
                    let Some(r) = runs(sim).runs.get_mut(&run_id) else {
                        return;
                    };
                    if r.attempt_epoch != attempt || r.finished {
                        return;
                    }
                    (r.acks == r.expected, r.attempts < max_attempts)
                };
                if ok {
                    return;
                }
                if let Some(r) = runs(sim).runs.get_mut(&run_id) {
                    r.aborted = true;
                }
                if attempts_left {
                    let vc = runs(sim).runs.get(&run_id).map(|r| r.vc.0).unwrap_or(0);
                    sim.emit(Event::Lsc(LscEvent::AbortReArm {
                        run: run_id,
                        vc,
                        attempt,
                    }));
                    start_attempt(sim, run_id);
                } else {
                    finish_run(
                        sim,
                        run_id,
                        false,
                        "arm acks incomplete after retries".into(),
                    );
                }
            });
            arm_run_watchdog(sim, run_id, ack_timeout + save_timeout());
        }
    }
}

/// How many times a clock-free GO broadcast is repeated (a lost control
/// message must not strand one member un-paused while its peers freeze).
/// Repeats only go to members not yet seen firing, so the common case is a
/// single round; the worst-case extra skew, `GO_REPEATS × go_spacing`, must
/// stay under the guest TCP silence budget (~3 s at the default config).
const GO_REPEATS: u32 = 8;

fn go_spacing() -> SimDuration {
    SimDuration::from_millis(350)
}

/// Clock-free save GO: tell every not-yet-paused member to fire now.
/// Repeated `repeats_left − 1` more times; `fire_save` dedupes arrivals.
fn broadcast_save_go(sim: &mut Sim<ClusterWorld>, run_id: u64, attempt: u32, repeats_left: u32) {
    let vc_id = {
        let Some(r) = runs(sim).runs.get(&run_id) else {
            return;
        };
        if r.attempt_epoch != attempt || r.aborted || r.finished {
            return;
        }
        r.vc
    };
    for (i, vm, host) in member_hosts(sim, vc_id) {
        let already = runs(sim)
            .runs
            .get(&run_id)
            .is_some_and(|r| r.pause_times[i].is_some());
        if already {
            continue;
        }
        let d = control::cmd_delay(sim, host);
        control::ctrl_call(sim, host, d, move |sim| {
            let ok = runs(sim)
                .runs
                .get(&run_id)
                .is_some_and(|r| r.attempt_epoch == attempt && !r.aborted);
            if ok {
                fire_save(sim, run_id, i, vm);
            }
        });
    }
    if repeats_left > 1 {
        sim.schedule_in(go_spacing(), move |sim| {
            broadcast_save_go(sim, run_id, attempt, repeats_left - 1);
        });
    }
}

/// Roll the agent-fault dice for member `i` of a run: an agent that has
/// already come up stays up; a dead one gets a fresh chance per attempt
/// (retries restart crashed checkpoint processes).
fn roll_agent(sim: &mut Sim<ClusterWorld>, run_id: u64, member: usize) -> bool {
    let already = runs(sim)
        .runs
        .get(&run_id)
        .map(|r| r.agent_ok[member])
        .unwrap_or(false);
    if already {
        return true;
    }
    let loss = faults(sim).arm_loss_prob;
    let ok = loss <= 0.0 || !sim.rng.stream("lsc.arm_loss").gen_bool(loss);
    if ok {
        if let Some(r) = runs(sim).runs.get_mut(&run_id) {
            r.agent_ok[member] = true;
        }
    }
    ok
}

/// Shared-local-clock fire instant `lead` from now (head-node clock).
fn fire_instant(sim: &Sim<ClusterWorld>, lead: SimDuration) -> i64 {
    let head = sim.world.head;
    glue::local_now(sim, head) + lead.nanos() as i64
}

/// Run `f` when `host`'s local clock reads `t_local` (immediately if past —
/// a late arm does its best).
fn schedule_local_fire(
    sim: &mut Sim<ClusterWorld>,
    host: NodeId,
    t_local: i64,
    f: impl FnOnce(&mut Sim<ClusterWorld>) + 'static,
) {
    let at = glue::local_deadline_to_true(sim, host, t_local);
    sim.schedule_at(at, f);
}

/// Generous bound on how long the save phase may take before the run is
/// declared failed (covers storage time for large sets).
fn save_timeout() -> SimDuration {
    SimDuration::from_secs(3600)
}

fn arm_run_watchdog(sim: &mut Sim<ClusterWorld>, run_id: u64, after: SimDuration) {
    sim.schedule_in(after, move |sim| {
        let unfinished = runs(sim)
            .runs
            .get(&run_id)
            .is_some_and(|r| !r.finished && r.save_done_at.is_none());
        if unfinished {
            finish_run(sim, run_id, false, "save phase timed out".into());
        }
    });
}

/// `vm save` lands on a member: pause + snapshot + stream to storage.
fn fire_save(sim: &mut Sim<ClusterWorld>, run_id: u64, member: usize, vm: VmId) {
    let now = sim.now();
    let (vc_id, dispatch_span, round_span, first_fire) = {
        let Some(r) = runs(sim).runs.get_mut(&run_id) else {
            return;
        };
        if r.finished || r.pause_times[member].is_some() {
            return;
        }
        r.pause_times[member] = Some(now);
        let ds = std::mem::replace(&mut r.dispatch_spans[member], SpanId::NONE);
        (r.vc, ds, r.round_span, r.ack_span.is_none())
    };
    sim.close_span(dispatch_span);
    if first_fire {
        // The ack-collection window opens at the first pause and closes when
        // the last member's save resolves — its width is what the TCP
        // silence budget is spent on.
        let ack = sim.open_span("lsc.ack_collect", round_span, run_id);
        if let Some(r) = runs(sim).runs.get_mut(&run_id) {
            r.ack_span = ack;
        }
    }
    sim.emit(Event::Lsc(LscEvent::SaveFired {
        run: run_id,
        vc: vc_id.0,
        member: member as u32,
        vm: vm.0,
    }));
    let alive = sim
        .world
        .vm(vm)
        .is_some_and(|v| v.state != dvc_vmm::VmState::Dead);
    if !alive {
        member_resolved(sim, run_id, member, None);
        return;
    }
    let vspan = sim.open_span("vmm.save", round_span, vm.0 as u64);
    if let Some(r) = runs(sim).runs.get_mut(&run_id) {
        r.save_spans[member] = vspan;
    }
    glue::save_vm_in(sim, vm, vspan, move |sim, image| {
        on_save_complete(sim, run_id, member, vm, image);
    });
}

/// Bound on checksum-triggered re-saves per member (the VM stays paused
/// between attempts, so each retry costs one more image write).
const MAX_SAVE_RETRIES: u32 = 3;

/// A member's save-and-store resolved (or storage gave up after its
/// retries). The hardened family verifies the end-to-end image checksum
/// and re-saves on mismatch — the guest is still paused, so a fresh
/// snapshot is consistent; the baseline coordinators trust storage and
/// pass whatever came back straight into the set.
fn on_save_complete(
    sim: &mut Sim<ClusterWorld>,
    run_id: u64,
    member: usize,
    vm: VmId,
    image: Option<VmImage>,
) {
    let hardened = runs(sim)
        .runs
        .get(&run_id)
        .is_some_and(|r| r.method.is_hardened());
    if let Some(img) = &image {
        if hardened && !img.verify() {
            let attempts = {
                let Some(r) = runs(sim).runs.get_mut(&run_id) else {
                    return;
                };
                if r.finished {
                    return;
                }
                r.save_attempts[member] += 1;
                r.save_attempts[member]
            };
            if attempts <= MAX_SAVE_RETRIES {
                sim.emit(Event::Lsc(LscEvent::ChecksumResave {
                    vm: vm.0,
                    attempt: attempts,
                }));
                // Each re-save is its own vmm.save span: the trace shows
                // one save attempt per bar, not one bar hiding retries.
                let (old, round_span) = {
                    let r = runs(sim).runs.get_mut(&run_id).expect("run");
                    (
                        std::mem::replace(&mut r.save_spans[member], SpanId::NONE),
                        r.round_span,
                    )
                };
                sim.close_span(old);
                let vspan = sim.open_span("vmm.save", round_span, vm.0 as u64);
                if let Some(r) = runs(sim).runs.get_mut(&run_id) {
                    r.save_spans[member] = vspan;
                }
                glue::save_vm_in(sim, vm, vspan, move |sim, image| {
                    on_save_complete(sim, run_id, member, vm, image);
                });
                return;
            }
            sim.emit(Event::Lsc(LscEvent::ChecksumGiveUp {
                vm: vm.0,
                retries: MAX_SAVE_RETRIES,
            }));
            member_resolved(sim, run_id, member, None);
            return;
        }
    }
    member_resolved(sim, run_id, member, image);
}

fn member_resolved(
    sim: &mut Sim<ClusterWorld>,
    run_id: u64,
    member: usize,
    image: Option<VmImage>,
) {
    let (save_phase_complete, vc_id, ok, vspan) = {
        let Some(r) = runs(sim).runs.get_mut(&run_id) else {
            return;
        };
        if r.finished {
            return;
        }
        let ok = image.is_some();
        if image.is_none() {
            r.failed_members += 1;
        }
        r.images[member] = image;
        r.resolved += 1;
        let vspan = std::mem::replace(&mut r.save_spans[member], SpanId::NONE);
        (r.resolved == r.expected, r.vc, ok, vspan)
    };
    sim.close_span(vspan);
    sim.emit(Event::Lsc(LscEvent::SaveAcked {
        run: run_id,
        vc: vc_id.0,
        member: member as u32,
        ok,
    }));
    if save_phase_complete {
        on_all_saves_resolved(sim, run_id);
    }
}

fn on_all_saves_resolved(sim: &mut Sim<ClusterWorld>, run_id: u64) {
    let now = sim.now();
    let (ok, method, vc_id, skew, ack_span) = {
        let r = runs(sim).runs.get_mut(&run_id).expect("run");
        r.save_done_at = Some(now);
        (
            r.failed_members == 0,
            r.method,
            r.vc,
            skew_of(&r.pause_times),
            std::mem::replace(&mut r.ack_span, SpanId::NONE),
        )
    };
    sim.close_span(ack_span);
    sim.emit(Event::Lsc(LscEvent::WindowClosed {
        run: run_id,
        vc: vc_id.0,
        skew,
        stored: ok,
    }));
    if !ok {
        if method.is_hardened() {
            // Don't leave the survivors paused bleeding their peers' TCP
            // budgets: resume everyone, then report the failed run. The VC
            // keeps computing on its previously stored generations.
            if let Some(r) = runs(sim).runs.get_mut(&run_id) {
                r.save_ok = false;
            }
            sim.emit(Event::Lsc(LscEvent::SavePhaseFailed));
            coordinated_resume(sim, run_id);
        } else {
            finish_run(sim, run_id, false, "one or more VM saves failed".into());
        }
        return;
    }

    // Persist the set.
    let set_id = {
        let images: Vec<VmImage> = {
            let r = runs(sim).runs.get_mut(&run_id).unwrap();
            r.images.iter().map(|i| i.clone().expect("image")).collect()
        };
        let skew = {
            let r = runs(sim).runs.get(&run_id).unwrap();
            skew_of(&r.pause_times)
        };
        let st = vc::store(sim);
        let id = st.alloc_id();
        st.sets.push(CheckpointSet {
            id,
            vc: vc_id,
            taken_at: now,
            images,
            pause_skew: skew,
        });
        sim.emit(Event::Lsc(LscEvent::SetStored {
            vc: vc_id.0,
            set: id,
            skew,
        }));
        id
    };
    sim.world
        .ext
        .get_or_default::<LastSetId>()
        .0
        .insert(run_id, set_id);

    // Hardened family: verify images (read back a fraction) before
    // resuming.
    let verify_fraction = method.verify_fraction();
    if verify_fraction > 0.0 {
        let bytes: u64 = {
            let r = runs(sim).runs.get(&run_id).unwrap();
            r.images
                .iter()
                .flatten()
                .map(|i| (i.size_bytes() as f64 * verify_fraction) as u64)
                .sum()
        };
        storage::start_transfer(sim, bytes.max(1), move |sim| {
            coordinated_resume(sim, run_id);
        });
        return;
    }
    coordinated_resume(sim, run_id);
}

/// Map run → stored set id (so `finish_run` can report it).
#[derive(Default)]
struct LastSetId(HashMap<u64, u64>);

/// Resume every member using the same coordination discipline as the save.
fn coordinated_resume(sim: &mut Sim<ClusterWorld>, run_id: u64) {
    let (vc_id, method, round_span) = {
        let r = runs(sim).runs.get(&run_id).expect("run");
        (r.vc, r.method, r.round_span)
    };
    let rspan = sim.open_span("lsc.resume", round_span, run_id);
    if let Some(r) = runs(sim).runs.get_mut(&run_id) {
        r.resume_span = rspan;
    }
    let members = member_hosts(sim, vc_id);
    match method {
        LscMethod::Naive => {
            let mut t = SimDuration::ZERO;
            for (i, vm, host) in members {
                t += control::cmd_delay(sim, host);
                control::ctrl_call(sim, host, t, move |sim| {
                    fire_resume(sim, run_id, i, vm);
                });
            }
        }
        LscMethod::Ntp { lead } => {
            let t_fire_local = fire_instant(sim, lead);
            for (i, vm, host) in members {
                let d = control::cmd_delay(sim, host);
                control::ctrl_call(sim, host, d, move |sim| {
                    schedule_local_fire(sim, host, t_fire_local, move |sim| {
                        fire_resume(sim, run_id, i, vm);
                    });
                });
            }
        }
        LscMethod::Hardened { .. } | LscMethod::HardenedNaive { .. } => {
            // The resume side gets the same abort guard as the save side:
            // no member resumes until every member's agent has acked, so a
            // partition can delay the resume but can't split it.
            resume_attempt(sim, run_id);
        }
    }
    // Resume watchdog: arms can be lost to node crashes.
    sim.schedule_in(SimDuration::from_secs(600), move |sim| {
        let stuck = runs(sim).runs.get(&run_id).is_some_and(|r| !r.finished);
        if stuck {
            finish_run(sim, run_id, false, "resume phase timed out".into());
        }
    });
}

/// One arm/ack round of the hardened resume. Members that already resumed
/// (a straggler GO from a previous round) are skipped; the round commits —
/// broadcasts GO — only when every remaining member acks within the
/// window, otherwise it re-arms, which waits out partitions. A paused
/// guest is frozen, so patience here costs wall-clock, not correctness.
fn resume_attempt(sim: &mut Sim<ClusterWorld>, run_id: u64) {
    let (vc_id, epoch, ack_window, max_attempts, attempts) = {
        let Some(r) = runs(sim).runs.get_mut(&run_id) else {
            return;
        };
        if r.finished {
            return;
        }
        r.resume_attempts += 1;
        r.resume_epoch += 1;
        r.resume_acks = 0;
        let (win, max) = match r.method {
            LscMethod::Hardened {
                lead, max_attempts, ..
            } => (lead, max_attempts),
            LscMethod::HardenedNaive {
                ack_timeout,
                max_attempts,
                ..
            } => (ack_timeout, max_attempts),
            _ => (SimDuration::from_secs(5), 1),
        };
        (r.vc, r.resume_epoch, win, max, r.resume_attempts)
    };
    let members = member_hosts(sim, vc_id);
    let needed = {
        let r = runs(sim).runs.get(&run_id).expect("run");
        r.expected - r.resumed
    };
    for &(i, _vm, host) in &members {
        let skip = runs(sim)
            .runs
            .get(&run_id)
            .is_some_and(|r| r.resume_times[i].is_some());
        if skip {
            continue;
        }
        let d = control::cmd_delay(sim, host);
        control::ctrl_call(sim, host, d, move |sim| {
            let back = control::cmd_delay(sim, host);
            sim.schedule_in(back, move |sim| {
                let all_armed = {
                    let Some(r) = runs(sim).runs.get_mut(&run_id) else {
                        return;
                    };
                    if r.resume_epoch != epoch || r.finished {
                        return;
                    }
                    r.resume_acks += 1;
                    r.resume_acks == needed
                };
                if all_armed {
                    broadcast_resume_go(sim, run_id, epoch, GO_REPEATS);
                }
            });
        });
    }
    sim.schedule_in(ack_window, move |sim| {
        let ok = {
            let Some(r) = runs(sim).runs.get(&run_id) else {
                return;
            };
            if r.resume_epoch != epoch || r.finished {
                return;
            }
            r.resume_acks == needed
        };
        if ok {
            return;
        }
        if attempts < max_attempts {
            resume_attempt(sim, run_id);
        } else {
            finish_run(
                sim,
                run_id,
                false,
                "resume arms incomplete after retries".into(),
            );
        }
    });
}

/// Clock-free resume GO, repeated for drop resilience; `fire_resume`
/// dedupes arrivals.
fn broadcast_resume_go(sim: &mut Sim<ClusterWorld>, run_id: u64, epoch: u32, repeats_left: u32) {
    let vc_id = {
        let Some(r) = runs(sim).runs.get(&run_id) else {
            return;
        };
        if r.resume_epoch != epoch || r.finished {
            return;
        }
        r.vc
    };
    for (i, vm, host) in member_hosts(sim, vc_id) {
        let already = runs(sim)
            .runs
            .get(&run_id)
            .is_some_and(|r| r.resume_times[i].is_some());
        if already {
            continue;
        }
        let d = control::cmd_delay(sim, host);
        control::ctrl_call(sim, host, d, move |sim| {
            fire_resume(sim, run_id, i, vm);
        });
    }
    if repeats_left > 1 {
        sim.schedule_in(go_spacing(), move |sim| {
            broadcast_resume_go(sim, run_id, epoch, repeats_left - 1);
        });
    }
}

fn fire_resume(sim: &mut Sim<ClusterWorld>, run_id: u64, member: usize, vm: VmId) {
    let now = sim.now();
    let (all_resumed, save_ok) = {
        let Some(r) = runs(sim).runs.get_mut(&run_id) else {
            return;
        };
        if r.finished || r.resume_times[member].is_some() {
            return;
        }
        r.resume_times[member] = Some(now);
        r.resumed += 1;
        (r.resumed == r.expected, r.save_ok)
    };
    glue::resume_vm(sim, vm);
    if all_resumed {
        let detail = if save_ok {
            "ok".into()
        } else {
            "one or more VM saves failed (members resumed)".into()
        };
        finish_run(sim, run_id, save_ok, detail);
    }
}

fn skew_of(times: &[Option<SimTime>]) -> SimDuration {
    let known: Vec<SimTime> = times.iter().flatten().copied().collect();
    if known.len() < 2 {
        return SimDuration::ZERO;
    }
    let min = known.iter().min().unwrap();
    let max = known.iter().max().unwrap();
    *max - *min
}

fn finish_run(sim: &mut Sim<ClusterWorld>, run_id: u64, success: bool, detail: String) {
    let now = sim.now();
    let (outcome, cb, spans) = {
        let Some(r) = runs(sim).runs.get_mut(&run_id) else {
            return;
        };
        if r.finished {
            return;
        }
        r.finished = true;
        let set_id = sim
            .world
            .ext
            .get::<LastSetId>()
            .and_then(|m| m.0.get(&run_id).copied());
        let r = runs(sim).runs.get_mut(&run_id).unwrap();
        let outcome = LscOutcome {
            vc: r.vc,
            method: r.method.name(),
            success,
            set_id,
            pause_skew: skew_of(&r.pause_times),
            resume_skew: skew_of(&r.resume_times),
            save_duration: r
                .save_done_at
                .map(|t| t - r.started)
                .unwrap_or(SimDuration::ZERO),
            total_duration: now - r.started,
            attempts: r.attempts,
            detail,
        };
        // Whatever phase the run died in, its open spans close now —
        // children first, the round root last.
        let mut spans: Vec<SpanId> = Vec::new();
        spans.extend(r.dispatch_spans.iter().copied());
        spans.extend(r.save_spans.iter().copied());
        spans.push(r.ack_span);
        spans.push(r.resume_span);
        spans.push(r.round_span);
        (outcome, r.on_done.take(), spans)
    };
    if let Some(v) = vc::vc_mut(sim, outcome.vc) {
        v.state = VcState::Up;
    }
    runs(sim).runs.remove(&run_id);
    for s in spans {
        sim.close_span(s);
    }
    sim.emit(Event::Lsc(LscEvent::RunFinished {
        run: run_id,
        vc: outcome.vc.0,
        success,
    }));
    if let Some(cb) = cb {
        cb(sim, outcome);
    }
}

// ---------------------------------------------------------------------
// Restore / migration
// ---------------------------------------------------------------------

/// Why a restore could not even start. Failures *during* a started restore
/// (down targets, storage giving up, corrupt staged images) are reported
/// through [`RestoreOutcome`] instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// No stored set has this id (it may have been pruned).
    UnknownSet(u64),
    /// Every stored generation of this VC fails its image checksums (or
    /// none exists at all).
    NoIntactGeneration(VcId),
    /// `targets` does not provide exactly one host per vnode.
    TargetCountMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::UnknownSet(id) => write!(f, "unknown checkpoint set {id}"),
            RestoreError::NoIntactGeneration(vc) => {
                write!(f, "no intact checkpoint generation for {vc:?}")
            }
            RestoreError::TargetCountMismatch { expected, got } => {
                write!(f, "need {expected} targets (one per vnode), got {got}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

type RestoreCb = Box<dyn FnOnce(&mut Sim<ClusterWorld>, RestoreOutcome)>;

struct RestoreRun {
    vc: VcId,
    started: SimTime,
    expected: usize,
    placed: usize,
    resume_times: Vec<Option<SimTime>>,
    resumed: usize,
    finished: bool,
    on_done: Option<RestoreCb>,
    /// Causal spans, same ownership rule as [`CkptRun`]: the record holds
    /// them so any terminal path can close what is still open.
    span: SpanId,
    stage_spans: Vec<SpanId>,
    resume_span: SpanId,
}

#[derive(Default)]
struct RestoreRuns {
    runs: HashMap<u64, RestoreRun>,
    next: u64,
}

/// Restore checkpoint set `set_id` onto `targets` (one per vnode; may be a
/// completely different node set — this is migration). Old instances, if
/// any survive, are destroyed first. Resumes are NTP-coordinated.
///
/// Staged reads retry per the world's [`StorageRetryCfg`]; every staged
/// image is checksum-verified before placement, so a corrupt generation
/// fails the restore instead of silently resuming garbage (callers then
/// fall back via [`restore_vc_intact`]).
///
/// [`StorageRetryCfg`]: dvc_cluster::world::StorageRetryCfg
pub fn restore_vc(
    sim: &mut Sim<ClusterWorld>,
    set_id: u64,
    targets: Vec<NodeId>,
    lead: SimDuration,
    on_done: impl FnOnce(&mut Sim<ClusterWorld>, RestoreOutcome) + 'static,
) -> Result<(), RestoreError> {
    let (vc_id, images): (VcId, Vec<VmImage>) = {
        let Some(st) = sim.world.ext.get::<crate::vc::CheckpointStore>() else {
            return Err(RestoreError::UnknownSet(set_id));
        };
        let Some(set) = st.sets.iter().find(|s| s.id == set_id) else {
            return Err(RestoreError::UnknownSet(set_id));
        };
        (set.vc, set.images.clone())
    };
    if images.len() != targets.len() {
        return Err(RestoreError::TargetCountMismatch {
            expected: images.len(),
            got: targets.len(),
        });
    }

    if let Some(v) = vc::vc_mut(sim, vc_id) {
        v.state = VcState::Restoring;
        v.hosts = targets.clone();
    }
    // Destroy any survivors of the old incarnation.
    let old_vms: Vec<VmId> = vc::vc(sim, vc_id)
        .map(|v| v.vms.clone())
        .unwrap_or_default();
    for vm in old_vms {
        glue::destroy_vm(sim, vm);
    }

    let now = sim.now();
    let n_images = images.len();
    let run_id = {
        let rr = sim.world.ext.get_or_default::<RestoreRuns>();
        rr.next += 1;
        let id = rr.next;
        rr.runs.insert(
            id,
            RestoreRun {
                vc: vc_id,
                started: now,
                expected: images.len(),
                placed: 0,
                resume_times: vec![None; images.len()],
                resumed: 0,
                finished: false,
                on_done: Some(Box::new(on_done)),
                span: SpanId::NONE,
                stage_spans: vec![SpanId::NONE; n_images],
                resume_span: SpanId::NONE,
            },
        );
        id
    };
    let root = sim.open_span("lsc.restore", SpanId::NONE, run_id);
    if let Some(r) = sim
        .world
        .ext
        .get_or_default::<RestoreRuns>()
        .runs
        .get_mut(&run_id)
    {
        r.span = root;
    }

    // Stage all images (contended storage reads, retried per config),
    // verifying each checksum end-to-end before placing it paused.
    for (i, (image, target)) in images.into_iter().zip(targets).enumerate() {
        let bytes = image.size_bytes();
        storage::note_bytes(sim, bytes);
        let sspan = sim.open_span("storage.stage", root, bytes);
        if let Some(r) = sim
            .world
            .ext
            .get_or_default::<RestoreRuns>()
            .runs
            .get_mut(&run_id)
        {
            r.stage_spans[i] = sspan;
        }
        storage::transfer_with_retry(sim, bytes, move |sim, ok| {
            // Take the stage span from the record (a run ended early may
            // have closed it already — then this is NONE and a no-op).
            let sspan = sim
                .world
                .ext
                .get_or_default::<RestoreRuns>()
                .runs
                .get_mut(&run_id)
                .map(|r| std::mem::replace(&mut r.stage_spans[i], SpanId::NONE))
                .unwrap_or(SpanId::NONE);
            sim.close_span(sspan);
            if !ok {
                restore_failed(sim, run_id, "storage read gave up after retries".into());
                return;
            }
            if !sim.world.node(target).up {
                restore_failed(sim, run_id, format!("target node {target:?} is down"));
                return;
            }
            if !image.verify() {
                restore_failed(
                    sim,
                    run_id,
                    format!("staged image of {:?} failed its checksum", image.vm),
                );
                return;
            }
            glue::place_image_paused(sim, &image, target);
            let all_placed = {
                let rr = sim.world.ext.get_or_default::<RestoreRuns>();
                let Some(r) = rr.runs.get_mut(&run_id) else {
                    return;
                };
                r.placed += 1;
                r.placed == r.expected
            };
            if all_placed {
                restore_resume_all(sim, run_id, lead);
            }
        });
    }
    Ok(())
}

/// Multi-generation fallback restore: pick the newest stored generation of
/// `vc_id` whose images all pass their checksums and restore that. Returns
/// the chosen set id, or [`RestoreError::NoIntactGeneration`] when every
/// generation is corrupt (or none exists).
pub fn restore_vc_intact(
    sim: &mut Sim<ClusterWorld>,
    vc_id: VcId,
    targets: Vec<NodeId>,
    lead: SimDuration,
    on_done: impl FnOnce(&mut Sim<ClusterWorld>, RestoreOutcome) + 'static,
) -> Result<u64, RestoreError> {
    let set_id = vc::store(sim)
        .latest_intact_for(vc_id)
        .map(|s| s.id)
        .ok_or(RestoreError::NoIntactGeneration(vc_id))?;
    restore_vc(sim, set_id, targets, lead, on_done)?;
    Ok(set_id)
}

fn restore_resume_all(sim: &mut Sim<ClusterWorld>, run_id: u64, lead: SimDuration) {
    let root = sim
        .world
        .ext
        .get_or_default::<RestoreRuns>()
        .runs
        .get(&run_id)
        .map(|r| r.span)
        .unwrap_or(SpanId::NONE);
    let rspan = sim.open_span("lsc.restore_resume", root, run_id);
    if let Some(r) = sim
        .world
        .ext
        .get_or_default::<RestoreRuns>()
        .runs
        .get_mut(&run_id)
    {
        r.resume_span = rspan;
    }
    let t_fire_local = fire_instant(sim, lead);
    restore_resume_round(sim, run_id, t_fire_local, GO_REPEATS);
}

/// One round of restore resume arms. Arms are re-sent a few times (to
/// members not yet seen resuming) so a single dropped control message
/// can't strand the whole restore; the fire instant is shared, so repeats
/// add no skew, and the per-member dedupe makes duplicates harmless.
fn restore_resume_round(
    sim: &mut Sim<ClusterWorld>,
    run_id: u64,
    t_fire_local: i64,
    repeats_left: u32,
) {
    let vc_id = {
        let rr = sim.world.ext.get_or_default::<RestoreRuns>();
        let Some(r) = rr.runs.get(&run_id) else {
            return;
        };
        if r.finished {
            return;
        }
        r.vc
    };
    let members = member_hosts(sim, vc_id);
    for (i, vm, host) in members {
        let already = sim
            .world
            .ext
            .get::<RestoreRuns>()
            .and_then(|rr| rr.runs.get(&run_id))
            .is_some_and(|r| r.resume_times[i].is_some());
        if already {
            continue;
        }
        let d = control::cmd_delay(sim, host);
        control::ctrl_call(sim, host, d, move |sim| {
            schedule_local_fire(sim, host, t_fire_local, move |sim| {
                let now = sim.now();
                let done = {
                    let rr = sim.world.ext.get_or_default::<RestoreRuns>();
                    let Some(r) = rr.runs.get_mut(&run_id) else {
                        return;
                    };
                    if r.finished || r.resume_times[i].is_some() {
                        return;
                    }
                    r.resume_times[i] = Some(now);
                    r.resumed += 1;
                    r.resumed == r.expected
                };
                glue::resume_vm(sim, vm);
                if done {
                    restore_finished(sim, run_id, true, "ok".into());
                }
            });
        });
    }
    if repeats_left > 1 {
        sim.schedule_in(go_spacing(), move |sim| {
            restore_resume_round(sim, run_id, t_fire_local, repeats_left - 1);
        });
    }
}

fn restore_failed(sim: &mut Sim<ClusterWorld>, run_id: u64, detail: String) {
    restore_finished(sim, run_id, false, detail);
}

fn restore_finished(sim: &mut Sim<ClusterWorld>, run_id: u64, success: bool, detail: String) {
    let now = sim.now();
    let (outcome, cb, spans) = {
        let rr = sim.world.ext.get_or_default::<RestoreRuns>();
        let Some(r) = rr.runs.get_mut(&run_id) else {
            return;
        };
        if r.finished {
            return;
        }
        r.finished = true;
        let outcome = RestoreOutcome {
            vc: r.vc,
            success,
            resume_skew: skew_of(&r.resume_times),
            duration: now - r.started,
            detail,
        };
        // Close whatever is still open, children before the restore root.
        // Stage spans are *taken* (not just read) so an in-flight staging
        // transfer's callback finds NONE and cannot double-close.
        let mut spans: Vec<SpanId> = r
            .stage_spans
            .iter_mut()
            .map(|s| std::mem::replace(s, SpanId::NONE))
            .collect();
        spans.push(std::mem::replace(&mut r.resume_span, SpanId::NONE));
        spans.push(std::mem::replace(&mut r.span, SpanId::NONE));
        (outcome, r.on_done.take(), spans)
    };
    if let Some(v) = vc::vc_mut(sim, outcome.vc) {
        v.state = if success { VcState::Up } else { VcState::Down };
    }
    sim.world
        .ext
        .get_or_default::<RestoreRuns>()
        .runs
        .remove(&run_id);
    for s in spans {
        sim.close_span(s);
    }
    if let Some(cb) = cb {
        cb(sim, outcome);
    }
}

#[cfg(test)]
mod method_tests {
    use super::*;

    #[test]
    fn method_names_round_trip_from_name() {
        for n in LscMethod::NAMES {
            let m = LscMethod::from_name(n).expect("registered name must construct");
            assert_eq!(m.name(), *n);
        }
        assert!(LscMethod::from_name("chrony").is_none());
    }
}
