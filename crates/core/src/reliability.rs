//! Reliability management: periodic checkpointing + automatic recovery.
//!
//! This is the paper's thesis operationalized: "If a single physical node
//! dies, we can restart a checkpoint of the entire virtual cluster on a
//! different set of physical nodes" — plus the §4 integration with the
//! resource manager. The checkpoint cadence is either fixed or Young's
//! optimum √(2·C·MTBF), with C continuously re-estimated from measured
//! checkpoint cost.

use crate::lsc::{self, LscMethod};
use crate::vc::{self, VcId};
use dvc_cluster::node::NodeId;
use dvc_cluster::ntp;
use dvc_cluster::world::ClusterWorld;
use dvc_sim_core::{Event, NtpEvent, Sim, SimDuration};
use dvc_vmm::VmState;
use std::collections::HashMap;

/// Checkpoint cadence policy.
#[derive(Clone, Copy, Debug)]
pub enum Cadence {
    /// No periodic checkpoints (failures lose everything).
    None,
    Fixed(SimDuration),
    /// Young's optimum for the given node MTBF; falls back to `initial`
    /// until a checkpoint cost has been measured.
    Young {
        mtbf: SimDuration,
        initial: SimDuration,
    },
}

/// Reliability policy for one virtual cluster.
#[derive(Clone, Copy, Debug)]
pub struct Policy {
    pub cadence: Cadence,
    pub method: LscMethod,
    /// Give up after this many recoveries.
    pub max_restores: u32,
    /// Health-scan period (failure detection latency).
    pub scan_every: SimDuration,
    /// Degrade a [`LscMethod::Hardened`] checkpoint to the clock-free
    /// [`LscMethod::HardenedNaive`] protocol whenever any member host
    /// hasn't completed an NTP exchange for this long (the coordinator
    /// can't trust local-clock fire instants then). Recovery back to the
    /// scheduled protocol is automatic once sync returns.
    pub degrade_on_stale_sync: Option<SimDuration>,
    /// Recover from the newest *intact* generation instead of blindly the
    /// newest one (multi-generation fallback on corrupt images).
    pub restore_fallback: bool,
}

impl Policy {
    pub fn periodic(interval: SimDuration) -> Self {
        Policy {
            cadence: Cadence::Fixed(interval),
            method: LscMethod::ntp_default(),
            max_restores: 16,
            scan_every: SimDuration::from_secs(5),
            degrade_on_stale_sync: None,
            restore_fallback: false,
        }
    }

    pub fn young(mtbf: SimDuration) -> Self {
        Policy {
            cadence: Cadence::Young {
                mtbf,
                initial: SimDuration::from_secs(300),
            },
            method: LscMethod::ntp_default(),
            max_restores: 16,
            scan_every: SimDuration::from_secs(5),
            degrade_on_stale_sync: None,
            restore_fallback: false,
        }
    }

    /// The full failure-aware pipeline: hardened coordination, degradation
    /// to clock-free mode on stale NTP sync, and intact-generation
    /// fallback restores.
    pub fn hardened(interval: SimDuration) -> Self {
        Policy {
            cadence: Cadence::Fixed(interval),
            method: LscMethod::hardened_default(),
            max_restores: 16,
            scan_every: SimDuration::from_secs(5),
            degrade_on_stale_sync: Some(SimDuration::from_secs(30)),
            restore_fallback: true,
        }
    }
}

/// Young's optimal checkpoint interval √(2·C·M).
pub fn young_interval(ckpt_cost: SimDuration, mtbf: SimDuration) -> SimDuration {
    SimDuration::from_secs_f64((2.0 * ckpt_cost.as_secs_f64() * mtbf.as_secs_f64()).sqrt())
}

/// Per-VC reliability statistics (experiment output).
#[derive(Clone, Copy, Debug, Default)]
pub struct RelStats {
    pub checkpoints_ok: u32,
    pub checkpoints_failed: u32,
    /// Checkpoints taken in clock-free degraded mode (stale NTP sync).
    pub degraded_checkpoints: u32,
    pub restores: u32,
    pub lost: bool,
}

struct RelState {
    policy: Policy,
    last_cost: Option<SimDuration>,
    stats: RelStats,
    active: bool,
    busy: bool,
}

#[derive(Default)]
struct RelMgrs(HashMap<VcId, RelState>);

fn mgrs(sim: &mut Sim<ClusterWorld>) -> &mut RelMgrs {
    sim.world.ext.get_or_default::<RelMgrs>()
}

/// Start managing `vc_id` under `policy`. An initial checkpoint is taken
/// right away — a job with no set yet cannot be recovered at all, so the
/// window before the first periodic tick is the riskiest of the run.
pub fn manage(sim: &mut Sim<ClusterWorld>, vc_id: VcId, policy: Policy) {
    mgrs(sim).0.insert(
        vc_id,
        RelState {
            policy,
            last_cost: None,
            stats: RelStats::default(),
            active: true,
            busy: false,
        },
    );
    if !matches!(policy.cadence, Cadence::None) {
        checkpoint_now(sim, vc_id);
    }
    schedule_ckpt_tick(sim, vc_id);
    schedule_scan(sim, vc_id);
}

/// The method to use right now: the configured one, or its clock-free
/// degradation when NTP sync has gone stale on any member host. The head
/// node is the time reference itself and never counts as stale.
fn effective_method(sim: &Sim<ClusterWorld>, vc_id: VcId, policy: Policy) -> (LscMethod, bool) {
    let Some(stale_after) = policy.degrade_on_stale_sync else {
        return (policy.method, false);
    };
    let LscMethod::Hardened {
        lead,
        max_attempts,
        verify_fraction,
        ..
    } = policy.method
    else {
        return (policy.method, false);
    };
    let Some(v) = vc::vc(sim, vc_id) else {
        return (policy.method, false);
    };
    let head = sim.world.head;
    let stale = v
        .hosts
        .iter()
        .any(|&h| h != head && ntp::sync_age(sim, h).is_none_or(|a| a > stale_after));
    if stale {
        (
            LscMethod::HardenedNaive {
                ack_timeout: lead,
                max_attempts,
                verify_fraction,
            },
            true,
        )
    } else {
        (policy.method, false)
    }
}

/// Take a checkpoint immediately (if healthy and idle).
fn checkpoint_now(sim: &mut Sim<ClusterWorld>, vc_id: VcId) {
    let (active, busy, policy) = {
        let Some(st) = mgrs(sim).0.get(&vc_id) else {
            return;
        };
        (st.active, st.busy, st.policy)
    };
    if !active || busy || !vc_healthy(sim, vc_id) {
        return;
    }
    let (method, degraded) = effective_method(sim, vc_id, policy);
    if let Some(st) = mgrs(sim).0.get_mut(&vc_id) {
        st.busy = true;
        if degraded {
            st.stats.degraded_checkpoints += 1;
        }
    }
    if degraded {
        sim.emit(Event::Ntp(NtpEvent::SyncStale { vc: vc_id.0 }));
    }
    lsc::checkpoint_vc(sim, vc_id, method, move |sim, outcome| {
        if let Some(st) = mgrs(sim).0.get_mut(&vc_id) {
            st.busy = false;
            if outcome.success {
                st.stats.checkpoints_ok += 1;
                st.last_cost = Some(outcome.total_duration);
            } else {
                st.stats.checkpoints_failed += 1;
            }
        }
        vc::store(sim).prune(vc_id, 2);
    });
}

/// Stop managing (e.g. the job finished).
pub fn stop(sim: &mut Sim<ClusterWorld>, vc_id: VcId) {
    if let Some(st) = mgrs(sim).0.get_mut(&vc_id) {
        st.active = false;
    }
}

/// Statistics accessor.
pub fn stats(sim: &mut Sim<ClusterWorld>, vc_id: VcId) -> RelStats {
    mgrs(sim).0.get(&vc_id).map(|s| s.stats).unwrap_or_default()
}

fn current_interval(st: &RelState) -> Option<SimDuration> {
    match st.policy.cadence {
        Cadence::None => None,
        Cadence::Fixed(d) => Some(d),
        Cadence::Young { mtbf, initial } => Some(match st.last_cost {
            Some(c) => young_interval(c, mtbf),
            None => initial,
        }),
    }
}

fn schedule_ckpt_tick(sim: &mut Sim<ClusterWorld>, vc_id: VcId) {
    let Some(st) = mgrs(sim).0.get(&vc_id) else {
        return;
    };
    if !st.active {
        return;
    }
    let Some(interval) = current_interval(st) else {
        return;
    };
    sim.schedule_in(interval, move |sim| {
        let (active, busy, policy) = {
            let Some(st) = mgrs(sim).0.get(&vc_id) else {
                return;
            };
            (st.active, st.busy, st.policy)
        };
        if !active {
            return;
        }
        if busy {
            // A checkpoint or recovery is in flight; try again next tick.
            schedule_ckpt_tick(sim, vc_id);
            return;
        }
        // VC must be healthy to checkpoint.
        if !vc_healthy(sim, vc_id) {
            schedule_ckpt_tick(sim, vc_id);
            return;
        }
        let (method, degraded) = effective_method(sim, vc_id, policy);
        if let Some(st) = mgrs(sim).0.get_mut(&vc_id) {
            st.busy = true;
            if degraded {
                st.stats.degraded_checkpoints += 1;
            }
        }
        if degraded {
            sim.emit(Event::Ntp(NtpEvent::SyncStale { vc: vc_id.0 }));
        }
        lsc::checkpoint_vc(sim, vc_id, method, move |sim, outcome| {
            if let Some(st) = mgrs(sim).0.get_mut(&vc_id) {
                st.busy = false;
                if outcome.success {
                    st.stats.checkpoints_ok += 1;
                    st.last_cost = Some(outcome.total_duration);
                } else {
                    st.stats.checkpoints_failed += 1;
                }
            }
            // Keep a bounded history of sets.
            vc::store(sim).prune(vc_id, 2);
            schedule_ckpt_tick(sim, vc_id);
        });
    });
}

fn vc_healthy(sim: &Sim<ClusterWorld>, vc_id: VcId) -> bool {
    let Some(v) = vc::vc(sim, vc_id) else {
        return false;
    };
    v.vms
        .iter()
        .all(|&vm| sim.world.vm(vm).is_some_and(|x| x.state != VmState::Dead))
        && v.hosts.iter().all(|&h| sim.world.node(h).up)
}

fn schedule_scan(sim: &mut Sim<ClusterWorld>, vc_id: VcId) {
    let Some(st) = mgrs(sim).0.get(&vc_id) else {
        return;
    };
    if !st.active {
        return;
    }
    let every = st.policy.scan_every;
    sim.schedule_in(every, move |sim| {
        let (active, busy) = {
            let Some(st) = mgrs(sim).0.get(&vc_id) else {
                return;
            };
            (st.active, st.busy)
        };
        if !active {
            return;
        }
        if !busy && !vc_healthy(sim, vc_id) {
            recover(sim, vc_id);
        }
        schedule_scan(sim, vc_id);
    });
}

/// Pick replacement hosts: up nodes, fewest domains first, stable order.
fn pick_targets(sim: &Sim<ClusterWorld>, n: usize, avoid_down: bool) -> Option<Vec<NodeId>> {
    let mut candidates: Vec<NodeId> = sim
        .world
        .nodes
        .iter()
        .filter(|node| !avoid_down || node.up)
        .map(|node| node.id)
        .collect();
    candidates.sort_by_key(|&id| (sim.world.node(id).domains.len(), id.0));
    if candidates.len() < n {
        return None;
    }
    Some(candidates[..n].to_vec())
}

/// Restore the latest (or latest *intact*, with `restore_fallback`) set
/// onto fresh hosts.
fn recover(sim: &mut Sim<ClusterWorld>, vc_id: VcId) {
    let (allowed, restores, fallback) = {
        let Some(st) = mgrs(sim).0.get_mut(&vc_id) else {
            return;
        };
        if st.busy {
            return;
        }
        st.busy = true;
        (
            st.policy.max_restores,
            st.stats.restores,
            st.policy.restore_fallback,
        )
    };
    let set_id = if fallback {
        vc::store(sim).latest_intact_for(vc_id).map(|s| s.id)
    } else {
        vc::store(sim).latest_for(vc_id).map(|s| s.id)
    };
    let n = vc::vc(sim, vc_id).map(|v| v.vms.len()).unwrap_or(0);
    let give_up = |sim: &mut Sim<ClusterWorld>, why: &str| {
        if let Some(st) = mgrs(sim).0.get_mut(&vc_id) {
            st.stats.lost = true;
            st.active = false;
            st.busy = false;
        }
        let _ = why;
    };
    if restores >= allowed {
        give_up(sim, "restore budget exhausted");
        return;
    }
    let Some(set_id) = set_id else {
        give_up(sim, "no checkpoint set exists");
        return;
    };
    let Some(targets) = pick_targets(sim, n, true) else {
        give_up(sim, "not enough healthy nodes");
        return;
    };
    if let Some(st) = mgrs(sim).0.get_mut(&vc_id) {
        st.stats.restores += 1;
    }
    let started = lsc::restore_vc(
        sim,
        set_id,
        targets,
        SimDuration::from_secs(5),
        move |sim, out| {
            if let Some(st) = mgrs(sim).0.get_mut(&vc_id) {
                st.busy = false;
                if !out.success {
                    // The scan will try again (counts against the budget).
                }
            }
        },
    );
    if started.is_err() {
        give_up(sim, "restore could not start");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_interval_matches_formula() {
        let c = SimDuration::from_secs(50);
        let m = SimDuration::from_secs(10_000);
        let tau = young_interval(c, m);
        assert!((tau.as_secs_f64() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn young_interval_shrinks_with_mtbf() {
        let c = SimDuration::from_secs(30);
        let t1 = young_interval(c, SimDuration::from_secs(100_000));
        let t2 = young_interval(c, SimDuration::from_secs(1_000));
        assert!(t2 < t1);
    }
}
