//! Virtual clusters: provisioning, mapping, teardown, checkpoint sets.

use dvc_cluster::glue;
use dvc_cluster::node::NodeId;
use dvc_cluster::storage;
use dvc_cluster::world::ClusterWorld;
use dvc_sim_core::{Sim, SimDuration, SimTime};
use dvc_vmm::{VmId, VmImage};
use std::collections::HashMap;

/// Virtual-cluster identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VcId(pub u32);

/// What kind of physical mapping a VC ended up with (paper Figure 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mapping {
    /// VC covers a full physical cluster one-to-one.
    Direct,
    /// VC is a strict subset of one physical cluster.
    Subset,
    /// VC spans more than one physical cluster.
    Spanning,
}

/// A virtual-cluster request.
#[derive(Clone, Debug)]
pub struct VcSpec {
    pub name: String,
    pub vnodes: usize,
    pub mem_mb: u32,
    pub vcpus: u32,
    /// Per-node OS image staged from shared storage at boot, bytes.
    pub os_image_bytes: u64,
    /// Per-VM boot time after its image is staged.
    pub boot_time: SimDuration,
    /// Identity of the OS image for staging-cache purposes. `Some` lets the
    /// [`crate::images::ImageManager`] skip transfers to nodes that already
    /// hold the current version; `None` always stages.
    pub image: Option<crate::images::ImageId>,
}

impl VcSpec {
    pub fn new(name: impl Into<String>, vnodes: usize, mem_mb: u32) -> Self {
        VcSpec {
            name: name.into(),
            vnodes,
            mem_mb,
            vcpus: 1,
            os_image_bytes: 512 << 20, // a 512 MB guest image
            boot_time: SimDuration::from_secs(25),
            image: None,
        }
    }

    /// Use a cacheable image identity.
    pub fn with_image(mut self, image: crate::images::ImageId) -> Self {
        self.image = Some(image);
        self
    }
}

/// VC lifecycle state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VcState {
    Provisioning,
    Up,
    Checkpointing,
    /// All VMs saved & paused/destroyed; images form the latest set.
    Suspended,
    Restoring,
    Down,
}

/// A live virtual cluster.
#[derive(Clone, Debug)]
pub struct VirtualCluster {
    pub id: VcId,
    pub spec: VcSpec,
    /// vnode i ↔ `vms[i]`; identity is stable across migrations.
    pub vms: Vec<VmId>,
    /// Current physical placement of vnode i.
    pub hosts: Vec<NodeId>,
    pub state: VcState,
    pub created_at: SimTime,
}

impl VirtualCluster {
    /// Classify the current mapping against the physical clusters.
    pub fn mapping(&self, world: &ClusterWorld) -> Mapping {
        let mut clusters: Vec<_> = self.hosts.iter().map(|&h| world.node(h).cluster).collect();
        clusters.sort();
        clusters.dedup();
        if clusters.len() > 1 {
            return Mapping::Spanning;
        }
        let csize = world.cluster_nodes(clusters[0]).len();
        if self.hosts.len() == csize {
            Mapping::Direct
        } else {
            Mapping::Subset
        }
    }
}

/// The world-resident registry of virtual clusters.
#[derive(Default)]
pub struct VcRegistry {
    pub vcs: HashMap<VcId, VirtualCluster>,
    next: u32,
}

impl VcRegistry {
    fn alloc(&mut self) -> VcId {
        let id = VcId(self.next);
        self.next += 1;
        id
    }
}

/// Access the registry.
pub fn registry(sim: &mut Sim<ClusterWorld>) -> &mut VcRegistry {
    sim.world.ext.get_or_default::<VcRegistry>()
}

pub fn vc(sim: &Sim<ClusterWorld>, id: VcId) -> Option<&VirtualCluster> {
    sim.world.ext.get::<VcRegistry>()?.vcs.get(&id)
}

pub fn vc_mut(sim: &mut Sim<ClusterWorld>, id: VcId) -> Option<&mut VirtualCluster> {
    sim.world.ext.get_mut::<VcRegistry>()?.vcs.get_mut(&id)
}

/// A consistent checkpoint of a whole virtual cluster.
pub struct CheckpointSet {
    pub id: u64,
    pub vc: VcId,
    pub taken_at: SimTime,
    /// Image of vnode i at `images[i]`.
    pub images: Vec<VmImage>,
    /// Pause-time spread observed while taking the set (diagnostics).
    pub pause_skew: SimDuration,
}

impl CheckpointSet {
    pub fn total_bytes(&self) -> u64 {
        self.images.iter().map(|i| i.size_bytes()).sum()
    }

    /// Every image in the set passes its end-to-end checksum.
    pub fn intact(&self) -> bool {
        self.images.iter().all(|i| i.verify())
    }
}

/// The world-resident store of completed checkpoint sets.
#[derive(Default)]
pub struct CheckpointStore {
    pub sets: Vec<CheckpointSet>,
    next: u64,
}

impl CheckpointStore {
    pub fn alloc_id(&mut self) -> u64 {
        self.next += 1;
        self.next
    }

    pub fn latest_for(&self, vc: VcId) -> Option<&CheckpointSet> {
        self.sets.iter().rev().find(|s| s.vc == vc)
    }

    /// Newest set of `vc` whose images all pass their checksums — what a
    /// fallback restore reaches for when the latest generation is corrupt.
    pub fn latest_intact_for(&self, vc: VcId) -> Option<&CheckpointSet> {
        self.sets.iter().rev().find(|s| s.vc == vc && s.intact())
    }

    /// Drop all but the most recent `keep` sets of a VC (GC). The newest
    /// *intact* set is never dropped, even when it falls outside the keep
    /// window — otherwise GC after a run of corrupt checkpoints could
    /// delete the only generation a fallback restore can use.
    pub fn prune(&mut self, vc: VcId, keep: usize) {
        let protected = self.latest_intact_for(vc).map(|s| s.id);
        let ids: Vec<u64> = self
            .sets
            .iter()
            .filter(|s| s.vc == vc)
            .map(|s| s.id)
            .collect();
        if ids.len() > keep {
            let cut: Vec<u64> = ids[..ids.len() - keep]
                .iter()
                .copied()
                .filter(|&id| Some(id) != protected)
                .collect();
            self.sets.retain(|s| !cut.contains(&s.id));
        }
    }
}

pub fn store(sim: &mut Sim<ClusterWorld>) -> &mut CheckpointStore {
    sim.world.ext.get_or_default::<CheckpointStore>()
}

/// Provision a virtual cluster onto `hosts`: stage the OS image to every
/// host (shared storage, contended), boot the domains, then report ready.
///
/// `on_ready` runs once every vnode is up.
pub fn provision_vc(
    sim: &mut Sim<ClusterWorld>,
    spec: VcSpec,
    hosts: Vec<NodeId>,
    on_ready: impl FnOnce(&mut Sim<ClusterWorld>, VcId) + 'static,
) -> VcId {
    assert_eq!(spec.vnodes, hosts.len(), "one vnode per host");
    let id = registry(sim).alloc();
    let now = sim.now();
    registry(sim).vcs.insert(
        id,
        VirtualCluster {
            id,
            spec: spec.clone(),
            vms: Vec::new(),
            hosts: hosts.clone(),
            state: VcState::Provisioning,
            created_at: now,
        },
    );

    // Stage images in parallel over shared storage; boot each VM as its
    // image lands; collect readiness.
    struct Pending {
        remaining: usize,
        #[allow(clippy::type_complexity)]
        on_ready: Option<Box<dyn FnOnce(&mut Sim<ClusterWorld>, VcId)>>,
    }
    let pending = std::rc::Rc::new(std::cell::RefCell::new(Pending {
        remaining: hosts.len(),
        on_ready: Some(Box::new(on_ready)),
    }));

    // Pre-create the VMs so vnode order is deterministic.
    let mut vms = Vec::with_capacity(hosts.len());
    for &h in &hosts {
        let vm = glue::create_vm(sim, h, spec.mem_mb, spec.vcpus);
        // Not yet booted: keep it paused until staging + boot completes.
        glue::pause_vm(sim, vm);
        vms.push(vm);
    }
    vc_mut(sim, id).unwrap().vms = vms.clone();

    for (i, &h) in hosts.iter().enumerate() {
        let vm = vms[i];
        let boot = spec.boot_time;
        let pending = pending.clone();
        let boot_then_count = move |sim: &mut Sim<ClusterWorld>| {
            sim.schedule_in(boot, move |sim| {
                glue::resume_vm(sim, vm);
                let mut p = pending.borrow_mut();
                p.remaining -= 1;
                if p.remaining == 0 {
                    if let Some(cb) = p.on_ready.take() {
                        drop(p);
                        if let Some(v) = vc_mut(sim, id) {
                            v.state = VcState::Up;
                        }
                        cb(sim, id);
                    }
                }
            });
        };
        // Staging cache: skip the transfer when this node already holds the
        // image's current version (the paper's "image management").
        let cached = spec
            .image
            .is_some_and(|img| !crate::images::manager(sim).needs_staging(h, img));
        if cached {
            crate::images::manager(sim).cache_hits += 1;
            boot_then_count(sim);
        } else {
            if let Some(img) = spec.image {
                crate::images::manager(sim).cache_misses += 1;
                storage::start_transfer(sim, spec.os_image_bytes, move |sim| {
                    crate::images::manager(sim).note_staged(h, img);
                    boot_then_count(sim);
                });
            } else {
                storage::start_transfer(sim, spec.os_image_bytes, boot_then_count);
            }
        }
    }
    id
}

/// Destroy a virtual cluster and free its hosts.
pub fn teardown_vc(sim: &mut Sim<ClusterWorld>, id: VcId) {
    let Some(v) = vc_mut(sim, id) else { return };
    v.state = VcState::Down;
    let vms = v.vms.clone();
    for vm in vms {
        glue::destroy_vm(sim, vm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvc_cluster::world::ClusterBuilder;

    fn sim() -> Sim<ClusterWorld> {
        Sim::new(
            ClusterBuilder::new()
                .clusters(2)
                .nodes_per_cluster(4)
                .perfect_clocks()
                .build(3),
            3,
        )
    }

    #[test]
    fn provision_boots_all_vnodes_after_staging() {
        let mut s = sim();
        let spec = VcSpec::new("vc0", 3, 128);
        let hosts = vec![NodeId(0), NodeId(1), NodeId(2)];
        let id = provision_vc(&mut s, spec, hosts, |sim, id| {
            let t = sim.now().as_secs_f64();
            sim.world.ext.insert(("ready", id, t));
        });
        s.run_to_completion(100_000);
        let &(_, rid, t) = s.world.ext.get::<(&str, VcId, f64)>().unwrap();
        assert_eq!(rid, id);
        // 3 × 512 MB over 400 MB/s shared ⇒ ~4 s staging, + 25 s boot.
        assert!(t > 25.0 && t < 40.0, "ready at {t}");
        let v = vc(&s, id).unwrap();
        assert_eq!(v.state, VcState::Up);
        for &vm in &v.vms {
            assert!(s.world.vm(vm).unwrap().is_running());
        }
    }

    #[test]
    fn mapping_classification() {
        let mut s = sim();
        let mk = |s: &mut Sim<ClusterWorld>, hosts: Vec<NodeId>| {
            let n = hosts.len();
            provision_vc(s, VcSpec::new("m", n, 64), hosts, |_s, _id| {})
        };
        let direct = mk(&mut s, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let subset = mk(&mut s, vec![NodeId(4), NodeId(5)]);
        let span = mk(&mut s, vec![NodeId(2), NodeId(6)]);
        s.run_to_completion(1_000_000);
        assert_eq!(vc(&s, direct).unwrap().mapping(&s.world), Mapping::Direct);
        assert_eq!(vc(&s, subset).unwrap().mapping(&s.world), Mapping::Subset);
        assert_eq!(vc(&s, span).unwrap().mapping(&s.world), Mapping::Spanning);
    }

    #[test]
    fn teardown_destroys_vms() {
        let mut s = sim();
        let id = provision_vc(
            &mut s,
            VcSpec::new("t", 2, 64),
            vec![NodeId(0), NodeId(1)],
            |_s, _id| {},
        );
        s.run_to_completion(1_000_000);
        teardown_vc(&mut s, id);
        let v = vc(&s, id).unwrap();
        assert_eq!(v.state, VcState::Down);
        for &vm in &v.vms {
            assert_eq!(s.world.vm(vm).unwrap().state, dvc_vmm::VmState::Dead);
        }
    }

    #[test]
    fn checkpoint_store_prunes_old_sets() {
        let mut st = CheckpointStore::default();
        for i in 0..5 {
            let id = st.alloc_id();
            st.sets.push(CheckpointSet {
                id,
                vc: VcId(1),
                taken_at: SimTime(i),
                images: vec![],
                pause_skew: SimDuration::ZERO,
            });
        }
        assert_eq!(st.latest_for(VcId(1)).unwrap().taken_at, SimTime(4));
        st.prune(VcId(1), 2);
        assert_eq!(st.sets.len(), 2);
        assert_eq!(st.latest_for(VcId(1)).unwrap().taken_at, SimTime(4));
        assert!(st.latest_for(VcId(2)).is_none());
    }
}
