//! Parallel live migration — the paper's §4 next step: "Extending LSC to
//! enable parallel migration is the next step in the process to increasing
//! cluster reliability with Dynamic Virtual Clusters."
//!
//! Stop-and-copy migration (checkpoint to storage + restore elsewhere) is
//! what [`crate::lsc::restore_vc`] gives; its downtime is the full image
//! transfer. *Live* migration pre-copies memory while the guests keep
//! running and only pauses for the final dirty residue. The parallel twist
//! is the same one LSC solves for checkpoints: **every VM of the cluster
//! must enter its stop-and-copy phase within the transport's retry budget**,
//! so the final cutover is an NTP-coordinated simultaneous pause.
//!
//! Phases:
//!
//! 1. every VM pre-copies concurrently, node-to-node, per
//!    [`dvc_vmm::migrate::plan_precopy`] (the guests keep running);
//! 2. once every VM's residue is below the stop threshold, the coordinator
//!    schedules a shared local-clock cutover instant;
//! 3. at the instant, all VMs pause; each ships its residue; all VMs are
//!    placed on their targets and resumed together.
//!
//! Downtime is `residue/bandwidth + resume skew` — seconds instead of the
//! full-image minutes of stop-and-copy, which the outcome reports so the
//! two strategies can be compared (bench `experiments e6`/`e9` vs. the
//! `live_migration` test).

use crate::vc::{self, VcId, VcState};
use dvc_cluster::glue;
use dvc_cluster::node::NodeId;
use dvc_cluster::world::ClusterWorld;
use dvc_sim_core::{Event, Sim, SimDuration, SimTime, SpanId, VmmEvent};
use dvc_vmm::migrate::{plan_precopy, PrecopyParams};
use dvc_vmm::VmImage;
use std::collections::HashMap;

/// Parameters of a parallel live migration.
#[derive(Clone, Copy, Debug)]
pub struct LiveMigrateCfg {
    /// Estimated dirty rate of each guest, bytes/s.
    pub dirty_bps: f64,
    /// Node-to-node migration bandwidth per VM pair, bytes/s.
    pub link_bps: f64,
    /// Residue below which a VM is ready to cut over, bytes.
    pub stop_threshold_bytes: u64,
    /// Pre-copy round cap (a hot guest never converges; see
    /// [`dvc_vmm::migrate`]).
    pub max_rounds: u32,
    /// NTP lead for the coordinated cutover.
    pub cutover_lead: SimDuration,
}

impl Default for LiveMigrateCfg {
    fn default() -> Self {
        LiveMigrateCfg {
            dirty_bps: 20.0e6,
            link_bps: 110.0e6,
            stop_threshold_bytes: 4 << 20,
            max_rounds: 30,
            cutover_lead: SimDuration::from_secs(5),
        }
    }
}

/// Result of a parallel live migration.
#[derive(Clone, Debug)]
pub struct LiveMigrateOutcome {
    pub vc: VcId,
    pub success: bool,
    /// Wall time of the live (pre-copy) phase — guests running throughout.
    pub live_phase: SimDuration,
    /// Guest downtime: pause → resume (the quantity live migration buys).
    pub downtime: SimDuration,
    /// Pause skew across the VC at cutover.
    pub pause_skew: SimDuration,
    /// Total bytes shipped (all rounds + residues).
    pub total_bytes: u64,
    pub detail: String,
}

struct LiveRun {
    vc: VcId,
    targets: Vec<NodeId>,
    residue_done: usize,
    expected: usize,
    pause_times: Vec<Option<SimTime>>,
    images: Vec<Option<VmImage>>,
    paused_at: Option<SimTime>,
    resumed: usize,
    finished: bool,
    total_bytes: u64,
    started: SimTime,
    live_end: Option<SimTime>,
    #[allow(clippy::type_complexity)]
    on_done: Option<Box<dyn FnOnce(&mut Sim<ClusterWorld>, LiveMigrateOutcome)>>,
    /// Causal spans, owned by the record (see [`crate::lsc`]): any terminal
    /// path closes what is still open, children before the root.
    span: SpanId,
    precopy_span: SpanId,
    cutover_spans: Vec<SpanId>,
}

#[derive(Default)]
struct LiveRuns {
    runs: HashMap<u64, LiveRun>,
    next: u64,
}

/// Live-migrate an entire virtual cluster onto `targets`.
pub fn live_migrate_vc(
    sim: &mut Sim<ClusterWorld>,
    vc_id: VcId,
    targets: Vec<NodeId>,
    cfg: LiveMigrateCfg,
    on_done: impl FnOnce(&mut Sim<ClusterWorld>, LiveMigrateOutcome) + 'static,
) {
    let v = vc::vc(sim, vc_id).expect("live migrate of unknown vc");
    assert_eq!(v.vms.len(), targets.len(), "one target per vnode");
    let n = v.vms.len();
    let vms = v.vms.clone();
    if let Some(v) = vc::vc_mut(sim, vc_id) {
        v.state = VcState::Checkpointing;
    }

    // Plan each VM's pre-copy (uniform guests ⇒ identical plans, but we
    // plan per VM so heterogeneous memory sizes work).
    let mut live_end = SimDuration::ZERO;
    let mut total_bytes = 0u64;
    let mut residues = Vec::with_capacity(n);
    for &vm in &vms {
        let mem = sim.world.vm(vm).expect("vm").image_bytes();
        let plan = plan_precopy(PrecopyParams {
            mem_bytes: mem,
            dirty_bps: cfg.dirty_bps,
            link_bps: cfg.link_bps,
            stop_threshold_bytes: cfg.stop_threshold_bytes,
            max_rounds: cfg.max_rounds,
        });
        live_end = live_end.max(plan.live_time);
        total_bytes += plan.total_bytes();
        residues.push(plan.final_bytes);
    }

    let now = sim.now();
    let run_id = {
        let lr = sim.world.ext.get_or_default::<LiveRuns>();
        lr.next += 1;
        let id = lr.next;
        lr.runs.insert(
            id,
            LiveRun {
                vc: vc_id,
                targets,
                residue_done: 0,
                expected: n,
                pause_times: vec![None; n],
                images: std::iter::repeat_with(|| None).take(n).collect(),
                paused_at: None,
                resumed: 0,
                finished: false,
                total_bytes,
                started: now,
                live_end: None,
                on_done: Some(Box::new(on_done)),
                span: SpanId::NONE,
                precopy_span: SpanId::NONE,
                cutover_spans: vec![SpanId::NONE; n],
            },
        );
        id
    };
    let root = sim.open_span("migrate.live", SpanId::NONE, run_id);
    let pspan = sim.open_span("migrate.precopy", root, total_bytes);
    {
        let lr = sim.world.ext.get_or_default::<LiveRuns>();
        if let Some(r) = lr.runs.get_mut(&run_id) {
            r.span = root;
            r.precopy_span = pspan;
        }
    }

    // Phase 1: the live phase runs concurrently for all VMs (guests keep
    // executing). When the slowest finishes, schedule the coordinated
    // cutover one NTP lead ahead.
    sim.schedule_in(live_end, move |sim| {
        let head = sim.world.head;
        let t_fire = glue::local_now(sim, head) + cfg.cutover_lead.nanos() as i64;
        let pspan = {
            let now = sim.now();
            let lr = sim.world.ext.get_or_default::<LiveRuns>();
            match lr.runs.get_mut(&run_id) {
                Some(r) => {
                    r.live_end = Some(now);
                    std::mem::replace(&mut r.precopy_span, SpanId::NONE)
                }
                None => SpanId::NONE,
            }
        };
        sim.close_span(pspan);
        for (i, &vm) in vms.iter().enumerate() {
            let Some(&host) = sim.world.vm_host.get(&vm) else {
                finish(
                    sim,
                    run_id,
                    false,
                    format!("vnode {i} disappeared pre-cutover"),
                );
                return;
            };
            let residue = residues[i];
            let at = glue::local_deadline_to_true(sim, host, t_fire);
            sim.schedule_at(at, move |sim| {
                cutover_one(sim, run_id, i, vm, residue, cfg);
            });
        }
    });
}

/// Pause one VM and ship its dirty residue to the target node.
fn cutover_one(
    sim: &mut Sim<ClusterWorld>,
    run_id: u64,
    member: usize,
    vm: dvc_vmm::VmId,
    residue: u64,
    cfg: LiveMigrateCfg,
) {
    let alive = sim.world.vm(vm).is_some_and(|v| v.is_running());
    if !alive {
        finish(
            sim,
            run_id,
            false,
            format!("vnode {member} not running at cutover"),
        );
        return;
    }
    glue::pause_vm(sim, vm);
    sim.emit(Event::Vmm(VmmEvent::MigrateCutover { vm: vm.0 }));
    let now = sim.now();
    let image = sim.world.vm_mut(vm).unwrap().snapshot(now);
    let root = {
        let lr = sim.world.ext.get_or_default::<LiveRuns>();
        let Some(r) = lr.runs.get_mut(&run_id) else {
            return;
        };
        if r.finished {
            return;
        }
        r.pause_times[member] = Some(now);
        if r.paused_at.is_none() {
            r.paused_at = Some(now);
        }
        r.images[member] = Some(image);
        r.span
    };
    let cspan = sim.open_span("migrate.cutover", root, vm.0 as u64);
    if let Some(r) = sim
        .world
        .ext
        .get_or_default::<LiveRuns>()
        .runs
        .get_mut(&run_id)
    {
        r.cutover_spans[member] = cspan;
    }
    // Ship the residue point-to-point (not via shared storage).
    let ship = SimDuration::from_secs_f64(residue as f64 / cfg.link_bps);
    sim.schedule_in(ship, move |sim| {
        let (cspan, all_done) = {
            let lr = sim.world.ext.get_or_default::<LiveRuns>();
            let Some(r) = lr.runs.get_mut(&run_id) else {
                return;
            };
            if r.finished {
                return;
            }
            r.residue_done += 1;
            let c = std::mem::replace(&mut r.cutover_spans[member], SpanId::NONE);
            (c, r.residue_done == r.expected)
        };
        sim.close_span(cspan);
        if all_done {
            place_and_resume_all(sim, run_id);
        }
    });
}

/// All residues landed: place every image on its target and resume together.
fn place_and_resume_all(sim: &mut Sim<ClusterWorld>, run_id: u64) {
    let (vc_id, images, targets) = {
        let lr = sim.world.ext.get_or_default::<LiveRuns>();
        let Some(r) = lr.runs.get_mut(&run_id) else {
            return;
        };
        let images: Vec<VmImage> = r
            .images
            .iter_mut()
            .map(|i| i.take().expect("image"))
            .collect();
        (r.vc, images, r.targets.clone())
    };
    // Destroy sources, place paused, then resume everyone at one instant
    // (they were paused together; resuming together keeps the cut lazy).
    let mut vm_ids = Vec::with_capacity(images.len());
    for (image, &target) in images.iter().zip(&targets) {
        glue::destroy_vm(sim, image.vm);
        let id = glue::place_image_paused(sim, image, target);
        vm_ids.push(id);
    }
    if let Some(v) = vc::vc_mut(sim, vc_id) {
        v.hosts = targets;
    }
    let resumed_at = sim.now();
    for (i, vm) in vm_ids.into_iter().enumerate() {
        glue::resume_vm(sim, vm);
        let lr = sim.world.ext.get_or_default::<LiveRuns>();
        if let Some(r) = lr.runs.get_mut(&run_id) {
            r.resumed += 1;
            let _ = i;
        }
    }
    let _ = resumed_at;
    finish(sim, run_id, true, "ok".into());
}

fn finish(sim: &mut Sim<ClusterWorld>, run_id: u64, success: bool, detail: String) {
    let now = sim.now();
    let (outcome, cb, spans) = {
        let lr = sim.world.ext.get_or_default::<LiveRuns>();
        let Some(r) = lr.runs.get_mut(&run_id) else {
            return;
        };
        if r.finished {
            return;
        }
        r.finished = true;
        let known: Vec<SimTime> = r.pause_times.iter().flatten().copied().collect();
        let skew = match (known.iter().min(), known.iter().max()) {
            (Some(a), Some(b)) => *b - *a,
            _ => SimDuration::ZERO,
        };
        let outcome = LiveMigrateOutcome {
            vc: r.vc,
            success,
            live_phase: r
                .live_end
                .map(|t| t - r.started)
                .unwrap_or(SimDuration::ZERO),
            downtime: r.paused_at.map(|t| now - t).unwrap_or(SimDuration::ZERO),
            pause_skew: skew,
            total_bytes: r.total_bytes,
            detail,
        };
        // Close remaining spans, children before the migrate.live root.
        let mut spans: Vec<SpanId> = r
            .cutover_spans
            .iter_mut()
            .map(|s| std::mem::replace(s, SpanId::NONE))
            .collect();
        spans.push(std::mem::replace(&mut r.precopy_span, SpanId::NONE));
        spans.push(std::mem::replace(&mut r.span, SpanId::NONE));
        (outcome, r.on_done.take(), spans)
    };
    if let Some(v) = vc::vc_mut(sim, outcome.vc) {
        v.state = if success { VcState::Up } else { VcState::Down };
    }
    sim.world
        .ext
        .get_or_default::<LiveRuns>()
        .runs
        .remove(&run_id);
    for s in spans {
        sim.close_span(s);
    }
    if let Some(cb) = cb {
        cb(sim, outcome);
    }
}
