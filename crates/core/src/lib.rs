//! # dvc-core — Dynamic Virtual Clustering
//!
//! The paper's contribution: virtual clusters over physical clusters, with
//! **Lazy Synchronous Checkpointing (LSC)** for completely transparent
//! parallel checkpoint / restore / migration.
//!
//! * [`vc`] — virtual-cluster lifecycle: provisioning (image staging over
//!   shared storage, boot), the three mapping modes of the paper's Figure 1
//!   (direct, subset, spanning multiple clusters), teardown, and the
//!   checkpoint-set store.
//! * [`lsc`] — the checkpoint coordinators:
//!   - **naive** (paper §3.1): serialized terminal fan-out whose dispatch
//!     skew grows linearly with node count — failures *emerge* when the
//!     first-paused guest's peers exhaust their TCP retry budget;
//!   - **NTP-scheduled** (paper §3.1, the working prototype): agents armed
//!     ahead of time fire `vm save` at a shared local-clock instant, so
//!     pause skew collapses to residual clock error (milliseconds);
//!   - **hardened** (paper §4 future work): arm acknowledgements, pre-fire
//!     abort on missing acks, per-image verification and bounded retry —
//!     what "scaling to hundreds or even thousands of nodes" requires.
//!
//!   Restores are coordinated symmetrically: stage every image, then resume
//!   everyone together (naive skew or NTP instant).
//! * [`reliability`] — the resource-manager integration the paper's §4
//!   calls for: periodic checkpointing (fixed interval or Young's optimum),
//!   failure detection, and automatic restore onto surviving nodes —
//!   "if a single physical node dies, we can restart a checkpoint of the
//!   entire virtual cluster on a different set of physical nodes".

pub mod batch;
pub mod images;
pub mod lsc;
pub mod migrate;
pub mod reliability;
pub mod vc;

pub use batch::{submit_dvc_job, DvcJobSpec, DvcJobState};
pub use lsc::RestoreOutcome;
pub use lsc::{
    checkpoint_vc, restore_vc, restore_vc_intact, LscMethod, LscOutcome, LscReport, RestoreError,
};
pub use migrate::{live_migrate_vc, LiveMigrateCfg, LiveMigrateOutcome};
pub use vc::{
    provision_vc, teardown_vc, CheckpointSet, CheckpointStore, VcId, VcSpec, VirtualCluster,
};
