//! Image management (paper §1: checkpointing a virtual cluster requires
//! "only a reliable storage system … and an image management capability to
//! track the correct staging and restart of images").
//!
//! OS images are identified by `(image_id, version)`. The [`ImageManager`]
//! tracks which version is staged on which node's local disk, so
//! re-provisioning a virtual cluster with an image a node has already
//! staged skips the shared-storage transfer entirely — the common case for
//! per-job virtual clusters drawn from a small set of blessed software
//! stacks. Publishing a new version invalidates every node's cached copy.

use dvc_cluster::node::NodeId;
use dvc_cluster::world::ClusterWorld;
use dvc_sim_core::Sim;
use std::collections::HashMap;

/// Identifies an OS image (a "software stack" in DVC terms).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ImageId(pub u64);

/// Tracks staged image versions per node.
#[derive(Default)]
pub struct ImageManager {
    /// (node, image) → staged version.
    staged: HashMap<(NodeId, ImageId), u64>,
    /// Published current version per image (staging always pulls this).
    published: HashMap<ImageId, u64>,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl ImageManager {
    /// Current published version of an image (0 if never published).
    pub fn version(&self, image: ImageId) -> u64 {
        self.published.get(&image).copied().unwrap_or(0)
    }

    /// Publish a new version (invalidates all cached copies).
    pub fn publish(&mut self, image: ImageId) -> u64 {
        let v = self.published.entry(image).or_insert(0);
        *v += 1;
        *v
    }

    /// Does `node` need a transfer to run `image` at its current version?
    pub fn needs_staging(&self, node: NodeId, image: ImageId) -> bool {
        let want = self.version(image);
        self.staged.get(&(node, image)) != Some(&want)
    }

    /// Record a completed staging.
    pub fn note_staged(&mut self, node: NodeId, image: ImageId) {
        let v = self.version(image);
        self.staged.insert((node, image), v);
    }

    /// A crashed/repaired node loses its local disk contents.
    pub fn invalidate_node(&mut self, node: NodeId) {
        self.staged.retain(|(n, _), _| *n != node);
    }

    /// Count of distinct (node, image) copies currently staged.
    pub fn staged_copies(&self) -> usize {
        self.staged.len()
    }
}

/// Access the world's image manager.
pub fn manager(sim: &mut Sim<ClusterWorld>) -> &mut ImageManager {
    sim.world.ext.get_or_default::<ImageManager>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_cache_hits_after_first_pull() {
        let mut m = ImageManager::default();
        let img = ImageId(7);
        m.publish(img);
        let n = NodeId(3);
        assert!(m.needs_staging(n, img));
        m.note_staged(n, img);
        assert!(!m.needs_staging(n, img));
        assert_eq!(m.staged_copies(), 1);
    }

    #[test]
    fn publish_invalidates_everywhere() {
        let mut m = ImageManager::default();
        let img = ImageId(1);
        m.publish(img);
        for i in 0..4 {
            m.note_staged(NodeId(i), img);
        }
        assert!(!m.needs_staging(NodeId(2), img));
        m.publish(img);
        for i in 0..4 {
            assert!(m.needs_staging(NodeId(i), img), "node {i}");
        }
    }

    #[test]
    fn node_crash_invalidates_its_copies_only() {
        let mut m = ImageManager::default();
        let a = ImageId(1);
        let b = ImageId(2);
        m.publish(a);
        m.publish(b);
        m.note_staged(NodeId(0), a);
        m.note_staged(NodeId(0), b);
        m.note_staged(NodeId(1), a);
        m.invalidate_node(NodeId(0));
        assert!(m.needs_staging(NodeId(0), a));
        assert!(m.needs_staging(NodeId(0), b));
        assert!(!m.needs_staging(NodeId(1), a));
    }

    #[test]
    fn unpublished_images_are_version_zero() {
        let m = ImageManager::default();
        assert_eq!(m.version(ImageId(9)), 0);
        // Version 0 with nothing staged still "needs staging" (pulls v0).
        assert!(m.needs_staging(NodeId(0), ImageId(9)));
    }
}
