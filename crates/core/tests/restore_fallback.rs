//! Failure paths of the restore pipeline (PR: failure-aware checkpointing).
//!
//! * a corrupt latest generation makes `restore_vc` fail cleanly (checksum
//!   caught at staging) and `restore_vc_intact` fall back to the newest
//!   intact generation;
//! * when every generation is corrupt the caller gets a typed
//!   [`RestoreError`] instead of a panic;
//! * GC can never drop the only intact generation of a VC.

use dvc_cluster::node::NodeId;
use dvc_cluster::ntp;
use dvc_cluster::world::{ClusterBuilder, ClusterWorld};
use dvc_core::lsc::{self, LscMethod, RestoreError};
use dvc_core::vc::{self, VcSpec};
use dvc_core::VcId;
use dvc_sim_core::{Sim, SimDuration, SimTime};

fn world(seed: u64) -> Sim<ClusterWorld> {
    let mut sim = Sim::new(
        ClusterBuilder::new()
            .nodes_per_cluster(9)
            .tweak(|c| c.clock_max_offset_ms = 5.0)
            .build(seed),
        seed,
    );
    ntp::start_ntp(&mut sim, SimDuration::from_secs(4));
    sim
}

fn run_until(
    sim: &mut Sim<ClusterWorld>,
    horizon: SimTime,
    mut pred: impl FnMut(&mut Sim<ClusterWorld>) -> bool,
) -> bool {
    while !pred(sim) {
        if sim.now() > horizon || !sim.step() {
            return pred(sim);
        }
    }
    true
}

/// Provision a 3-vnode VC on nodes 1..=3 and take `n_ckpts` checkpoints,
/// returning the VC id and the stored set ids (oldest first).
fn vc_with_sets(sim: &mut Sim<ClusterWorld>, n_ckpts: usize) -> (VcId, Vec<u64>) {
    let hosts: Vec<NodeId> = (1..=3).map(NodeId).collect();
    let mut spec = VcSpec::new("fb-vc", 3, 64);
    spec.os_image_bytes = 32 << 20;
    spec.boot_time = SimDuration::from_secs(5);
    let id = vc::provision_vc(sim, spec, hosts, |_sim, _id| {});
    run_until(sim, SimTime::from_secs_f64(600.0), |sim| {
        vc::vc(sim, id).map(|v| v.state) == Some(vc::VcState::Up)
    });
    let mut set_ids = Vec::new();
    for _ in 0..n_ckpts {
        #[derive(Default)]
        struct Done(Option<u64>);
        sim.world.ext.insert(Done::default());
        lsc::checkpoint_vc(sim, id, LscMethod::ntp_default(), |sim, out| {
            assert!(out.success, "checkpoint failed: {}", out.detail);
            sim.world.ext.get_or_default::<Done>().0 = out.set_id;
        });
        let ok = run_until(sim, SimTime::from_secs_f64(7200.0), |sim| {
            sim.world.ext.get::<Done>().is_some_and(|d| d.0.is_some())
        });
        assert!(ok, "checkpoint never resolved");
        set_ids.push(sim.world.ext.get::<Done>().unwrap().0.unwrap());
    }
    (id, set_ids)
}

fn corrupt_set(sim: &mut Sim<ClusterWorld>, set_id: u64) {
    let st = vc::store(sim);
    let set = st.sets.iter_mut().find(|s| s.id == set_id).unwrap();
    for img in &mut set.images {
        img.corrupt_silently();
    }
}

#[test]
fn corrupt_latest_generation_fails_restore_with_checksum_detail() {
    let mut sim = world(41);
    let (_vc, sets) = vc_with_sets(&mut sim, 2);
    corrupt_set(&mut sim, sets[1]);

    #[derive(Default)]
    struct Out(Option<(bool, String)>);
    sim.world.ext.insert(Out::default());
    let targets: Vec<NodeId> = (4..=6).map(NodeId).collect();
    lsc::restore_vc(
        &mut sim,
        sets[1],
        targets,
        SimDuration::from_secs(5),
        |sim, o| {
            sim.world.ext.get_or_default::<Out>().0 = Some((o.success, o.detail));
        },
    )
    .expect("restore of an existing set starts");
    run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
        sim.world.ext.get::<Out>().is_some_and(|o| o.0.is_some())
    });
    let (success, detail) = sim.world.ext.get::<Out>().unwrap().0.clone().unwrap();
    assert!(!success, "corrupt set must not restore");
    assert!(detail.contains("checksum"), "detail: {detail}");
}

#[test]
fn restore_vc_intact_falls_back_past_corrupt_latest() {
    let mut sim = world(42);
    let (vc_id, sets) = vc_with_sets(&mut sim, 2);
    corrupt_set(&mut sim, sets[1]);

    #[derive(Default)]
    struct Out(Option<bool>);
    sim.world.ext.insert(Out::default());
    let targets: Vec<NodeId> = (4..=6).map(NodeId).collect();
    let chosen = lsc::restore_vc_intact(
        &mut sim,
        vc_id,
        targets,
        SimDuration::from_secs(5),
        |sim, o| {
            sim.world.ext.get_or_default::<Out>().0 = Some(o.success);
        },
    )
    .expect("an intact generation exists");
    assert_eq!(chosen, sets[0], "must pick the older, intact generation");
    run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
        sim.world.ext.get::<Out>().is_some_and(|o| o.0.is_some())
    });
    assert_eq!(sim.world.ext.get::<Out>().unwrap().0, Some(true));
    // The VC is back up on the new hosts.
    let v = vc::vc(&sim, vc_id).unwrap();
    assert_eq!(v.state, vc::VcState::Up);
    assert_eq!(v.hosts, (4..=6).map(NodeId).collect::<Vec<_>>());
}

#[test]
fn all_generations_corrupt_is_a_typed_error_not_a_panic() {
    let mut sim = world(43);
    let (vc_id, sets) = vc_with_sets(&mut sim, 2);
    for &s in &sets {
        corrupt_set(&mut sim, s);
    }
    let targets: Vec<NodeId> = (4..=6).map(NodeId).collect();
    let err = lsc::restore_vc_intact(
        &mut sim,
        vc_id,
        targets,
        SimDuration::from_secs(5),
        |_sim, _o| {},
    )
    .unwrap_err();
    assert_eq!(err, RestoreError::NoIntactGeneration(vc_id));
}

#[test]
fn unknown_set_and_target_mismatch_are_typed_errors() {
    let mut sim = world(44);
    let (_vc, sets) = vc_with_sets(&mut sim, 1);
    let err = lsc::restore_vc(
        &mut sim,
        9999,
        vec![NodeId(4)],
        SimDuration::from_secs(5),
        |_s, _o| {},
    )
    .unwrap_err();
    assert_eq!(err, RestoreError::UnknownSet(9999));

    let err = lsc::restore_vc(
        &mut sim,
        sets[0],
        vec![NodeId(4)], // 3 vnodes, 1 target
        SimDuration::from_secs(5),
        |_s, _o| {},
    )
    .unwrap_err();
    assert_eq!(
        err,
        RestoreError::TargetCountMismatch {
            expected: 3,
            got: 1
        }
    );
}

#[test]
fn prune_never_drops_the_only_intact_generation() {
    let mut sim = world(45);
    let (vc_id, sets) = vc_with_sets(&mut sim, 3);
    // Only the OLDEST generation survives verification.
    corrupt_set(&mut sim, sets[1]);
    corrupt_set(&mut sim, sets[2]);

    // Aggressive GC: keep just one set. Without the intact-set guard this
    // would leave only the newest (corrupt) generation behind.
    vc::store(&mut sim).prune(vc_id, 1);
    let st = vc::store(&mut sim);
    let remaining: Vec<u64> = st.sets.iter().map(|s| s.id).collect();
    assert!(
        remaining.contains(&sets[0]),
        "intact set pruned away: {remaining:?}"
    );
    assert!(
        remaining.contains(&sets[2]),
        "newest set should stay in the keep window: {remaining:?}"
    );
    assert_eq!(st.latest_intact_for(vc_id).unwrap().id, sets[0]);
    // And a fallback restore still works after the aggressive prune.
    #[derive(Default)]
    struct Out(Option<bool>);
    sim.world.ext.insert(Out::default());
    let targets: Vec<NodeId> = (4..=6).map(NodeId).collect();
    let chosen = lsc::restore_vc_intact(
        &mut sim,
        vc_id,
        targets,
        SimDuration::from_secs(5),
        |sim, o| {
            sim.world.ext.get_or_default::<Out>().0 = Some(o.success);
        },
    )
    .expect("intact generation survived the prune");
    assert_eq!(chosen, sets[0]);
    run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
        sim.world.ext.get::<Out>().is_some_and(|o| o.0.is_some())
    });
    assert_eq!(sim.world.ext.get::<Out>().unwrap().0, Some(true));
}
