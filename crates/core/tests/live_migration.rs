//! Parallel live migration (§4 future work): the whole virtual cluster
//! moves to new nodes with **seconds of downtime instead of a full
//! checkpoint+restore**, while the application keeps running through the
//! pre-copy phase and survives the coordinated cutover.

use dvc_cluster::node::NodeId;
use dvc_cluster::ntp;
use dvc_cluster::world::{ClusterBuilder, ClusterWorld};
use dvc_core::migrate::{live_migrate_vc, LiveMigrateCfg, LiveMigrateOutcome};
use dvc_core::vc::{self, VcSpec};
use dvc_mpi::harness;
use dvc_sim_core::{Sim, SimDuration, SimTime};
use dvc_workloads::ring;

fn run_until(
    sim: &mut Sim<ClusterWorld>,
    horizon: SimTime,
    mut pred: impl FnMut(&mut Sim<ClusterWorld>) -> bool,
) -> bool {
    while !pred(sim) {
        if sim.now() > horizon || !sim.step() {
            return pred(sim);
        }
    }
    true
}

#[test]
fn live_migration_moves_vc_with_short_downtime() {
    let mut sim = Sim::new(
        ClusterBuilder::new()
            .nodes_per_cluster(9)
            .tweak(|c| {
                c.guest_tcp.max_data_retries = 4;
                c.clock_max_offset_ms = 5.0;
            })
            .build(60_001),
        60_001,
    );
    ntp::start_ntp(&mut sim, SimDuration::from_secs(4));

    let hosts: Vec<NodeId> = (1..=4).map(NodeId).collect();
    let mut spec = VcSpec::new("live", 4, 256); // 256 MB guests
    spec.os_image_bytes = 32 << 20;
    spec.boot_time = SimDuration::from_secs(5);
    let vc_id = vc::provision_vc(&mut sim, spec, hosts, |_s, _i| {});
    while vc::vc(&sim, vc_id).map(|v| v.state) != Some(vc::VcState::Up) {
        assert!(sim.step());
    }

    let cfg = ring::RingConfig {
        payload_len: 1024,
        iters: 1200,
        compute_ns: 150_000_000,
    };
    let vms = vc::vc(&sim, vc_id).unwrap().vms.clone();
    let job = harness::launch_on_vms(&mut sim, &vms, move |r, s| ring::program(cfg, r, s));

    // Kick off the live migration mid-run, onto the spare nodes.
    let at = sim.now() + SimDuration::from_secs(40);
    sim.schedule_at(at, move |sim| {
        let targets: Vec<NodeId> = (5..=8).map(NodeId).collect();
        live_migrate_vc(
            sim,
            vc_id,
            targets,
            LiveMigrateCfg::default(),
            |sim, out| {
                sim.world.ext.insert(out);
            },
        );
    });

    let done = run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        harness::all_done(sim, &job)
    });
    assert!(done, "job failed: {:?}", harness::first_failure(&sim, &job));

    let out = sim.world.ext.get::<LiveMigrateOutcome>().expect("outcome");
    assert!(out.success, "{}", out.detail);
    // The whole point: downtime ≪ moving 4×256 MB while stopped (≈10 s over
    // shared storage each way). With a 4 MB residue per VM it is sub-second
    // transfer + the coordinated cutover.
    assert!(
        out.downtime < SimDuration::from_secs(2),
        "downtime {} too long",
        out.downtime
    );
    assert!(
        out.live_phase > SimDuration::from_secs(2),
        "pre-copy should take noticeable live time ({})",
        out.live_phase
    );
    assert!(
        out.pause_skew < SimDuration::from_millis(20),
        "cutover must be NTP-coordinated ({})",
        out.pause_skew
    );
    // Placement moved; job data verified end-to-end.
    assert_eq!(
        vc::vc(&sim, vc_id).unwrap().hosts,
        (5..=8).map(NodeId).collect::<Vec<_>>()
    );
    for r in 0..job.size {
        assert!(ring::ring_ok(&harness::rank(&sim, &job, r).data));
    }
}

#[test]
fn live_migration_reports_nonconvergent_guests_via_long_downtime() {
    // A guest dirtying memory faster than the link can drain never
    // converges: the plan caps the rounds and the residue (and thus the
    // downtime) stays large — the signal to fall back to plain LSC.
    let plan = dvc_vmm::migrate::plan_precopy(dvc_vmm::migrate::PrecopyParams {
        mem_bytes: 256 << 20,
        dirty_bps: 150.0e6,
        link_bps: 110.0e6,
        stop_threshold_bytes: 4 << 20,
        max_rounds: 10,
    });
    assert!(plan.final_bytes > (32 << 20));
    assert!(plan.downtime > SimDuration::from_millis(300));
}
