//! Batch integration (§4): MPI jobs through the resource manager, with DVC
//! provisioning, reliability management, and node recycling.

use dvc_cluster::node::NodeId;
use dvc_cluster::ntp;
use dvc_cluster::rm::Placement;
use dvc_cluster::world::{ClusterBuilder, ClusterWorld};
use dvc_core::batch::{self, DvcJobSpec, DvcJobState};
use dvc_core::reliability::Policy;
use dvc_mpi::data::RankData;
use dvc_sim_core::{Sim, SimDuration, SimTime};
use dvc_workloads::ring;

fn testbed(nodes: usize, seed: u64) -> Sim<ClusterWorld> {
    let mut sim = Sim::new(
        ClusterBuilder::new()
            .nodes_per_cluster(nodes)
            .tweak(|c| {
                c.guest_tcp.max_data_retries = 4;
                c.clock_max_offset_ms = 5.0;
            })
            .build(seed),
        seed,
    );
    ntp::start_ntp(&mut sim, SimDuration::from_secs(4));
    sim
}

fn ring_spec(name: &str, vnodes: usize, laps: u64) -> DvcJobSpec {
    let cfg = ring::RingConfig {
        payload_len: 1024,
        iters: laps,
        compute_ns: 100_000_000,
    };
    DvcJobSpec {
        name: name.into(),
        vnodes,
        mem_mb: 64,
        placement: Placement::SingleCluster,
        est_duration: SimDuration::from_secs(120),
        program: Box::new(move |r, s| ring::program(cfg, r, s)),
        reliability: None,
        kill_after: SimDuration::from_secs(3600),
    }
}

fn run_until(
    sim: &mut Sim<ClusterWorld>,
    horizon: SimTime,
    mut pred: impl FnMut(&mut Sim<ClusterWorld>) -> bool,
) -> bool {
    while !pred(sim) {
        if sim.now() > horizon || !sim.step() {
            return pred(sim);
        }
    }
    true
}

#[test]
fn queued_jobs_run_serially_and_release_nodes() {
    // 5 nodes (head + 4 workers); two 4-vnode jobs must run one after the
    // other, each through provision → run → teardown.
    let mut sim = testbed(5, 70_001);
    let a = batch::submit_dvc_job(&mut sim, ring_spec("a", 4, 100));
    let b = batch::submit_dvc_job(&mut sim, ring_spec("b", 4, 100));

    assert_eq!(
        batch::job_status(&mut sim, b).unwrap().state,
        DvcJobState::Queued,
        "no room for b while a provisions"
    );
    let ok = run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
        batch::job_status(sim, a).map(|s| s.state) == Some(DvcJobState::Completed)
            && batch::job_status(sim, b).map(|s| s.state) == Some(DvcJobState::Completed)
    });
    assert!(
        ok,
        "a={:?} b={:?}",
        batch::job_status(&mut sim, a),
        batch::job_status(&mut sim, b)
    );
    // Nodes recycled.
    assert_eq!(sim.world.rm.busy_nodes(), 0);
    // Job b really started after job a finished.
    let ja = sim.world.rm.job(a).unwrap().finished.unwrap();
    let jb = sim.world.rm.job(b).unwrap().started.unwrap();
    assert!(jb >= ja, "b started at {jb}, a finished at {ja}");
}

#[test]
fn managed_batch_job_survives_node_crash() {
    let mut sim = testbed(9, 70_002);
    let mut spec = ring_spec("resilient", 4, 700);
    spec.reliability = Some(Policy::periodic(SimDuration::from_secs(30)));
    let id = batch::submit_dvc_job(&mut sim, spec);

    // Crash one of the job's nodes mid-run.
    sim.schedule_at(SimTime::from_secs_f64(60.0), |sim| {
        // The job runs on nodes 1..=4 (head is 0).
        dvc_cluster::failure::crash_node(sim, NodeId(2));
    });
    let ok = run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
        matches!(
            batch::job_status(sim, id).map(|s| s.state),
            Some(DvcJobState::Completed) | Some(DvcJobState::Failed) | Some(DvcJobState::Killed)
        )
    });
    assert!(ok, "job never terminated");
    let st = batch::job_status(&mut sim, id).unwrap();
    assert_eq!(st.state, DvcJobState::Completed, "detail: {}", st.detail);
    // The data is verified.
    let mpi = batch::mpi_job(&mut sim, id).unwrap();
    for r in 0..mpi.size {
        assert!(ring::ring_ok(&dvc_mpi::harness::rank(&sim, &mpi, r).data));
    }
}

#[test]
fn unmanaged_batch_job_fails_on_crash_and_frees_nodes() {
    let mut sim = testbed(6, 70_003);
    let id = batch::submit_dvc_job(&mut sim, ring_spec("fragile", 4, 700));
    sim.schedule_at(SimTime::from_secs_f64(60.0), |sim| {
        dvc_cluster::failure::crash_node(sim, NodeId(2));
    });
    let ok = run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
        matches!(
            batch::job_status(sim, id).map(|s| s.state),
            Some(DvcJobState::Completed) | Some(DvcJobState::Failed)
        )
    });
    assert!(ok);
    let st = batch::job_status(&mut sim, id).unwrap();
    assert_eq!(st.state, DvcJobState::Failed);
    assert_eq!(
        sim.world.rm.busy_nodes(),
        0,
        "failed job must release nodes"
    );
}

#[test]
fn walltime_limit_kills_runaway_jobs() {
    let mut sim = testbed(5, 70_004);
    let mut spec = ring_spec("runaway", 4, u64::MAX / 2); // never finishes
    spec.kill_after = SimDuration::from_secs(120);
    let id = batch::submit_dvc_job(&mut sim, spec);
    let ok = run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        batch::job_status(sim, id).map(|s| s.state) == Some(DvcJobState::Killed)
    });
    assert!(ok, "{:?}", batch::job_status(&mut sim, id));
    assert_eq!(sim.world.rm.busy_nodes(), 0);
}

#[test]
fn program_results_are_extractable_after_completion() {
    let mut sim = testbed(4, 70_005);
    let spec = DvcJobSpec {
        name: "sum".into(),
        vnodes: 3,
        mem_mb: 64,
        placement: Placement::SingleCluster,
        est_duration: SimDuration::from_secs(60),
        program: Box::new(|rank, size| {
            let mut data = RankData::new();
            data.set("x", dvc_mpi::data::Value::F64((rank + 1) as f64));
            let ops = dvc_mpi::collectives::allreduce(rank, size, 400, "x", |d, _r, s| {
                let mut total = d.f64("x");
                for i in 0..s {
                    let key = format!("x.from.{i}");
                    if d.contains(&key) {
                        total += d.f64(&key);
                    }
                }
                d.set("x", dvc_mpi::data::Value::F64(total));
            });
            (ops, data)
        }),
        reliability: None,
        kill_after: SimDuration::from_secs(600),
    };
    let id = batch::submit_dvc_job(&mut sim, spec);
    let ok = run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        batch::job_status(sim, id).map(|s| s.state) == Some(DvcJobState::Completed)
    });
    assert!(ok);
    // VC is torn down but the (dead) VMs' final state is still inspectable.
    let mpi = batch::mpi_job(&mut sim, id).unwrap();
    for r in 0..3 {
        let vm = sim.world.vm(mpi.vms[r]).unwrap();
        let rt = vm.guest.procs[0]
            .app
            .as_any()
            .downcast_ref::<dvc_mpi::runtime::MpiRuntime>()
            .unwrap();
        assert_eq!(rt.data.f64("x"), 6.0, "rank {r}");
    }
}

/// Staging cache: re-provisioning the same image on the same nodes skips
/// the storage transfers entirely (paper §1's image management).
#[test]
fn image_cache_accelerates_reprovisioning() {
    use dvc_core::images::{self, ImageId};
    let mut sim = testbed(5, 70_010);
    let img = ImageId(42);
    images::manager(&mut sim).publish(img);

    let provision = |sim: &mut Sim<ClusterWorld>| -> f64 {
        let t0 = sim.now();
        let hosts: Vec<NodeId> = (1..=4).map(NodeId).collect();
        let mut spec = dvc_core::vc::VcSpec::new("cached", 4, 64).with_image(img);
        spec.os_image_bytes = 512 << 20;
        spec.boot_time = SimDuration::from_secs(5);
        let id = dvc_core::vc::provision_vc(sim, spec, hosts, |_s, _i| {});
        while dvc_core::vc::vc(sim, id).map(|v| v.state) != Some(dvc_core::vc::VcState::Up) {
            assert!(sim.step());
        }
        dvc_core::vc::teardown_vc(sim, id);
        (sim.now() - t0).as_secs_f64()
    };
    let cold = provision(&mut sim);
    let warm = provision(&mut sim);
    // Cold: 4×512 MB over 400 MB/s shared storage (≈5 s) + 5 s boot.
    // Warm: boot only.
    assert!(cold > 9.0, "cold provision took {cold}");
    assert!(warm < 5.5, "warm provision took {warm} (cache not used?)");
    let m = images::manager(&mut sim);
    assert_eq!(m.cache_misses, 4);
    assert_eq!(m.cache_hits, 4);

    // Publishing a new version forces restaging.
    images::manager(&mut sim).publish(img);
    let after_publish = provision(&mut sim);
    assert!(
        after_publish > 9.0,
        "publish must invalidate: {after_publish}"
    );
}
