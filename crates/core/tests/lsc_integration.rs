//! LSC end-to-end: coordinated checkpoints of *running MPI applications*.
//!
//! These are the paper's claims as executable tests:
//!
//! * NTP-scheduled LSC checkpoints a communication-heavy job with
//!   millisecond pause skew and the job finishes, data verified;
//! * the naive coordinator works at small node counts and collapses at
//!   larger ones, with the failure emerging from TCP retry exhaustion;
//! * a checkpoint set restores onto *different physical nodes* and the job
//!   still completes (migration transparency);
//! * the hardened coordinator survives agent faults that kill plain NTP
//!   LSC; and
//! * the reliability manager recovers a job from a node crash.

use dvc_cluster::failure;
use dvc_cluster::node::NodeId;
use dvc_cluster::ntp;
use dvc_cluster::world::{ClusterBuilder, ClusterWorld};
use dvc_core::lsc::{self, LscFaults, LscMethod, LscOutcome};
use dvc_core::vc::{self, VcSpec};
use dvc_core::{reliability, VcId};
use dvc_mpi::harness::{self, MpiJob};
use dvc_sim_core::{Sim, SimDuration, SimTime};
use dvc_workloads::ring;

/// World: one cluster of `n` nodes + 4 spares, NTP running, guests with the
/// HPC-tuned retry budget from DESIGN.md §2.
fn world(n: usize, seed: u64) -> Sim<ClusterWorld> {
    let mut sim = Sim::new(
        ClusterBuilder::new()
            .nodes_per_cluster(n + 4)
            .tweak(|c| {
                c.guest_tcp.max_data_retries = 4;
                c.clock_max_offset_ms = 5.0; // boot-time ntpdate already stepped the clocks
            })
            .build(seed),
        seed,
    );
    ntp::start_ntp(&mut sim, SimDuration::from_secs(4));
    sim
}

/// Provision a VC on nodes 1..=n, run a ring job on it, returning ids.
/// The world runs until the VC is up and the job is launched.
fn vc_with_ring(sim: &mut Sim<ClusterWorld>, n: usize, laps: u64) -> (VcId, MpiJob) {
    let hosts: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
    let mut spec = VcSpec::new("job-vc", n, 64);
    spec.os_image_bytes = 64 << 20; // small image: fast tests
    spec.boot_time = SimDuration::from_secs(5);
    let id = vc::provision_vc(sim, spec, hosts, |_sim, _id| {});
    // Run until the VC is up.
    while vc::vc(sim, id).map(|v| v.state) != Some(vc::VcState::Up) {
        assert!(sim.step(), "provisioning stalled");
        assert!(sim.now() < SimTime::from_secs_f64(600.0));
    }
    let cfg = ring::RingConfig {
        payload_len: 4096, // 32 KiB payload per hop: keeps data in flight
        iters: laps,
        compute_ns: 150_000_000, // 150 ms/lap
    };
    let vms = vc::vc(sim, id).unwrap().vms.clone();
    let job = harness::launch_on_vms(sim, &vms, move |r, s| ring::program(cfg, r, s));
    (id, job)
}

fn run_until(
    sim: &mut Sim<ClusterWorld>,
    horizon: SimTime,
    mut pred: impl FnMut(&mut Sim<ClusterWorld>) -> bool,
) -> bool {
    while !pred(sim) {
        if sim.now() > horizon || !sim.step() {
            return pred(sim);
        }
    }
    true
}

fn stash_outcome(sim: &mut Sim<ClusterWorld>, out: LscOutcome) {
    sim.world.ext.get_or_default::<Vec<LscOutcome>>().push(out);
}

fn outcomes(sim: &Sim<ClusterWorld>) -> &[LscOutcome] {
    sim.world
        .ext
        .get::<Vec<LscOutcome>>()
        .map(|v| v.as_slice())
        .unwrap_or(&[])
}

#[test]
fn ntp_lsc_checkpoints_running_job_with_ms_skew() {
    let mut sim = world(8, 1001);
    let (vc_id, job) = vc_with_ring(&mut sim, 8, 1200);
    // Give NTP time to discipline the clocks, then checkpoint mid-run.
    let at = sim.now() + SimDuration::from_secs(60);
    sim.schedule_at(at, move |sim| {
        lsc::checkpoint_vc(sim, vc_id, LscMethod::ntp_default(), stash_outcome);
    });
    let ok = run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        !sim.world
            .ext
            .get::<Vec<LscOutcome>>()
            .is_none_or(|v| v.is_empty())
            && (harness::all_done(sim, &job) || harness::first_failure(sim, &job).is_some())
    });
    assert!(ok, "job never finished");
    assert!(
        harness::first_failure(&sim, &job).is_none(),
        "job failed: {:?}",
        harness::first_failure(&sim, &job)
    );
    let outs = outcomes(&sim);
    assert_eq!(outs.len(), 1, "checkpoint never completed");
    let o = &outs[0];
    assert!(o.success, "checkpoint failed: {}", o.detail);
    assert!(
        o.pause_skew < SimDuration::from_millis(20),
        "NTP pause skew should be ms-scale, got {}",
        o.pause_skew
    );
    assert!(o.set_id.is_some());
    // Ring data intact on every rank.
    for r in 0..job.size {
        assert!(ring::ring_ok(&harness::rank(&sim, &job, r).data));
    }
    // Each VM paused exactly twice: once while provisioning (pre-boot
    // hold) and once for the checkpoint.
    let v = vc::vc(&sim, vc_id).unwrap();
    for &vm in &v.vms {
        assert_eq!(sim.world.vm(vm).unwrap().pause_count, 2);
    }
}

#[test]
fn naive_lsc_succeeds_at_4_nodes() {
    let mut sim = world(4, 1002);
    let (vc_id, job) = vc_with_ring(&mut sim, 4, 400);
    let at = sim.now() + SimDuration::from_secs(60);
    sim.schedule_at(at, move |sim| {
        lsc::checkpoint_vc(sim, vc_id, LscMethod::Naive, stash_outcome);
    });
    let ok = run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        harness::all_done(sim, &job) || harness::first_failure(sim, &job).is_some()
    });
    assert!(ok);
    assert!(
        harness::first_failure(&sim, &job).is_none(),
        "4-node naive checkpoint should survive: {:?}",
        harness::first_failure(&sim, &job)
    );
    let o = &outcomes(&sim)[0];
    assert!(o.success);
    // Serial dispatch: seconds of skew even when it succeeds.
    assert!(
        o.pause_skew > SimDuration::from_millis(500),
        "expected multi-second naive skew, got {}",
        o.pause_skew
    );
}

#[test]
fn naive_lsc_kills_the_job_at_12_nodes() {
    let mut sim = world(12, 1003);
    let (vc_id, job) = vc_with_ring(&mut sim, 12, 2000);
    let at = sim.now() + SimDuration::from_secs(60);
    sim.schedule_at(at, move |sim| {
        lsc::checkpoint_vc(sim, vc_id, LscMethod::Naive, stash_outcome);
    });
    let _ = run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        harness::first_failure(sim, &job).is_some() || harness::all_done(sim, &job)
    });
    // The transport gave up somewhere: the app observes a socket error.
    let failure = harness::first_failure(&sim, &job);
    assert!(
        failure.is_some(),
        "12-node naive checkpoint should exceed the TCP budget (skew {:?})",
        outcomes(&sim).first().map(|o| o.pause_skew)
    );
    let (_, err) = failure.unwrap();
    assert!(
        err.contains("RetryTimeout") || err.contains("Reset"),
        "failure must come from the transport: {err}"
    );
}

#[test]
fn checkpoint_set_restores_onto_different_nodes() {
    let mut sim = world(4, 1004);
    let (vc_id, job) = vc_with_ring(&mut sim, 4, 1500);
    let at = sim.now() + SimDuration::from_secs(60);
    sim.schedule_at(at, move |sim| {
        lsc::checkpoint_vc(sim, vc_id, LscMethod::ntp_default(), move |sim, out| {
            assert!(out.success, "checkpoint failed: {}", out.detail);
            let set_id = out.set_id.unwrap();
            // Simulate catastrophe: all four original hosts die.
            sim.schedule_in(SimDuration::from_secs(30), move |sim| {
                for n in 1..=4 {
                    failure::crash_node(sim, NodeId(n));
                }
                // Migrate the whole VC to the spares (and the head node).
                let targets: Vec<NodeId> = vec![NodeId(5), NodeId(6), NodeId(7), NodeId(0)];
                lsc::restore_vc(
                    sim,
                    set_id,
                    targets,
                    SimDuration::from_secs(5),
                    |sim, out| {
                        assert!(out.success, "restore failed: {}", out.detail);
                        sim.world.ext.insert(out);
                    },
                )
                .expect("restore should start");
            });
        });
    });
    let ok = run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        harness::all_done(sim, &job)
    });
    assert!(
        ok,
        "job should complete after migration; failure: {:?}",
        harness::first_failure(&sim, &job)
    );
    // Placement really moved.
    let v = vc::vc(&sim, vc_id).unwrap();
    assert_eq!(v.hosts, vec![NodeId(5), NodeId(6), NodeId(7), NodeId(0)]);
    for r in 0..job.size {
        assert!(ring::ring_ok(&harness::rank(&sim, &job, r).data));
    }
    let restore = sim.world.ext.get::<lsc::RestoreOutcome>().unwrap();
    assert!(restore.resume_skew < SimDuration::from_millis(20));
}

#[test]
fn hardened_lsc_survives_agent_faults_that_kill_plain_ntp() {
    // Plain NTP with a 40%-per-agent fault: some VM never pauses → job dies.
    let run = |method: LscMethod, seed: u64| -> (bool, u32) {
        let mut sim = world(8, seed);
        lsc::set_faults(
            &mut sim,
            LscFaults {
                arm_loss_prob: 0.25,
            },
        );
        let (vc_id, job) = vc_with_ring(&mut sim, 8, 2000);
        let at = sim.now() + SimDuration::from_secs(60);
        sim.schedule_at(at, move |sim| {
            lsc::checkpoint_vc(sim, vc_id, method, stash_outcome);
        });
        let _ = run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
            (harness::first_failure(sim, &job).is_some() || harness::all_done(sim, &job))
                && !outcomes(sim).is_empty()
        });
        let job_ok = harness::first_failure(&sim, &job).is_none();
        let attempts = outcomes(&sim).first().map(|o| o.attempts).unwrap_or(0);
        (
            job_ok && outcomes(&sim).first().is_some_and(|o| o.success),
            attempts,
        )
    };

    // With 8 nodes and p=0.25 the chance all 8 arms survive is ~10%; this
    // (deterministic) seed loses at least one arm.
    let (plain_ok, _) = run(LscMethod::ntp_default(), 2001);
    assert!(!plain_ok, "plain NTP should fail under 25% agent faults");

    let (hard_ok, attempts) = run(LscMethod::hardened_default(), 2001);
    assert!(hard_ok, "hardened LSC should retry through agent faults");
    assert!(attempts >= 2, "expected at least one retry, got {attempts}");
}

#[test]
fn reliability_manager_recovers_job_from_node_crash() {
    let mut sim = world(4, 1006);
    let (vc_id, job) = vc_with_ring(&mut sim, 4, 800);
    reliability::manage(
        &mut sim,
        vc_id,
        reliability::Policy::periodic(SimDuration::from_secs(45)),
    );
    // Crash one VC host well after the first periodic checkpoint.
    sim.schedule_in(SimDuration::from_secs(100), |sim| {
        failure::crash_node(sim, NodeId(2));
    });
    let ok = run_until(&mut sim, SimTime::from_secs_f64(7200.0), |sim| {
        harness::all_done(sim, &job)
    });
    let st = reliability::stats(&mut sim, vc_id);
    assert!(
        ok,
        "job should survive the crash via restore; stats {st:?}, failure {:?}",
        harness::first_failure(&sim, &job)
    );
    assert!(st.checkpoints_ok >= 1, "stats {st:?}");
    assert!(st.restores >= 1, "stats {st:?}");
    assert!(!st.lost);
    for r in 0..job.size {
        assert!(ring::ring_ok(&harness::rank(&sim, &job, r).data));
    }
}

/// The paper's Figure-2 consistency argument, at the application level: a
/// checkpoint taken at an adversarial instant (mid-lap, payloads in flight)
/// preserves exactly-once data delivery — validated by the ring checksums.
#[test]
fn adversarial_instant_checkpoints_keep_exactly_once_semantics() {
    for offset_ms in [0u64, 37, 71, 113] {
        let mut sim = world(6, 3000 + offset_ms);
        let (vc_id, job) = vc_with_ring(&mut sim, 6, 900);
        let at = sim.now() + SimDuration::from_secs(60) + SimDuration::from_millis(offset_ms);
        sim.schedule_at(at, move |sim| {
            lsc::checkpoint_vc(sim, vc_id, LscMethod::ntp_default(), stash_outcome);
        });
        let ok = run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
            harness::all_done(sim, &job) || harness::first_failure(sim, &job).is_some()
        });
        assert!(ok && harness::first_failure(&sim, &job).is_none());
        for r in 0..job.size {
            let d = &harness::rank(&sim, &job, r).data;
            assert_eq!(d.u64("ring.errors"), 0, "offset {offset_ms}: rank {r}");
        }
        assert!(outcomes(&sim)[0].success);
    }
}

/// The clock-free hardened coordinator (the degraded mode used when NTP is
/// lost) checkpoints a running job, and its arm/ack abort guard waits out a
/// control-plane partition: the first attempt(s) abort with *nothing
/// paused* — the job never notices — and a later attempt commits.
#[test]
fn hardened_naive_survives_control_partition_via_abort_and_rearm() {
    let mut sim = world(6, 4001);
    let (vc_id, job) = vc_with_ring(&mut sim, 6, 900);
    let at = sim.now() + SimDuration::from_secs(60);
    // Partition one member's control path exactly when the checkpoint
    // starts, lasting past the first arm window.
    sim.world.faults.window(
        "control.partition",
        Some(2),
        at,
        at + SimDuration::from_secs(8),
        1.0,
    );
    sim.schedule_at(at, move |sim| {
        lsc::checkpoint_vc(
            sim,
            vc_id,
            LscMethod::hardened_naive_default(),
            stash_outcome,
        );
    });
    let ok = run_until(&mut sim, SimTime::from_secs_f64(3600.0), |sim| {
        !outcomes(sim).is_empty()
            && (harness::all_done(sim, &job) || harness::first_failure(sim, &job).is_some())
    });
    assert!(ok, "job never finished");
    assert!(
        harness::first_failure(&sim, &job).is_none(),
        "job failed: {:?}",
        harness::first_failure(&sim, &job)
    );
    let out = &outcomes(&sim)[0];
    assert!(out.success, "checkpoint failed: {}", out.detail);
    assert_eq!(out.method, "hardened-naive");
    assert!(
        out.attempts >= 2,
        "partition should abort at least the first attempt: {out:?}"
    );
    // Clock-free GO keeps skew inside the TCP silence budget (~3 s).
    assert!(
        out.pause_skew < SimDuration::from_secs_f64(3.0),
        "pause skew {}",
        out.pause_skew
    );
    for r in 0..job.size {
        assert!(ring::ring_ok(&harness::rank(&sim, &job, r).data));
    }
}
