//! A minimal UDP service.
//!
//! Used by the NTP daemons and other control-plane traffic. The stack is a
//! plain `Clone`-able value (so it checkpoints with a guest): bound ports
//! with bounded receive queues, plus an output list the host glue drains
//! into the fabric.

use crate::addr::Addr;
use crate::packet::{Packet, UdpDatagram, L4};
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};

/// A received datagram as seen by the application.
#[derive(Clone, Debug)]
pub struct UdpRecv {
    pub src: Addr,
    pub src_port: u16,
    pub payload: Bytes,
}

/// Per-port receive queue bound (datagrams); beyond this, drops (like a full
/// socket buffer).
pub const UDP_QUEUE_LIMIT: usize = 256;

/// A per-host (or per-guest) UDP endpoint table.
#[derive(Clone, Debug)]
pub struct UdpStack {
    local_addr: Addr,
    queues: HashMap<u16, VecDeque<UdpRecv>>,
    /// Packets awaiting transmission by the host glue.
    pub out: Vec<Packet>,
    pub dropped_unbound: u64,
    pub dropped_full: u64,
}

impl UdpStack {
    pub fn new(local_addr: Addr) -> Self {
        UdpStack {
            local_addr,
            queues: HashMap::new(),
            out: Vec::new(),
            dropped_unbound: 0,
            dropped_full: 0,
        }
    }

    pub fn local_addr(&self) -> Addr {
        self.local_addr
    }

    /// Change the local address (used when re-homing is required; guests
    /// normally never do this — their virtual address is stable).
    pub fn set_local_addr(&mut self, addr: Addr) {
        self.local_addr = addr;
    }

    /// Bind a port. Re-binding an already-bound port is an error.
    pub fn bind(&mut self, port: u16) -> Result<(), &'static str> {
        if self.queues.contains_key(&port) {
            return Err("port already bound");
        }
        self.queues.insert(port, VecDeque::new());
        Ok(())
    }

    pub fn unbind(&mut self, port: u16) {
        self.queues.remove(&port);
    }

    pub fn is_bound(&self, port: u16) -> bool {
        self.queues.contains_key(&port)
    }

    /// Queue a datagram for transmission (drained by the host glue).
    pub fn send_to(&mut self, src_port: u16, dst: Addr, dst_port: u16, payload: Bytes) {
        self.out.push(Packet {
            src: self.local_addr,
            dst,
            l4: L4::Udp(UdpDatagram {
                src_port,
                dst_port,
                payload,
            }),
        });
    }

    /// Handle an inbound datagram from the fabric. Returns `true` if queued
    /// (so the glue knows to poll listeners).
    pub fn on_datagram(&mut self, src: Addr, dgram: UdpDatagram) -> bool {
        match self.queues.get_mut(&dgram.dst_port) {
            None => {
                self.dropped_unbound += 1;
                false
            }
            Some(q) => {
                if q.len() >= UDP_QUEUE_LIMIT {
                    self.dropped_full += 1;
                    return false;
                }
                q.push_back(UdpRecv {
                    src,
                    src_port: dgram.src_port,
                    payload: dgram.payload,
                });
                true
            }
        }
    }

    /// Pop the next datagram queued on `port`.
    pub fn recv_from(&mut self, port: u16) -> Option<UdpRecv> {
        self.queues.get_mut(&port)?.pop_front()
    }

    /// Number of datagrams queued on `port`.
    pub fn pending(&self, port: u16) -> usize {
        self.queues.get(&port).map_or(0, |q| q.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;

    fn dg(port: u16, body: &'static [u8]) -> UdpDatagram {
        UdpDatagram {
            src_port: 9,
            dst_port: port,
            payload: Bytes::from_static(body),
        }
    }

    #[test]
    fn bind_recv_roundtrip() {
        let mut s = UdpStack::new(PhysAddr(1).into());
        s.bind(123).unwrap();
        assert!(s.on_datagram(PhysAddr(2).into(), dg(123, b"hi")));
        let r = s.recv_from(123).unwrap();
        assert_eq!(&r.payload[..], b"hi");
        assert_eq!(r.src, Addr::Phys(PhysAddr(2)));
        assert_eq!(r.src_port, 9);
        assert!(s.recv_from(123).is_none());
    }

    #[test]
    fn unbound_port_drops() {
        let mut s = UdpStack::new(PhysAddr(1).into());
        assert!(!s.on_datagram(PhysAddr(2).into(), dg(5, b"x")));
        assert_eq!(s.dropped_unbound, 1);
    }

    #[test]
    fn double_bind_rejected() {
        let mut s = UdpStack::new(PhysAddr(1).into());
        s.bind(1).unwrap();
        assert!(s.bind(1).is_err());
        s.unbind(1);
        assert!(s.bind(1).is_ok());
    }

    #[test]
    fn queue_limit_enforced() {
        let mut s = UdpStack::new(PhysAddr(1).into());
        s.bind(7).unwrap();
        for _ in 0..UDP_QUEUE_LIMIT + 5 {
            s.on_datagram(PhysAddr(2).into(), dg(7, b"x"));
        }
        assert_eq!(s.pending(7), UDP_QUEUE_LIMIT);
        assert_eq!(s.dropped_full, 5);
    }

    #[test]
    fn send_to_stamps_source() {
        let mut s = UdpStack::new(PhysAddr(4).into());
        s.send_to(10, PhysAddr(5).into(), 11, Bytes::from_static(b"z"));
        assert_eq!(s.out.len(), 1);
        assert_eq!(s.out[0].src, Addr::Phys(PhysAddr(4)));
        assert_eq!(s.out[0].dst, Addr::Phys(PhysAddr(5)));
    }
}
