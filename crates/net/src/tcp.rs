//! A TCP implementation.
//!
//! This is the reliability mechanism the paper's Lazy Synchronous
//! Checkpointing argument rests on, so it is implemented for real rather
//! than abstracted:
//!
//! * three-way handshake (active + passive open) with SYN retry budget;
//! * sliding-window data transfer with cumulative ACKs and out-of-order
//!   reassembly;
//! * RFC 6298 RTO estimation (SRTT/RTTVAR, clamped min/max) with Karn's
//!   algorithm, exponential backoff, and a **finite retry budget**: after
//!   `max_data_retries` consecutive unanswered retransmissions the
//!   connection aborts with a RESET — the "network timeout … causes the
//!   application to crash" failure mode of the paper;
//! * fast retransmit on three duplicate ACKs;
//! * flow control by advertised window, with bounded zero-window probing;
//! * slow-start / AIMD congestion control (can be disabled per stack);
//! * orderly FIN teardown with TIME-WAIT, and RST handling throughout.
//!
//! **Design for checkpointing.** The stack is a plain `Clone` value and all
//! timer deadlines are *node-local wall-clock* nanoseconds stored inside the
//! sockets. A whole-guest snapshot therefore automatically captures every
//! connection mid-flight. On restore the host glue simply asks
//! [`TcpStack::next_deadline`] and re-arms one timer interrupt: deadlines
//! that passed while the guest was suspended (guest time is not virtualized)
//! fire immediately, producing the retransmit burst that repairs the cut.
//!
//! Not modelled (documented simplifications): Nagle, delayed ACK, window
//! scaling (windows are plain u32 byte counts), SACK, simultaneous open.

use crate::addr::Addr;
use crate::bytequeue::ByteQueue;
use crate::packet::{Packet, TcpFlags, TcpSegment, L4};
use bytes::Bytes;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Node-local nanoseconds (see `dvc-time`); the stack never sees true time.
pub type LocalNs = i64;

/// Socket identifier, unique per stack.
pub type SockId = u32;

/// Wrapping sequence-number comparisons.
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) <= 0
}
#[inline]
pub fn seq_gt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}
#[inline]
pub fn seq_ge(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) >= 0
}

/// Stack configuration.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes).
    pub mss: usize,
    /// Send buffer capacity per socket, bytes.
    pub send_buf: usize,
    /// Receive buffer capacity per socket, bytes.
    pub recv_buf: usize,
    /// Initial RTO before any RTT sample, ns.
    pub rto_initial_ns: i64,
    /// RTO clamp floor, ns (Linux: 200 ms).
    pub rto_min_ns: i64,
    /// RTO clamp ceiling, ns.
    pub rto_max_ns: i64,
    /// Consecutive unanswered data retransmissions before the connection
    /// aborts (paper calibration: HPC-tuned guests use a small budget; see
    /// DESIGN.md §2).
    pub max_data_retries: u32,
    /// SYN retransmissions before an active open fails.
    pub max_syn_retries: u32,
    /// Duplicate ACKs that trigger fast retransmit.
    pub dupack_threshold: u32,
    /// Enable slow start + AIMD. When off, cwnd is unbounded and only the
    /// peer window limits flight (useful for deterministic tests).
    pub congestion_control: bool,
    /// TIME-WAIT linger, ns (real stacks: 2·MSL; shortened for simulation).
    pub time_wait_ns: i64,
    /// Keepalive: probe an idle established connection after this much
    /// silence (None disables — the default, like most sockets).
    pub keepalive_idle_ns: Option<i64>,
    /// Interval between keepalive probes, ns.
    pub keepalive_interval_ns: i64,
    /// Unanswered keepalive probes before the connection aborts.
    pub keepalive_retries: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            send_buf: 256 * 1024,
            recv_buf: 256 * 1024,
            rto_initial_ns: 1_000_000_000,
            rto_min_ns: 200_000_000,
            rto_max_ns: 60_000_000_000,
            max_data_retries: 5,
            max_syn_retries: 5,
            dupack_threshold: 3,
            congestion_control: true,
            time_wait_ns: 1_000_000_000,
            keepalive_idle_ns: None,
            keepalive_interval_ns: 5_000_000_000,
            keepalive_retries: 3,
        }
    }
}

/// Connection states (RFC 793 subset; no simultaneous open).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpState {
    Listen,
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    Closing,
    TimeWait,
    Closed,
}

/// Why a socket died.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpError {
    /// Peer sent RST.
    Reset,
    /// Local retry budget exhausted (the LSC-relevant failure).
    RetryTimeout,
    /// Active open exhausted SYN retries.
    ConnectTimeout,
    /// Local abort.
    Aborted,
}

/// Events surfaced to the application layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SockEvent {
    /// Active open completed.
    Connected,
    /// A listener produced a new established connection.
    Incoming(SockId),
    /// Bytes are available to read.
    Readable,
    /// Send-buffer space opened after back-pressure.
    Writable,
    /// Peer closed its direction (EOF after draining).
    PeerClosed,
    /// Connection failed; no further I/O possible.
    Failed(TcpError),
    /// Teardown fully completed.
    Closed,
}

/// Stack outputs drained by the host glue after every entry-point call.
#[derive(Clone, Debug)]
pub enum StackOutput {
    Packet(Packet),
    Event(SockId, SockEvent),
}

/// A transport anomaly noted by the stack for the host layer to surface on
/// the typed observability spine (see `dvc-sim-core`'s `Event::Tcp`). The
/// stack itself is host-agnostic and clock-driven, so it cannot emit events
/// directly; it appends notes to a small bounded buffer that the glue
/// drains with [`TcpStack::take_notes`] after every entry-point call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpNote {
    Retransmit,
    FastRetransmit,
    /// A retransmission timer expired (one RTO backoff round).
    RtoFired,
    ZeroWindowProbe,
    KeepaliveProbe,
    ConnAborted,
}

/// Bound on buffered [`TcpNote`]s between drains. Anomalies are rare (loss,
/// probes, aborts — never per-segment), so hosts that drain after every
/// call never come close; stacks driven without a draining host (unit
/// tests) simply stop noting at the cap instead of growing without bound.
const NOTES_CAP: usize = 256;

#[inline]
fn push_note(notes: &mut Vec<TcpNote>, n: TcpNote) {
    if notes.len() < NOTES_CAP {
        notes.push(n);
    }
}

/// Aggregate stack counters.
#[derive(Clone, Copy, Default, Debug)]
pub struct TcpCounters {
    pub segs_sent: u64,
    pub segs_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub retransmits: u64,
    pub fast_retransmits: u64,
    pub timeouts: u64,
    pub resets_sent: u64,
    pub resets_received: u64,
    pub conns_aborted: u64,
    pub dup_segments: u64,
    pub zero_window_probes: u64,
    pub keepalive_probes: u64,
}

type ConnKey = (u16, Addr, u16); // (local port, remote addr, remote port)

#[derive(Clone, Debug)]
struct Socket {
    state: TcpState,
    local_port: u16,
    remote: Option<(Addr, u16)>,

    // ---- sender ----
    /// Oldest unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// Highest sequence number ever sent (BSD `snd_max`). `snd_nxt` can be
    /// pulled back below this on a go-back-N timeout; ACK validity must be
    /// judged against the high-water mark, not the pulled-back pointer.
    snd_max: u32,
    /// Peer-advertised window.
    snd_wnd: u32,
    /// Bytes queued (front of queue corresponds to `snd_una`). Stored as a
    /// chain of shared chunks so segmentation and retransmission are
    /// zero-copy windows into the application's writes.
    send_q: ByteQueue,
    /// App requested close: FIN goes out after the queue drains.
    fin_queued: bool,
    /// Sequence number the FIN occupies once sent.
    fin_seq: Option<u32>,
    /// App tried to send into a full buffer; emit Writable when space opens.
    want_write: bool,

    // ---- congestion ----
    cwnd: f64,
    ssthresh: f64,

    // ---- retransmission ----
    srtt_ns: Option<f64>,
    rttvar_ns: f64,
    rto_ns: i64,
    /// Consecutive expiries for the current `snd_una`.
    retries: u32,
    rtx_deadline: Option<LocalNs>,
    /// Karn: one timed in-flight range (end_seq, sent_at), never a rtx.
    rtt_probe: Option<(u32, LocalNs)>,
    dup_acks: u32,
    /// Persist-probe mode (peer window is zero).
    probing: bool,

    // ---- receiver ----
    rcv_nxt: u32,
    /// Out-of-order segments keyed by start seq.
    ooo: BTreeMap<u32, Bytes>,
    /// In-order bytes ready for the application. Arriving payload `Bytes`
    /// are chained here without copying; the application drains via
    /// [`TcpStack::recv_bytes`] (zero-copy) or [`TcpStack::recv_into`].
    recv_q: ByteQueue,
    /// We saw the peer's FIN (already consumed into rcv_nxt).
    peer_fin: bool,
    /// Window was advertised as zero; send an update when it reopens.
    wnd_was_closed: bool,

    time_wait_deadline: Option<LocalNs>,
    /// Keepalive bookkeeping (active only when the stack enables it).
    last_activity: LocalNs,
    ka_deadline: Option<LocalNs>,
    ka_probes: u32,
    error: Option<TcpError>,
}

impl Socket {
    fn new(local_port: u16) -> Self {
        Socket {
            state: TcpState::Closed,
            local_port,
            remote: None,
            snd_una: 0,
            snd_nxt: 0,
            snd_max: 0,
            snd_wnd: 0,
            send_q: ByteQueue::new(),
            fin_queued: false,
            fin_seq: None,
            want_write: false,
            cwnd: 0.0,
            ssthresh: f64::INFINITY,
            srtt_ns: None,
            rttvar_ns: 0.0,
            rto_ns: 0,
            retries: 0,
            rtx_deadline: None,
            rtt_probe: None,
            dup_acks: 0,
            probing: false,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            recv_q: ByteQueue::new(),
            peer_fin: false,
            wnd_was_closed: false,
            time_wait_deadline: None,
            last_activity: 0,
            ka_deadline: None,
            ka_probes: 0,
            error: None,
        }
    }

    /// Bytes in flight (sent, not yet acked), excluding SYN/FIN bookkeeping.
    fn flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    fn ooo_bytes(&self) -> usize {
        self.ooo.values().map(|b| b.len()).sum()
    }
}

/// A per-host (or per-guest) TCP stack.
#[derive(Clone, Debug)]
pub struct TcpStack {
    cfg: TcpConfig,
    local_addr: Addr,
    sockets: HashMap<SockId, Socket>,
    listeners: HashMap<u16, SockId>,
    /// Established-but-unaccepted connections per listener.
    accept_q: HashMap<SockId, VecDeque<SockId>>,
    conns: HashMap<ConnKey, SockId>,
    next_sock: SockId,
    next_ephemeral: u16,
    isn: u32,
    /// Outputs pending drain by the host glue.
    pub out: Vec<StackOutput>,
    pub counters: TcpCounters,
    /// Transport anomalies pending drain (see [`TcpNote`]).
    notes: Vec<TcpNote>,
}

impl TcpStack {
    pub fn new(local_addr: Addr, cfg: TcpConfig) -> Self {
        TcpStack {
            cfg,
            local_addr,
            sockets: HashMap::new(),
            listeners: HashMap::new(),
            accept_q: HashMap::new(),
            conns: HashMap::new(),
            next_sock: 1,
            next_ephemeral: 40_000,
            isn: 10_000,
            out: Vec::new(),
            counters: TcpCounters::default(),
            notes: Vec::new(),
        }
    }

    /// True when transport anomalies are waiting to be drained.
    pub fn has_notes(&self) -> bool {
        !self.notes.is_empty()
    }

    /// Drain the pending [`TcpNote`]s (host glue calls this after every
    /// entry point and surfaces them as typed events).
    pub fn take_notes(&mut self) -> Vec<TcpNote> {
        std::mem::take(&mut self.notes)
    }

    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    pub fn local_addr(&self) -> Addr {
        self.local_addr
    }

    pub fn state(&self, sock: SockId) -> Option<TcpState> {
        self.sockets.get(&sock).map(|s| s.state)
    }

    pub fn error(&self, sock: SockId) -> Option<TcpError> {
        self.sockets.get(&sock).and_then(|s| s.error)
    }

    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    /// Debug/diagnostic view of a socket's sequence state:
    /// (snd_una, snd_nxt, send_q, rcv_nxt, recv_q, ooo segments).
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn debug_seq_state(
        &self,
        sock: SockId,
    ) -> Option<(u32, u32, usize, u32, usize, Vec<(u32, usize)>)> {
        let s = self.sockets.get(&sock)?;
        Some((
            s.snd_una,
            s.snd_nxt,
            s.send_q.len(),
            s.rcv_nxt,
            s.recv_q.len(),
            s.ooo.iter().map(|(k, v)| (*k, v.len())).collect(),
        ))
    }

    fn alloc_sock(&mut self, s: Socket) -> SockId {
        let id = self.next_sock;
        self.next_sock += 1;
        self.sockets.insert(id, s);
        id
    }

    fn next_isn(&mut self) -> u32 {
        self.isn = self.isn.wrapping_add(64_123);
        self.isn
    }

    fn alloc_ephemeral(&mut self) -> u16 {
        // Linear probe over the ephemeral range; stacks never hold 25k ports.
        for _ in 0..25_000 {
            let p = self.next_ephemeral;
            self.next_ephemeral = if p >= 65_000 { 40_000 } else { p + 1 };
            let in_use = self.listeners.contains_key(&p) || self.conns.keys().any(|k| k.0 == p);
            if !in_use {
                return p;
            }
        }
        panic!("ephemeral port space exhausted");
    }

    // ------------------------------------------------------------------
    // Application API
    // ------------------------------------------------------------------

    /// Open a listener on `port`.
    pub fn listen(&mut self, port: u16) -> Result<SockId, &'static str> {
        if self.listeners.contains_key(&port) {
            return Err("port already listening");
        }
        let mut s = Socket::new(port);
        s.state = TcpState::Listen;
        let id = self.alloc_sock(s);
        self.listeners.insert(port, id);
        Ok(id)
    }

    /// Pop the next established connection waiting on a listener.
    pub fn accept(&mut self, listener: SockId) -> Option<SockId> {
        loop {
            let sock = self.accept_q.get_mut(&listener)?.pop_front()?;
            // Skip connections that died before the app accepted them.
            if self.sockets.contains_key(&sock) {
                return Some(sock);
            }
        }
    }

    /// The remote endpoint of a connected socket.
    pub fn peer_of(&self, sock: SockId) -> Option<(Addr, u16)> {
        self.sockets.get(&sock).and_then(|s| s.remote)
    }

    /// Begin an active open to `remote`. Returns the socket immediately;
    /// `Connected` (or `Failed`) arrives as an event.
    pub fn connect(&mut self, now: LocalNs, remote: Addr, remote_port: u16) -> SockId {
        let port = self.alloc_ephemeral();
        let isn = self.next_isn();
        let mut s = Socket::new(port);
        s.state = TcpState::SynSent;
        s.remote = Some((remote, remote_port));
        s.snd_una = isn;
        s.snd_nxt = isn.wrapping_add(1);
        s.snd_max = s.snd_nxt;
        s.cwnd = self.cfg.mss as f64 * 10.0; // IW10
        s.rto_ns = self.cfg.rto_initial_ns;
        s.rtx_deadline = Some(now + s.rto_ns);
        let id = self.alloc_sock(s);
        self.conns.insert((port, remote, remote_port), id);
        self.emit_segment(id, isn, TcpFlags::SYN, Bytes::new());
        id
    }

    /// Queue bytes for transmission. Returns how many were accepted
    /// (bounded by send-buffer space); `Writable` fires when space reopens.
    ///
    /// This copies once, from `data` into the send queue; callers that
    /// already own a [`Bytes`] should use [`TcpStack::send_bytes`], after
    /// which the payload is never copied again on its way to the wire.
    pub fn send(&mut self, now: LocalNs, sock: SockId, data: &[u8]) -> usize {
        let Some(s) = self.sockets.get_mut(&sock) else {
            return 0;
        };
        if !matches!(s.state, TcpState::Established | TcpState::CloseWait) || s.fin_queued {
            return 0;
        }
        let space = self.cfg.send_buf.saturating_sub(s.send_q.len());
        let take = space.min(data.len());
        s.send_q.extend_from_slice(&data[..take]);
        if take < data.len() {
            s.want_write = true;
        }
        self.pump(now, sock);
        take
    }

    /// Queue an owned chunk for transmission without copying: the chunk (or
    /// the prefix that fits the send buffer) is chained into the send queue,
    /// and segmentation/retransmission emit windows into it. Returns how
    /// many bytes were accepted; `Writable` fires when space reopens.
    pub fn send_bytes(&mut self, now: LocalNs, sock: SockId, data: Bytes) -> usize {
        let Some(s) = self.sockets.get_mut(&sock) else {
            return 0;
        };
        if !matches!(s.state, TcpState::Established | TcpState::CloseWait) || s.fin_queued {
            return 0;
        }
        let space = self.cfg.send_buf.saturating_sub(s.send_q.len());
        let take = space.min(data.len());
        if take < data.len() {
            s.send_q.push_bytes(data.slice(..take));
            s.want_write = true;
        } else {
            s.send_q.push_bytes(data);
        }
        self.pump(now, sock);
        take
    }

    /// Free send-buffer space on `sock`.
    pub fn send_capacity(&self, sock: SockId) -> usize {
        self.sockets
            .get(&sock)
            .map_or(0, |s| self.cfg.send_buf.saturating_sub(s.send_q.len()))
    }

    /// Read up to `max` ready bytes. One copy (queue → fresh `Vec`);
    /// [`TcpStack::recv_into`] reuses a caller buffer and
    /// [`TcpStack::recv_bytes`] avoids the copy entirely.
    pub fn recv(&mut self, now: LocalNs, sock: SockId, max: usize) -> Vec<u8> {
        let mut data = Vec::new();
        self.recv_into(now, sock, &mut data, max);
        data
    }

    /// Read up to `max` ready bytes, appending them to `out` (no
    /// intermediate allocation — this is the framing-layer workhorse).
    /// Returns the number of bytes appended.
    pub fn recv_into(
        &mut self,
        now: LocalNs,
        sock: SockId,
        out: &mut Vec<u8>,
        max: usize,
    ) -> usize {
        let Some(s) = self.sockets.get_mut(&sock) else {
            return 0;
        };
        let n = s.recv_q.pop_into(out, max);
        self.after_recv(now, sock, n);
        n
    }

    /// Read up to `max` ready bytes as one shared chunk, copy-free when the
    /// front of the queue is a whole arrived segment.
    pub fn recv_bytes(&mut self, now: LocalNs, sock: SockId, max: usize) -> Bytes {
        let Some(s) = self.sockets.get_mut(&sock) else {
            return Bytes::new();
        };
        let data = s.recv_q.pop_bytes(max);
        self.after_recv(now, sock, data.len());
        data
    }

    /// Post-drain bookkeeping shared by the `recv*` family: if our
    /// advertised window had collapsed to zero, reopen it actively.
    fn after_recv(&mut self, now: LocalNs, sock: SockId, n: usize) {
        let _ = now;
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        if s.wnd_was_closed && n > 0 {
            s.wnd_was_closed = false;
            if s.remote.is_some() {
                let seq = s.snd_nxt;
                self.emit_segment(sock, seq, TcpFlags::ACK, Bytes::new());
            }
        }
    }

    /// Bytes ready to read without blocking.
    pub fn readable_bytes(&self, sock: SockId) -> usize {
        self.sockets.get(&sock).map_or(0, |s| s.recv_q.len())
    }

    /// True once the peer has closed and all its bytes are consumed.
    pub fn at_eof(&self, sock: SockId) -> bool {
        self.sockets
            .get(&sock)
            .is_some_and(|s| s.peer_fin && s.recv_q.is_empty())
    }

    /// Orderly close: FIN after pending data drains.
    pub fn close(&mut self, now: LocalNs, sock: SockId) {
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        match s.state {
            TcpState::Listen => {
                let port = s.local_port;
                self.listeners.remove(&port);
                self.destroy(sock);
            }
            TcpState::SynSent => {
                self.destroy(sock);
            }
            TcpState::Established | TcpState::SynReceived => {
                s.fin_queued = true;
                s.state = TcpState::FinWait1;
                self.pump(now, sock);
            }
            TcpState::CloseWait => {
                s.fin_queued = true;
                s.state = TcpState::LastAck;
                self.pump(now, sock);
            }
            _ => {}
        }
    }

    /// Abortive close: RST to the peer, socket destroyed.
    pub fn abort(&mut self, now: LocalNs, sock: SockId) {
        let _ = now;
        let Some(s) = self.sockets.get(&sock) else {
            return;
        };
        if let Some((raddr, rport)) = s.remote {
            if !matches!(s.state, TcpState::Closed | TcpState::Listen) {
                let seq = s.snd_nxt;
                self.send_rst_to(raddr, s.local_port, rport, seq, 0, false);
            }
        }
        self.destroy(sock);
    }

    /// Drop all bookkeeping for a socket (app acknowledges Closed/Failed).
    pub fn release(&mut self, sock: SockId) {
        self.destroy(sock);
    }

    fn destroy(&mut self, sock: SockId) {
        if let Some(s) = self.sockets.remove(&sock) {
            if let Some((raddr, rport)) = s.remote {
                self.conns.remove(&(s.local_port, raddr, rport));
            }
            if s.state == TcpState::Listen {
                self.listeners.remove(&s.local_port);
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Earliest pending deadline across all sockets, if any. The host glue
    /// keeps exactly one interrupt armed at this instant.
    pub fn next_deadline(&self) -> Option<LocalNs> {
        self.sockets
            .values()
            .flat_map(|s| {
                s.rtx_deadline
                    .into_iter()
                    .chain(s.time_wait_deadline)
                    .chain(s.ka_deadline)
            })
            .min()
    }

    /// Fire all deadlines ≤ `now`.
    pub fn on_timer(&mut self, now: LocalNs) {
        let mut ids: Vec<SockId> = self.sockets.keys().copied().collect();
        // HashMap order must never leak into event ordering — determinism.
        ids.sort_unstable();
        for id in ids {
            let Some(s) = self.sockets.get(&id) else {
                continue;
            };
            if let Some(d) = s.time_wait_deadline {
                if d <= now {
                    self.push_event(id, SockEvent::Closed);
                    self.destroy(id);
                    continue;
                }
            }
            let Some(s) = self.sockets.get(&id) else {
                continue;
            };
            if let Some(d) = s.rtx_deadline {
                if d <= now {
                    self.on_rtx_expiry(now, id);
                }
            }
            let Some(s) = self.sockets.get(&id) else {
                continue;
            };
            if let Some(d) = s.ka_deadline {
                if d <= now {
                    self.on_keepalive_expiry(now, id);
                }
            }
        }
    }

    /// Keepalive fired: probe (seq = snd_una − 1 elicits a bare ACK) or give
    /// up after the configured probe budget.
    fn on_keepalive_expiry(&mut self, now: LocalNs, sock: SockId) {
        let cfg = self.cfg;
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        if !matches!(s.state, TcpState::Established | TcpState::CloseWait) {
            s.ka_deadline = None;
            return;
        }
        if s.ka_probes >= cfg.keepalive_retries {
            s.ka_deadline = None;
            self.abort_with(now, sock, TcpError::RetryTimeout);
            return;
        }
        s.ka_probes += 1;
        s.ka_deadline = Some(now + cfg.keepalive_interval_ns);
        let seq = s.snd_una.wrapping_sub(1);
        self.counters.keepalive_probes += 1;
        push_note(&mut self.notes, TcpNote::KeepaliveProbe);
        self.emit_segment(sock, seq, TcpFlags::ACK, Bytes::new());
    }

    fn on_rtx_expiry(&mut self, now: LocalNs, sock: SockId) {
        self.counters.timeouts += 1;
        push_note(&mut self.notes, TcpNote::RtoFired);
        let cfg = self.cfg;
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        match s.state {
            TcpState::SynSent => {
                if s.retries >= cfg.max_syn_retries {
                    s.error = Some(TcpError::ConnectTimeout);
                    self.counters.conns_aborted += 1;
                    push_note(&mut self.notes, TcpNote::ConnAborted);
                    self.push_event(sock, SockEvent::Failed(TcpError::ConnectTimeout));
                    self.destroy(sock);
                    return;
                }
                s.retries += 1;
                s.rto_ns = (s.rto_ns * 2).min(cfg.rto_max_ns);
                s.rtx_deadline = Some(now + s.rto_ns);
                let isn = s.snd_una;
                self.counters.retransmits += 1;
                push_note(&mut self.notes, TcpNote::Retransmit);
                self.emit_segment(sock, isn, TcpFlags::SYN, Bytes::new());
            }
            TcpState::SynReceived => {
                if s.retries >= cfg.max_syn_retries {
                    self.abort_with(now, sock, TcpError::RetryTimeout);
                    return;
                }
                s.retries += 1;
                s.rto_ns = (s.rto_ns * 2).min(cfg.rto_max_ns);
                s.rtx_deadline = Some(now + s.rto_ns);
                let isn = s.snd_una;
                self.counters.retransmits += 1;
                push_note(&mut self.notes, TcpNote::Retransmit);
                self.emit_segment(sock, isn, TcpFlags::SYN_ACK, Bytes::new());
            }
            TcpState::Established
            | TcpState::FinWait1
            | TcpState::Closing
            | TcpState::CloseWait
            | TcpState::LastAck => {
                if s.retries >= cfg.max_data_retries {
                    // The LSC failure mode: a peer stayed silent (e.g. paused
                    // in a skewed checkpoint) past the retry budget.
                    self.abort_with(now, sock, TcpError::RetryTimeout);
                    return;
                }
                s.retries += 1;
                s.rto_ns = (s.rto_ns * 2).min(cfg.rto_max_ns);
                s.rtx_deadline = Some(now + s.rto_ns);
                // Karn: never time a retransmitted range.
                s.rtt_probe = None;
                if cfg.congestion_control {
                    s.ssthresh = (s.flight() as f64 / 2.0).max(2.0 * cfg.mss as f64);
                    s.cwnd = cfg.mss as f64;
                }
                if s.probing {
                    self.counters.zero_window_probes += 1;
                    push_note(&mut self.notes, TcpNote::ZeroWindowProbe);
                    self.send_window_probe(sock);
                } else {
                    // Go-back-N (classic BSD): everything beyond the head may
                    // be gone (e.g. dropped at a paused guest's vif), so pull
                    // snd_nxt back to the retransmitted head. Leaving it
                    // forward strands the lost range as phantom flight that
                    // caps the post-timeout window at zero: each RTO then
                    // resets cwnd and moves one MSS per backed-off timeout —
                    // a livelock. Pulled back, the returning ACK reopens the
                    // window and the ACK clock re-sends the range as fresh
                    // data (receivers trim the duplicate overlap).
                    if !s.send_q.is_empty() {
                        let head = s.send_q.len().min(cfg.mss) as u32;
                        s.snd_nxt = s.snd_una.wrapping_add(head);
                    }
                    self.counters.retransmits += 1;
                    push_note(&mut self.notes, TcpNote::Retransmit);
                    self.retransmit_head(sock);
                }
            }
            _ => {
                // Spurious deadline in a state with nothing to do.
                s.rtx_deadline = None;
            }
        }
    }

    /// Arm (or re-arm) the keepalive timer for an established socket.
    fn arm_keepalive(&mut self, sock: SockId, now: LocalNs) {
        let Some(idle) = self.cfg.keepalive_idle_ns else {
            return;
        };
        if let Some(s) = self.sockets.get_mut(&sock) {
            if matches!(s.state, TcpState::Established | TcpState::CloseWait) {
                s.last_activity = now;
                s.ka_probes = 0;
                s.ka_deadline = Some(now + idle);
            }
        }
    }

    fn abort_with(&mut self, _now: LocalNs, sock: SockId, err: TcpError) {
        self.counters.conns_aborted += 1;
        push_note(&mut self.notes, TcpNote::ConnAborted);
        if let Some(s) = self.sockets.get_mut(&sock) {
            s.error = Some(err);
            s.state = TcpState::Closed;
            s.rtx_deadline = None;
            if let Some((raddr, rport)) = s.remote {
                let (seq, lport) = (s.snd_nxt, s.local_port);
                self.send_rst_to(raddr, lport, rport, seq, 0, false);
            }
        }
        self.push_event(sock, SockEvent::Failed(err));
        // Keep the socket around (Closed, with error) until the app releases
        // it, so the app can observe the error.
        if let Some(s) = self.sockets.get(&sock) {
            if let Some((raddr, rport)) = s.remote {
                self.conns.remove(&(s.local_port, raddr, rport));
            }
        }
    }

    // ------------------------------------------------------------------
    // Segment transmission helpers
    // ------------------------------------------------------------------

    fn adv_wnd(&self, s: &Socket) -> u32 {
        (self
            .cfg
            .recv_buf
            .saturating_sub(s.recv_q.len() + s.ooo_bytes())) as u32
    }

    fn emit_segment(&mut self, sock: SockId, seq: u32, flags: TcpFlags, payload: Bytes) {
        let Some(s) = self.sockets.get(&sock) else {
            return;
        };
        let Some((raddr, rport)) = s.remote else {
            return;
        };
        let wnd = self.adv_wnd(s);
        let seg = TcpSegment {
            src_port: s.local_port,
            dst_port: rport,
            seq,
            ack: s.rcv_nxt,
            flags,
            wnd,
            payload,
        };
        self.counters.segs_sent += 1;
        self.counters.bytes_sent += seg.payload.len() as u64;
        self.out.push(StackOutput::Packet(Packet {
            src: self.local_addr,
            dst: raddr,
            l4: L4::Tcp(seg),
        }));
    }

    fn send_rst_to(
        &mut self,
        dst: Addr,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        with_ack: bool,
    ) {
        self.counters.resets_sent += 1;
        self.counters.segs_sent += 1;
        let flags = TcpFlags {
            rst: true,
            ack: with_ack,
            syn: false,
            fin: false,
        };
        self.out.push(StackOutput::Packet(Packet {
            src: self.local_addr,
            dst,
            l4: L4::Tcp(TcpSegment {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                wnd: 0,
                payload: Bytes::new(),
            }),
        }));
    }

    fn push_event(&mut self, sock: SockId, ev: SockEvent) {
        self.out.push(StackOutput::Event(sock, ev));
    }

    /// Send as much queued data as the windows allow; manage FIN emission
    /// and the retransmit timer.
    fn pump(&mut self, now: LocalNs, sock: SockId) {
        let cfg = self.cfg;
        loop {
            let Some(s) = self.sockets.get_mut(&sock) else {
                return;
            };
            if !matches!(
                s.state,
                TcpState::Established
                    | TcpState::CloseWait
                    | TcpState::FinWait1
                    | TcpState::LastAck
                    | TcpState::Closing
            ) {
                return;
            }
            let unsent = s.send_q.len() as u32 - s.flight().min(s.send_q.len() as u32);
            let eff_wnd = if cfg.congestion_control {
                (s.snd_wnd as f64).min(s.cwnd) as u32
            } else {
                s.snd_wnd
            };
            let room = eff_wnd.saturating_sub(s.flight());

            if unsent > 0 && room == 0 && s.snd_wnd == 0 && !s.probing {
                // Peer closed its window: switch to persist probing.
                s.probing = true;
                s.rto_ns = s.rto_ns.max(cfg.rto_min_ns);
                s.rtx_deadline = Some(now + s.rto_ns);
                return;
            }

            if unsent > 0 && room > 0 {
                let take = (unsent.min(room) as usize).min(cfg.mss);
                let offset = s.flight() as usize;
                // Zero-copy segmentation: an MSS-sized window into the queue.
                let chunk = s.send_q.slice(offset, take);
                let seq = s.snd_nxt;
                s.snd_nxt = s.snd_nxt.wrapping_add(take as u32);
                if seq_gt(s.snd_nxt, s.snd_max) {
                    s.snd_max = s.snd_nxt;
                }
                if s.rtt_probe.is_none() {
                    s.rtt_probe = Some((s.snd_nxt, now));
                }
                if s.rtx_deadline.is_none() {
                    s.rto_ns = if s.rto_ns == 0 {
                        cfg.rto_initial_ns
                    } else {
                        s.rto_ns
                    };
                    s.rtx_deadline = Some(now + s.rto_ns);
                }
                self.emit_segment(sock, seq, TcpFlags::ACK, chunk);
                continue;
            }

            // FIN once every byte is out.
            if s.fin_queued && s.fin_seq.is_none() && unsent == 0 {
                let seq = s.snd_nxt;
                s.fin_seq = Some(seq);
                s.snd_nxt = s.snd_nxt.wrapping_add(1);
                if seq_gt(s.snd_nxt, s.snd_max) {
                    s.snd_max = s.snd_nxt;
                }
                if s.rtx_deadline.is_none() {
                    s.rto_ns = if s.rto_ns == 0 {
                        cfg.rto_initial_ns
                    } else {
                        s.rto_ns
                    };
                    s.rtx_deadline = Some(now + s.rto_ns);
                }
                self.emit_segment(sock, seq, TcpFlags::FIN_ACK, Bytes::new());
            }
            return;
        }
    }

    /// Retransmit one MSS (or the FIN) from `snd_una`.
    fn retransmit_head(&mut self, sock: SockId) {
        let cfg = self.cfg;
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        let in_flight_data = s.flight().min(s.send_q.len() as u32);
        if in_flight_data > 0 {
            let take = (in_flight_data as usize).min(cfg.mss);
            // The queue front is `snd_una`: retransmit is a window, no copy.
            let chunk = s.send_q.slice(0, take);
            let seq = s.snd_una;
            self.emit_segment(sock, seq, TcpFlags::ACK, chunk);
        } else if let Some(fseq) = s.fin_seq {
            if seq_ge(fseq, s.snd_una) {
                self.emit_segment(sock, fseq, TcpFlags::FIN_ACK, Bytes::new());
            }
        } else {
            // Nothing outstanding after all (e.g. raced with an ACK).
            s.rtx_deadline = None;
        }
    }

    fn send_window_probe(&mut self, sock: SockId) {
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        if s.flight() == 0 && !s.send_q.is_empty() {
            // First probe: push one byte past the zero window.
            let b = s.send_q.slice(0, 1);
            let seq = s.snd_nxt;
            s.snd_nxt = s.snd_nxt.wrapping_add(1);
            if seq_gt(s.snd_nxt, s.snd_max) {
                s.snd_max = s.snd_nxt;
            }
            self.emit_segment(sock, seq, TcpFlags::ACK, b);
        } else if s.flight() > 0 && !s.send_q.is_empty() {
            // Re-probe with the same in-flight head byte.
            let b = s.send_q.slice(0, 1);
            let seq = s.snd_una;
            self.emit_segment(sock, seq, TcpFlags::ACK, b);
        } else {
            // Nothing to probe with; stop probing.
            s.probing = false;
            s.rtx_deadline = None;
        }
    }

    // ------------------------------------------------------------------
    // Segment reception
    // ------------------------------------------------------------------

    /// Entry point for a segment delivered by the fabric.
    pub fn on_segment(&mut self, now: LocalNs, src: Addr, seg: TcpSegment) {
        self.counters.segs_received += 1;
        let key: ConnKey = (seg.dst_port, src, seg.src_port);
        if let Some(&sock) = self.conns.get(&key) {
            self.on_conn_segment(now, sock, src, seg);
            return;
        }
        // No connection: maybe a listener (SYN), else RST.
        if seg.flags.syn && !seg.flags.ack {
            if let Some(&listener) = self.listeners.get(&seg.dst_port) {
                self.on_passive_open(now, listener, src, seg);
                return;
            }
        }
        if !seg.flags.rst {
            // RFC 793 reset generation for a closed port.
            let (seq, ack, with_ack) = if seg.flags.ack {
                (seg.ack, 0, false)
            } else {
                (0, seg.seq.wrapping_add(seg.seq_len()), true)
            };
            self.send_rst_to(src, seg.dst_port, seg.src_port, seq, ack, with_ack);
        }
    }

    fn on_passive_open(&mut self, now: LocalNs, _listener: SockId, src: Addr, seg: TcpSegment) {
        let isn = self.next_isn();
        let mut s = Socket::new(seg.dst_port);
        s.state = TcpState::SynReceived;
        s.remote = Some((src, seg.src_port));
        s.snd_una = isn;
        s.snd_nxt = isn.wrapping_add(1);
        s.snd_max = s.snd_nxt;
        s.snd_wnd = seg.wnd;
        s.cwnd = self.cfg.mss as f64 * 10.0;
        s.rcv_nxt = seg.seq.wrapping_add(1);
        s.rto_ns = self.cfg.rto_initial_ns;
        s.rtx_deadline = Some(now + s.rto_ns);
        let id = self.alloc_sock(s);
        self.conns.insert((seg.dst_port, src, seg.src_port), id);
        self.emit_segment(id, isn, TcpFlags::SYN_ACK, Bytes::new());
    }

    fn on_conn_segment(&mut self, now: LocalNs, sock: SockId, _src: Addr, seg: TcpSegment) {
        let cfg = self.cfg;
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        // Any inbound traffic proves the peer is alive.
        if cfg.keepalive_idle_ns.is_some() {
            s.last_activity = now;
            s.ka_probes = 0;
            if let Some(idle) = cfg.keepalive_idle_ns {
                if matches!(s.state, TcpState::Established | TcpState::CloseWait) {
                    s.ka_deadline = Some(now + idle);
                }
            }
        }

        // ---- RST ----
        if seg.flags.rst {
            // Acceptable if the seq is in window (we are lenient: any RST
            // for a known connection kills it; sim has no attackers).
            self.counters.resets_received += 1;
            s.error = Some(TcpError::Reset);
            s.state = TcpState::Closed;
            s.rtx_deadline = None;
            s.time_wait_deadline = None;
            let ev = SockEvent::Failed(TcpError::Reset);
            self.counters.conns_aborted += 1;
            push_note(&mut self.notes, TcpNote::ConnAborted);
            if let Some((raddr, rport)) = s.remote {
                let lport = s.local_port;
                self.conns.remove(&(lport, raddr, rport));
            }
            self.push_event(sock, ev);
            return;
        }

        // ---- handshake states ----
        match s.state {
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == s.snd_nxt {
                    s.rcv_nxt = seg.seq.wrapping_add(1);
                    s.snd_wnd = seg.wnd;
                    s.snd_una = seg.ack; // our SYN is acknowledged
                    s.state = TcpState::Established;
                    s.retries = 0;
                    s.rtx_deadline = None;
                    s.rto_ns = cfg.rto_initial_ns;
                    let seq = s.snd_nxt;
                    self.emit_segment(sock, seq, TcpFlags::ACK, Bytes::new());
                    self.push_event(sock, SockEvent::Connected);
                    self.arm_keepalive(sock, now);
                    self.pump(now, sock);
                }
                return;
            }
            TcpState::SynReceived => {
                if seg.flags.ack && seg.ack == s.snd_nxt {
                    s.state = TcpState::Established;
                    s.snd_wnd = seg.wnd;
                    s.snd_una = seg.ack; // our SYN-ACK is acknowledged
                    s.retries = 0;
                    s.rtx_deadline = None;
                    s.rto_ns = cfg.rto_initial_ns;
                    let lport = s.local_port;
                    let listener = self.listeners.get(&lport).copied();
                    if let Some(listener) = listener {
                        self.accept_q.entry(listener).or_default().push_back(sock);
                        self.push_event(listener, SockEvent::Incoming(sock));
                    }
                    self.arm_keepalive(sock, now);
                    // Fall through: the ACK may carry data.
                } else if seg.flags.syn {
                    // Retransmitted SYN: re-send SYN-ACK.
                    let Some(s) = self.sockets.get(&sock) else {
                        return;
                    };
                    let isn = s.snd_una;
                    self.emit_segment(sock, isn, TcpFlags::SYN_ACK, Bytes::new());
                    return;
                } else {
                    return;
                }
            }
            TcpState::Closed | TcpState::Listen => return,
            _ => {}
        }

        // A SYN in a synchronized state is an old retransmission (e.g. our
        // final handshake ACK was lost and the peer re-sent its SYN-ACK):
        // answer with a fresh ACK so the peer can complete.
        if seg.flags.syn {
            let Some(s) = self.sockets.get(&sock) else {
                return;
            };
            let snd_nxt = s.snd_nxt;
            self.emit_segment(sock, snd_nxt, TcpFlags::ACK, Bytes::new());
            return;
        }

        // Out-of-window bare segments (keepalive probes, stale
        // retransmissions of pure ACKs) elicit a fresh ACK so the sender
        // learns we are alive (RFC 793 "not acceptable ⇒ send an ACK").
        if seg.payload.is_empty() && !seg.flags.fin {
            let Some(s) = self.sockets.get(&sock) else {
                return;
            };
            if seq_lt(seg.seq, s.rcv_nxt) {
                let snd_nxt = s.snd_nxt;
                self.emit_segment(sock, snd_nxt, TcpFlags::ACK, Bytes::new());
                return;
            }
        }

        // ---- ACK processing ----
        if seg.flags.ack {
            self.process_ack(now, sock, &seg);
        }

        // ---- payload + FIN ----
        if !seg.payload.is_empty() || seg.flags.fin {
            self.process_data(now, sock, seg);
        }
    }

    fn process_ack(&mut self, now: LocalNs, sock: SockId, seg: &TcpSegment) {
        let cfg = self.cfg;
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        let ack = seg.ack;

        if seq_gt(ack, s.snd_max) {
            // Acks something we never sent; ignore (sim: shouldn't happen).
            return;
        }

        if seq_gt(ack, s.snd_una) {
            // After a go-back-N pull-back the peer's cumulative ACK can sit
            // beyond snd_nxt (it covers data sent before the timeout); snap
            // snd_nxt forward so flight() stays non-negative.
            if seq_gt(ack, s.snd_nxt) {
                s.snd_nxt = ack;
            }
            let newly_acked = ack.wrapping_sub(s.snd_una);
            // Consume acked bytes from the queue (FIN consumes seq but no bytes).
            let data_acked = (newly_acked as usize).min(s.send_q.len());
            s.send_q.advance(data_acked);
            s.snd_una = ack;
            s.retries = 0;
            s.dup_acks = 0;
            s.snd_wnd = seg.wnd;
            if s.probing && seg.wnd > 0 {
                s.probing = false;
            }

            // RTT sample (Karn-compliant).
            if let Some((end, sent_at)) = s.rtt_probe {
                if seq_ge(ack, end) {
                    let sample = (now - sent_at) as f64;
                    match s.srtt_ns {
                        None => {
                            s.srtt_ns = Some(sample);
                            s.rttvar_ns = sample / 2.0;
                        }
                        Some(srtt) => {
                            let err = (sample - srtt).abs();
                            s.rttvar_ns = 0.75 * s.rttvar_ns + 0.25 * err;
                            s.srtt_ns = Some(0.875 * srtt + 0.125 * sample);
                        }
                    }
                    let rto = s.srtt_ns.unwrap() + (4.0 * s.rttvar_ns).max(1.0e6);
                    s.rto_ns = (rto as i64).clamp(cfg.rto_min_ns, cfg.rto_max_ns);
                    s.rtt_probe = None;
                }
            }

            // Congestion control.
            if cfg.congestion_control {
                if s.cwnd < s.ssthresh {
                    s.cwnd += newly_acked as f64; // slow start
                } else {
                    s.cwnd += (cfg.mss as f64) * (cfg.mss as f64) / s.cwnd; // CA
                }
            }

            // FIN acked?
            if let Some(fseq) = s.fin_seq {
                if seq_gt(ack, fseq) {
                    match s.state {
                        TcpState::FinWait1 => {
                            s.state = TcpState::FinWait2;
                        }
                        TcpState::Closing => {
                            s.state = TcpState::TimeWait;
                            s.time_wait_deadline = Some(now + cfg.time_wait_ns);
                            s.rtx_deadline = None;
                        }
                        TcpState::LastAck => {
                            s.state = TcpState::Closed;
                            s.rtx_deadline = None;
                            let lport = s.local_port;
                            if let Some((raddr, rport)) = s.remote {
                                self.conns.remove(&(lport, raddr, rport));
                            }
                            self.push_event(sock, SockEvent::Closed);
                            // fall through to timer maintenance below
                        }
                        _ => {}
                    }
                }
            }

            let Some(s) = self.sockets.get_mut(&sock) else {
                return;
            };
            // Timer maintenance: restart if data remains in flight.
            if s.flight() == 0 && s.fin_seq.is_none_or(|f| seq_lt(f, s.snd_una)) {
                s.rtx_deadline = None;
            } else if s.rtx_deadline.is_some() {
                s.rtx_deadline = Some(now + s.rto_ns);
            }

            // Writable?
            if s.want_write && s.send_q.len() < cfg.send_buf {
                s.want_write = false;
                self.push_event(sock, SockEvent::Writable);
            }
            self.pump(now, sock);
        } else if ack == s.snd_una {
            // Potential duplicate ACK.
            let window_update = seg.wnd != s.snd_wnd;
            s.snd_wnd = seg.wnd;
            if s.probing {
                // Any ACK from the peer proves it is alive: reset the probe
                // budget (Linux resets icsk_probes_out on probe responses).
                s.retries = 0;
                if seg.wnd > 0 {
                    s.probing = false;
                    self.pump(now, sock);
                }
                return;
            }
            if seg.payload.is_empty() && s.flight() > 0 {
                s.dup_acks += 1;
                if s.dup_acks == cfg.dupack_threshold {
                    // Fast retransmit.
                    if cfg.congestion_control {
                        s.ssthresh = (s.flight() as f64 / 2.0).max(2.0 * cfg.mss as f64);
                        s.cwnd = s.ssthresh + 3.0 * cfg.mss as f64;
                    }
                    s.rtt_probe = None;
                    self.counters.fast_retransmits += 1;
                    push_note(&mut self.notes, TcpNote::FastRetransmit);
                    self.retransmit_head(sock);
                    if let Some(s) = self.sockets.get_mut(&sock) {
                        s.rtx_deadline = Some(now + s.rto_ns);
                    }
                }
            } else if window_update {
                self.pump(now, sock);
            }
        }
    }

    fn process_data(&mut self, now: LocalNs, sock: SockId, seg: TcpSegment) {
        let cfg = self.cfg;
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        let mut advanced = false;
        let mut delivered_bytes: u64 = 0;
        let mut got_fin_now = false;

        let seq = seg.seq;
        let payload = seg.payload;
        let fin = seg.flags.fin;
        let end = seq.wrapping_add(payload.len() as u32);

        if !payload.is_empty() {
            if seq_le(end, s.rcv_nxt) {
                // Entirely old: pure duplicate.
                self.counters.dup_segments += 1;
            } else {
                // Trim any already-received prefix.
                let (start_seq, data) = if seq_lt(seq, s.rcv_nxt) {
                    let skip = s.rcv_nxt.wrapping_sub(seq) as usize;
                    (s.rcv_nxt, payload.slice(skip..))
                } else {
                    (seq, payload.clone())
                };
                // Respect our advertised buffer: drop overflow bytes.
                let space = cfg.recv_buf.saturating_sub(s.recv_q.len() + s.ooo_bytes());
                let data = if data.len() > space {
                    data.slice(..space)
                } else {
                    data
                };
                if !data.is_empty() {
                    if start_seq == s.rcv_nxt {
                        let n = data.len();
                        s.recv_q.push_bytes(data);
                        s.rcv_nxt = s.rcv_nxt.wrapping_add(n as u32);
                        delivered_bytes += n as u64;
                        advanced = true;
                        // Pull contiguous out-of-order segments.
                        while let Some((&oseq, _)) = s.ooo.iter().next() {
                            if seq_gt(oseq, s.rcv_nxt) {
                                break;
                            }
                            let (oseq, obytes) = s.ooo.pop_first().unwrap();
                            let oend = oseq.wrapping_add(obytes.len() as u32);
                            if seq_le(oend, s.rcv_nxt) {
                                continue; // fully duplicate
                            }
                            let skip = s.rcv_nxt.wrapping_sub(oseq) as usize;
                            let fresh = obytes.slice(skip..);
                            let fresh_len = fresh.len();
                            s.recv_q.push_bytes(fresh);
                            s.rcv_nxt = s.rcv_nxt.wrapping_add(fresh_len as u32);
                            delivered_bytes += fresh_len as u64;
                        }
                    } else {
                        // Out of order: stash (keyed by start; last write wins).
                        s.ooo.insert(start_seq, data);
                    }
                }
            }
        }

        // FIN handling: only consumable when all data before it arrived.
        if fin {
            let fin_seq = end; // FIN sits after the payload
            if !s.peer_fin && fin_seq == s.rcv_nxt {
                s.rcv_nxt = s.rcv_nxt.wrapping_add(1);
                s.peer_fin = true;
                got_fin_now = true;
            }
        }

        // State transitions driven by the peer's FIN.
        if got_fin_now {
            match s.state {
                TcpState::Established => s.state = TcpState::CloseWait,
                TcpState::FinWait1 => {
                    // Our FIN not yet acked: simultaneous close.
                    s.state = TcpState::Closing;
                }
                TcpState::FinWait2 => {
                    s.state = TcpState::TimeWait;
                    s.time_wait_deadline = Some(now + cfg.time_wait_ns);
                    s.rtx_deadline = None;
                }
                _ => {}
            }
        }

        // If our receive window just hit zero, remember to update later.
        if self.adv_wnd(self.sockets.get(&sock).unwrap()) == 0 {
            if let Some(s) = self.sockets.get_mut(&sock) {
                s.wnd_was_closed = true;
            }
        }

        // ACK everything we have (immediate ACK policy).
        let Some(s) = self.sockets.get(&sock) else {
            return;
        };
        let snd_nxt = s.snd_nxt;
        self.emit_segment(sock, snd_nxt, TcpFlags::ACK, Bytes::new());

        self.counters.bytes_received += delivered_bytes;
        if advanced {
            self.push_event(sock, SockEvent::Readable);
        }
        if got_fin_now {
            self.push_event(sock, SockEvent::PeerClosed);
        }
    }
}

#[cfg(test)]
mod seq_tests {
    use super::*;

    #[test]
    fn wrapping_comparisons() {
        assert!(seq_lt(0xFFFF_FFF0, 0x10));
        assert!(seq_gt(0x10, 0xFFFF_FFF0));
        assert!(seq_le(5, 5));
        assert!(seq_ge(5, 5));
        assert!(!seq_lt(5, 5));
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = TcpConfig::default();
        assert!(c.rto_min_ns < c.rto_max_ns);
        assert!(c.mss > 0 && c.mss < 9000);
        assert!(c.max_data_retries >= 1);
    }
}
