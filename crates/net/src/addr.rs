//! Network addressing.
//!
//! Two address families coexist on the fabric:
//!
//! * [`PhysAddr`] — a physical host (dom0). Bound to its NIC once, forever.
//! * [`VirtAddr`] — a virtual cluster node. Its binding to a physical NIC is
//!   a *routing table entry* maintained by DVC; migration rebinds the
//!   address without the guest noticing. This is the mechanized form of the
//!   paper's claim that a virtual cluster "may run on a particular 32
//!   physical nodes in one instance, and on a completely separate set of
//!   physical nodes at the next instantiation".

use std::fmt;

/// A physical host address (one per node, like a dom0 IP).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u32);

/// A virtual node address (one per vnode of a virtual cluster).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u32);

/// Either address family; the fabric routes both.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Addr {
    Phys(PhysAddr),
    Virt(VirtAddr),
}

/// A NIC attachment point on the fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NicId(pub u32);

/// A transport endpoint (address, port).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SockAddr {
    pub addr: Addr,
    pub port: u16,
}

impl SockAddr {
    pub fn new(addr: Addr, port: u16) -> Self {
        SockAddr { addr, port }
    }
}

impl From<PhysAddr> for Addr {
    fn from(a: PhysAddr) -> Addr {
        Addr::Phys(a)
    }
}

impl From<VirtAddr> for Addr {
    fn from(a: VirtAddr) -> Addr {
        Addr::Virt(a)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Phys(a) => write!(f, "{a:?}"),
            Addr::Virt(a) => write!(f, "{a:?}"),
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for NicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nic{}", self.0)
    }
}

impl fmt::Debug for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}:{}", self.addr, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_never_collide() {
        assert_ne!(Addr::Phys(PhysAddr(1)), Addr::Virt(VirtAddr(1)));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Addr::Phys(PhysAddr(3))), "p3");
        assert_eq!(format!("{:?}", Addr::Virt(VirtAddr(9))), "v9");
        assert_eq!(
            format!("{:?}", SockAddr::new(VirtAddr(2).into(), 5000)),
            "v2:5000"
        );
    }

    #[test]
    fn addr_is_usable_as_map_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Addr::Virt(VirtAddr(7)), "a");
        m.insert(Addr::Phys(PhysAddr(7)), "b");
        assert_eq!(m.len(), 2);
    }
}
