//! A miniature host/world harness for exercising the network stack.
//!
//! This is *test infrastructure with production semantics*: it implements
//! the same glue pattern `dvc-cluster` uses for real guests — drain stack
//! outputs into the fabric, surface socket events, and keep exactly one
//! timer interrupt armed per host (re-arming cancels the previously armed
//! event rather than letting it fire stale). It also models **host
//! pause/resume and snapshot/restore** of a TCP stack, which is how the unit
//! tests here reproduce the paper's two network-cut scenarios at the
//! sequence-number level before any hypervisor exists.
//!
//! Kept in the library (not `#[cfg(test)]`) so downstream crates' tests and
//! benches can reuse it.

use crate::addr::{Addr, NicId, PhysAddr};
use crate::fabric::{self, Fabric, LinkParams, NetWorld};
use crate::packet::{Packet, L4};
use crate::tcp::{LocalNs, SockEvent, SockId, StackOutput, TcpConfig, TcpNote, TcpStack};
use crate::udp::UdpStack;
use dvc_sim_core::{EventHandle, Sim, SimTime, TcpEvent};

/// A one-shot packet filter: drops up to `remaining` packets matching `pred`.
pub struct DropRule {
    pub remaining: u32,
    pub pred: fn(&Packet) -> bool,
    pub dropped: u32,
}

/// One simulated host: a TCP + UDP stack behind a NIC.
pub struct Host {
    pub addr: Addr,
    pub nic: NicId,
    pub tcp: TcpStack,
    pub udp: UdpStack,
    /// While paused, inbound packets are dropped and timers do not fire —
    /// exactly a suspended guest.
    pub paused: bool,
    /// The armed timer interrupt, if any (cancelled on re-arm/pause).
    timer_arm: Option<EventHandle>,
    /// App-visible socket events, in order.
    pub events: Vec<(SockId, SockEvent)>,
}

/// The test world: a fabric plus N hosts on one switch.
pub struct TestWorld {
    pub fabric: Fabric,
    pub hosts: Vec<Host>,
    pub drop_rules: Vec<DropRule>,
    /// When true, every TCP segment *emitted* by any host's stack is
    /// appended to `seg_log` as `"h<i> tcp[...]"` — the golden-trace tests
    /// pin the sender path (seq/ack/flags/len/wnd) against this log.
    pub log_segments: bool,
    pub seg_log: Vec<String>,
}

impl TestWorld {
    /// Build `n` hosts on a single switch with `edge` links.
    pub fn new(n: usize, edge: LinkParams, tcp_cfg: TcpConfig) -> Self {
        let mut fabric = Fabric::new();
        let sw = fabric.add_switch();
        let mut hosts = Vec::with_capacity(n);
        for i in 0..n {
            let addr: Addr = PhysAddr(i as u32).into();
            let nic = fabric.add_nic(sw, edge);
            fabric.bind(addr, nic);
            hosts.push(Host {
                addr,
                nic,
                tcp: TcpStack::new(addr, tcp_cfg),
                udp: UdpStack::new(addr),
                paused: false,
                timer_arm: None,
                events: Vec::new(),
            });
        }
        TestWorld {
            fabric,
            hosts,
            drop_rules: Vec::new(),
            log_segments: false,
            seg_log: Vec::new(),
        }
    }

    pub fn host_by_nic(&self, nic: NicId) -> Option<usize> {
        self.hosts.iter().position(|h| h.nic == nic)
    }

    /// Count events of one kind on a host.
    pub fn count_events(&self, host: usize, pred: fn(&SockEvent) -> bool) -> usize {
        self.hosts[host]
            .events
            .iter()
            .filter(|(_, e)| pred(e))
            .count()
    }
}

impl NetWorld for TestWorld {
    fn fabric(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    fn deliver(sim: &mut Sim<Self>, nic: NicId, pkt: Packet) {
        // One-shot drop rules (for forcing specific losses in tests).
        for rule in &mut sim.world.drop_rules {
            if rule.remaining > 0 && (rule.pred)(&pkt) {
                rule.remaining -= 1;
                rule.dropped += 1;
                return;
            }
        }
        let Some(h) = sim.world.host_by_nic(nic) else {
            return;
        };
        if sim.world.hosts[h].paused {
            // A suspended guest's vif: frames vanish.
            return;
        }
        let now = local_now(sim);
        match pkt.l4 {
            L4::Tcp(seg) => sim.world.hosts[h].tcp.on_segment(now, pkt.src, seg),
            L4::Udp(dgram) => {
                sim.world.hosts[h].udp.on_datagram(pkt.src, dgram);
            }
        }
        drain(sim, h);
    }
}

/// Test hosts run perfect clocks: local time == true time.
pub fn local_now(sim: &Sim<TestWorld>) -> LocalNs {
    sim.now().nanos() as LocalNs
}

/// Drain a host's stack outputs into the fabric / event log, then re-arm its
/// timer interrupt. Call after every stack entry point.
pub fn drain(sim: &mut Sim<TestWorld>, h: usize) {
    loop {
        let outputs: Vec<StackOutput> = std::mem::take(&mut sim.world.hosts[h].tcp.out);
        let udp_out: Vec<Packet> = std::mem::take(&mut sim.world.hosts[h].udp.out);
        if outputs.is_empty() && udp_out.is_empty() {
            break;
        }
        for o in outputs {
            match o {
                StackOutput::Packet(p) => {
                    if sim.world.log_segments {
                        if let L4::Tcp(seg) = &p.l4 {
                            sim.world.seg_log.push(format!("h{h} {seg:?}"));
                        }
                    }
                    fabric::send(sim, p)
                }
                StackOutput::Event(sock, ev) => sim.world.hosts[h].events.push((sock, ev)),
            }
        }
        for p in udp_out {
            fabric::send(sim, p);
        }
    }
    // Surface noted transport anomalies on the typed event spine, exactly
    // like the cluster glue does for guest stacks (`ep` = host index here).
    if sim.world.hosts[h].tcp.has_notes() {
        let notes = sim.world.hosts[h].tcp.take_notes();
        let ep = h as u32;
        for n in notes {
            sim.emit(dvc_sim_core::Event::Tcp(match n {
                TcpNote::Retransmit => TcpEvent::Retransmit { ep },
                TcpNote::FastRetransmit => TcpEvent::FastRetransmit { ep },
                TcpNote::RtoFired => TcpEvent::RtoFired { ep },
                TcpNote::ZeroWindowProbe => TcpEvent::ZeroWindowProbe { ep },
                TcpNote::KeepaliveProbe => TcpEvent::KeepaliveProbe { ep },
                TcpNote::ConnAborted => TcpEvent::ConnAborted { ep },
            }));
        }
    }
    rearm_timer(sim, h);
}

/// Keep exactly one timer interrupt armed at the stack's next deadline:
/// re-arming cancels the previously armed event.
pub fn rearm_timer(sim: &mut Sim<TestWorld>, h: usize) {
    if let Some(arm) = sim.world.hosts[h].timer_arm.take() {
        sim.cancel(arm);
    }
    let Some(deadline) = sim.world.hosts[h].tcp.next_deadline() else {
        return;
    };
    let at = SimTime((deadline.max(0)) as u64);
    let arm = sim.schedule_at(at, move |sim| {
        // This is the armed interrupt firing: clear the slot so a later
        // re-arm doesn't cancel an already-fired handle.
        sim.world.hosts[h].timer_arm = None;
        if sim.world.hosts[h].paused {
            return;
        }
        let now = local_now(sim);
        sim.world.hosts[h].tcp.on_timer(now);
        drain(sim, h);
    });
    sim.world.hosts[h].timer_arm = Some(arm);
}

/// Pause a host (guest suspended: no delivery, no timers).
pub fn pause(sim: &mut Sim<TestWorld>, h: usize) {
    sim.world.hosts[h].paused = true;
    if let Some(arm) = sim.world.hosts[h].timer_arm.take() {
        sim.cancel(arm); // kill armed interrupt
    }
}

/// Resume a paused host; expired deadlines fire immediately (non-virtualized
/// time: the guest sees the wall clock jump).
pub fn resume(sim: &mut Sim<TestWorld>, h: usize) {
    sim.world.hosts[h].paused = false;
    let now = local_now(sim);
    sim.world.hosts[h].tcp.on_timer(now);
    drain(sim, h);
}

/// Snapshot a host's entire network state (what a VM save captures).
pub fn snapshot(sim: &Sim<TestWorld>, h: usize) -> (TcpStack, UdpStack) {
    let host = &sim.world.hosts[h];
    (host.tcp.clone(), host.udp.clone())
}

/// Restore a previously taken snapshot and resume the host.
pub fn restore(sim: &mut Sim<TestWorld>, h: usize, snap: (TcpStack, UdpStack)) {
    sim.world.hosts[h].tcp = snap.0;
    sim.world.hosts[h].udp = snap.1;
    resume(sim, h);
}

/// Convenience: run the sim until `pred` is true, the queue drains, or
/// `horizon` passes. Returns whether the predicate was satisfied.
pub fn run_until(
    sim: &mut Sim<TestWorld>,
    horizon: SimTime,
    mut pred: impl FnMut(&mut Sim<TestWorld>) -> bool,
) -> bool {
    while !pred(sim) {
        if sim.now() > horizon || !sim.step() {
            return pred(sim);
        }
    }
    true
}
