//! Wire representation of packets.
//!
//! Payloads are [`bytes::Bytes`]: cheaply cloneable, sliceable views into
//! shared buffers. The TCP stack stores queued application bytes as a chain
//! of such chunks ([`crate::bytequeue::ByteQueue`]), so segmenting a send
//! into MSS-sized segments — and retransmitting them later — really is
//! zero-copy slicing all the way from [`crate::tcp::TcpStack::send_bytes`]
//! to the emitted segment. Wire sizes include Ethernet + IP + L4 header
//! overheads so bandwidth/serialization models see realistic framing.

use crate::addr::Addr;
use bytes::Bytes;
use std::fmt;

/// Ethernet (incl. preamble + FCS + IFG) + IPv4 header bytes charged per packet.
pub const ETH_IP_OVERHEAD: u64 = 38 + 20;
/// TCP header bytes (no options modelled).
pub const TCP_HEADER: u64 = 20;
/// UDP header bytes.
pub const UDP_HEADER: u64 = 8;

/// TCP flag bits.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
}

impl TcpFlags {
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
    };
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        if self.syn {
            s.push('S');
        }
        if self.ack {
            s.push('A');
        }
        if self.fin {
            s.push('F');
        }
        if self.rst {
            s.push('R');
        }
        if s.is_empty() {
            s.push('.');
        }
        write!(f, "{s}")
    }
}

/// A TCP segment.
#[derive(Clone)]
pub struct TcpSegment {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    /// Advertised receive window, bytes.
    pub wnd: u32,
    pub payload: Bytes,
}

impl TcpSegment {
    /// Sequence space consumed by this segment (payload + SYN/FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32
            + if self.flags.syn { 1 } else { 0 }
            + if self.flags.fin { 1 } else { 0 }
    }
}

impl fmt::Debug for TcpSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tcp[{}->{} {:?} seq={} ack={} wnd={} len={}]",
            self.src_port,
            self.dst_port,
            self.flags,
            self.seq,
            self.ack,
            self.wnd,
            self.payload.len()
        )
    }
}

/// A UDP datagram.
#[derive(Clone)]
pub struct UdpDatagram {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Bytes,
}

impl fmt::Debug for UdpDatagram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "udp[{}->{} len={}]",
            self.src_port,
            self.dst_port,
            self.payload.len()
        )
    }
}

/// Transport payload of a packet.
#[derive(Clone, Debug)]
pub enum L4 {
    Tcp(TcpSegment),
    Udp(UdpDatagram),
}

/// A routable packet.
#[derive(Clone, Debug)]
pub struct Packet {
    pub src: Addr,
    pub dst: Addr,
    pub l4: L4,
}

impl Packet {
    /// Total bytes this packet occupies on a wire.
    pub fn wire_size(&self) -> u64 {
        match &self.l4 {
            L4::Tcp(s) => ETH_IP_OVERHEAD + TCP_HEADER + s.payload.len() as u64,
            L4::Udp(d) => ETH_IP_OVERHEAD + UDP_HEADER + d.payload.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PhysAddr, VirtAddr};

    fn pkt(l4: L4) -> Packet {
        Packet {
            src: PhysAddr(0).into(),
            dst: VirtAddr(1).into(),
            l4,
        }
    }

    #[test]
    fn wire_sizes_include_headers() {
        let t = pkt(L4::Tcp(TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            wnd: 100,
            payload: Bytes::from_static(&[0u8; 100]),
        }));
        assert_eq!(t.wire_size(), 58 + 20 + 100);
        let u = pkt(L4::Udp(UdpDatagram {
            src_port: 1,
            dst_port: 2,
            payload: Bytes::from_static(&[0u8; 48]),
        }));
        assert_eq!(u.wire_size(), 58 + 8 + 48);
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        let mut s = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            wnd: 0,
            payload: Bytes::new(),
        };
        assert_eq!(s.seq_len(), 1);
        s.flags = TcpFlags::FIN_ACK;
        s.payload = Bytes::from_static(b"abc");
        assert_eq!(s.seq_len(), 4);
        s.flags = TcpFlags::ACK;
        assert_eq!(s.seq_len(), 3);
    }

    #[test]
    fn flag_debug_compact() {
        assert_eq!(format!("{:?}", TcpFlags::SYN_ACK), "SA");
        assert_eq!(format!("{:?}", TcpFlags::default()), ".");
        assert_eq!(format!("{:?}", TcpFlags::RST), "R");
    }
}
