//! # dvc-net
//!
//! The simulated cluster network: switched fabric, UDP datagrams, and a
//! **full TCP implementation** — the mechanism Lazy Synchronous Checkpointing
//! leans on.
//!
//! Layering:
//!
//! * [`addr`] — physical and *virtual* addresses. Virtual machines own
//!   virtual addresses whose binding to a physical NIC is updated on
//!   migration, which is how DVC keeps established connections alive across
//!   host changes.
//! * [`packet`] — wire representation (Ethernet/IP/TCP-sized overheads).
//! * [`fabric`] — NICs, drop-tail queued links, switches, static shortest-
//!   path routing, per-hop loss; delivery hands packets to the world via the
//!   [`fabric::NetWorld`] trait.
//! * [`udp`] — a minimal datagram service (used by NTP and control traffic).
//! * [`tcp`] — connection state machine, sliding window, RFC 6298
//!   retransmission with exponential backoff and a **finite retry budget**
//!   ending in a connection RESET. That budget is the "finite amount of time
//!   to save all virtual machines … before a network timeout occurs and
//!   causes the application to crash" (paper §3) — checkpoint failures in
//!   this reproduction *emerge* from this code path, they are never injected.
//! * [`testkit`] — a tiny two-host world harness used by unit tests here and
//!   reused by downstream crates' tests.

pub mod addr;
pub mod bytequeue;
pub mod fabric;
pub mod packet;
pub mod tcp;
pub mod testkit;
pub mod udp;

pub use addr::{Addr, NicId, PhysAddr, SockAddr, VirtAddr};
pub use bytequeue::ByteQueue;
pub use fabric::{Fabric, LinkParams, NetWorld, SwitchId};
pub use packet::{Packet, TcpSegment, UdpDatagram, L4};
pub use tcp::{SockEvent, SockId, StackOutput, TcpConfig, TcpStack};
