//! A byte stream stored as a chain of [`Bytes`] chunks.
//!
//! This is the buffer behind TCP send/receive queues and the MPI framing
//! layer. The contract that makes the data plane zero-copy:
//!
//! * [`ByteQueue::push_bytes`] enqueues a chunk without copying;
//! * [`ByteQueue::slice`] returns a [`Bytes`] window into the stream —
//!   free when the range lives inside one chunk (the common case: MSS-sized
//!   slices of application-sized writes), a single coalescing copy when it
//!   straddles a boundary;
//! * [`ByteQueue::advance`] drops acknowledged/consumed bytes from the
//!   front by shrinking chunk windows, never touching payload bytes.
//!
//! Byte content is deterministic and identical to the flat `VecDeque<u8>`
//! this replaced; only the cost model changed.

use bytes::Bytes;
use std::collections::VecDeque;

/// A FIFO byte stream over shared, immutable chunks.
#[derive(Clone, Debug, Default)]
pub struct ByteQueue {
    chunks: VecDeque<Bytes>,
    len: usize,
}

impl ByteQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total buffered bytes. O(1).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing chunks (diagnostics).
    pub fn chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Append borrowed bytes: one copy into a fresh chunk.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        if !data.is_empty() {
            self.push_bytes(Bytes::copy_from_slice(data));
        }
    }

    /// Append an owned chunk without copying.
    pub fn push_bytes(&mut self, data: Bytes) {
        if !data.is_empty() {
            self.len += data.len();
            self.chunks.push_back(data);
        }
    }

    /// Drop `n` bytes from the front (e.g. data ACKed by the peer, or bytes
    /// consumed by the application). Only chunk windows move.
    pub fn advance(&mut self, n: usize) {
        let mut left = n.min(self.len);
        self.len -= left;
        while left > 0 {
            let front = self.chunks.front_mut().expect("len tracked the chunks");
            if front.len() <= left {
                left -= front.len();
                self.chunks.pop_front();
            } else {
                *front = front.slice(left..);
                left = 0;
            }
        }
    }

    /// The byte at `offset`, if in range.
    pub fn get(&self, offset: usize) -> Option<u8> {
        if offset >= self.len {
            return None;
        }
        let mut off = offset;
        for c in &self.chunks {
            if off < c.len() {
                return Some(c[off]);
            }
            off -= c.len();
        }
        None
    }

    /// A `len`-byte window starting at `offset` (clamped to the buffered
    /// range). Zero-copy when the window lies inside one chunk; otherwise a
    /// single copy coalesces the straddled chunks.
    pub fn slice(&self, offset: usize, len: usize) -> Bytes {
        let offset = offset.min(self.len);
        let want = len.min(self.len - offset);
        if want == 0 {
            return Bytes::new();
        }
        let mut off = offset;
        let mut it = self.chunks.iter();
        for c in it.by_ref() {
            if off < c.len() {
                if off + want <= c.len() {
                    return c.slice(off..off + want);
                }
                // Straddles: coalesce into one owned chunk.
                let mut out = Vec::with_capacity(want);
                out.extend_from_slice(&c[off..]);
                for c2 in it {
                    let take = (want - out.len()).min(c2.len());
                    out.extend_from_slice(&c2[..take]);
                    if out.len() == want {
                        break;
                    }
                }
                return Bytes::from(out);
            }
            off -= c.len();
        }
        Bytes::new()
    }

    /// Consume up to `max` bytes from the front as one chunk. Zero-copy when
    /// the front chunk already fits in `max`.
    pub fn pop_bytes(&mut self, max: usize) -> Bytes {
        let take = max.min(self.len);
        if take == 0 {
            return Bytes::new();
        }
        let front_len = self.chunks.front().expect("non-empty").len();
        if front_len == take {
            self.len -= take;
            return self.chunks.pop_front().unwrap();
        }
        let b = if front_len > take {
            self.chunks.front().unwrap().slice(..take)
        } else {
            self.slice(0, take)
        };
        self.advance(take);
        b
    }

    /// Consume from the front into `out`, appending up to `max` bytes.
    /// One copy, straight from the chunks into the caller's buffer.
    pub fn pop_into(&mut self, out: &mut Vec<u8>, max: usize) -> usize {
        let mut left = max.min(self.len);
        let total = left;
        out.reserve(left);
        while left > 0 {
            let front = self.chunks.front_mut().expect("len tracked the chunks");
            let take = front.len().min(left);
            out.extend_from_slice(&front[..take]);
            if take == front.len() {
                self.chunks.pop_front();
            } else {
                *front = front.slice(take..);
            }
            left -= take;
        }
        self.len -= total;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(parts: &[&[u8]]) -> ByteQueue {
        let mut q = ByteQueue::new();
        for p in parts {
            q.push_bytes(Bytes::copy_from_slice(p));
        }
        q
    }

    #[test]
    fn len_and_get_across_chunks() {
        let q = q(&[b"hello", b" ", b"world"]);
        assert_eq!(q.len(), 11);
        assert_eq!(q.chunks(), 3);
        assert_eq!(q.get(0), Some(b'h'));
        assert_eq!(q.get(5), Some(b' '));
        assert_eq!(q.get(6), Some(b'w'));
        assert_eq!(q.get(10), Some(b'd'));
        assert_eq!(q.get(11), None);
    }

    #[test]
    fn slice_within_one_chunk_is_zero_copy_window() {
        let q = q(&[b"0123456789"]);
        assert_eq!(&q.slice(2, 5)[..], b"23456");
        assert_eq!(&q.slice(0, 10)[..], b"0123456789");
        assert_eq!(&q.slice(8, 100)[..], b"89", "clamped to range");
        assert!(q.slice(10, 5).is_empty());
    }

    #[test]
    fn slice_coalesces_across_chunks() {
        let q = q(&[b"abc", b"def", b"ghi"]);
        assert_eq!(&q.slice(1, 7)[..], b"bcdefgh");
        assert_eq!(&q.slice(3, 3)[..], b"def");
        assert_eq!(&q.slice(0, 9)[..], b"abcdefghi");
    }

    #[test]
    fn advance_moves_the_window() {
        let mut q = q(&[b"abc", b"def"]);
        q.advance(2);
        assert_eq!(q.len(), 4);
        assert_eq!(&q.slice(0, 4)[..], b"cdef");
        q.advance(1); // drops the rest of chunk 0
        assert_eq!(&q.slice(0, 3)[..], b"def");
        q.advance(10); // over-advance clamps
        assert!(q.is_empty());
        assert_eq!(q.chunks(), 0);
    }

    #[test]
    fn pop_bytes_hands_whole_chunks_over() {
        let mut q = q(&[b"abc", b"defgh"]);
        let a = q.pop_bytes(3);
        assert_eq!(&a[..], b"abc");
        let b = q.pop_bytes(2);
        assert_eq!(&b[..], b"de");
        assert_eq!(&q.pop_bytes(100)[..], b"fgh");
        assert!(q.pop_bytes(4).is_empty());
    }

    #[test]
    fn pop_bytes_coalesces_when_max_spans_chunks() {
        let mut q = q(&[b"ab", b"cd", b"ef"]);
        assert_eq!(&q.pop_bytes(5)[..], b"abcde");
        assert_eq!(&q.pop_bytes(5)[..], b"f");
    }

    #[test]
    fn pop_into_appends_to_caller_buffer() {
        let mut q = q(&[b"abc", b"def"]);
        let mut out = vec![b'X'];
        assert_eq!(q.pop_into(&mut out, 4), 4);
        assert_eq!(out, b"Xabcd");
        assert_eq!(q.pop_into(&mut out, 100), 2);
        assert_eq!(out, b"Xabcdef");
        assert_eq!(q.pop_into(&mut out, 1), 0);
    }

    #[test]
    fn extend_from_slice_round_trips() {
        let mut q = ByteQueue::new();
        q.extend_from_slice(b"xy");
        q.extend_from_slice(b"");
        q.extend_from_slice(b"z");
        assert_eq!(q.len(), 3);
        assert_eq!(&q.slice(0, 3)[..], b"xyz");
    }
}
