//! The switched fabric: NICs, links, switches, routing, delivery.
//!
//! Topology model: every NIC attaches to a switch by an *edge link*;
//! switches interconnect by *trunk links*. Each link direction is a
//! store-and-forward, drop-tail queue: a packet starting transmission at a
//! busy link waits for `busy_until`, and is tail-dropped when the implied
//! queueing delay exceeds the link's buffer bound. Each traversed link can
//! also lose the packet with its configured probability.
//!
//! Both physical and virtual addresses resolve through one binding table.
//! Bindings for virtual addresses are *re-pointed on migration*; packets
//! already in flight toward the old NIC are dropped at delivery time (the
//! binding is re-checked), exactly like frames arriving at a host whose
//! guest has left — TCP retransmission absorbs the loss.

use crate::addr::{Addr, NicId};
use crate::packet::Packet;
use dvc_sim_core::{Sim, SimDuration, SimTime};
use rand::Rng;
use std::collections::HashMap;

/// A switch on the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SwitchId(pub u32);

/// Link characteristics.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Per-packet loss probability (0 disables loss).
    pub loss_prob: f64,
    /// Maximum tolerated queueing delay before tail drop.
    pub max_queue: SimDuration,
}

impl LinkParams {
    /// Gigabit-Ethernet-like LAN link (≈117 MB/s, 30 µs latency).
    pub fn gige_lan() -> Self {
        LinkParams {
            latency: SimDuration::from_micros(30),
            bandwidth_bps: 117.0e6,
            loss_prob: 0.0,
            max_queue: SimDuration::from_millis(20),
        }
    }

    /// Inter-cluster WAN-ish link: 1 ms latency, ~60 MB/s.
    pub fn campus_wan() -> Self {
        LinkParams {
            latency: SimDuration::from_millis(1),
            bandwidth_bps: 60.0e6,
            loss_prob: 0.0,
            max_queue: SimDuration::from_millis(50),
        }
    }

    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_prob = p;
        self
    }

    /// Serialization time of `bytes` on this link.
    pub fn ser_time(&self, bytes: u64) -> SimDuration {
        SimDuration::for_transfer(bytes, self.bandwidth_bps)
    }
}

#[derive(Clone, Debug)]
struct Nic {
    switch: SwitchId,
    up: bool,
    edge: LinkParams,
    /// Egress (nic → switch) busy-until.
    busy_tx: SimTime,
    /// Ingress (switch → nic) busy-until.
    busy_rx: SimTime,
}

#[derive(Clone, Debug)]
struct Trunk {
    a: SwitchId,
    b: SwitchId,
    params: LinkParams,
    /// busy-until per direction: [a→b, b→a].
    busy: [SimTime; 2],
}

/// Drop/delivery counters for diagnostics and tests.
#[derive(Clone, Copy, Default, Debug)]
pub struct FabricCounters {
    pub sent: u64,
    pub delivered: u64,
    pub dropped_loss: u64,
    pub dropped_queue: u64,
    pub dropped_no_route: u64,
    pub dropped_nic_down: u64,
    pub dropped_stale_binding: u64,
}

/// The fabric state (lives inside the world).
#[derive(Clone, Debug, Default)]
pub struct Fabric {
    nics: Vec<Nic>,
    n_switches: u32,
    trunks: Vec<Trunk>,
    /// next_hop[from][to] = trunk index to take, None = unreachable/self.
    next_hop: Vec<Vec<Option<usize>>>,
    bindings: HashMap<Addr, NicId>,
    pub counters: FabricCounters,
}

impl Fabric {
    pub fn new() -> Self {
        Fabric::default()
    }

    pub fn add_switch(&mut self) -> SwitchId {
        let id = SwitchId(self.n_switches);
        self.n_switches += 1;
        self.rebuild_routes();
        id
    }

    pub fn connect_switches(&mut self, a: SwitchId, b: SwitchId, params: LinkParams) {
        assert!(a.0 < self.n_switches && b.0 < self.n_switches);
        assert_ne!(a, b, "no self-links");
        self.trunks.push(Trunk {
            a,
            b,
            params,
            busy: [SimTime::ZERO; 2],
        });
        self.rebuild_routes();
    }

    pub fn add_nic(&mut self, switch: SwitchId, edge: LinkParams) -> NicId {
        assert!(switch.0 < self.n_switches);
        let id = NicId(self.nics.len() as u32);
        self.nics.push(Nic {
            switch,
            up: true,
            edge,
            busy_tx: SimTime::ZERO,
            busy_rx: SimTime::ZERO,
        });
        id
    }

    /// Bind (or re-point, for migration) an address to a NIC.
    pub fn bind(&mut self, addr: Addr, nic: NicId) {
        assert!((nic.0 as usize) < self.nics.len());
        self.bindings.insert(addr, nic);
    }

    pub fn unbind(&mut self, addr: Addr) {
        self.bindings.remove(&addr);
    }

    pub fn lookup(&self, addr: Addr) -> Option<NicId> {
        self.bindings.get(&addr).copied()
    }

    pub fn set_nic_up(&mut self, nic: NicId, up: bool) {
        self.nics[nic.0 as usize].up = up;
    }

    pub fn nic_is_up(&self, nic: NicId) -> bool {
        self.nics[nic.0 as usize].up
    }

    pub fn nic_switch(&self, nic: NicId) -> SwitchId {
        self.nics[nic.0 as usize].switch
    }

    fn rebuild_routes(&mut self) {
        let n = self.n_switches as usize;
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (i, t) in self.trunks.iter().enumerate() {
            adj[t.a.0 as usize].push((i, t.b.0 as usize));
            adj[t.b.0 as usize].push((i, t.a.0 as usize));
        }
        // BFS from every source; record the *first* trunk on a shortest path.
        let mut next_hop = vec![vec![None; n]; n];
        for src in 0..n {
            let mut dist = vec![usize::MAX; n];
            let mut first: Vec<Option<usize>> = vec![None; n];
            let mut q = std::collections::VecDeque::new();
            dist[src] = 0;
            q.push_back(src);
            while let Some(u) = q.pop_front() {
                for &(trunk, v) in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        first[v] = if u == src { Some(trunk) } else { first[u] };
                        q.push_back(v);
                    }
                }
            }
            // next_hop at intermediate switches: recompute per (cur,dst) pair
            // lazily would be nicer; with tiny switch counts per-source BFS
            // from every switch is fine.
            for (dst, f) in first.iter().enumerate() {
                next_hop[src][dst] = *f;
            }
        }
        self.next_hop = next_hop;
    }

    fn trunk_between(&self, from: SwitchId, to: SwitchId) -> Option<usize> {
        self.next_hop
            .get(from.0 as usize)
            .and_then(|row| row.get(to.0 as usize))
            .copied()
            .flatten()
    }
}

/// Worlds that host a fabric and can accept final packet delivery.
pub trait NetWorld: Sized + 'static {
    fn fabric(&mut self) -> &mut Fabric;
    /// Deliver `pkt` to the stack(s) behind `nic`. Called once per packet
    /// that survives the fabric.
    fn deliver(sim: &mut Sim<Self>, nic: NicId, pkt: Packet);
}

/// Inject a packet into the fabric. The packet traverses
/// `src-edge → trunks → dst-edge`; each hop adds serialization + queueing +
/// propagation delay and may drop (loss or queue overflow). Delivery
/// re-checks the destination binding, so migrations in flight drop stale
/// packets rather than delivering them to the wrong host.
pub fn send<W: NetWorld>(sim: &mut Sim<W>, pkt: Packet) {
    let now = sim.now();
    let fabric = sim.world.fabric();
    fabric.counters.sent += 1;

    let Some(src_nic) = fabric.lookup(pkt.src) else {
        fabric.counters.dropped_no_route += 1;
        return;
    };
    let Some(dst_nic) = fabric.lookup(pkt.dst) else {
        fabric.counters.dropped_no_route += 1;
        return;
    };
    if !fabric.nics[src_nic.0 as usize].up {
        fabric.counters.dropped_nic_down += 1;
        return;
    }

    let size = pkt.wire_size();

    // Hop 1: source edge (nic → switch).
    let mut overflow = false;
    let (arrival, sw, loss) = {
        let nic = &mut sim.world.fabric().nics[src_nic.0 as usize];
        let start = now.max(nic.busy_tx);
        if start - now > nic.edge.max_queue {
            overflow = true;
            (SimTime::ZERO, nic.switch, 0.0)
        } else {
            let done = start + nic.edge.ser_time(size);
            let sw = nic.switch;
            nic.busy_tx = done;
            (done + nic.edge.latency, sw, nic.edge.loss_prob)
        }
    };
    if overflow {
        sim.world.fabric().counters.dropped_queue += 1;
        return;
    }
    if roll_loss(sim, loss) {
        sim.world.fabric().counters.dropped_loss += 1;
        return;
    }
    sim.schedule_at(arrival, move |sim| trunk_hop(sim, pkt, dst_nic, sw));
}

fn roll_loss<W: NetWorld>(sim: &mut Sim<W>, p: f64) -> bool {
    p > 0.0 && sim.rng.stream("net.loss").gen_bool(p.clamp(0.0, 1.0))
}

/// Forward `pkt` from switch `cur` toward `dst_nic`.
fn trunk_hop<W: NetWorld>(sim: &mut Sim<W>, pkt: Packet, dst_nic: NicId, cur: SwitchId) {
    let now = sim.now();
    let dst_sw = sim.world.fabric().nic_switch(dst_nic);
    if cur == dst_sw {
        // Final hop: destination edge (switch → nic).
        let size = pkt.wire_size();
        let mut overflow = false;
        let (arrival, loss) = {
            let nic = &mut sim.world.fabric().nics[dst_nic.0 as usize];
            let start = now.max(nic.busy_rx);
            if start - now > nic.edge.max_queue {
                overflow = true;
                (SimTime::ZERO, 0.0)
            } else {
                let done = start + nic.edge.ser_time(size);
                nic.busy_rx = done;
                (done + nic.edge.latency, nic.edge.loss_prob)
            }
        };
        if overflow {
            sim.world.fabric().counters.dropped_queue += 1;
            return;
        }
        if roll_loss(sim, loss) {
            sim.world.fabric().counters.dropped_loss += 1;
            return;
        }
        sim.schedule_at(arrival, move |sim| {
            // Re-check state at delivery time: the NIC may have gone down or
            // the address may have migrated while the packet was in flight.
            let fabric = sim.world.fabric();
            if !fabric.nic_is_up(dst_nic) {
                fabric.counters.dropped_nic_down += 1;
                return;
            }
            if fabric.lookup(pkt.dst) != Some(dst_nic) {
                fabric.counters.dropped_stale_binding += 1;
                return;
            }
            fabric.counters.delivered += 1;
            W::deliver(sim, dst_nic, pkt);
        });
        return;
    }

    let Some(trunk_idx) = sim.world.fabric().trunk_between(cur, dst_sw) else {
        sim.world.fabric().counters.dropped_no_route += 1;
        return;
    };
    let size = pkt.wire_size();
    let mut overflow = false;
    let (arrival, next_sw, loss) = {
        let trunk = &mut sim.world.fabric().trunks[trunk_idx];
        let (dir, next_sw) = if trunk.a == cur {
            (0, trunk.b)
        } else {
            (1, trunk.a)
        };
        let start = now.max(trunk.busy[dir]);
        if start - now > trunk.params.max_queue {
            overflow = true;
            (SimTime::ZERO, next_sw, 0.0)
        } else {
            let done = start + trunk.params.ser_time(size);
            trunk.busy[dir] = done;
            (done + trunk.params.latency, next_sw, trunk.params.loss_prob)
        }
    };
    if overflow {
        sim.world.fabric().counters.dropped_queue += 1;
        return;
    }
    if roll_loss(sim, loss) {
        sim.world.fabric().counters.dropped_loss += 1;
        return;
    }
    sim.schedule_at(arrival, move |sim| trunk_hop(sim, pkt, dst_nic, next_sw));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::packet::{UdpDatagram, L4};
    use bytes::Bytes;

    /// Minimal world: a fabric plus a delivery log.
    struct World {
        fabric: Fabric,
        delivered: Vec<(NicId, u64)>,
    }

    impl NetWorld for World {
        fn fabric(&mut self) -> &mut Fabric {
            &mut self.fabric
        }
        fn deliver(sim: &mut Sim<Self>, nic: NicId, pkt: Packet) {
            let size = pkt.wire_size();
            sim.world.delivered.push((nic, size));
        }
    }

    fn two_host_world(edge: LinkParams) -> (Sim<World>, NicId, NicId) {
        let mut fabric = Fabric::new();
        let sw = fabric.add_switch();
        let n0 = fabric.add_nic(sw, edge);
        let n1 = fabric.add_nic(sw, edge);
        fabric.bind(PhysAddr(0).into(), n0);
        fabric.bind(PhysAddr(1).into(), n1);
        let sim = Sim::new(
            World {
                fabric,
                delivered: vec![],
            },
            1,
        );
        (sim, n0, n1)
    }

    fn udp_pkt(src: u32, dst: u32, len: usize) -> Packet {
        Packet {
            src: PhysAddr(src).into(),
            dst: PhysAddr(dst).into(),
            l4: L4::Udp(UdpDatagram {
                src_port: 1,
                dst_port: 2,
                payload: Bytes::from(vec![0u8; len]),
            }),
        }
    }

    #[test]
    fn one_packet_arrives_after_latency_and_serialization() {
        let (mut sim, _n0, n1) = two_host_world(LinkParams::gige_lan());
        send(&mut sim, udp_pkt(0, 1, 1000));
        sim.run_to_completion(1000);
        assert_eq!(sim.world.delivered, vec![(n1, 1066)]);
        // two edge hops: 2 × (30 µs + 1066 B / 117 MB/s ≈ 9.1 µs) ≈ 78 µs
        let t = sim.now().as_secs_f64();
        assert!(t > 70e-6 && t < 90e-6, "arrival at {t}");
        assert_eq!(sim.world.fabric.counters.delivered, 1);
    }

    #[test]
    fn multi_switch_route() {
        let mut fabric = Fabric::new();
        let s0 = fabric.add_switch();
        let s1 = fabric.add_switch();
        let s2 = fabric.add_switch();
        fabric.connect_switches(s0, s1, LinkParams::campus_wan());
        fabric.connect_switches(s1, s2, LinkParams::campus_wan());
        let n0 = fabric.add_nic(s0, LinkParams::gige_lan());
        let n2 = fabric.add_nic(s2, LinkParams::gige_lan());
        fabric.bind(PhysAddr(0).into(), n0);
        fabric.bind(PhysAddr(1).into(), n2);
        let mut sim = Sim::new(
            World {
                fabric,
                delivered: vec![],
            },
            1,
        );
        send(&mut sim, udp_pkt(0, 1, 100));
        sim.run_to_completion(1000);
        assert_eq!(sim.world.delivered.len(), 1);
        // 2 trunk latencies of 1 ms dominate.
        assert!(sim.now().as_secs_f64() > 2e-3);
    }

    #[test]
    fn unroutable_dst_is_counted() {
        let (mut sim, _, _) = two_host_world(LinkParams::gige_lan());
        send(&mut sim, udp_pkt(0, 99, 10));
        sim.run_to_completion(100);
        assert!(sim.world.delivered.is_empty());
        assert_eq!(sim.world.fabric.counters.dropped_no_route, 1);
    }

    #[test]
    fn down_nic_drops_at_delivery() {
        let (mut sim, _n0, n1) = two_host_world(LinkParams::gige_lan());
        send(&mut sim, udp_pkt(0, 1, 10));
        // Take the NIC down while the packet is in flight.
        sim.schedule_at(dvc_sim_core::SimTime(1), move |sim| {
            sim.world.fabric.set_nic_up(n1, false);
        });
        sim.run_to_completion(100);
        assert!(sim.world.delivered.is_empty());
        assert_eq!(sim.world.fabric.counters.dropped_nic_down, 1);
    }

    #[test]
    fn rebinding_mid_flight_drops_stale_packet() {
        let (mut sim, n0, _n1) = two_host_world(LinkParams::gige_lan());
        send(&mut sim, udp_pkt(0, 1, 10));
        sim.schedule_at(dvc_sim_core::SimTime(1), move |sim| {
            // "migrate" p1 onto nic0
            sim.world.fabric.bind(PhysAddr(1).into(), n0);
        });
        sim.run_to_completion(100);
        assert!(sim.world.delivered.is_empty());
        assert_eq!(sim.world.fabric.counters.dropped_stale_binding, 1);
    }

    #[test]
    fn lossy_link_drops_statistically() {
        let mut lost = 0;
        let n = 1000;
        let (mut sim, _, _) = two_host_world(LinkParams::gige_lan().with_loss(0.3));
        for i in 0..n {
            // Space packets out to avoid queue interactions.
            sim.schedule_at(dvc_sim_core::SimTime(i * 1_000_000), move |sim| {
                send(sim, udp_pkt(0, 1, 10))
            });
        }
        sim.run_to_completion(100_000);
        lost += n - sim.world.fabric.counters.delivered;
        let rate = lost as f64 / n as f64;
        // Two lossy edge hops: P(drop) = 1-(0.7)² = 0.51.
        assert!((rate - 0.51).abs() < 0.06, "loss rate {rate}");
    }

    #[test]
    fn queue_overflow_tail_drops() {
        // Tiny bandwidth and queue bound: a burst must overflow.
        let slow = LinkParams {
            latency: SimDuration::from_micros(1),
            bandwidth_bps: 1e5, // 100 kB/s: 1000-byte pkt = 10 ms ser time
            loss_prob: 0.0,
            max_queue: SimDuration::from_millis(15),
        };
        let (mut sim, _, _) = two_host_world(slow);
        for _ in 0..10 {
            send(&mut sim, udp_pkt(0, 1, 942)); // wire size 1008 ≈ 10 ms each
        }
        sim.run_to_completion(10_000);
        let c = sim.world.fabric.counters;
        assert!(c.dropped_queue > 0, "expected tail drops: {c:?}");
        assert!(c.delivered >= 1);
        assert_eq!(c.delivered + c.dropped_queue, 10);
    }

    #[test]
    fn fifo_per_link() {
        let (mut sim, _n0, _n1) = two_host_world(LinkParams::gige_lan());
        for i in 0..5 {
            send(&mut sim, udp_pkt(0, 1, 100 + i));
        }
        sim.run_to_completion(1000);
        let sizes: Vec<u64> = sim.world.delivered.iter().map(|&(_, s)| s).collect();
        assert_eq!(sizes, vec![166, 167, 168, 169, 170]);
    }
}
