//! End-to-end TCP behavior tests over the simulated fabric.
//!
//! These tests validate the exact properties Lazy Synchronous Checkpointing
//! depends on, including the paper's Figure-2 scenarios (data lost at the
//! snapshot instant; ACK lost at the snapshot instant) and the emergent
//! failure when pause skew exceeds the transport's retry budget.

use dvc_net::fabric::LinkParams;
use dvc_net::packet::{Packet, L4};
use dvc_net::tcp::{SockEvent, SockId, TcpConfig, TcpError};
use dvc_net::testkit::{
    drain, local_now, pause, restore, run_until, snapshot, DropRule, TestWorld,
};
use dvc_sim_core::{Sim, SimDuration, SimTime};
use rand::{RngCore, SeedableRng};

const A: usize = 0;
const B: usize = 1;

fn world(edge: LinkParams, cfg: TcpConfig) -> Sim<TestWorld> {
    Sim::new(TestWorld::new(2, edge, cfg), 42)
}

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

/// Establish a connection A→B (listener on port 7000). Returns (sock_a, sock_b).
fn establish(sim: &mut Sim<Sim0Inner>) -> (SockId, SockId) {
    establish_on(sim, 7000)
}
type Sim0Inner = TestWorld;

fn establish_on(sim: &mut Sim<TestWorld>, port: u16) -> (SockId, SockId) {
    let listener = sim.world.hosts[B].tcp.listen(port).unwrap();
    let now = local_now(sim);
    let b_addr = sim.world.hosts[B].addr;
    let sock_a = sim.world.hosts[A].tcp.connect(now, b_addr, port);
    drain(sim, A);
    let ok = run_until(sim, secs(30.0), |sim| {
        sim.world.hosts[A]
            .events
            .iter()
            .any(|&(s, e)| s == sock_a && e == SockEvent::Connected)
            && sim.world.hosts[B]
                .events
                .iter()
                .any(|&(s, e)| s == listener && matches!(e, SockEvent::Incoming(_)))
    });
    assert!(ok, "connect did not complete");
    let sock_b = sim.world.hosts[B]
        .events
        .iter()
        .find_map(|&(s, e)| match e {
            SockEvent::Incoming(ns) if s == listener => Some(ns),
            _ => None,
        })
        .expect("no Incoming event");
    (sock_a, sock_b)
}

/// Drive a one-directional transfer of `data` from host `src`/`s_sock` to
/// host `dst`, reading into a buffer. Runs until complete or horizon.
fn transfer(
    sim: &mut Sim<TestWorld>,
    src: usize,
    s_sock: SockId,
    dst: usize,
    d_sock: SockId,
    data: &[u8],
    horizon: SimTime,
) -> Vec<u8> {
    let mut sent = 0usize;
    let mut received = Vec::with_capacity(data.len());
    loop {
        // Sender: top up the send buffer.
        if sent < data.len() {
            let now = local_now(sim);
            let n = sim.world.hosts[src].tcp.send(now, s_sock, &data[sent..]);
            sent += n;
            if n > 0 {
                drain(sim, src);
            }
        }
        // Receiver: drain readable bytes.
        let avail = sim.world.hosts[dst].tcp.readable_bytes(d_sock);
        if avail > 0 {
            let now = local_now(sim);
            let got = sim.world.hosts[dst].tcp.recv(now, d_sock, avail);
            received.extend_from_slice(&got);
            drain(sim, dst);
        }
        if received.len() >= data.len() {
            break;
        }
        if sim.now() > horizon {
            break;
        }
        if !sim.step() {
            // Queue drained; if we still have work, the connection died.
            if received.len() < data.len()
                && sim.world.hosts[src]
                    .events
                    .iter()
                    .any(|&(_, e)| matches!(e, SockEvent::Failed(_)))
            {
                break;
            }
            if received.len() < data.len() {
                // Nothing scheduled and no failure: stuck. Break for assert.
                break;
            }
        }
    }
    received
}

fn rand_payload(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn failed_with(sim: &Sim<TestWorld>, host: usize, err: TcpError) -> bool {
    sim.world.hosts[host]
        .events
        .iter()
        .any(|&(_, e)| e == SockEvent::Failed(err))
}

fn any_failure(sim: &Sim<TestWorld>, host: usize) -> bool {
    sim.world.hosts[host]
        .events
        .iter()
        .any(|&(_, e)| matches!(e, SockEvent::Failed(_)))
}

// ---------------------------------------------------------------------
// Basic functionality
// ---------------------------------------------------------------------

#[test]
fn handshake_send_recv_close() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);

    let got = transfer(&mut sim, A, sa, B, sb, b"hello, dvc", secs(10.0));
    assert_eq!(&got, b"hello, dvc");

    // Orderly close from A; B closes after EOF.
    let now = local_now(&sim);
    sim.world.hosts[A].tcp.close(now, sa);
    drain(&mut sim, A);
    let ok = run_until(&mut sim, secs(30.0), |sim| {
        sim.world.hosts[B].tcp.at_eof(sb)
    });
    assert!(ok, "B never saw EOF");
    let now = local_now(&sim);
    sim.world.hosts[B].tcp.close(now, sb);
    drain(&mut sim, B);
    let ok = run_until(&mut sim, secs(60.0), |sim| {
        sim.world.hosts[B]
            .events
            .iter()
            .any(|&(s, e)| s == sb && e == SockEvent::Closed)
            && sim.world.hosts[A]
                .events
                .iter()
                .any(|&(s, e)| s == sa && e == SockEvent::Closed)
    });
    assert!(ok, "teardown incomplete");
    assert!(!any_failure(&sim, A) && !any_failure(&sim, B));
}

#[test]
fn bulk_transfer_is_intact_and_fast() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    let data = rand_payload(1 << 20, 1); // 1 MiB
    let got = transfer(&mut sim, A, sa, B, sb, &data, secs(60.0));
    assert_eq!(got.len(), data.len());
    assert_eq!(got, data, "payload corrupted");
    // GigE-ish fabric: 1 MiB should take well under 2 s of simulated time.
    assert!(
        sim.now().as_secs_f64() < 2.0,
        "too slow: {:.3}s",
        sim.now().as_secs_f64()
    );
    let c = sim.world.hosts[A].tcp.counters;
    assert_eq!(c.retransmits + c.fast_retransmits, 0, "clean path: {c:?}");
}

#[test]
fn bidirectional_transfers_coexist() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    let d_ab = rand_payload(200_000, 2);
    let d_ba = rand_payload(150_000, 3);
    let mut sent_ab = 0;
    let mut sent_ba = 0;
    let mut got_ab = Vec::new();
    let mut got_ba = Vec::new();
    let horizon = secs(30.0);
    loop {
        let now = local_now(&sim);
        if sent_ab < d_ab.len() {
            let n = sim.world.hosts[A].tcp.send(now, sa, &d_ab[sent_ab..]);
            sent_ab += n;
            if n > 0 {
                drain(&mut sim, A);
            }
        }
        if sent_ba < d_ba.len() {
            let n = sim.world.hosts[B].tcp.send(now, sb, &d_ba[sent_ba..]);
            sent_ba += n;
            if n > 0 {
                drain(&mut sim, B);
            }
        }
        let nb = sim.world.hosts[B].tcp.readable_bytes(sb);
        if nb > 0 {
            let now = local_now(&sim);
            got_ab.extend(sim.world.hosts[B].tcp.recv(now, sb, nb));
            drain(&mut sim, B);
        }
        let na = sim.world.hosts[A].tcp.readable_bytes(sa);
        if na > 0 {
            let now = local_now(&sim);
            got_ba.extend(sim.world.hosts[A].tcp.recv(now, sa, na));
            drain(&mut sim, A);
        }
        if got_ab.len() >= d_ab.len() && got_ba.len() >= d_ba.len() {
            break;
        }
        assert!(sim.now() <= horizon, "bidirectional transfer stalled");
        assert!(sim.step(), "queue drained before completion");
    }
    assert_eq!(got_ab, d_ab);
    assert_eq!(got_ba, d_ba);
}

#[test]
fn transfer_survives_random_loss() {
    let mut sim = world(LinkParams::gige_lan().with_loss(0.02), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    let data = rand_payload(256 * 1024, 4);
    let got = transfer(&mut sim, A, sa, B, sb, &data, secs(300.0));
    assert_eq!(got, data, "loss corrupted the stream");
    let ca = sim.world.hosts[A].tcp.counters;
    assert!(
        ca.retransmits + ca.fast_retransmits > 0,
        "expected recovery activity: {ca:?}"
    );
}

#[test]
fn fast_retransmit_recovers_single_drop() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    // Drop exactly one data-bearing segment headed to B.
    fn is_data_seg(p: &Packet) -> bool {
        matches!(&p.l4, L4::Tcp(s) if !s.payload.is_empty())
    }
    sim.world.drop_rules.push(DropRule {
        remaining: 1,
        pred: is_data_seg,
        dropped: 0,
    });
    let data = rand_payload(512 * 1024, 5);
    let got = transfer(&mut sim, A, sa, B, sb, &data, secs(60.0));
    assert_eq!(got, data);
    assert_eq!(sim.world.drop_rules[0].dropped, 1);
    let c = sim.world.hosts[A].tcp.counters;
    assert!(c.fast_retransmits >= 1, "expected a fast retransmit: {c:?}");
}

#[test]
fn connect_to_closed_port_fails_with_reset() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let now = local_now(&sim);
    let b_addr = sim.world.hosts[B].addr;
    let sock = sim.world.hosts[A].tcp.connect(now, b_addr, 9999);
    drain(&mut sim, A);
    let ok = run_until(&mut sim, secs(5.0), |sim| any_failure(sim, A));
    assert!(ok);
    assert!(failed_with(&sim, A, TcpError::Reset));
    // The dead socket lingers with its error until the app releases it.
    assert_eq!(sim.world.hosts[A].tcp.error(sock), Some(TcpError::Reset));
    sim.world.hosts[A].tcp.release(sock);
    assert_eq!(sim.world.hosts[A].tcp.error(sock), None);
}

#[test]
fn zero_window_blocks_then_resumes() {
    let cfg = TcpConfig {
        send_buf: 64 * 1024,
        recv_buf: 32 * 1024,
        ..TcpConfig::default()
    };
    let mut sim = world(LinkParams::gige_lan(), cfg);
    let (sa, sb) = establish(&mut sim);
    let data = rand_payload(200_000, 6);
    // Sender pushes, receiver does NOT read.
    let mut sent = 0;
    loop {
        let now = local_now(&sim);
        let n = sim.world.hosts[A].tcp.send(now, sa, &data[sent..]);
        sent += n;
        if n > 0 {
            drain(&mut sim, A);
        }
        if !sim.step() || sim.now() > secs(20.0) {
            break;
        }
        if sent >= data.len() {
            break;
        }
    }
    // Receiver's buffer (32 KiB) + sender's buffer (64 KiB) bound progress.
    assert!(sent < data.len(), "flow control failed to block the sender");
    assert!(!any_failure(&sim, A), "zero window must not reset");

    // Now the receiver starts reading: the rest flows. Continue the stream
    // from where the sender's application got blocked.
    let mut received: Vec<u8> = Vec::new();
    let horizon = secs(300.0);
    loop {
        if sent < data.len() {
            let now = local_now(&sim);
            let n = sim.world.hosts[A].tcp.send(now, sa, &data[sent..]);
            sent += n;
            if n > 0 {
                drain(&mut sim, A);
            }
        }
        let avail = sim.world.hosts[B].tcp.readable_bytes(sb);
        if avail > 0 {
            let now = local_now(&sim);
            received.extend(sim.world.hosts[B].tcp.recv(now, sb, avail));
            drain(&mut sim, B);
        }
        if received.len() >= data.len() {
            break;
        }
        assert!(
            sim.now() <= horizon,
            "drain stalled ({} bytes)",
            received.len()
        );
        assert!(sim.step(), "queue empty with transfer incomplete");
    }
    assert_eq!(received, data, "stream corrupted through zero-window stall");
    assert!(
        sim.world.hosts[A].tcp.counters.zero_window_probes > 0,
        "expected window probes: {:?}",
        sim.world.hosts[A].tcp.counters
    );
}

// ---------------------------------------------------------------------
// The LSC-critical behaviors
// ---------------------------------------------------------------------

/// A paused peer beyond the retry budget kills the connection: the paper's
/// "network timeout occurs and causes the application to crash".
#[test]
fn frozen_peer_exhausts_retries_and_resets() {
    let cfg = TcpConfig::default();
    let mut sim = world(LinkParams::gige_lan(), cfg);
    let (sa, sb) = establish(&mut sim);
    // Warm up: move some data so RTT is measured.
    let warm = rand_payload(10_000, 7);
    let got = transfer(&mut sim, A, sa, B, sb, &warm, secs(10.0));
    assert_eq!(got, warm);

    // Freeze B forever; A keeps sending.
    pause(&mut sim, B);
    let t_freeze = sim.now();
    let now = local_now(&sim);
    sim.world.hosts[A]
        .tcp
        .send(now, sa, &rand_payload(50_000, 8));
    drain(&mut sim, A);

    let ok = run_until(&mut sim, secs(600.0), |sim| any_failure(sim, A));
    assert!(ok, "sender never aborted");
    assert!(failed_with(&sim, A, TcpError::RetryTimeout));

    // The abort time is the sum of the backoff schedule:
    // rto_min · (1+2+4+8+16+32) bounded by rto_max; with 200 ms floor and
    // RTT-fitted RTO ≈ 200 ms, expect ≈ 12.6 s (±1 RTO slack).
    let elapsed = (sim.now() - t_freeze).as_secs_f64();
    assert!(
        (10.0..16.0).contains(&elapsed),
        "abort after {elapsed:.2}s, expected ~12.6s"
    );
    let c = sim.world.hosts[A].tcp.counters;
    assert_eq!(c.conns_aborted, 1);
    assert!(c.retransmits >= 5);
}

/// Pausing BOTH endpoints (a coordinated LSC checkpoint) and restoring them
/// within the budget is harmless — the transfer completes intact.
#[test]
fn coordinated_pause_restore_preserves_stream() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    let data = rand_payload(600_000, 9);

    // Start the transfer, run ~30 ms in, then pause both with 2 ms skew
    // (NTP-scale), snapshot, stay down 2 s, restore both.
    let mut sent = 0;
    let mut received: Vec<u8> = Vec::new();
    let now = local_now(&sim);
    sent += sim.world.hosts[A].tcp.send(now, sa, &data[sent..]);
    drain(&mut sim, A);
    while sim.now() < secs(0.030) {
        assert!(sim.step());
    }
    pause(&mut sim, A);
    let snap_a = snapshot(&sim, A);
    while sim.now() < secs(0.032) {
        sim.step();
    }
    pause(&mut sim, B);
    let snap_b = snapshot(&sim, B);

    // Dead time: both suspended.
    let resume_at = sim.now() + SimDuration::from_secs(2);
    sim.schedule_at(resume_at, move |sim| {
        restore(sim, A, snap_a);
    });
    sim.schedule_at(resume_at + SimDuration::from_millis(2), move |sim| {
        restore(sim, B, snap_b);
    });

    // Drive to completion.
    let horizon = secs(120.0);
    loop {
        if sent < data.len() && !sim.world.hosts[A].paused {
            let now = local_now(&sim);
            let n = sim.world.hosts[A].tcp.send(now, sa, &data[sent..]);
            sent += n;
            if n > 0 {
                drain(&mut sim, A);
            }
        }
        if !sim.world.hosts[B].paused {
            let avail = sim.world.hosts[B].tcp.readable_bytes(sb);
            if avail > 0 {
                let now = local_now(&sim);
                received.extend(sim.world.hosts[B].tcp.recv(now, sb, avail));
                drain(&mut sim, B);
            }
        }
        if received.len() >= data.len() {
            break;
        }
        assert!(sim.now() <= horizon, "transfer stalled after restore");
        assert!(sim.step(), "queue drained prematurely");
    }
    assert_eq!(received, data, "stream corrupted across checkpoint");
    assert!(!any_failure(&sim, A) && !any_failure(&sim, B));
}

/// Paper Figure 2, scenario 1: a data segment is lost because the receiver
/// was checkpointed before delivery. After restore, retransmission delivers
/// it exactly once.
#[test]
fn scenario1_message_lost_at_snapshot_is_retransmitted() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);

    // Send one message and immediately pause the receiver so the in-flight
    // segment is dropped at its NIC (then pause the sender too).
    let msg = b"critical-payload-0123456789";
    let now = local_now(&sim);
    sim.world.hosts[A].tcp.send(now, sa, msg);
    drain(&mut sim, A);
    pause(&mut sim, B); // segment in flight will hit a paused host -> gone
    let snap_b = snapshot(&sim, B);
    pause(&mut sim, A);
    let snap_a = snapshot(&sim, A);

    // Restore both 1 s later (well inside the budget).
    let at = sim.now() + SimDuration::from_secs(1);
    sim.schedule_at(at, move |sim| restore(sim, B, snap_b));
    sim.schedule_at(at + SimDuration::from_millis(1), move |sim| {
        restore(sim, A, snap_a)
    });

    let ok = run_until(&mut sim, secs(60.0), |sim| {
        sim.world.hosts[B].tcp.readable_bytes(sb) >= msg.len()
    });
    assert!(ok, "message never delivered after restore");
    let now = local_now(&sim);
    let got = sim.world.hosts[B].tcp.recv(now, sb, 1024);
    assert_eq!(&got, msg, "delivered exactly once, uncorrupted");
    assert!(!any_failure(&sim, A) && !any_failure(&sim, B));
    assert!(
        sim.world.hosts[A].tcp.counters.retransmits >= 1,
        "recovery must come from retransmission"
    );
}

/// Paper Figure 2, scenario 2: the receiver got the data but its ACK is lost
/// at the snapshot. After restore the sender retransmits, the receiver
/// re-ACKs, and the application sees **no duplication**.
#[test]
fn scenario2_lost_ack_causes_no_duplication() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);

    // Drop the next pure-ACK segment headed to A (the data's ACK).
    fn is_pure_ack_to_a(p: &Packet) -> bool {
        match &p.l4 {
            L4::Tcp(s) => s.payload.is_empty() && s.flags.ack && !s.flags.syn && !s.flags.fin,
            _ => false,
        }
    }
    let msg = b"ack-will-be-lost";
    let now = local_now(&sim);
    sim.world.hosts[A].tcp.send(now, sa, msg);
    drain(&mut sim, A);
    // Let the data reach B and B's ACK get dropped.
    sim.world.drop_rules.push(DropRule {
        remaining: 1,
        pred: is_pure_ack_to_a,
        dropped: 0,
    });
    let ok = run_until(&mut sim, secs(5.0), |sim| {
        sim.world.hosts[B].tcp.readable_bytes(sb) >= msg.len()
            && sim.world.drop_rules[0].dropped == 1
    });
    assert!(ok, "data never reached B / ACK never dropped");

    // Checkpoint both immediately (B already consumed the data's delivery).
    pause(&mut sim, B);
    let snap_b = snapshot(&sim, B);
    pause(&mut sim, A);
    let snap_a = snapshot(&sim, A);
    let at = sim.now() + SimDuration::from_secs(1);
    sim.schedule_at(at, move |sim| restore(sim, A, snap_a));
    sim.schedule_at(at + SimDuration::from_millis(1), move |sim| {
        restore(sim, B, snap_b)
    });

    // After restore: A retransmits (unacked), B re-ACKs; A must end with
    // snd_una advanced (no Failed), and B must not duplicate bytes.
    let ok = run_until(&mut sim, secs(60.0), |sim| {
        !any_failure(sim, A) && sim.world.hosts[A].tcp.counters.retransmits >= 1 && {
            // settle: no pending retransmission deadline on A
            sim.world.hosts[A].tcp.next_deadline().is_none()
        }
    });
    assert!(ok, "sender never settled after restore");
    let now = local_now(&sim);
    let got = sim.world.hosts[B].tcp.recv(now, sb, 1024);
    assert_eq!(&got, msg, "exactly-once delivery violated");
    assert_eq!(sim.world.hosts[B].tcp.readable_bytes(sb), 0);
    assert!(
        sim.world.hosts[B].tcp.counters.dup_segments >= 1,
        "B should have seen (and discarded) the duplicate"
    );
}

/// Excessive pause skew — one side checkpointed, the other left running past
/// the budget — produces the emergent failure LSC must avoid.
#[test]
fn skewed_pause_beyond_budget_fails() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    let warm = rand_payload(10_000, 10);
    let got = transfer(&mut sim, A, sa, B, sb, &warm, secs(10.0));
    assert_eq!(got, warm);

    // Pause only B ("its save command arrived 20 s before A's").
    pause(&mut sim, B);
    let snap_b = snapshot(&sim, B);
    let now = local_now(&sim);
    sim.world.hosts[A]
        .tcp
        .send(now, sa, &rand_payload(40_000, 11));
    drain(&mut sim, A);

    // Restore B 20 s later: too late.
    let at = sim.now() + SimDuration::from_secs(20);
    sim.schedule_at(at, move |sim| restore(sim, B, snap_b));

    let ok = run_until(&mut sim, secs(120.0), |sim| any_failure(sim, A));
    assert!(ok, "A should have aborted");
    assert!(failed_with(&sim, A, TcpError::RetryTimeout));
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut sim = world(LinkParams::gige_lan().with_loss(0.05), TcpConfig::default());
        let (sa, sb) = establish(&mut sim);
        let data = rand_payload(100_000, 12);
        let got = transfer(&mut sim, A, sa, B, sb, &data, secs(120.0));
        let c = sim.world.hosts[A].tcp.counters;
        (got, c.retransmits, c.fast_retransmits, sim.now())
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1.0, r2.0);
    assert_eq!(r1.1, r2.1);
    assert_eq!(r1.2, r2.2);
    assert_eq!(r1.3, r2.3, "simulation must be bit-deterministic");
}

#[test]
fn keepalive_detects_dead_peer_and_spares_live_idle_ones() {
    let cfg = TcpConfig {
        keepalive_idle_ns: Some(2_000_000_000), // 2 s idle
        keepalive_interval_ns: 1_000_000_000,   // 1 s between probes
        keepalive_retries: 3,
        ..TcpConfig::default()
    };
    // Case 1: both peers alive but idle — keepalive must NOT kill the conn.
    {
        let mut sim = world(LinkParams::gige_lan(), cfg);
        let (sa, _sb) = establish(&mut sim);
        let msg = b"warmup";
        let got = transfer(&mut sim, A, sa, B, 2, msg, secs(10.0));
        assert_eq!(&got, msg);
        // 60 s of pure idleness.
        run_until(&mut sim, secs(70.0), |sim| sim.now() > secs(65.0));
        assert!(!any_failure(&sim, A) && !any_failure(&sim, B));
        assert!(
            sim.world.hosts[A].tcp.counters.keepalive_probes >= 10,
            "probes: {}",
            sim.world.hosts[A].tcp.counters.keepalive_probes
        );
    }
    // Case 2: peer silently dies (paused forever) — keepalive reaps the
    // idle connection in ~idle + retries × interval.
    {
        let mut sim = world(LinkParams::gige_lan(), cfg);
        let (sa, sb) = establish(&mut sim);
        let msg = b"warmup";
        let got = transfer(&mut sim, A, sa, B, sb, msg, secs(10.0));
        assert_eq!(&got, msg);
        let t0 = sim.now();
        pause(&mut sim, B); // dies idle: no data in flight, no rtx timer
        let ok = run_until(&mut sim, secs(120.0), |sim| any_failure(sim, A));
        assert!(ok, "keepalive never reaped the dead-peer connection");
        assert!(failed_with(&sim, A, TcpError::RetryTimeout));
        let elapsed = (sim.now() - t0).as_secs_f64();
        assert!(
            (4.0..9.0).contains(&elapsed),
            "reap after {elapsed:.1}s, expected ≈ 2 + 3×1 s"
        );
    }
}

#[test]
fn simultaneous_close_reaches_closed_on_both_sides() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    let got = transfer(&mut sim, A, sa, B, sb, b"payload", secs(5.0));
    assert_eq!(&got, b"payload");
    // Both sides close at the same instant: FIN crossing FIN.
    let now = local_now(&sim);
    sim.world.hosts[A].tcp.close(now, sa);
    sim.world.hosts[B].tcp.close(now, sb);
    drain(&mut sim, A);
    drain(&mut sim, B);
    let ok = run_until(&mut sim, secs(60.0), |sim| {
        sim.world.hosts[A]
            .events
            .iter()
            .any(|&(s, e)| s == sa && e == SockEvent::Closed)
            && sim.world.hosts[B]
                .events
                .iter()
                .any(|&(s, e)| s == sb && e == SockEvent::Closed)
    });
    assert!(ok, "simultaneous close never completed");
    assert!(!any_failure(&sim, A) && !any_failure(&sim, B));
}

#[test]
fn abort_sends_rst_and_peer_observes_reset() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    let got = transfer(&mut sim, A, sa, B, sb, b"x", secs(5.0));
    assert_eq!(&got, b"x");
    let now = local_now(&sim);
    sim.world.hosts[A].tcp.abort(now, sa);
    drain(&mut sim, A);
    let ok = run_until(&mut sim, secs(5.0), |sim| any_failure(sim, B));
    assert!(ok, "peer never saw the RST");
    assert!(failed_with(&sim, B, TcpError::Reset));
    // The aborting side's socket is gone immediately. (It may send more
    // than one RST: late segments from the peer hit the closed port and
    // get RFC-793 reset responses.)
    assert!(sim.world.hosts[A].tcp.state(sa).is_none());
    assert!(sim.world.hosts[A].tcp.counters.resets_sent >= 1);
}

#[test]
fn close_with_unsent_data_flushes_before_fin() {
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    // Queue 64 KiB and close immediately: everything must still arrive,
    // then EOF.
    let data = rand_payload(64 * 1024, 20);
    let now = local_now(&sim);
    let accepted = sim.world.hosts[A].tcp.send(now, sa, &data);
    assert_eq!(accepted, data.len());
    sim.world.hosts[A].tcp.close(now, sa);
    drain(&mut sim, A);
    let mut received = Vec::new();
    let ok = run_until(&mut sim, secs(30.0), |sim| {
        let avail = sim.world.hosts[B].tcp.readable_bytes(sb);
        if avail > 0 {
            let now = local_now(sim);
            let got = sim.world.hosts[B].tcp.recv(now, sb, avail);
            received.extend_from_slice(&got);
            drain(sim, B);
        }
        received.len() == data.len() && sim.world.hosts[B].tcp.at_eof(sb)
    });
    assert!(ok, "got {} of {} bytes", received.len(), data.len());
    assert_eq!(received, data);
}

/// Regression: an *immediate* pause (1 ms into the connection, mid-slow-start)
/// with a ~2 s outage used to livelock. Tens of kilobytes dropped at the
/// paused guest's vif left a large phantom flight; every RTO then reset cwnd,
/// so `min(cwnd, wnd) - flight` stayed pinned at zero and the connection
/// crawled at one MSS per backed-off timeout. The fix is classic BSD
/// go-back-N on timeout (pull `snd_nxt` back to the retransmitted head)
/// plus a separate `snd_max` high-water mark so the peer's cumulative ACK —
/// which may exceed the pulled-back `snd_nxt` — is still honoured.
#[test]
fn early_pause_with_long_outage_does_not_livelock() {
    let (pause_at_ms, down_ms, skew_us, seed) = (1u64, 1892u64, 345u64, 12074398752566233198u64);
    let mut sim = world(LinkParams::gige_lan(), TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    let data = rand_payload(300_000, seed ^ 0xBEEF);

    sim.schedule_at(
        SimTime::from_secs_f64(pause_at_ms as f64 / 1e3),
        move |sim| {
            pause(sim, A);
            let snap_a = snapshot(sim, A);
            sim.schedule_in(SimDuration::from_nanos(skew_us * 1000), move |sim| {
                pause(sim, B);
                let snap_b = snapshot(sim, B);
                sim.schedule_in(SimDuration::from_millis(down_ms), move |sim| {
                    restore(sim, A, snap_a);
                    sim.schedule_in(SimDuration::from_millis(1), move |sim| {
                        restore(sim, B, snap_b);
                    });
                });
            });
        },
    );

    let mut sent = 0;
    let mut received: Vec<u8> = Vec::new();
    // Without go-back-N this case needed >600 simulated seconds; with it the
    // stream finishes within a few RTOs of the restore.
    let horizon = secs(30.0);
    loop {
        if sent < data.len() && !sim.world.hosts[A].paused {
            let now = local_now(&sim);
            let n = sim.world.hosts[A].tcp.send(now, sa, &data[sent..]);
            sent += n;
            if n > 0 {
                drain(&mut sim, A);
            }
        }
        if !sim.world.hosts[B].paused {
            let avail = sim.world.hosts[B].tcp.readable_bytes(sb);
            if avail > 0 {
                let now = local_now(&sim);
                received.extend(sim.world.hosts[B].tcp.recv(now, sb, avail));
                drain(&mut sim, B);
            }
        }
        if received.len() >= data.len() {
            break;
        }
        assert!(
            sim.now() <= horizon,
            "livelocked at {} bytes",
            received.len()
        );
        assert!(sim.step(), "queue drained at {} bytes", received.len());
    }
    assert_eq!(received, data, "stream corrupted across early checkpoint");
}
