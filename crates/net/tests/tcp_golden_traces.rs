//! Golden segment-trace tests for the TCP sender path.
//!
//! Each scenario records every segment *emitted* by either stack
//! (src/dst port, flags, seq, ack, wnd, payload length — the full
//! `TcpSegment` debug line) and asserts the whole trace against a golden
//! digest captured **before** the zero-copy buffer rewrite. Any change to
//! segmentation boundaries, retransmission choices, ACK generation, window
//! advertisement, or FIN sequencing shows up as a digest mismatch, with the
//! full trace printed for diffing.
//!
//! Regenerate (after an *intentional* behavior change only):
//! `DUMP_TCP_GOLDEN=1 cargo test -p dvc-net --test tcp_golden_traces -- --nocapture`

use dvc_net::fabric::LinkParams;
use dvc_net::packet::{Packet, L4};
use dvc_net::tcp::{SockEvent, SockId, TcpConfig};
use dvc_net::testkit::{drain, local_now, run_until, DropRule, TestWorld};
use dvc_sim_core::{Sim, SimTime};

const A: usize = 0;
const B: usize = 1;

fn world(cfg: TcpConfig) -> Sim<TestWorld> {
    let mut sim = Sim::new(TestWorld::new(2, LinkParams::gige_lan(), cfg), 42);
    sim.world.log_segments = true;
    sim
}

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

fn establish(sim: &mut Sim<TestWorld>) -> (SockId, SockId) {
    let listener = sim.world.hosts[B].tcp.listen(7000).unwrap();
    let now = local_now(sim);
    let b_addr = sim.world.hosts[B].addr;
    let sock_a = sim.world.hosts[A].tcp.connect(now, b_addr, 7000);
    drain(sim, A);
    let ok = run_until(sim, secs(30.0), |sim| {
        sim.world.hosts[A]
            .events
            .iter()
            .any(|&(s, e)| s == sock_a && e == SockEvent::Connected)
            && sim.world.hosts[B]
                .events
                .iter()
                .any(|&(s, e)| s == listener && matches!(e, SockEvent::Incoming(_)))
    });
    assert!(ok, "connect did not complete");
    let sock_b = sim.world.hosts[B]
        .events
        .iter()
        .find_map(|&(s, e)| match e {
            SockEvent::Incoming(ns) if s == listener => Some(ns),
            _ => None,
        })
        .expect("no Incoming event");
    (sock_a, sock_b)
}

/// Deterministic payload (no RNG: goldens must not depend on rand internals).
fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 + 7) as u8).collect()
}

fn transfer(
    sim: &mut Sim<TestWorld>,
    sa: SockId,
    sb: SockId,
    data: &[u8],
    horizon: SimTime,
) -> Vec<u8> {
    let mut sent = 0usize;
    let mut received = Vec::with_capacity(data.len());
    loop {
        if sent < data.len() {
            let now = local_now(sim);
            let n = sim.world.hosts[A].tcp.send(now, sa, &data[sent..]);
            sent += n;
            if n > 0 {
                drain(sim, A);
            }
        }
        let avail = sim.world.hosts[B].tcp.readable_bytes(sb);
        if avail > 0 {
            let now = local_now(sim);
            let got = sim.world.hosts[B].tcp.recv(now, sb, avail);
            received.extend_from_slice(&got);
            drain(sim, B);
        }
        if received.len() >= data.len() || sim.now() > horizon {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    received
}

fn fnv64(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for l in lines {
        for b in l.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0x0a;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Assert the trace matches its golden (digest, line count); dump on demand.
fn check_golden(name: &str, log: &[String], want_lines: usize, want_digest: u64) {
    if std::env::var("DUMP_TCP_GOLDEN").is_ok() {
        println!(
            "=== {name}: {} lines, digest 0x{:016x}",
            log.len(),
            fnv64(log)
        );
        for l in log {
            println!("{l}");
        }
        return;
    }
    let digest = fnv64(log);
    if log.len() != want_lines || digest != want_digest {
        eprintln!(
            "--- {name}: got {} lines, digest 0x{digest:016x}",
            log.len()
        );
        for l in log {
            eprintln!("{l}");
        }
        panic!(
            "{name}: segment trace diverged from golden \
             (want {want_lines} lines / 0x{want_digest:016x})"
        );
    }
}

/// Bulk send: handshake, MSS segmentation of a 6000-byte stream, ACK clock.
#[test]
fn golden_bulk_send() {
    let mut sim = world(TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    let data = payload(6000);
    let got = transfer(&mut sim, sa, sb, &data, secs(30.0));
    assert_eq!(got, data);
    let log = sim.world.seg_log.clone();
    check_golden("bulk_send", &log, 13, 0x28f075518b3f5262);
}

/// One dropped data segment with too few dup-ACKs to fast-retransmit:
/// the RTO fires and go-back-N resends from the head.
#[test]
fn golden_retransmit_after_loss_rto() {
    let mut sim = world(TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    fn is_data_seg(p: &Packet) -> bool {
        matches!(&p.l4, L4::Tcp(s) if !s.payload.is_empty())
    }
    sim.world.drop_rules.push(DropRule {
        remaining: 1,
        pred: is_data_seg,
        dropped: 0,
    });
    let data = payload(3000);
    let got = transfer(&mut sim, sa, sb, &data, secs(60.0));
    assert_eq!(got, data);
    assert_eq!(sim.world.drop_rules[0].dropped, 1);
    assert!(sim.world.hosts[A].tcp.counters.timeouts > 0);
    let log = sim.world.seg_log.clone();
    check_golden("retransmit_rto", &log, 10, 0x621995ddb2900d3c);
}

/// One dropped data segment inside a long enough train that three dup-ACKs
/// arrive: fast retransmit repairs it without waiting for the RTO.
#[test]
fn golden_fast_retransmit() {
    let mut sim = world(TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    fn is_data_seg(p: &Packet) -> bool {
        matches!(&p.l4, L4::Tcp(s) if !s.payload.is_empty())
    }
    sim.world.drop_rules.push(DropRule {
        remaining: 1,
        pred: is_data_seg,
        dropped: 0,
    });
    let data = payload(20_000);
    let got = transfer(&mut sim, sa, sb, &data, secs(60.0));
    assert_eq!(got, data);
    assert!(sim.world.hosts[A].tcp.counters.fast_retransmits >= 1);
    let log = sim.world.seg_log.clone();
    check_golden("fast_retransmit", &log, 32, 0xf3716cf1d3064359);
}

/// Zero-window stall: the receiver stops reading, the sender probes the
/// closed window, then the reader drains and the stream completes.
#[test]
fn golden_zero_window_probe() {
    let cfg = TcpConfig {
        send_buf: 16 * 1024,
        recv_buf: 8 * 1024,
        ..TcpConfig::default()
    };
    let mut sim = world(cfg);
    let (sa, sb) = establish(&mut sim);
    let data = payload(30_000);
    // Phase 1: push without reading until the sender is fully blocked.
    let mut sent = 0;
    loop {
        let now = local_now(&sim);
        let n = sim.world.hosts[A].tcp.send(now, sa, &data[sent..]);
        sent += n;
        if n > 0 {
            drain(&mut sim, A);
        }
        if sent >= data.len() || !sim.step() || sim.now() > secs(20.0) {
            break;
        }
    }
    assert!(sent < data.len(), "flow control failed to block");
    assert!(
        sim.world.hosts[A].tcp.counters.zero_window_probes > 0,
        "no probes: {:?}",
        sim.world.hosts[A].tcp.counters
    );
    // Phase 2: read everything out.
    let mut received: Vec<u8> = Vec::new();
    loop {
        if sent < data.len() {
            let now = local_now(&sim);
            let n = sim.world.hosts[A].tcp.send(now, sa, &data[sent..]);
            sent += n;
            if n > 0 {
                drain(&mut sim, A);
            }
        }
        let avail = sim.world.hosts[B].tcp.readable_bytes(sb);
        if avail > 0 {
            let now = local_now(&sim);
            received.extend(sim.world.hosts[B].tcp.recv(now, sb, avail));
            drain(&mut sim, B);
        }
        if received.len() >= data.len() {
            break;
        }
        assert!(sim.now() <= secs(300.0), "stalled at {}", received.len());
        assert!(sim.step(), "queue empty mid-transfer");
    }
    assert_eq!(received, data);
    let log = sim.world.seg_log.clone();
    // Note: this trace interleaves app send/recv with individual sim steps,
    // so unlike the other goldens it also pins the harness's step timing:
    // cancelled timers must still surface as step instants (timed no-ops)
    // for this digest to hold across the cancellation rework.
    check_golden("zero_window", &log, 76, 0x947c2d29408eb90c);
}

/// Orderly FIN teardown after a short exchange: FIN/ACK sequencing and
/// TIME-WAIT on the active closer.
#[test]
fn golden_fin_teardown() {
    let mut sim = world(TcpConfig::default());
    let (sa, sb) = establish(&mut sim);
    let data = payload(500);
    let got = transfer(&mut sim, sa, sb, &data, secs(30.0));
    assert_eq!(got, data);
    let now = local_now(&sim);
    sim.world.hosts[A].tcp.close(now, sa);
    drain(&mut sim, A);
    run_until(&mut sim, secs(10.0), |sim| {
        sim.world.hosts[B]
            .events
            .iter()
            .any(|&(s, e)| s == sb && e == SockEvent::PeerClosed)
    });
    let now = local_now(&sim);
    sim.world.hosts[B].tcp.close(now, sb);
    drain(&mut sim, B);
    run_until(&mut sim, secs(30.0), |sim| {
        sim.world.hosts[B]
            .events
            .iter()
            .any(|&(s, e)| s == sb && e == SockEvent::Closed)
    });
    let log = sim.world.seg_log.clone();
    check_golden("fin_teardown", &log, 9, 0x9c04fb71d8dca7ad);
}
