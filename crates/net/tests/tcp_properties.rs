//! Property-based tests for the TCP implementation.
//!
//! The core invariant LSC inherits from the transport: **for any loss
//! pattern the fabric can produce, a stream either delivers exactly the
//! bytes that were sent, in order, or fails loudly** — never silently
//! corrupts, duplicates, or reorders.

use dvc_net::fabric::LinkParams;
use dvc_net::tcp::{SockEvent, SockId, TcpConfig};
use dvc_net::testkit::{drain, local_now, run_until, TestWorld};
use dvc_sim_core::{Sim, SimTime};
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};

const A: usize = 0;
const B: usize = 1;

fn establish(sim: &mut Sim<TestWorld>) -> (SockId, SockId) {
    let listener = sim.world.hosts[B].tcp.listen(7000).unwrap();
    let now = local_now(sim);
    let b_addr = sim.world.hosts[B].addr;
    let sock_a = sim.world.hosts[A].tcp.connect(now, b_addr, 7000);
    drain(sim, A);
    let ok = run_until(sim, SimTime::from_secs_f64(60.0), |sim| {
        sim.world.hosts[B]
            .events
            .iter()
            .any(|&(s, e)| s == listener && matches!(e, SockEvent::Incoming(_)))
    });
    assert!(ok, "handshake failed");
    let sock_b = sim.world.hosts[B]
        .events
        .iter()
        .find_map(|&(s, e)| match e {
            SockEvent::Incoming(ns) if s == listener => Some(ns),
            _ => None,
        })
        .unwrap();
    (sock_a, sock_b)
}

/// Drive a transfer to completion (or failure/horizon). Returns received.
fn pump_transfer(
    sim: &mut Sim<TestWorld>,
    sa: SockId,
    sb: SockId,
    data: &[u8],
    horizon_s: f64,
) -> Vec<u8> {
    let horizon = SimTime::from_secs_f64(horizon_s);
    let mut sent = 0;
    let mut received = Vec::with_capacity(data.len());
    loop {
        if sent < data.len() {
            let now = local_now(sim);
            let n = sim.world.hosts[A].tcp.send(now, sa, &data[sent..]);
            sent += n;
            if n > 0 {
                drain(sim, A);
            }
        }
        let avail = sim.world.hosts[B].tcp.readable_bytes(sb);
        if avail > 0 {
            let now = local_now(sim);
            received.extend(sim.world.hosts[B].tcp.recv(now, sb, avail));
            drain(sim, B);
        }
        if received.len() >= data.len() || sim.now() > horizon || !sim.step() {
            return received;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case simulates a full lossy transfer
        .. ProptestConfig::default()
    })]

    /// Any loss rate up to 10% and any payload up to 128 KiB: the stream is
    /// delivered intact (loss only slows it down).
    ///
    /// Uses a stock-Linux-like retry budget (`tcp_retries2 = 15`): the
    /// *delivery* property belongs to the retransmission machinery, not to
    /// the deliberately small LSC budget the experiments use — with a small
    /// budget, sustained 10% loss CAN legitimately abort a connection when
    /// an unlucky ACK-loss streak hits the end of the stream (where no
    /// fresh RTT samples bring the backed-off RTO down).
    #[test]
    fn lossy_transfer_is_exactly_once(
        loss in 0.0f64..0.10,
        len in 1usize..131_072,
        seed in any::<u64>(),
    ) {
        let cfg = TcpConfig {
            max_data_retries: 15,
            max_syn_retries: 7,
            rto_max_ns: 5_000_000_000, // cap backoff so the horizon holds
            ..TcpConfig::default()
        };
        let mut sim = Sim::new(
            TestWorld::new(2, LinkParams::gige_lan().with_loss(loss), cfg),
            seed,
        );
        let (sa, sb) = establish(&mut sim);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xDEAD);
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);

        let received = pump_transfer(&mut sim, sa, sb, &data, 3600.0);
        prop_assert_eq!(received.len(), data.len(), "incomplete after generous horizon");
        prop_assert_eq!(received, data);
    }

    /// Repeated pause/restore cycles of both endpoints (coordinated
    /// checkpoints) never corrupt the stream, for any cycle placement.
    #[test]
    fn repeated_coordinated_pauses_are_transparent(
        pause_at_ms in 1u64..200,
        down_ms in 1u64..2_000,
        skew_us in 0i64..3_000,
        seed in any::<u64>(),
    ) {
        use dvc_net::testkit::{pause, restore, snapshot};
        use dvc_sim_core::SimDuration;

        let mut sim = Sim::new(
            TestWorld::new(2, LinkParams::gige_lan(), TcpConfig::default()),
            seed,
        );
        let (sa, sb) = establish(&mut sim);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xBEEF);
        let mut data = vec![0u8; 300_000];
        rng.fill_bytes(&mut data);

        // Schedule a coordinated checkpoint mid-transfer with NTP-scale skew.
        let t0 = SimTime::from_secs_f64(pause_at_ms as f64 / 1e3);
        sim.schedule_at(t0, move |sim| {
            pause(sim, A);
            let snap_a = snapshot(sim, A);
            let skew = SimDuration::from_nanos((skew_us * 1000) as u64);
            sim.schedule_in(skew, move |sim| {
                pause(sim, B);
                let snap_b = snapshot(sim, B);
                let down = SimDuration::from_millis(down_ms);
                sim.schedule_in(down, move |sim| {
                    restore(sim, A, snap_a);
                    sim.schedule_in(SimDuration::from_millis(1), move |sim| {
                        restore(sim, B, snap_b);
                    });
                });
            });
        });

        let mut sent = 0;
        let mut received = Vec::new();
        let horizon = SimTime::from_secs_f64(600.0);
        loop {
            if sent < data.len() && !sim.world.hosts[A].paused {
                let now = local_now(&sim);
                let n = sim.world.hosts[A].tcp.send(now, sa, &data[sent..]);
                sent += n;
                if n > 0 { drain(&mut sim, A); }
            }
            if !sim.world.hosts[B].paused {
                let avail = sim.world.hosts[B].tcp.readable_bytes(sb);
                if avail > 0 {
                    let now = local_now(&sim);
                    received.extend(sim.world.hosts[B].tcp.recv(now, sb, avail));
                    drain(&mut sim, B);
                }
            }
            if received.len() >= data.len() { break; }
            prop_assert!(sim.now() <= horizon, "stalled at {} bytes", received.len());
            prop_assert!(sim.step(), "queue drained at {} bytes", received.len());
        }
        prop_assert_eq!(received, data);
    }
}
