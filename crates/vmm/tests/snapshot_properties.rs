//! Property tests for the O(dirty) COW snapshot path: whatever random
//! write sequence hits the guest, `GuestMem::snapshot()` must be
//! byte-for-byte equivalent to the O(guest) `deep_copy()` baseline it
//! replaced, stay frozen through post-snapshot COW writes, and the dirty
//! bitset must never under-report a touched page.

use dvc_vmm::mem::GuestMem;
use dvc_vmm::MemImage;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Guest footprints stay tiny (1–4 MB = 16–64 pages) so the page-index
/// space is densely exercised by the wrapped addresses.
fn arb_mem_mb() -> impl Strategy<Value = u32> {
    1u32..=4
}

/// `write_u64` wraps addresses into the footprint, so any usize is a valid
/// address; biasing some low keeps page 0 hot (repeated COW on one page).
/// Addresses are 8-aligned so no two writes partially overlap — the COW
/// machinery is page-granular, and alignment lets the tests model "last
/// write wins" per word exactly.
fn arb_writes() -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec(
        (
            prop_oneof![0usize..(64 << 10), any::<usize>()].prop_map(|a| a & !7),
            any::<u64>(),
        ),
        0..200,
    )
}

/// Compare two images over every word boundary of the footprint's pages
/// plus the exact addresses a write sequence touched.
fn images_equal(a: &MemImage, b: &MemImage, probes: &[usize]) -> Result<(), String> {
    for &addr in probes {
        if a.read_u64(addr) != b.read_u64(addr) {
            return Err(format!(
                "images disagree at {addr:#x}: {:#x} vs {:#x}",
                a.read_u64(addr),
                b.read_u64(addr)
            ));
        }
    }
    Ok(())
}

/// Every page-aligned word plus a stride through each page.
fn probe_set(mem_mb: u32, writes: &[(usize, u64)]) -> Vec<usize> {
    let pages = (mem_mb as usize) << 4; // 64 KiB pages
    let mut probes: Vec<usize> = writes.iter().map(|&(a, _)| a).collect();
    for p in 0..pages {
        for off in [0usize, 8, 4096, GuestMem::PAGE_SIZE - 8] {
            probes.push(p * GuestMem::PAGE_SIZE + off);
        }
    }
    probes
}

/// Distinct page indices a write sequence dirties (mirrors the wrapping
/// and clamping `write_u64` applies).
fn pages_touched(mem_mb: u32, writes: &[(usize, u64)]) -> BTreeSet<usize> {
    let footprint = ((mem_mb as usize) << 20).max(1);
    writes
        .iter()
        .map(|&(a, _)| (a % footprint) / GuestMem::PAGE_SIZE)
        .collect()
}

proptest! {
    /// The COW snapshot and the deep copy taken at the same instant read
    /// identically everywhere.
    #[test]
    fn snapshot_equals_deep_copy(mem_mb in arb_mem_mb(), writes in arb_writes()) {
        let mut mem = GuestMem::new(mem_mb);
        for &(a, v) in &writes {
            mem.write_u64(a, v);
        }
        let baseline = mem.deep_copy();
        let snap = mem.snapshot();
        let probes = probe_set(mem_mb, &writes);
        if let Err(e) = images_equal(&baseline, &snap, &probes) {
            prop_assert!(false, "{e}");
        }
        prop_assert_eq!(baseline.resident_pages(), snap.resident_pages());
    }

    /// Post-snapshot writes COW-fault and must never leak into the taken
    /// image: it stays equal to the deep baseline while the live guest
    /// diverges arbitrarily.
    #[test]
    fn snapshot_is_frozen_against_later_writes(
        mem_mb in arb_mem_mb(),
        before in arb_writes(),
        after in arb_writes(),
    ) {
        let mut mem = GuestMem::new(mem_mb);
        for &(a, v) in &before {
            mem.write_u64(a, v);
        }
        let baseline = mem.deep_copy();
        let snap = mem.snapshot();
        for &(a, v) in &after {
            // Write something different from what the page holds, so a
            // botched COW would actually change observable bytes.
            mem.write_u64(a, v ^ 0x5a5a_5a5a_5a5a_5a5a);
        }
        let probes = probe_set(mem_mb, &before);
        if let Err(e) = images_equal(&baseline, &snap, &probes) {
            prop_assert!(false, "post-snapshot writes leaked into the image: {e}");
        }
        // And the live guest still reads back its own latest writes.
        let mut last: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
        let footprint = ((mem_mb as usize) << 20).max(1);
        for &(a, v) in &after {
            // Writes at different raw addresses can clamp to the same word
            // (offset clamp at page end); replay the clamp to keep only the
            // final value per effective word.
            let a = a % footprint;
            let (pi, off) = (a / GuestMem::PAGE_SIZE, a % GuestMem::PAGE_SIZE);
            let eff = pi * GuestMem::PAGE_SIZE + off.min(GuestMem::PAGE_SIZE - 8);
            last.insert(eff, v ^ 0x5a5a_5a5a_5a5a_5a5a);
        }
        for (&a, &v) in &last {
            prop_assert_eq!(mem.read_u64(a), v);
        }
    }

    /// The dirty bitset never under-reports: every distinct page written
    /// since the last snapshot is accounted (the model marks exactly, so
    /// this pins equality, the stronger contract).
    #[test]
    fn dirty_accounting_never_under_reports(
        mem_mb in arb_mem_mb(),
        before in arb_writes(),
        after in arb_writes(),
    ) {
        let mut mem = GuestMem::new(mem_mb);
        for &(a, v) in &before {
            mem.write_u64(a, v);
        }
        prop_assert_eq!(mem.dirty_pages(), pages_touched(mem_mb, &before).len());
        let _ = mem.snapshot(); // resets the dirty set
        prop_assert_eq!(mem.dirty_pages(), 0);
        for &(a, v) in &after {
            mem.write_u64(a, v);
        }
        let touched = pages_touched(mem_mb, &after);
        prop_assert!(
            mem.dirty_pages() >= touched.len(),
            "dirty under-reports: {} < {} touched",
            mem.dirty_pages(),
            touched.len()
        );
        prop_assert_eq!(mem.dirty_pages(), touched.len());
    }

    /// Restore round-trip: a guest restored from a snapshot reads exactly
    /// what the snapshot holds, and a fresh snapshot of it equals the
    /// original image.
    #[test]
    fn restore_round_trips(mem_mb in arb_mem_mb(), writes in arb_writes()) {
        let mut mem = GuestMem::new(mem_mb);
        for &(a, v) in &writes {
            mem.write_u64(a, v);
        }
        let snap = mem.snapshot();
        let mut other = GuestMem::new(mem_mb);
        other.restore(&snap);
        let again = other.snapshot();
        let probes = probe_set(mem_mb, &writes);
        if let Err(e) = images_equal(&snap, &again, &probes) {
            prop_assert!(false, "restore+snapshot drifted: {e}");
        }
    }
}
