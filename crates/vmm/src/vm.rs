//! Virtual machine domains: lifecycle, overhead profiles, snapshots.

use crate::guest::GuestOs;
use crate::mem::GuestMem;
use dvc_sim_core::{SimDuration, SimTime};

/// A domain identifier, unique across the whole simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VmId(pub u32);

/// Domain lifecycle state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmState {
    /// Booting: image staged, guest not yet running.
    Booting,
    Running,
    /// Paused: vCPUs stopped, NIC detached, timers frozen.
    Paused,
    /// Being serialized to storage (guest is paused throughout).
    Saving,
    /// Destroyed (shut down, or its host crashed).
    Dead,
}

/// Virtualization overhead profile (paper §1 and §4: para-virtualized Xen
/// vs. next-generation Intel VT / AMD Pacifica hardware assist "at near
/// native speed, reducing the overhead of this approach to near zero").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadProfile {
    pub name: &'static str,
    /// Multiplier on guest CPU time (1.0 = native).
    pub cpu_factor: f64,
    /// Multiplier on the guest's per-packet processing cost (native ≈ a few
    /// µs per packet; Xen-era para-virt netfront/netback paid ~3× that —
    /// cf. Menon et al. 2006 — which is why DomU networking could not
    /// saturate GigE; hardware assist recovers most of it).
    pub net_factor: f64,
}

impl OverheadProfile {
    /// Bare metal (the "native" baseline in overhead experiments).
    pub const NATIVE: OverheadProfile = OverheadProfile {
        name: "native",
        cpu_factor: 1.0,
        net_factor: 1.0,
    };
    /// Xen-era para-virtualization: a few percent CPU, ~3× per-packet I/O.
    pub const PARAVIRT: OverheadProfile = OverheadProfile {
        name: "paravirt",
        cpu_factor: 1.05,
        net_factor: 3.0,
    };
    /// Hardware-assisted (Intel VT / AMD Pacifica): near native.
    pub const HVM_ASSIST: OverheadProfile = OverheadProfile {
        name: "hvm-assist",
        cpu_factor: 1.01,
        net_factor: 1.3,
    };

    /// Stretch a guest compute duration by the CPU overhead.
    pub fn stretch_cpu(&self, d: SimDuration) -> SimDuration {
        d * self.cpu_factor
    }
}

/// A virtual machine (Xen domain).
#[derive(Clone, Debug)]
pub struct Vm {
    pub id: VmId,
    pub mem_mb: u32,
    pub vcpus: u32,
    pub state: VmState,
    pub overhead: OverheadProfile,
    pub guest: GuestOs,
    /// Bumped on every pause/restore; events captured with an older epoch
    /// self-invalidate (the timer-generation pattern).
    pub epoch: u64,
    /// Wall-clock bookkeeping for experiments.
    pub total_paused: SimDuration,
    pub pause_count: u32,
    /// Host-side bookkeeping: ingress packet-processing queue tail (models
    /// the virtualization I/O overhead as serialized per-packet work).
    pub rx_busy_until: SimTime,
}

impl Vm {
    pub fn new(
        id: VmId,
        mem_mb: u32,
        vcpus: u32,
        overhead: OverheadProfile,
        mut guest: GuestOs,
    ) -> Self {
        // The domain provisions the guest's physical memory footprint.
        if guest.mem.mem_mb() != mem_mb {
            guest.mem = GuestMem::new(mem_mb);
        }
        Vm {
            id,
            mem_mb,
            vcpus,
            state: VmState::Booting,
            overhead,
            guest,
            epoch: 0,
            total_paused: SimDuration::ZERO,
            pause_count: 0,
            rx_busy_until: SimTime::ZERO,
        }
    }

    /// The bytes a whole-VM snapshot must persist: the full guest memory
    /// footprint (the paper: "the state of the entire guest environment is
    /// saved (all memory available to the guest including the guest
    /// kernel)").
    pub fn image_bytes(&self) -> u64 {
        self.mem_mb as u64 * 1024 * 1024
    }

    pub fn is_running(&self) -> bool {
        self.state == VmState::Running
    }

    /// Pause the domain (vCPUs stop; the caller detaches the NIC binding).
    pub fn pause(&mut self) {
        debug_assert!(matches!(self.state, VmState::Running));
        self.state = VmState::Paused;
        self.epoch += 1;
        self.pause_count += 1;
    }

    /// Take a snapshot of the paused domain. O(dirty): the guest's memory
    /// pages are shared with the image (`Arc` clones, no byte copies) and
    /// the dirty set is reset, so the only bytes ever duplicated are the
    /// COW faults on pages the guest writes *after* this call. The *time*
    /// cost (serializing `image_bytes()` to storage) is still modelled by
    /// the caller against the storage subsystem.
    pub fn snapshot(&mut self, taken_at: SimTime) -> VmImage {
        debug_assert!(
            matches!(self.state, VmState::Paused | VmState::Saving),
            "snapshot of a running domain would be inconsistent"
        );
        let mut img = VmImage {
            vm: self.id,
            mem_mb: self.mem_mb,
            vcpus: self.vcpus,
            overhead: self.overhead,
            guest: self.guest.clone(),
            taken_at,
            stored_checksum: 0,
        };
        self.guest.mem.clear_dirty();
        img.stored_checksum = img.content_checksum();
        img
    }

    /// Resume a paused domain in place (no state replacement).
    pub fn resume(&mut self) {
        debug_assert!(matches!(self.state, VmState::Paused | VmState::Saving));
        self.state = VmState::Running;
        self.epoch += 1;
    }

    /// Replace the guest with a saved image and resume (restore path). The
    /// domain may live on a different physical node than the image's origin.
    /// Callers are expected to [`VmImage::verify`] first — restoring a
    /// corrupt image is how silent storage rot becomes a crashed guest.
    pub fn restore_from(&mut self, image: &VmImage) {
        self.mem_mb = image.mem_mb;
        self.vcpus = image.vcpus;
        self.overhead = image.overhead;
        self.guest = image.guest.clone();
        self.state = VmState::Running;
        self.epoch += 1;
    }

    pub fn destroy(&mut self) {
        self.state = VmState::Dead;
        self.epoch += 1;
    }
}

/// A saved domain image (a consistent snapshot of one VM).
///
/// Images carry an end-to-end checksum taken at snapshot time. The stored
/// copy's checksum can later diverge (silent corruption injected on the
/// storage write path); [`VmImage::verify`] compares the stored checksum
/// against a recomputation over the logical content, which is exactly the
/// check the hardened checkpoint pipeline runs on save *and* restore.
#[derive(Clone)]
pub struct VmImage {
    pub vm: VmId,
    pub mem_mb: u32,
    pub vcpus: u32,
    pub overhead: OverheadProfile,
    pub guest: GuestOs,
    pub taken_at: SimTime,
    /// Checksum recorded alongside the stored bytes. Equal to
    /// [`VmImage::content_checksum`] when intact; anything else means rot.
    pub stored_checksum: u64,
}

impl VmImage {
    pub fn size_bytes(&self) -> u64 {
        self.mem_mb as u64 * 1024 * 1024
    }

    /// Checksum over the image's logical content (FNV-1a over the identity
    /// and guest-visible state — a stand-in for hashing the memory pages).
    pub fn content_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.vm.0 as u64);
        mix(self.mem_mb as u64);
        mix(self.vcpus as u64);
        mix(self.taken_at.nanos());
        mix(self.guest.kmsg.len() as u64);
        mix(self.guest.mem.version());
        mix(self.guest.mem.resident_pages() as u64);
        h
    }

    /// True when the stored copy still matches its content.
    pub fn verify(&self) -> bool {
        self.stored_checksum == self.content_checksum()
    }

    /// Flip the stored checksum — models a silent bit-rot event on the
    /// storage path that only an end-to-end verify can catch.
    pub fn corrupt_silently(&mut self) {
        self.stored_checksum ^= 0xDEAD_BEEF_0BAD_F00D;
    }
}

impl std::fmt::Debug for VmImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VmImage(vm={:?}, {} MB, taken at {})",
            self.vm, self.mem_mb, self.taken_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvc_net::addr::VirtAddr;
    use dvc_net::tcp::TcpConfig;

    fn vm() -> Vm {
        let guest = GuestOs::new(VirtAddr(7).into(), TcpConfig::default());
        let mut v = Vm::new(VmId(1), 256, 1, OverheadProfile::PARAVIRT, guest);
        v.state = VmState::Running;
        v
    }

    #[test]
    fn image_size_is_memory_footprint() {
        let v = vm();
        assert_eq!(v.image_bytes(), 256 * 1024 * 1024);
    }

    #[test]
    fn pause_snapshot_restore_cycle() {
        let mut v = vm();
        let e0 = v.epoch;
        v.pause();
        assert_eq!(v.state, VmState::Paused);
        assert!(v.epoch > e0);
        let img = v.snapshot(SimTime::ZERO);
        assert_eq!(img.size_bytes(), v.image_bytes());
        v.resume();
        assert!(v.is_running());

        // Mutate guest, then roll back via the image.
        v.guest.log_kmsg(0, "after snapshot");
        assert_eq!(v.guest.kmsg.len(), 1);
        v.pause();
        v.restore_from(&img);
        assert!(v.is_running());
        assert_eq!(v.guest.kmsg.len(), 0, "rolled back");
        assert_eq!(v.pause_count, 2);
    }

    #[test]
    fn checksum_catches_silent_corruption() {
        let mut v = vm();
        v.pause();
        let mut img = v.snapshot(SimTime::ZERO);
        assert!(img.verify(), "fresh snapshot must verify");
        img.corrupt_silently();
        assert!(!img.verify(), "rotted image must fail verify");
        img.corrupt_silently();
        assert!(img.verify(), "corruption model is an involution");
        // Different content ⇒ different checksum.
        v.guest.log_kmsg(0, "dirty");
        let img2 = v.snapshot(SimTime::ZERO);
        assert_ne!(img.content_checksum(), img2.content_checksum());
    }

    #[test]
    fn overhead_profiles_order_correctly() {
        let d = SimDuration::from_secs(100);
        let native = OverheadProfile::NATIVE.stretch_cpu(d);
        let hvm = OverheadProfile::HVM_ASSIST.stretch_cpu(d);
        let pv = OverheadProfile::PARAVIRT.stretch_cpu(d);
        assert!(native < hvm && hvm < pv);
        assert_eq!(native, d);
        // Para-virt ≈ 5% CPU overhead.
        assert!((pv.as_secs_f64() / d.as_secs_f64() - 1.05).abs() < 1e-9);
    }

    #[test]
    fn epoch_invalidates_on_every_transition() {
        let mut v = vm();
        let mut seen = vec![v.epoch];
        v.pause();
        seen.push(v.epoch);
        v.resume();
        seen.push(v.epoch);
        v.destroy();
        seen.push(v.epoch);
        for w in seen.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
