//! Pre-copy live-migration cost model.
//!
//! The paper's future work ("Extending LSC to enable parallel migration is
//! the next step") needs a cost model for moving a running domain: iterative
//! pre-copy rounds transfer the memory image while the guest keeps dirtying
//! pages; when the remaining dirty set is small enough (or the round budget
//! is exhausted) the guest is stopped and the residue copied — that
//! stop-and-copy phase is the migration *downtime*.
//!
//! This module is the analytic model (validated against the usual closed
//! form); `dvc-core` uses it to schedule migration phases on the event
//! queue.

use dvc_sim_core::SimDuration;

/// Parameters of one pre-copy migration.
#[derive(Clone, Copy, Debug)]
pub struct PrecopyParams {
    /// Guest memory footprint, bytes.
    pub mem_bytes: u64,
    /// Rate at which the workload dirties memory, bytes/s.
    pub dirty_bps: f64,
    /// Migration link bandwidth, bytes/s.
    pub link_bps: f64,
    /// Stop-and-copy when the dirty residue drops below this, bytes.
    pub stop_threshold_bytes: u64,
    /// Hard cap on pre-copy rounds (Xen default-ish).
    pub max_rounds: u32,
}

impl Default for PrecopyParams {
    fn default() -> Self {
        PrecopyParams {
            mem_bytes: 256 << 20,
            dirty_bps: 20.0e6,
            link_bps: 117.0e6,
            stop_threshold_bytes: 1 << 20,
            max_rounds: 30,
        }
    }
}

/// The outcome of a planned pre-copy migration.
#[derive(Clone, Debug, PartialEq)]
pub struct PrecopyPlan {
    /// Bytes sent per pre-copy round (round 0 = full memory).
    pub round_bytes: Vec<u64>,
    /// Bytes copied during stop-and-copy.
    pub final_bytes: u64,
    /// Total wall time of the live phase.
    pub live_time: SimDuration,
    /// Guest downtime (stop-and-copy transfer time).
    pub downtime: SimDuration,
}

impl PrecopyPlan {
    pub fn total_bytes(&self) -> u64 {
        self.round_bytes.iter().sum::<u64>() + self.final_bytes
    }
    pub fn total_time(&self) -> SimDuration {
        self.live_time + self.downtime
    }
}

/// Plan a pre-copy migration.
///
/// Round *i* transfers the pages dirtied during round *i−1*; with dirty rate
/// `d` and bandwidth `b`, each round shrinks the working set by the factor
/// `d/b` (when `d < b`). Rounds stop when the residue is below the stop
/// threshold or the round cap is hit (a `d ≥ b` workload never converges —
/// exactly why LSC's stop-the-world checkpoint is the robust fallback).
pub fn plan_precopy(p: PrecopyParams) -> PrecopyPlan {
    assert!(p.link_bps > 0.0);
    let mut round_bytes = Vec::new();
    let mut to_send = p.mem_bytes;
    let mut live = 0.0f64;
    for _ in 0..p.max_rounds {
        if to_send <= p.stop_threshold_bytes {
            break;
        }
        round_bytes.push(to_send);
        let round_time = to_send as f64 / p.link_bps;
        live += round_time;
        // Pages dirtied while this round was in flight become the next round.
        let dirtied = (p.dirty_bps * round_time) as u64;
        let next = dirtied.min(p.mem_bytes);
        if next >= to_send && next > p.stop_threshold_bytes {
            // Not converging (dirty rate ≥ bandwidth): one more round then stop.
            to_send = next;
            break;
        }
        to_send = next;
    }
    let final_bytes = to_send;
    let downtime = final_bytes as f64 / p.link_bps;
    PrecopyPlan {
        round_bytes,
        final_bytes,
        live_time: SimDuration::from_secs_f64(live),
        downtime: SimDuration::from_secs_f64(downtime),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_guest_migrates_in_one_round() {
        let plan = plan_precopy(PrecopyParams {
            mem_bytes: 100 << 20,
            dirty_bps: 0.0,
            ..PrecopyParams::default()
        });
        assert_eq!(plan.round_bytes.len(), 1);
        assert_eq!(plan.final_bytes, 0);
        assert_eq!(plan.downtime, SimDuration::ZERO);
        assert_eq!(plan.total_bytes(), 100 << 20);
    }

    #[test]
    fn moderate_dirty_rate_converges_geometrically() {
        let p = PrecopyParams {
            mem_bytes: 256 << 20,
            dirty_bps: 20.0e6,
            link_bps: 100.0e6,
            stop_threshold_bytes: 1 << 20,
            max_rounds: 30,
        };
        let plan = plan_precopy(p);
        // Ratio d/b = 0.2: rounds shrink ~5× each.
        assert!(plan.round_bytes.len() >= 3 && plan.round_bytes.len() < 15);
        for w in plan.round_bytes.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert!(plan.final_bytes <= p.stop_threshold_bytes);
        // Downtime ≪ total: that's the point of live migration.
        assert!(plan.downtime.as_secs_f64() < 0.05 * plan.total_time().as_secs_f64());
    }

    #[test]
    fn hot_guest_does_not_converge() {
        let p = PrecopyParams {
            mem_bytes: 256 << 20,
            dirty_bps: 150.0e6,
            link_bps: 100.0e6,
            stop_threshold_bytes: 1 << 20,
            max_rounds: 30,
        };
        let plan = plan_precopy(p);
        // Non-convergent: big residue, downtime comparable to a full copy
        // of the dirtied set.
        assert!(plan.final_bytes > (64 << 20));
        assert!(plan.downtime.as_secs_f64() > 0.5);
    }

    #[test]
    fn round_cap_bounds_live_phase() {
        let p = PrecopyParams {
            mem_bytes: 1 << 30,
            dirty_bps: 99.0e6,
            link_bps: 100.0e6,
            stop_threshold_bytes: 4096,
            max_rounds: 5,
        };
        let plan = plan_precopy(p);
        assert!(plan.round_bytes.len() <= 5);
    }

    #[test]
    fn total_time_is_consistent() {
        let plan = plan_precopy(PrecopyParams::default());
        let sum = plan.total_bytes() as f64 / PrecopyParams::default().link_bps;
        assert!((plan.total_time().as_secs_f64() - sum).abs() < 1e-6);
    }
}
