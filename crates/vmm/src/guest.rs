//! Guest operating-system state: processes, kernel log, watchdog, disk.
//!
//! Everything here is `Clone`; cloning a [`GuestOs`] *is* taking a VM
//! snapshot. Guest applications implement [`GuestProc`] — a resumable state
//! machine polled by the host glue — and keep all of their state in `self`,
//! which makes them checkpoint for free.

use crate::mem::GuestMem;
use dvc_net::tcp::{LocalNs, TcpStack};
use dvc_net::udp::UdpStack;
use dvc_net::Addr;
use dvc_sim_core::SimDuration;
use std::sync::Arc;

/// Result of polling a guest process.
#[derive(Clone, Debug, PartialEq)]
pub enum ProcPoll {
    /// The process wants to burn this much guest CPU time, then run again.
    /// (The glue stretches it by the VM's virtualization overhead factor.)
    Compute(SimDuration),
    /// The process is waiting on socket readiness; re-poll on network events.
    Blocked,
    /// The process sleeps until the given guest (= host) wall-clock instant.
    SleepUntil(LocalNs),
    /// Finished successfully.
    Done,
    /// Crashed; the reason is recorded on the process.
    Failed(String),
}

/// Scheduler-visible process state.
#[derive(Clone, Debug, PartialEq)]
pub enum ProcState {
    Runnable,
    Blocked,
    Sleeping(LocalNs),
    Done,
    Failed(String),
}

impl ProcState {
    pub fn is_live(&self) -> bool {
        matches!(
            self,
            ProcState::Runnable | ProcState::Blocked | ProcState::Sleeping(_)
        )
    }
}

/// What a process sees of its kernel when polled.
pub struct GuestCtx<'a> {
    /// Guest wall-clock "now" (host clock: time is not virtualized).
    pub now: LocalNs,
    pub tcp: &'a mut TcpStack,
    pub udp: &'a mut UdpStack,
    pub disk: &'a mut VirtDisk,
    pub kmsg: &'a mut Vec<KmsgEntry>,
    /// Guest physical memory (COW pages; see [`crate::mem`]). Writes here
    /// are what make the next checkpoint pay for dirty pages.
    pub mem: &'a mut GuestMem,
}

/// A resumable guest application. `poll` is called whenever the process is
/// runnable, a socket event arrived, or its sleep/compute finished; all state
/// must live in `self` so snapshots capture it.
pub trait GuestProc: 'static {
    fn poll(&mut self, ctx: &mut GuestCtx<'_>) -> ProcPoll;
    fn clone_box(&self) -> Box<dyn GuestProc>;
    fn name(&self) -> &str {
        "proc"
    }
    /// Downcast support for tests / result extraction.
    fn as_any(&self) -> &dyn std::any::Any;
}

impl Clone for Box<dyn GuestProc> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// One process table entry.
#[derive(Clone)]
pub struct Process {
    pub name: String,
    pub state: ProcState,
    /// Guest-scheduler bookkeeping: wall-clock instant at which the current
    /// compute slice completes (part of the snapshot, like a kernel's
    /// runqueue deadline). A restore with jumped wall time treats an expired
    /// deadline as complete — an error bounded by one compute slice.
    pub compute_due: Option<LocalNs>,
    pub app: Box<dyn GuestProc>,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Process({} {:?})", self.name, self.state)
    }
}

/// A kernel log line. The text is refcounted so snapshotting a guest clones
/// the ring at pointer cost instead of re-allocating every line.
#[derive(Clone, Debug, PartialEq)]
pub struct KmsgEntry {
    pub at: LocalNs,
    pub msg: Arc<str>,
}

/// Guest kernel message ring bound.
pub const KMSG_CAP: usize = 4096;

/// The guest software watchdog (paper §3.2). It must be petted at least once
/// per `period_ns` of *wall* time; a save/restore cycle jumps wall time and
/// therefore always trips it exactly once.
#[derive(Clone, Debug)]
pub struct Watchdog {
    pub period_ns: i64,
    pub last_pet: LocalNs,
    pub timeouts: u32,
}

impl Watchdog {
    pub fn new(period_ns: i64) -> Self {
        Watchdog {
            period_ns,
            last_pet: 0,
            timeouts: 0,
        }
    }

    pub fn pet(&mut self, now: LocalNs) {
        self.last_pet = now;
    }

    /// Check for expiry; returns `true` (once) per missed period.
    pub fn check(&mut self, now: LocalNs) -> bool {
        if now - self.last_pet > self.period_ns {
            self.timeouts += 1;
            self.last_pet = now;
            true
        } else {
            false
        }
    }
}

/// A local virtual block device with a serial bandwidth model — used by
/// application-level checkpointing (workloads writing their own state).
#[derive(Clone, Debug)]
pub struct VirtDisk {
    /// Sustained write bandwidth, bytes/s.
    pub write_bps: f64,
    /// Device busy-until, in guest wall-clock ns.
    busy_until: LocalNs,
    pub bytes_written: u64,
}

impl VirtDisk {
    pub fn new(write_bps: f64) -> Self {
        VirtDisk {
            write_bps,
            busy_until: 0,
            bytes_written: 0,
        }
    }

    /// Issue a write of `bytes`; returns the completion instant (guest wall
    /// clock). Writes are serialized FIFO on the device.
    pub fn write(&mut self, now: LocalNs, bytes: u64) -> LocalNs {
        let start = now.max(self.busy_until);
        let dur = (bytes as f64 / self.write_bps * 1e9) as i64;
        self.busy_until = start + dur;
        self.bytes_written += bytes;
        self.busy_until
    }

    pub fn idle_at(&self) -> LocalNs {
        self.busy_until
    }
}

/// The complete guest operating system state.
#[derive(Clone)]
pub struct GuestOs {
    pub addr: Addr,
    pub tcp: TcpStack,
    pub udp: UdpStack,
    pub procs: Vec<Process>,
    pub kmsg: Vec<KmsgEntry>,
    pub watchdog: Watchdog,
    pub disk: VirtDisk,
    /// Guest physical memory. Sized by [`crate::vm::Vm::new`] (a bare
    /// `GuestOs` starts with a zero-page footprint).
    pub mem: GuestMem,
    /// Wall-clock instant at which the guest was suspended (part of the
    /// snapshot). On resume, in-progress compute slices are shifted by the
    /// suspension length — a paused vCPU does no work — while wall-clock
    /// alarms (`SleepUntil`) are NOT shifted: time is not virtualized, so a
    /// restored guest finds those deadlines already expired.
    pub suspended_at: Option<LocalNs>,
}

impl GuestOs {
    pub fn new(addr: Addr, tcp_cfg: dvc_net::tcp::TcpConfig) -> Self {
        GuestOs {
            addr,
            tcp: TcpStack::new(addr, tcp_cfg),
            udp: UdpStack::new(addr),
            procs: Vec::new(),
            kmsg: Vec::new(),
            watchdog: Watchdog::new(30_000_000_000), // 30 s period
            mem: GuestMem::new(0),
            disk: VirtDisk::new(80.0e6), // 80 MB/s scratch disk
            suspended_at: None,
        }
    }

    /// Record the suspension instant (called by the hypervisor on pause).
    pub fn note_suspend(&mut self, now: LocalNs) {
        self.suspended_at = Some(now);
    }

    /// Shift in-progress compute slices by the suspension length; returns
    /// the wall delta, if the guest was indeed suspended.
    pub fn note_resume(&mut self, now: LocalNs) -> Option<LocalNs> {
        let t0 = self.suspended_at.take()?;
        let delta = (now - t0).max(0);
        for p in &mut self.procs {
            if let Some(due) = &mut p.compute_due {
                *due += delta;
            }
        }
        Some(delta)
    }

    /// Spawn a process; returns its index.
    pub fn spawn(&mut self, name: impl Into<String>, app: Box<dyn GuestProc>) -> usize {
        self.procs.push(Process {
            name: name.into(),
            state: ProcState::Runnable,
            compute_due: None,
            app,
        });
        self.procs.len() - 1
    }

    /// Append to the kernel log (bounded ring).
    pub fn log_kmsg(&mut self, at: LocalNs, msg: impl Into<String>) {
        if self.kmsg.len() >= KMSG_CAP {
            self.kmsg.remove(0);
        }
        self.kmsg.push(KmsgEntry {
            at,
            msg: msg.into().into(),
        });
    }

    /// Poll process `idx` and update its recorded state.
    /// Returns the poll result, or `None` if the process is not live.
    pub fn poll_proc(&mut self, idx: usize, now: LocalNs) -> Option<ProcPoll> {
        let GuestOs {
            tcp,
            udp,
            procs,
            kmsg,
            disk,
            mem,
            ..
        } = self;
        let proc = procs.get_mut(idx)?;
        if !proc.state.is_live() {
            return None;
        }
        let mut ctx = GuestCtx {
            now,
            tcp,
            udp,
            disk,
            kmsg,
            mem,
        };
        let poll = proc.app.poll(&mut ctx);
        proc.state = match &poll {
            ProcPoll::Compute(_) => ProcState::Runnable,
            ProcPoll::Blocked => ProcState::Blocked,
            ProcPoll::SleepUntil(t) => ProcState::Sleeping(*t),
            ProcPoll::Done => ProcState::Done,
            ProcPoll::Failed(e) => ProcState::Failed(e.clone()),
        };
        Some(poll)
    }

    /// True while any process is still live.
    pub fn has_live_procs(&self) -> bool {
        self.procs.iter().any(|p| p.state.is_live())
    }

    /// First failure recorded on any process, if any.
    pub fn first_failure(&self) -> Option<(&str, &str)> {
        self.procs.iter().find_map(|p| match &p.state {
            ProcState::Failed(e) => Some((p.name.as_str(), e.as_str())),
            _ => None,
        })
    }

    /// All processes finished successfully.
    pub fn all_done(&self) -> bool {
        !self.procs.is_empty() && self.procs.iter().all(|p| p.state == ProcState::Done)
    }

    /// Watchdog bookkeeping at instant `now`; logs a kmsg on expiry.
    /// Returns whether a timeout fired.
    pub fn watchdog_check(&mut self, now: LocalNs) -> bool {
        if self.watchdog.check(now) {
            self.log_kmsg(
                now,
                format!(
                    "watchdog: BUG: soft lockup - CPU stuck (missed period #{})",
                    self.watchdog.timeouts
                ),
            );
            true
        } else {
            false
        }
    }
}

impl std::fmt::Debug for GuestOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GuestOs({:?}, {} procs, {} kmsg, wd_timeouts={})",
            self.addr,
            self.procs.len(),
            self.kmsg.len(),
            self.watchdog.timeouts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvc_net::addr::VirtAddr;
    use dvc_net::tcp::TcpConfig;

    /// A tiny test app: computes three slices then exits.
    #[derive(Clone)]
    struct ThreeSteps {
        left: u32,
    }

    impl GuestProc for ThreeSteps {
        fn poll(&mut self, _ctx: &mut GuestCtx<'_>) -> ProcPoll {
            if self.left == 0 {
                ProcPoll::Done
            } else {
                self.left -= 1;
                ProcPoll::Compute(SimDuration::from_millis(10))
            }
        }
        fn clone_box(&self) -> Box<dyn GuestProc> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn guest() -> GuestOs {
        GuestOs::new(VirtAddr(1).into(), TcpConfig::default())
    }

    #[test]
    fn spawn_and_poll_to_completion() {
        let mut g = guest();
        let idx = g.spawn("steps", Box::new(ThreeSteps { left: 3 }));
        assert!(g.has_live_procs());
        let mut polls = 0;
        while g.procs[idx].state.is_live() {
            g.poll_proc(idx, 0).unwrap();
            polls += 1;
            assert!(polls < 10);
        }
        assert_eq!(polls, 4); // 3 computes + final Done
        assert!(g.all_done());
        assert!(!g.has_live_procs());
    }

    #[test]
    fn snapshot_is_independent_deep_copy() {
        let mut g = guest();
        let idx = g.spawn("steps", Box::new(ThreeSteps { left: 3 }));
        g.poll_proc(idx, 0); // left: 3 -> 2
        let snap = g.clone();
        // Drive the original to completion.
        while g.procs[idx].state.is_live() {
            g.poll_proc(idx, 0);
        }
        assert!(g.all_done());
        // The snapshot still has 2 steps left: resume it independently.
        let mut restored = snap;
        assert!(restored.has_live_procs());
        let mut polls = 0;
        while restored.procs[idx].state.is_live() {
            restored.poll_proc(idx, 0);
            polls += 1;
        }
        assert_eq!(polls, 3); // 2 computes + Done
    }

    #[test]
    fn failed_proc_is_reported() {
        #[derive(Clone)]
        struct Crasher;
        impl GuestProc for Crasher {
            fn poll(&mut self, _ctx: &mut GuestCtx<'_>) -> ProcPoll {
                ProcPoll::Failed("segfault".into())
            }
            fn clone_box(&self) -> Box<dyn GuestProc> {
                Box::new(self.clone())
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let mut g = guest();
        let idx = g.spawn("crasher", Box::new(Crasher));
        g.poll_proc(idx, 0);
        let (name, err) = g.first_failure().unwrap();
        assert_eq!(name, "crasher");
        assert_eq!(err, "segfault");
        assert!(!g.all_done());
        // polling a dead process is a no-op
        assert!(g.poll_proc(idx, 0).is_none());
    }

    #[test]
    fn watchdog_fires_once_per_gap() {
        let mut g = guest();
        g.watchdog.pet(0);
        // Within period: nothing.
        assert!(!g.watchdog_check(29_000_000_000));
        // Wall clock jumps by 100 s (a save/restore cycle): one timeout.
        assert!(g.watchdog_check(129_000_000_000));
        assert!(!g.watchdog_check(129_500_000_000));
        assert_eq!(g.watchdog.timeouts, 1);
        assert_eq!(g.kmsg.len(), 1);
        assert!(g.kmsg[0].msg.contains("watchdog"));
    }

    #[test]
    fn disk_serializes_writes() {
        let mut d = VirtDisk::new(100.0e6); // 100 MB/s
        let c1 = d.write(0, 50_000_000); // 0.5 s
        let c2 = d.write(0, 50_000_000); // queued behind: 1.0 s
        assert_eq!(c1, 500_000_000);
        assert_eq!(c2, 1_000_000_000);
        // A later write starts fresh.
        let c3 = d.write(2_000_000_000, 100_000_000);
        assert_eq!(c3, 3_000_000_000);
        assert_eq!(d.bytes_written, 200_000_000);
    }

    #[test]
    fn kmsg_ring_is_bounded() {
        let mut g = guest();
        for i in 0..(KMSG_CAP + 10) {
            g.log_kmsg(i as LocalNs, "x");
        }
        assert_eq!(g.kmsg.len(), KMSG_CAP);
        assert_eq!(g.kmsg[0].at, 10);
    }
}
