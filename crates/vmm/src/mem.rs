//! Guest physical memory with copy-on-write structural sharing.
//!
//! A [`GuestMem`] is a sparse array of 64 KiB pages behind `Arc`s. Untouched
//! pages are not allocated at all (a fresh guest of any size costs one
//! pointer per page); written pages are materialized on first touch. Taking
//! a [`MemImage`] clones the page *pointers* — no page bytes move — and
//! resets the dirty set, so the bytes a checkpoint pays for are exactly the
//! pages written since the previous checkpoint: the write after a snapshot
//! sees a shared `Arc` and copies that one page (`Arc::make_mut`) before
//! mutating it. This is the same dirty-page economics live pre-copy
//! migration exploits, applied to the snapshot path.
//!
//! [`GuestMem::deep_copy`] is the old O(guest) behavior — every resident
//! page duplicated — kept as the honest baseline for the perf basket.
//!
//! Determinism: reads and writes touch no RNG and schedule no events, so
//! wiring guest memory into a workload cannot perturb event order.

use std::sync::Arc;

/// One guest page's backing store. `None` = never-touched zero page.
type Page = Option<Arc<Vec<u8>>>;

/// Sparse copy-on-write guest physical memory.
#[derive(Clone, Debug)]
pub struct GuestMem {
    mem_mb: u32,
    pages: Vec<Page>,
    /// One bit per page: written since the last `snapshot()`/`clear_dirty()`.
    dirty: Vec<u64>,
    dirty_count: usize,
    /// Monotonic write counter — a cheap content fingerprint for image
    /// checksums (two same-seed runs perform identical write sequences).
    version: u64,
}

/// A point-in-time image of guest memory (shared pages, not copies).
#[derive(Clone, Debug)]
pub struct MemImage {
    pub mem_mb: u32,
    pages: Vec<Page>,
    pub version: u64,
}

impl GuestMem {
    /// Page granularity. 64 KiB keeps the page table small (16 pages/MB)
    /// while staying fine-grained enough for working-set dirty tracking.
    pub const PAGE_SIZE: usize = 64 * 1024;

    pub fn new(mem_mb: u32) -> Self {
        let n = mem_mb as usize * (1 << 20) / Self::PAGE_SIZE;
        GuestMem {
            mem_mb,
            pages: vec![None; n],
            dirty: vec![0; n.div_ceil(64)],
            dirty_count: 0,
            version: 0,
        }
    }

    pub fn mem_mb(&self) -> u32 {
        self.mem_mb
    }

    pub fn total_pages(&self) -> usize {
        self.pages.len()
    }

    /// Pages with backing store allocated.
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Pages written since the last snapshot (or `clear_dirty`).
    pub fn dirty_pages(&self) -> usize {
        self.dirty_count
    }

    /// Total writes ever performed (content fingerprint).
    pub fn version(&self) -> u64 {
        self.version
    }

    fn mark_dirty(&mut self, page: usize) {
        let (w, b) = (page / 64, page % 64);
        if self.dirty[w] & (1 << b) == 0 {
            self.dirty[w] |= 1 << b;
            self.dirty_count += 1;
        }
    }

    pub fn clear_dirty(&mut self) {
        self.dirty.fill(0);
        self.dirty_count = 0;
    }

    /// Write a word at `addr` (bounds-wrapped into the guest footprint, so
    /// workloads can hash addresses without caring about the exact size).
    pub fn write_u64(&mut self, addr: usize, val: u64) {
        let addr = addr % (self.pages.len() * Self::PAGE_SIZE).max(1);
        let (pi, off) = (addr / Self::PAGE_SIZE, addr % Self::PAGE_SIZE);
        let off = off.min(Self::PAGE_SIZE - 8);
        let page = self.pages[pi].get_or_insert_with(|| Arc::new(vec![0u8; Self::PAGE_SIZE]));
        // Shared with an image ⇒ copy this one page before writing (COW).
        let bytes = Arc::make_mut(page);
        bytes[off..off + 8].copy_from_slice(&val.to_le_bytes());
        self.mark_dirty(pi);
        self.version += 1;
    }

    /// Read a word at `addr` (same wrapping as `write_u64`); untouched
    /// memory reads as zero.
    pub fn read_u64(&self, addr: usize) -> u64 {
        let addr = addr % (self.pages.len() * Self::PAGE_SIZE).max(1);
        let (pi, off) = (addr / Self::PAGE_SIZE, addr % Self::PAGE_SIZE);
        let off = off.min(Self::PAGE_SIZE - 8);
        match &self.pages[pi] {
            Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().unwrap()),
            None => 0,
        }
    }

    /// O(dirty) snapshot: share every page with the image and reset the
    /// dirty set. No page bytes are copied here; the only future copies are
    /// the COW faults on pages written after this call.
    pub fn snapshot(&mut self) -> MemImage {
        let img = MemImage {
            mem_mb: self.mem_mb,
            pages: self.pages.clone(),
            version: self.version,
        };
        self.clear_dirty();
        img
    }

    /// O(guest) image: duplicate every resident page's bytes. This is what
    /// `snapshot()` replaced; the perf basket measures both.
    pub fn deep_copy(&self) -> MemImage {
        MemImage {
            mem_mb: self.mem_mb,
            pages: self
                .pages
                .iter()
                .map(|p| p.as_ref().map(|a| Arc::new(a.as_ref().clone())))
                .collect(),
            version: self.version,
        }
    }

    /// Replace contents with a saved image (restore path). The image's pages
    /// become shared again; the next write to any of them COW-faults.
    pub fn restore(&mut self, img: &MemImage) {
        self.mem_mb = img.mem_mb;
        self.pages = img.pages.clone();
        self.dirty = vec![0; self.pages.len().div_ceil(64)];
        self.dirty_count = 0;
        self.version = img.version;
    }
}

impl MemImage {
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Read back a word (for restore-correctness tests).
    pub fn read_u64(&self, addr: usize) -> u64 {
        let n = self.pages.len() * GuestMem::PAGE_SIZE;
        let addr = addr % n.max(1);
        let (pi, off) = (addr / GuestMem::PAGE_SIZE, addr % GuestMem::PAGE_SIZE);
        let off = off.min(GuestMem::PAGE_SIZE - 8);
        match &self.pages[pi] {
            Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().unwrap()),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_is_unallocated_and_zero() {
        let m = GuestMem::new(512);
        assert_eq!(m.total_pages(), 8192);
        assert_eq!(m.resident_pages(), 0);
        assert_eq!(m.read_u64(123 * GuestMem::PAGE_SIZE), 0);
    }

    #[test]
    fn writes_materialize_and_dirty_pages() {
        let mut m = GuestMem::new(4);
        m.write_u64(0, 7);
        m.write_u64(GuestMem::PAGE_SIZE + 8, 9);
        m.write_u64(16, 11); // same page as the first write
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.dirty_pages(), 2);
        assert_eq!(m.read_u64(0), 7);
        assert_eq!(m.read_u64(GuestMem::PAGE_SIZE + 8), 9);
        assert_eq!(m.version(), 3);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut m = GuestMem::new(4);
        m.write_u64(0, 1);
        m.write_u64(GuestMem::PAGE_SIZE, 2);
        let img = m.snapshot();
        assert_eq!(m.dirty_pages(), 0, "snapshot resets the dirty set");
        m.write_u64(0, 99); // COW fault: copies one page
        assert_eq!(img.read_u64(0), 1, "image must keep the old value");
        assert_eq!(m.read_u64(0), 99);
        assert_eq!(m.dirty_pages(), 1);
    }

    #[test]
    fn snapshot_copies_no_bytes_until_write() {
        let mut m = GuestMem::new(4);
        m.write_u64(0, 1);
        let img = m.snapshot();
        // Page 0 is shared between the live memory and the image.
        let live = m.pages[0].as_ref().unwrap();
        let saved = img.pages[0].as_ref().unwrap();
        assert!(Arc::ptr_eq(live, saved));
    }

    #[test]
    fn restore_round_trips() {
        let mut m = GuestMem::new(4);
        m.write_u64(8, 42);
        let img = m.snapshot();
        m.write_u64(8, 43);
        m.write_u64(GuestMem::PAGE_SIZE * 2, 44);
        m.restore(&img);
        assert_eq!(m.read_u64(8), 42);
        assert_eq!(m.read_u64(GuestMem::PAGE_SIZE * 2), 0);
        assert_eq!(m.dirty_pages(), 0);
        assert_eq!(m.version(), img.version);
    }

    #[test]
    fn deep_copy_shares_nothing() {
        let mut m = GuestMem::new(4);
        m.write_u64(0, 5);
        let img = m.deep_copy();
        assert!(!Arc::ptr_eq(
            m.pages[0].as_ref().unwrap(),
            img.pages[0].as_ref().unwrap()
        ));
        assert_eq!(img.read_u64(0), 5);
    }

    #[test]
    fn addresses_wrap_into_footprint() {
        let mut m = GuestMem::new(1);
        let footprint = m.total_pages() * GuestMem::PAGE_SIZE;
        m.write_u64(footprint + 24, 3);
        assert_eq!(m.read_u64(24), 3);
    }
}
