//! # dvc-vmm
//!
//! A Xen-like hypervisor model: virtual machines whose guests are plain
//! `Clone`-able values, so "save" is a deep snapshot of *everything* — the
//! guest's TCP/UDP stacks mid-connection, pending timer deadlines, kernel
//! message ring, watchdog, virtual disk, and every running process.
//!
//! This is exactly the property the paper builds on: *"The Xen virtual
//! machine provides the ability to pause, save, and restart the virtual OS,
//! including the state of all processes running within that OS."*
//!
//! Faithfully-modelled details:
//!
//! * **Time is not virtualized** (paper §3.2): guests read the *host* clock.
//!   Timer deadlines saved inside a snapshot are absolute local-wall-clock
//!   values, so after a restore they are usually in the past and fire
//!   immediately — the retransmit burst that repairs the network cut, and
//!   the wall-time jump that inflates HPL's self-reported runtime.
//! * **The software watchdog** (paper §3.2): each guest runs a watchdog that
//!   must be petted within its period. A save/restore cycle always misses at
//!   least one deadline, producing exactly one kernel message per cycle
//!   ("each save and restoration … caused a watchdog timeout to be
//!   reported. Although this did not affect the execution…").
//! * **Virtualization overhead profiles**: para-virtualized Xen-era CPU/I-O
//!   overhead vs. hardware-assisted (Intel VT / AMD Pacifica) near-native
//!   overhead, the comparison the paper's §4 flags as future work.
//! * **Save/restore cost**: image size = guest memory footprint; the time to
//!   save/restore is the storage transfer time, modelled by `dvc-cluster`'s
//!   shared-storage fair-share model.
//! * [`migrate`]: a pre-copy live-migration cost model (rounds of dirty-page
//!   transfer), the "extending LSC to enable parallel migration" future-work
//!   item.

pub mod guest;
pub mod mem;
pub mod migrate;
pub mod vm;

pub use guest::{GuestCtx, GuestOs, GuestProc, KmsgEntry, ProcPoll, ProcState, VirtDisk, Watchdog};
pub use mem::{GuestMem, MemImage};
pub use vm::{OverheadProfile, Vm, VmId, VmImage, VmState};
