//! Microbench: one full NTP-coordinated checkpoint cycle, end to end.
//!
//! Host-side wall time to simulate arm → pause → save (shared storage) →
//! resume of an 8-VM virtual cluster running the ring workload. This is the
//! unit of work E3 repeats >2000 times.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dvc_bench::scen::{ring_load, run_cycles, settle, TrialWorld};
use dvc_core::lsc::LscMethod;
use dvc_sim_core::SimDuration;

fn bench_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsc");
    g.sample_size(10);
    for (label, method) in [
        ("ntp_cycle_8vm", LscMethod::ntp_default()),
        ("hardened_cycle_8vm", LscMethod::hardened_default()),
    ] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let tw = TrialWorld {
                        nodes: 8,
                        seed: 5,
                        ..TrialWorld::default()
                    };
                    let (mut sim, vc_id) = tw.build();
                    let _job = ring_load(&mut sim, vc_id, u64::MAX / 2);
                    settle(&mut sim, SimDuration::from_secs(20));
                    (sim, vc_id)
                },
                |(mut sim, vc_id)| {
                    let outs = run_cycles(&mut sim, vc_id, method, 1, SimDuration::from_secs(1));
                    assert!(outs[0].success);
                    sim
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_provision(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsc/provision");
    g.sample_size(10);
    g.bench_function("vc_8_nodes", |b| {
        b.iter_batched(
            || (),
            |_| {
                let tw = TrialWorld {
                    nodes: 8,
                    seed: 5,
                    ..TrialWorld::default()
                };
                let (sim, vc_id) = tw.build();
                std::hint::black_box((sim.now(), vc_id));
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_cycle, bench_provision);
criterion_main!(benches);
