//! Microbench: workload arithmetic kernels (host-side numerics).
//!
//! These are the real matrix operations the rank programs execute; their
//! host cost bounds how large an HPL/PTRANS configuration the experiments
//! can afford.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dvc_workloads::gen_a;

fn bench_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads/gen_a");
    let n = 512usize;
    g.throughput(Throughput::Elements((n * n) as u64));
    g.bench_function("matrix_512", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..n {
                for j in 0..n {
                    acc += gen_a(7, i, j);
                }
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

/// Single-rank LU through the production Apply functions (program-level).
fn lu_once(n: usize, nb: usize) -> f64 {
    use dvc_mpi::harness::{self, run_job};
    use dvc_sim_core::Sim;
    let cfg = dvc_workloads::hpl::HplConfig::new(n, nb, 7);
    let mut sim = Sim::new(
        dvc_cluster::world::ClusterBuilder::new()
            .nodes_per_cluster(1)
            .perfect_clocks()
            .build(3),
        3,
    );
    let nodes = sim.world.node_ids();
    let job = harness::launch(&mut sim, &nodes, 1, 128, move |r, s| {
        dvc_workloads::hpl::program(cfg, r, s)
    });
    run_job(
        &mut sim,
        &job,
        dvc_sim_core::SimTime::from_secs_f64(36000.0),
    )
    .unwrap();
    harness::rank(&sim, &job, 0).data.f64("hpl.residual")
}

fn bench_hpl(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads/hpl");
    g.sample_size(10);
    for n in [128usize, 256] {
        g.bench_function(format!("lu_n{n}_1rank"), |b| {
            b.iter_batched(
                || (),
                |_| {
                    let res = lu_once(n, 16);
                    assert!(res < 1e-10);
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gen, bench_hpl);
criterion_main!(benches);
