//! Microbench: whole-guest snapshot cost.
//!
//! A VM save is a deep clone of the guest (stacks + processes + rank data).
//! This tracks the host-side cost of cloning guests whose MPI rank holds
//! matrices of various sizes — the constant factor behind every checkpoint
//! in every experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dvc_mpi::data::{RankData, Value};
use dvc_mpi::runtime::MpiRuntime;
use dvc_net::addr::VirtAddr;
use dvc_net::tcp::TcpConfig;
use dvc_sim_core::SimTime;
use dvc_vmm::guest::GuestOs;
use dvc_vmm::{OverheadProfile, Vm, VmId, VmState};

fn guest_with_matrix(n: usize) -> Vm {
    let mut guest = GuestOs::new(VirtAddr(1).into(), TcpConfig::default());
    let mut data = RankData::new();
    data.set("A", Value::F64Vec(vec![1.0; n * n]));
    data.set("piv", Value::U64Vec(vec![0; n]));
    let rt = MpiRuntime::new(0, 1, vec![VirtAddr(1).into()], 8.0, vec![], data);
    guest.spawn("rank0", Box::new(rt));
    let mut vm = Vm::new(VmId(0), 256, 1, OverheadProfile::PARAVIRT, guest);
    vm.state = VmState::Running;
    vm.pause();
    vm
}

fn bench_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot");
    for n in [128usize, 512, 1024] {
        let bytes = (n * n * 8) as u64;
        g.throughput(Throughput::Bytes(bytes));
        let mut vm = guest_with_matrix(n);
        g.bench_function(format!("guest_clone_n{n}"), |b| {
            b.iter(|| std::hint::black_box(vm.snapshot(SimTime::ZERO)))
        });
    }
    g.finish();
}

fn bench_restore(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot/restore_from");
    let mut vm = guest_with_matrix(512);
    let image = vm.snapshot(SimTime::ZERO);
    g.bench_function("replace_guest_n512", |b| {
        b.iter_batched(
            || guest_with_matrix(512),
            |mut target| {
                target.restore_from(&image);
                target
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_snapshot, bench_restore);
criterion_main!(benches);
