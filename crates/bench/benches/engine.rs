//! Microbench: discrete-event engine throughput.
//!
//! The entire reproduction stands on `Sim<W>`; these benches track the cost
//! of scheduling, dispatching, and cancelling events, and of the named RNG
//! streams.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dvc_sim_core::{Sim, SimDuration, SimTime};
use rand::Rng;

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/dispatch");
    for &n in &[10_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("chain_{n}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = Sim::new(0u64, 1);
                    fn tick(sim: &mut Sim<u64>) {
                        sim.world += 1;
                        sim.schedule_in(SimDuration::from_micros(1), tick);
                    }
                    sim.schedule_now(tick);
                    sim
                },
                |mut sim| {
                    sim.run_to_completion(n);
                    assert!(sim.world >= n - 1);
                    sim
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_fanout(c: &mut Criterion) {
    // Many pre-scheduled events at scattered times: heap behavior.
    let mut g = c.benchmark_group("engine/fanout");
    let n = 50_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("scattered_50k", |b| {
        b.iter_batched(
            || {
                let mut sim = Sim::new(0u64, 1);
                for i in 0..n {
                    let t = SimTime((i * 2_654_435_761) % 1_000_000_000);
                    sim.schedule_at(t, |sim| sim.world += 1);
                }
                sim
            },
            |mut sim| {
                sim.run_to_completion(n + 1);
                assert_eq!(sim.world, n);
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cancel(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/cancel");
    let n = 50_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("schedule_then_cancel_half", |b| {
        b.iter_batched(
            || Sim::new(0u64, 1),
            |mut sim| {
                let handles: Vec<_> = (0..n)
                    .map(|i| sim.schedule_at(SimTime(i), |sim| sim.world += 1))
                    .collect();
                for h in handles.iter().step_by(2) {
                    sim.cancel(*h);
                }
                sim.run_to_completion(n + 1);
                assert_eq!(sim.world, n / 2);
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_rng_streams(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/rng");
    g.bench_function("stream_lookup_and_draw", |b| {
        let mut sim = Sim::new((), 7);
        b.iter(|| {
            let x: u64 = sim.rng.stream("bench.stream").gen();
            std::hint::black_box(x)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dispatch,
    bench_fanout,
    bench_cancel,
    bench_rng_streams
);
criterion_main!(benches);
