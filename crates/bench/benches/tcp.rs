//! Microbench: the simulated TCP stack.
//!
//! Measures host-side wall time to simulate bulk transfers (clean and
//! lossy) between two hosts — the hot path under every experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dvc_net::fabric::LinkParams;
use dvc_net::tcp::{SockEvent, SockId, TcpConfig};
use dvc_net::testkit::{drain, local_now, run_until, TestWorld};
use dvc_sim_core::{Sim, SimTime};

fn establish(sim: &mut Sim<TestWorld>) -> (SockId, SockId) {
    let listener = sim.world.hosts[1].tcp.listen(7000).unwrap();
    let now = local_now(sim);
    let addr = sim.world.hosts[1].addr;
    let sa = sim.world.hosts[0].tcp.connect(now, addr, 7000);
    drain(sim, 0);
    run_until(sim, SimTime::from_secs_f64(10.0), |sim| {
        sim.world.hosts[1]
            .events
            .iter()
            .any(|&(s, e)| s == listener && matches!(e, SockEvent::Incoming(_)))
    });
    let sb = sim.world.hosts[1]
        .events
        .iter()
        .find_map(|&(s, e)| match e {
            SockEvent::Incoming(n) if s == listener => Some(n),
            _ => None,
        })
        .unwrap();
    (sa, sb)
}

fn transfer(sim: &mut Sim<TestWorld>, sa: SockId, sb: SockId, total: usize) {
    let data = vec![0xA5u8; 8192];
    let mut sent = 0;
    let mut received = 0;
    while received < total {
        if sent < total {
            let now = local_now(sim);
            let n = sim.world.hosts[0].tcp.send(now, sa, &data);
            sent += n;
            if n > 0 {
                drain(sim, 0);
            }
        }
        let avail = sim.world.hosts[1].tcp.readable_bytes(sb);
        if avail > 0 {
            let now = local_now(sim);
            received += sim.world.hosts[1].tcp.recv(now, sb, avail).len();
            drain(sim, 1);
        }
        if received < total {
            assert!(sim.step(), "stalled at {received}/{total}");
        }
    }
}

fn bench_bulk(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp/bulk");
    for (label, loss) in [("clean", 0.0), ("loss_1pct", 0.01)] {
        let total = 1 << 20;
        g.throughput(Throughput::Bytes(total as u64));
        g.bench_function(format!("1MiB_{label}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = Sim::new(
                        TestWorld::new(
                            2,
                            LinkParams::gige_lan().with_loss(loss),
                            TcpConfig::default(),
                        ),
                        9,
                    );
                    let (sa, sb) = establish(&mut sim);
                    (sim, sa, sb)
                },
                |(mut sim, sa, sb)| {
                    transfer(&mut sim, sa, sb, total);
                    sim
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_handshake(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp/handshake");
    g.bench_function("connect_accept", |b| {
        b.iter_batched(
            || {
                Sim::new(
                    TestWorld::new(2, LinkParams::gige_lan(), TcpConfig::default()),
                    9,
                )
            },
            |mut sim| {
                let (sa, sb) = establish(&mut sim);
                std::hint::black_box((sa, sb));
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_bulk, bench_handshake);
criterion_main!(benches);
