//! Microbench: MPI collectives over the simulated cluster.
//!
//! Host-side cost of simulating one barrier / broadcast / all-to-all at a
//! few rank counts (each iteration builds and runs a whole world — the
//! numbers are end-to-end simulation costs, what experiment wall time is
//! made of).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dvc_cluster::world::ClusterBuilder;
use dvc_mpi::collectives;
use dvc_mpi::data::{RankData, Value};
use dvc_mpi::harness::{self, run_job};
use dvc_sim_core::{Sim, SimTime};

fn run_collective(size: usize, which: &'static str) {
    let mut sim = Sim::new(
        ClusterBuilder::new()
            .nodes_per_cluster(size)
            .perfect_clocks()
            .build(3),
        3,
    );
    let nodes = sim.world.node_ids();
    let job = harness::launch(&mut sim, &nodes, size, 64, move |rank, size| {
        let mut data = RankData::new();
        let ops = match which {
            "barrier" => collectives::barrier(rank, size, 100),
            "bcast" => {
                if rank == 0 {
                    data.set("x", Value::F64Vec(vec![1.0; 4096]));
                }
                collectives::bcast(0, rank, size, 100, "x")
            }
            "alltoall" => {
                for to in 0..size {
                    if to != rank {
                        data.set(format!("t.send.{to}"), Value::F64Vec(vec![1.0; 512]));
                    }
                }
                collectives::alltoall(rank, size, 100, "t")
            }
            _ => unreachable!(),
        };
        (ops, data)
    });
    run_job(&mut sim, &job, SimTime::from_secs_f64(600.0)).expect("collective failed");
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    for which in ["barrier", "bcast", "alltoall"] {
        for size in [8usize, 16] {
            g.bench_function(format!("{which}_{size}r"), |b| {
                b.iter_batched(
                    || (),
                    |_| run_collective(size, which),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
