//! Deterministic simulation fuzzing — FoundationDB-style randomized
//! scenario search over the DVC model, checked by the oracle stack the
//! observability spine grew in PRs 1–4.
//!
//! The pipeline:
//!
//! ```text
//! seed ──► gen::generate ──► ScenarioSpec ──► run::run_scenario ──► TrialReport
//!                                │                                      │
//!                                │          violation?  ──► shrink::shrink
//!                                │                                      │
//!                                └──────── corpus::CorpusCase ◄─────────┘
//!                                          (TOML, replayed forever by
//!                                           the corpus_replay test)
//! ```
//!
//! * [`spec`] — the declarative [`spec::ScenarioSpec`]: topology, workload,
//!   coordinator, fault plan. Serializes to a flat TOML dialect so a found
//!   case is a self-contained, human-editable reproducer.
//! * [`gen`] — seeded scenario sampling. Same `(master seed, trial index)`
//!   ⇒ same spec, always; the campaign is embarrassingly parallel and
//!   bit-replayable.
//! * [`run`] — builds the world from a spec, drives the checkpoint cycles,
//!   and renders the oracle verdicts ([`run::TrialReport`]).
//! * [`shrink`] — greedy delta-debugging over the spec: drop fault
//!   windows, bisect their extents, halve the topology, simplify the
//!   workload — keeping every candidate that still reproduces the same
//!   oracle signature.
//! * [`corpus`] — reading/writing `fuzz-corpus/*.toml` cases and the
//!   replay-with-expectation entry point.

pub mod corpus;
pub mod gen;
pub mod run;
pub mod shrink;
pub mod spec;
