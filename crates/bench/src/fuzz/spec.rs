//! The declarative scenario: everything one fuzz trial needs, in one
//! serializable value.
//!
//! A [`ScenarioSpec`] plus the code version is the *entire* input of a
//! trial — world topology, workload, coordinator, fault plan, and the seed
//! every RNG stream re-derives from. The TOML encoding is deliberately
//! flat (scalars, one `[scenario]` table, repeated `[[fault]]` tables, one
//! `[steady]` table) and hand-parsed line-by-line, same policy as the
//! JSONL reader in [`crate::traceio`]: no serialization dependency, and a
//! malformed case fails loudly with its line number.

use dvc_core::lsc::LscMethod;
use dvc_sim_core::{kind_from_str, SimDuration};

/// Workload names the runner can launch (see [`crate::fuzz::run`]).
pub const WORKLOADS: &[&str] = &["ring", "stream", "hpl", "ptrans"];

/// One scheduled fault window, in seconds relative to the fault anchor
/// (the instant the plan is installed, after workload warm-up).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// A [`dvc_sim_core::FAULT_KINDS`] entry.
    pub kind: String,
    /// Node id for targeted kinds (`clock.step`, `control.*`).
    pub target: Option<u64>,
    pub from_s: f64,
    pub until_s: f64,
    pub magnitude: f64,
}

/// One steady-state fault probability (applies outside windows).
#[derive(Clone, Debug, PartialEq)]
pub struct SteadySpec {
    pub kind: String,
    pub prob: f64,
}

/// A complete fuzz trial, declaratively.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Master seed: world build, sim streams, and fault-plan rolls all
    /// derive from this (see [`dvc_sim_core::rng::derive_seed`]).
    pub seed: u64,
    /// VC size (job nodes), 1–32.
    pub nodes: usize,
    pub spares: usize,
    pub clusters: usize,
    /// Guest TCP retry budget — the silence budget the oracles check
    /// against is derived from this, not hardcoded.
    pub tcp_retries: u32,
    /// Boot-time clock error bound, ms.
    pub clock_offset_ms: f64,
    /// Per-VM memory footprint, MB.
    pub mem_mb: u32,
    /// Run NTP daemons.
    pub ntp: bool,
    /// An [`LscMethod::NAMES`] entry.
    pub method: String,
    /// A [`WORKLOADS`] entry.
    pub workload: String,
    pub cycles: u32,
    /// Gap between checkpoint cycles, s.
    pub gap_s: f64,
    /// Warm-up before the fault plan is installed, s.
    pub settle_s: f64,
    pub faults: Vec<FaultSpec>,
    pub steady: Vec<SteadySpec>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            seed: 1,
            nodes: 8,
            spares: 2,
            clusters: 1,
            tcp_retries: 4,
            clock_offset_ms: 5.0,
            mem_mb: 64,
            ntp: true,
            method: "ntp".into(),
            workload: "ring".into(),
            cycles: 1,
            gap_s: 5.0,
            settle_s: 15.0,
            faults: Vec::new(),
            steady: Vec::new(),
        }
    }
}

impl ScenarioSpec {
    /// The guest-TCP silence budget this scenario's transport tolerates
    /// (mirrors `WorldConfig::silence_budget` for the world the runner
    /// builds: default 200 ms `rto_min`, spec-controlled retries).
    pub fn silence_budget(&self) -> SimDuration {
        SimDuration::from_secs_f64(0.2 * ((1u64 << self.tcp_retries.min(40)) - 1) as f64)
    }

    /// Reject out-of-range or unknown-name specs before any world is
    /// built. Every accepted spec must run; every generator output and
    /// every parsed corpus case goes through here.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 || self.nodes > 32 {
            return Err(format!("nodes {} outside 1..=32", self.nodes));
        }
        if self.clusters == 0 || self.clusters > 4 {
            return Err(format!("clusters {} outside 1..=4", self.clusters));
        }
        if self.spares > 8 {
            return Err(format!("spares {} > 8", self.spares));
        }
        if !(1..=8).contains(&self.tcp_retries) {
            return Err(format!("tcp_retries {} outside 1..=8", self.tcp_retries));
        }
        if self.mem_mb == 0 || self.mem_mb > 512 {
            return Err(format!("mem_mb {} outside 1..=512", self.mem_mb));
        }
        if self.cycles == 0 || self.cycles > 8 {
            return Err(format!("cycles {} outside 1..=8", self.cycles));
        }
        if LscMethod::from_name(&self.method).is_none() {
            return Err(format!("unknown method {:?}", self.method));
        }
        if !WORKLOADS.contains(&self.workload.as_str()) {
            return Err(format!("unknown workload {:?}", self.workload));
        }
        if self.workload != "stream" && self.nodes < 2 {
            return Err(format!(
                "workload {:?} needs ≥2 nodes (got {})",
                self.workload, self.nodes
            ));
        }
        // NaN-safe positivity: NaN compares false to everything, so demand
        // the affirmative.
        let positive = |x: f64| x.is_finite() && x > 0.0;
        if !positive(self.gap_s) || !positive(self.settle_s) {
            return Err("gap_s and settle_s must be positive".into());
        }
        if !(0.0..=1000.0).contains(&self.clock_offset_ms) {
            return Err(format!(
                "clock_offset_ms {} out of range",
                self.clock_offset_ms
            ));
        }
        for f in &self.faults {
            kind_from_str(&f.kind).ok_or_else(|| format!("unknown fault kind {:?}", f.kind))?;
            if f.kind == "clock.step" && f.target.is_none() {
                return Err("clock.step windows need a target node".into());
            }
            let ordered = f.from_s.is_finite() && f.until_s.is_finite() && f.from_s <= f.until_s;
            if !ordered {
                return Err(format!("window {:?} ends before it starts", f.kind));
            }
            if !f.magnitude.is_finite() {
                return Err(format!("window {:?} magnitude not finite", f.kind));
            }
        }
        for s in &self.steady {
            kind_from_str(&s.kind).ok_or_else(|| format!("unknown fault kind {:?}", s.kind))?;
            if !(0.0..=1.0).contains(&s.prob) {
                return Err(format!(
                    "steady {:?} probability {} out of range",
                    s.kind, s.prob
                ));
            }
        }
        Ok(())
    }

    /// Render the `[scenario]` / `[[fault]]` / `[steady]` tables (the body
    /// of a corpus case; [`crate::fuzz::corpus`] adds the header).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("[scenario]\n");
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!("nodes = {}\n", self.nodes));
        out.push_str(&format!("spares = {}\n", self.spares));
        out.push_str(&format!("clusters = {}\n", self.clusters));
        out.push_str(&format!("tcp_retries = {}\n", self.tcp_retries));
        out.push_str(&format!("clock_offset_ms = {:?}\n", self.clock_offset_ms));
        out.push_str(&format!("mem_mb = {}\n", self.mem_mb));
        out.push_str(&format!("ntp = {}\n", self.ntp));
        out.push_str(&format!("method = \"{}\"\n", self.method));
        out.push_str(&format!("workload = \"{}\"\n", self.workload));
        out.push_str(&format!("cycles = {}\n", self.cycles));
        out.push_str(&format!("gap_s = {:?}\n", self.gap_s));
        out.push_str(&format!("settle_s = {:?}\n", self.settle_s));
        for f in &self.faults {
            out.push_str("\n[[fault]]\n");
            out.push_str(&format!("kind = \"{}\"\n", f.kind));
            if let Some(t) = f.target {
                out.push_str(&format!("target = {t}\n"));
            }
            out.push_str(&format!("from_s = {:?}\n", f.from_s));
            out.push_str(&format!("until_s = {:?}\n", f.until_s));
            out.push_str(&format!("magnitude = {:?}\n", f.magnitude));
        }
        if !self.steady.is_empty() {
            out.push_str("\n[steady]\n");
            for s in &self.steady {
                out.push_str(&format!("\"{}\" = {:?}\n", s.kind, s.prob));
            }
        }
        out
    }
}

/// Where a line-based parse currently is.
enum Section {
    Preamble,
    Scenario,
    Fault,
    Steady,
}

/// Split `key = value`, unquoting a quoted key or value.
fn key_value(line: &str) -> Option<(String, String)> {
    let (k, v) = line.split_once('=')?;
    let unquote = |s: &str| {
        let s = s.trim();
        s.strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(s)
            .to_string()
    };
    Some((unquote(k), unquote(v)))
}

/// Parsed corpus-case body: the spec plus any top-level `key = value`
/// pairs that appeared before `[scenario]` (the case header).
#[derive(Debug)]
pub struct ParsedSpec {
    pub spec: ScenarioSpec,
    pub header: Vec<(String, String)>,
}

/// Parse the TOML dialect [`ScenarioSpec::to_toml`] emits (comments and
/// blank lines allowed anywhere; header keys before `[scenario]` are
/// returned, not interpreted). The parsed spec is validated.
pub fn parse_spec(text: &str) -> Result<ParsedSpec, String> {
    let mut spec = ScenarioSpec {
        faults: Vec::new(),
        steady: Vec::new(),
        ..ScenarioSpec::default()
    };
    let mut header = Vec::new();
    let mut section = Section::Preamble;
    let mut saw_scenario = false;

    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |e: String| format!("line {}: {e}", i + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[scenario]" => {
                section = Section::Scenario;
                saw_scenario = true;
                continue;
            }
            "[[fault]]" => {
                section = Section::Fault;
                spec.faults.push(FaultSpec {
                    kind: String::new(),
                    target: None,
                    from_s: 0.0,
                    until_s: 0.0,
                    magnitude: 0.0,
                });
                continue;
            }
            "[steady]" => {
                section = Section::Steady;
                continue;
            }
            _ => {}
        }
        if line.starts_with('[') {
            return Err(err(format!("unknown table {line}")));
        }
        let (k, v) = key_value(line).ok_or_else(|| err(format!("not `key = value`: {line}")))?;
        let pu64 = |v: &str| v.parse::<u64>().map_err(|e| err(format!("{k}: {e}")));
        let pf64 = |v: &str| v.parse::<f64>().map_err(|e| err(format!("{k}: {e}")));
        match section {
            Section::Preamble => header.push((k, v)),
            Section::Scenario => match k.as_str() {
                "seed" => spec.seed = pu64(&v)?,
                "nodes" => spec.nodes = pu64(&v)? as usize,
                "spares" => spec.spares = pu64(&v)? as usize,
                "clusters" => spec.clusters = pu64(&v)? as usize,
                "tcp_retries" => spec.tcp_retries = pu64(&v)? as u32,
                "clock_offset_ms" => spec.clock_offset_ms = pf64(&v)?,
                "mem_mb" => spec.mem_mb = pu64(&v)? as u32,
                "ntp" => spec.ntp = v == "true",
                "method" => spec.method = v,
                "workload" => spec.workload = v,
                "cycles" => spec.cycles = pu64(&v)? as u32,
                "gap_s" => spec.gap_s = pf64(&v)?,
                "settle_s" => spec.settle_s = pf64(&v)?,
                _ => return Err(err(format!("unknown scenario key {k:?}"))),
            },
            Section::Fault => {
                let f = spec.faults.last_mut().expect("entered via [[fault]]");
                match k.as_str() {
                    "kind" => f.kind = v,
                    "target" => f.target = Some(pu64(&v)?),
                    "from_s" => f.from_s = pf64(&v)?,
                    "until_s" => f.until_s = pf64(&v)?,
                    "magnitude" => f.magnitude = pf64(&v)?,
                    _ => return Err(err(format!("unknown fault key {k:?}"))),
                }
            }
            Section::Steady => {
                let prob = pf64(&v)?;
                spec.steady.push(SteadySpec { kind: k, prob });
            }
        }
    }
    if !saw_scenario {
        return Err("no [scenario] table".into());
    }
    spec.validate()?;
    Ok(ParsedSpec { spec, header })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_spec() -> ScenarioSpec {
        ScenarioSpec {
            seed: 0xDEAD_BEEF,
            nodes: 12,
            spares: 1,
            clusters: 3,
            tcp_retries: 5,
            clock_offset_ms: 42.5,
            mem_mb: 96,
            ntp: false,
            method: "hardened-naive".into(),
            workload: "ptrans".into(),
            cycles: 3,
            gap_s: 7.25,
            settle_s: 11.0,
            faults: vec![
                FaultSpec {
                    kind: "ntp.outage".into(),
                    target: None,
                    from_s: 0.0,
                    until_s: 600.0,
                    magnitude: 1.0,
                },
                FaultSpec {
                    kind: "clock.step".into(),
                    target: Some(2),
                    from_s: 2.0,
                    until_s: 2.0,
                    magnitude: -6.5,
                },
            ],
            steady: vec![SteadySpec {
                kind: "storage.fail".into(),
                prob: 0.25,
            }],
        }
    }

    #[test]
    fn toml_round_trips_exactly() {
        let spec = rich_spec();
        let parsed = parse_spec(&spec.to_toml()).unwrap();
        assert_eq!(parsed.spec, spec);
        assert!(parsed.header.is_empty());
    }

    #[test]
    fn header_keys_and_comments_pass_through() {
        let text = format!(
            "# found by dvc-fuzz --seed 7\nname = \"case\"\nexpect = \"clean\"\n\n{}",
            ScenarioSpec::default().to_toml()
        );
        let parsed = parse_spec(&text).unwrap();
        assert_eq!(
            parsed.header,
            vec![
                ("name".to_string(), "case".to_string()),
                ("expect".to_string(), "clean".to_string())
            ]
        );
        assert_eq!(parsed.spec, ScenarioSpec::default());
    }

    #[test]
    fn malformed_specs_fail_with_line_numbers() {
        assert!(parse_spec("nodes = 4").unwrap_err().contains("[scenario]"));
        let bad = "[scenario]\nnodes = banana\n";
        assert!(parse_spec(bad).unwrap_err().contains("line 2"));
        let unknown = "[scenario]\nwarp_factor = 9\n";
        assert!(parse_spec(unknown).unwrap_err().contains("warp_factor"));
    }

    #[test]
    fn validation_rejects_out_of_range_specs() {
        let s = ScenarioSpec {
            nodes: 0,
            ..ScenarioSpec::default()
        };
        assert!(s.validate().is_err());
        let s = ScenarioSpec {
            method: "chrony".into(),
            ..ScenarioSpec::default()
        };
        assert!(s.validate().is_err());
        let mut s = ScenarioSpec::default();
        s.faults.push(FaultSpec {
            kind: "clock.step".into(),
            target: None,
            from_s: 1.0,
            until_s: 1.0,
            magnitude: 6.0,
        });
        assert!(s.validate().unwrap_err().contains("target"));
        let s = ScenarioSpec {
            workload: "hpl".into(),
            nodes: 1,
            ..ScenarioSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("2 nodes"));
    }

    #[test]
    fn silence_budget_matches_default_world_constant() {
        let s = ScenarioSpec::default();
        assert_eq!(s.silence_budget(), SimDuration::from_secs(3));
    }
}
