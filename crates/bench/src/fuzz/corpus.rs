//! The regression corpus: shrunk reproducers checked into
//! `crates/bench/fuzz-corpus/*.toml` and re-run forever.
//!
//! A case is a [`ScenarioSpec`] TOML body prefixed by a small header:
//!
//! ```toml
//! name = "e13-clock-step-baseline"
//! expect = "detection"
//! # free-form provenance comments
//!
//! [scenario]
//! ...
//! ```
//!
//! `expect` records the case's contract with the oracle stack:
//!
//! * `"clean"` — every oracle passes and no detections occur. These cases
//!   pin the *absence* of false positives on configurations that once
//!   produced them (or nearly did).
//! * `"detection"` — every oracle passes, and at least one expected
//!   detection (a blown stored window from a non-hardened coordinator)
//!   occurs. These pin the paper's phenomenon staying observable.
//!
//! Replay always runs the determinism double-check, so every corpus case
//! is also a same-seed digest-identity test.

use super::run::{run_scenario, TrialReport, Tuning};
use super::spec::{parse_spec, ScenarioSpec};
use std::path::{Path, PathBuf};

/// The oracle contract a corpus case pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    Clean,
    Detection,
}

impl Expectation {
    pub fn as_str(self) -> &'static str {
        match self {
            Expectation::Clean => "clean",
            Expectation::Detection => "detection",
        }
    }

    pub fn parse(s: &str) -> Option<Expectation> {
        match s {
            "clean" => Some(Expectation::Clean),
            "detection" => Some(Expectation::Detection),
            _ => None,
        }
    }
}

/// One checked-in reproducer.
#[derive(Clone, Debug)]
pub struct CorpusCase {
    pub name: String,
    pub expect: Expectation,
    pub spec: ScenarioSpec,
}

impl CorpusCase {
    /// Render the on-disk form (`note` lines become `#` comments between
    /// the header and the scenario body).
    pub fn to_toml(&self, notes: &[&str]) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = \"{}\"\n", self.name));
        out.push_str(&format!("expect = \"{}\"\n", self.expect.as_str()));
        for n in notes {
            out.push_str(&format!("# {n}\n"));
        }
        out.push('\n');
        out.push_str(&self.spec.to_toml());
        out
    }
}

/// Parse one case file.
pub fn parse_case(text: &str) -> Result<CorpusCase, String> {
    let parsed = parse_spec(text)?;
    let mut name = None;
    let mut expect = None;
    for (k, v) in &parsed.header {
        match k.as_str() {
            "name" => name = Some(v.clone()),
            "expect" => {
                expect = Some(
                    Expectation::parse(v)
                        .ok_or_else(|| format!("unknown expect {v:?} (clean|detection)"))?,
                )
            }
            other => return Err(format!("unknown header key {other:?}")),
        }
    }
    Ok(CorpusCase {
        name: name.ok_or("case has no `name` header")?,
        expect: expect.ok_or("case has no `expect` header")?,
        spec: parsed.spec,
    })
}

/// Load every `*.toml` under `dir`, sorted by file name (deterministic
/// replay order).
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusCase)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();
    let mut cases = Vec::new();
    for p in paths {
        let text = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
        let case = parse_case(&text).map_err(|e| format!("{}: {e}", p.display()))?;
        cases.push((p, case));
    }
    Ok(cases)
}

/// Re-run one case (determinism double-check included) and hold it to its
/// `expect` contract.
pub fn replay(case: &CorpusCase) -> Result<TrialReport, String> {
    let tuning = Tuning {
        budget_override: None,
        replay_check: true,
    };
    let report =
        run_scenario(&case.spec, &tuning).map_err(|e| format!("case {:?}: {e}", case.name))?;
    if !report.is_clean() {
        return Err(format!(
            "case {:?}: oracle failures: {:?}",
            case.name, report.failures
        ));
    }
    match case.expect {
        Expectation::Clean => {
            if !report.detections.is_empty() {
                return Err(format!(
                    "case {:?}: expected clean, saw detections: {:?}",
                    case.name, report.detections
                ));
            }
        }
        Expectation::Detection => {
            if report.detections.is_empty() {
                return Err(format!(
                    "case {:?}: expected a blown-window detection, trial ran clean \
                     ({} outcome(s), {} window(s) checked)",
                    case.name, report.outcomes, report.windows_checked
                ));
            }
        }
    }
    Ok(report)
}

/// The standard corpus directory, relative to the bench crate.
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz-corpus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_header_round_trips() {
        let case = CorpusCase {
            name: "example".into(),
            expect: Expectation::Detection,
            spec: ScenarioSpec::default(),
        };
        let text = case.to_toml(&["found by dvc-fuzz --seed 9", "shrunk from 3 windows"]);
        let back = parse_case(&text).unwrap();
        assert_eq!(back.name, "example");
        assert_eq!(back.expect, Expectation::Detection);
        assert_eq!(back.spec, case.spec);
    }

    #[test]
    fn missing_or_bad_headers_are_rejected() {
        let body = ScenarioSpec::default().to_toml();
        assert!(parse_case(&body).unwrap_err().contains("name"));
        let bad = format!("name = \"x\"\nexpect = \"maybe\"\n\n{body}");
        assert!(parse_case(&bad).unwrap_err().contains("maybe"));
        let stray = format!("name = \"x\"\nexpect = \"clean\"\nseverity = 9\n\n{body}");
        assert!(parse_case(&stray).unwrap_err().contains("severity"));
    }
}
