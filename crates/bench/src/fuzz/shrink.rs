//! Greedy delta-debugging over a failing [`ScenarioSpec`].
//!
//! A candidate is *accepted* when re-running it still trips at least one
//! oracle from the original failure's signature (the set of oracle names
//! that objected). Matching on the signature rather than the exact detail
//! string keeps shrinking robust — dropping a fault window legitimately
//! changes timestamps inside the messages — while refusing to wander onto
//! an unrelated bug.
//!
//! The pass structure is classic ddmin-flavoured greedy descent, ordered
//! by expected payoff per trial:
//!
//! 1. drop *everything* injectable at once (is the fault plan even needed?)
//! 2. drop fault windows / steady rates one at a time
//! 3. structural simplification: cycles→1, clusters→1, spares→0, halve
//!    nodes, simplify the workload to the ring
//! 4. bisect surviving windows (halve the duration from either end)
//!
//! Passes repeat until a full sweep accepts nothing or the trial budget
//! runs out. Every accepted candidate strictly shrinks a finite measure
//! (fault count, node count, window length), so the loop terminates.

use super::run::{run_scenario, Tuning};
use super::spec::ScenarioSpec;
use std::collections::BTreeSet;

/// What the shrinker did, and the minimized reproducer.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The smallest accepted spec (the original if nothing shrank).
    pub spec: ScenarioSpec,
    /// Oracle names the original failure tripped — the signature every
    /// accepted candidate had to keep intersecting.
    pub signature: BTreeSet<&'static str>,
    /// `run_scenario` calls spent.
    pub trials: u32,
    /// Human-readable log of accepted steps.
    pub steps: Vec<String>,
}

fn signature_of(spec: &ScenarioSpec, tuning: &Tuning) -> BTreeSet<&'static str> {
    match run_scenario(spec, tuning) {
        Ok(r) => r.failures.iter().map(|f| f.oracle).collect(),
        Err(_) => BTreeSet::new(), // invalid candidates never reproduce
    }
}

/// Shrink `spec` (which must fail under `tuning`) to a smaller spec with
/// an overlapping failure signature, spending at most `budget` re-runs.
pub fn shrink(spec: &ScenarioSpec, tuning: &Tuning, budget: u32) -> ShrinkResult {
    let mut trials = 0u32;
    let signature = signature_of(spec, tuning);
    trials += 1;
    let mut best = spec.clone();
    let mut steps = Vec::new();
    if signature.is_empty() {
        steps.push("original spec did not reproduce; nothing to shrink".into());
        return ShrinkResult {
            spec: best,
            signature,
            trials,
            steps,
        };
    }

    let mut accept = |cand: ScenarioSpec, what: &str, trials: &mut u32| -> Option<ScenarioSpec> {
        if cand.validate().is_err() || *trials >= budget {
            return None;
        }
        *trials += 1;
        let sig = signature_of(&cand, tuning);
        if sig.intersection(&signature).next().is_some() {
            steps.push(format!("{what} (still fails: {sig:?})"));
            Some(cand)
        } else {
            None
        }
    };

    loop {
        let mut progressed = false;

        // Pass 1: no faults at all.
        if !best.faults.is_empty() || !best.steady.is_empty() {
            let mut c = best.clone();
            c.faults.clear();
            c.steady.clear();
            if let Some(c) = accept(c, "dropped the entire fault plan", &mut trials) {
                best = c;
                progressed = true;
            }
        }

        // Pass 2: drop windows and steady rates one at a time.
        let mut i = 0;
        while i < best.faults.len() {
            let mut c = best.clone();
            let gone = c.faults.remove(i);
            match accept(
                c,
                &format!("dropped {} window #{i}", gone.kind),
                &mut trials,
            ) {
                Some(c) => {
                    best = c;
                    progressed = true;
                }
                None => i += 1,
            }
        }
        let mut i = 0;
        while i < best.steady.len() {
            let mut c = best.clone();
            let gone = c.steady.remove(i);
            match accept(c, &format!("dropped steady {}", gone.kind), &mut trials) {
                Some(c) => {
                    best = c;
                    progressed = true;
                }
                None => i += 1,
            }
        }

        // Pass 3: structural simplification.
        if best.cycles > 1 {
            let mut c = best.clone();
            c.cycles = 1;
            if let Some(c) = accept(c, "cycles -> 1", &mut trials) {
                best = c;
                progressed = true;
            }
        }
        if best.clusters > 1 {
            let mut c = best.clone();
            c.clusters = 1;
            if let Some(c) = accept(c, "clusters -> 1", &mut trials) {
                best = c;
                progressed = true;
            }
        }
        if best.spares > 0 {
            let mut c = best.clone();
            c.spares = 0;
            if let Some(c) = accept(c, "spares -> 0", &mut trials) {
                best = c;
                progressed = true;
            }
        }
        let floor = if best.workload == "stream" { 1 } else { 2 };
        if best.nodes / 2 >= floor {
            let mut c = best.clone();
            c.nodes /= 2;
            // Drop window targets that no longer exist in the halved VC.
            for f in &mut c.faults {
                if let Some(t) = f.target {
                    if t > c.nodes as u64 {
                        f.target = Some(1);
                    }
                }
            }
            if let Some(c) = accept(c, &format!("nodes -> {}", best.nodes / 2), &mut trials) {
                best = c;
                progressed = true;
            }
        }
        if best.workload != "ring" && best.nodes >= 2 {
            let mut c = best.clone();
            c.workload = "ring".into();
            if let Some(c) = accept(c, "workload -> ring", &mut trials) {
                best = c;
                progressed = true;
            }
        }

        // Pass 4: bisect surviving windows (keep either half).
        for i in 0..best.faults.len() {
            let f = &best.faults[i];
            let half = (f.until_s - f.from_s) / 2.0;
            if half < 1.0 {
                continue;
            }
            let mut front = best.clone();
            front.faults[i].until_s = f.from_s + half;
            let mut back = best.clone();
            back.faults[i].from_s = f.from_s + half;
            if let Some(c) = accept(front, &format!("halved window #{i} (front)"), &mut trials) {
                best = c;
                progressed = true;
            } else if let Some(c) = accept(back, &format!("halved window #{i} (back)"), &mut trials)
            {
                best = c;
                progressed = true;
            }
        }

        if !progressed || trials >= budget {
            break;
        }
    }

    ShrinkResult {
        spec: best,
        signature,
        trials,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::super::spec::{FaultSpec, SteadySpec};
    use super::*;
    use dvc_sim_core::SimDuration;

    /// The acceptance-criteria drill: sabotage the silence budget so every
    /// stored round blows the window oracle, hand the shrinker a
    /// deliberately baroque scenario, and demand a minimal reproducer —
    /// at most 2 fault windows left, topology and cycles reduced.
    #[test]
    fn sabotaged_budget_shrinks_to_a_minimal_case() {
        let spec = ScenarioSpec {
            seed: 77,
            nodes: 8,
            spares: 2,
            clusters: 2,
            cycles: 2,
            method: "hardened-naive".into(),
            settle_s: 10.0,
            faults: vec![
                FaultSpec {
                    kind: "storage.brownout".into(),
                    target: None,
                    from_s: 1.0,
                    until_s: 40.0,
                    magnitude: 0.5,
                },
                FaultSpec {
                    kind: "control.drop".into(),
                    target: None,
                    from_s: 5.0,
                    until_s: 30.0,
                    magnitude: 0.2,
                },
                FaultSpec {
                    kind: "ntp.outage".into(),
                    target: None,
                    from_s: 0.0,
                    until_s: 120.0,
                    magnitude: 1.0,
                },
                FaultSpec {
                    kind: "control.partition".into(),
                    target: Some(3),
                    from_s: 8.0,
                    until_s: 12.0,
                    magnitude: 1.0,
                },
            ],
            steady: vec![SteadySpec {
                kind: "control.drop".into(),
                prob: 0.05,
            }],
            ..ScenarioSpec::default()
        };
        let tuning = Tuning {
            budget_override: Some(SimDuration::from_nanos(1)),
            replay_check: false,
        };
        let res = shrink(&spec, &tuning, 60);
        assert!(
            res.signature.contains("invariants"),
            "sabotage must trip the window oracle: {:?}",
            res.signature
        );
        assert!(
            res.spec.faults.len() <= 2,
            "shrinker left {} windows: {:?}\nsteps: {:#?}",
            res.spec.faults.len(),
            res.spec.faults,
            res.steps
        );
        assert!(res.spec.steady.is_empty(), "{:?}", res.spec.steady);
        assert!(res.spec.nodes <= 4, "nodes not reduced: {}", res.spec.nodes);
        assert_eq!(res.spec.cycles, 1);
        assert_eq!(res.spec.clusters, 1);
        // The minimized spec still reproduces on its own.
        let rerun = run_scenario(&res.spec, &tuning).unwrap();
        assert!(!rerun.is_clean());
    }

    #[test]
    fn clean_specs_do_not_shrink() {
        let spec = ScenarioSpec {
            seed: 5,
            nodes: 2,
            settle_s: 10.0,
            ..ScenarioSpec::default()
        };
        let res = shrink(&spec, &Tuning::default(), 10);
        assert!(res.signature.is_empty());
        assert_eq!(res.spec, spec);
        assert_eq!(res.trials, 1);
    }
}
