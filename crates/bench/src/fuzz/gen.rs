//! Seeded scenario sampling.
//!
//! `(campaign seed, trial index)` fully determines the spec: the sampler
//! runs on one `SmallRng` seeded via [`rng::derive_seed`], so campaigns
//! replay bit-for-bit regardless of thread count or trial subset. The
//! distribution is shaped for bug-finding per unit wall time rather than
//! uniformity:
//!
//! * **Topology** skews small (half the mass at 4–8 nodes) with a tail up
//!   to 32 nodes, single- and multi-cluster; spanning VCs fall out of the
//!   multi-cluster layouts because hosts are allocated across cluster
//!   boundaries.
//! * **Workloads**: the communicating ring dominates (it is the workload
//!   whose transport budget the paper's claim is about); STREAM, HPL and
//!   PTRANS appear as minority mixes, and single-node topologies always
//!   run STREAM (the sequential workload).
//! * **Coordinators**: all four [`dvc_core::lsc::LscMethod::NAMES`], naive
//!   included — the oracles treat a blown *stored* window from a non-hardened coordinator
//!   as an expected detection, not a failure (that asymmetry is the
//!   paper's point).
//! * **Faults**: 0–3 windows plus 0–2 steady rates over every
//!   [`dvc_sim_core::FAULT_KINDS`] entry, with kind-appropriate magnitudes
//!   (brownout factors, ±8 s clock steps, probabilities) in windows placed
//!   across the first ~2 minutes after warm-up. About a fifth of trials
//!   are fault-free on purpose: the clean path must stay clean.

use super::spec::{FaultSpec, ScenarioSpec, SteadySpec};
use dvc_sim_core::rng;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sample the spec for one trial of a campaign.
pub fn generate(campaign_seed: u64, trial: u64) -> ScenarioSpec {
    let mut r = SmallRng::seed_from_u64(rng::derive_seed(campaign_seed, "fuzz.scenario", trial));

    let nodes: usize = match r.gen_range(0..10) {
        0..=1 => r.gen_range(1..=3),
        2..=6 => r.gen_range(4..=8),
        7..=8 => r.gen_range(9..=16),
        _ => r.gen_range(17..=32),
    };
    let clusters = match r.gen_range(0..10) {
        0..=6 => 1,
        7..=8 => 2,
        _ => 3,
    };
    let workload = if nodes < 2 {
        "stream"
    } else {
        match r.gen_range(0..20) {
            0..=10 => "ring",
            11..=13 => "stream",
            14..=16 => "hpl",
            _ => "ptrans",
        }
    };
    let method = match r.gen_range(0..10) {
        0..=1 => "naive",
        2..=4 => "ntp",
        5..=7 => "hardened",
        _ => "hardened-naive",
    };
    // Naive's serial dispatch walk is O(nodes) sim-seconds per cycle; cap
    // its topologies so single trials stay inside the campaign budget.
    let nodes = if method == "naive" {
        nodes.min(12)
    } else {
        nodes
    };

    let mut spec = ScenarioSpec {
        seed: rng::derive_seed(campaign_seed, "fuzz.world", trial),
        nodes,
        spares: r.gen_range(0..=2),
        clusters,
        tcp_retries: r.gen_range(3..=6),
        clock_offset_ms: 10f64.powf(r.gen_range(-0.3..2.0)), // ~0.5..100 ms
        mem_mb: [32u32, 64, 64, 96][r.gen_range(0..4usize)],
        ntp: r.gen_range(0..10) < 8,
        method: method.into(),
        workload: workload.into(),
        cycles: r.gen_range(1..=3),
        gap_s: r.gen_range(4.0..12.0),
        settle_s: r.gen_range(10.0..20.0),
        faults: Vec::new(),
        steady: Vec::new(),
    };

    if r.gen_range(0..5) > 0 {
        for _ in 0..r.gen_range(0usize..=3) {
            spec.faults.push(sample_window(&mut r, nodes));
        }
        for _ in 0..r.gen_range(0usize..=2) {
            let (kind, prob) = match r.gen_range(0..4) {
                0 => ("storage.fail", r.gen_range(0.0..0.3)),
                1 => ("control.drop", r.gen_range(0.0..0.15)),
                2 => ("image.corrupt", r.gen_range(0.0..0.3)),
                _ => ("control.partition", r.gen_range(0.0..0.05)),
            };
            spec.steady.push(SteadySpec {
                kind: kind.into(),
                prob,
            });
        }
    }

    debug_assert!(spec.validate().is_ok(), "{:?}", spec.validate());
    spec
}

fn sample_window(r: &mut SmallRng, nodes: usize) -> FaultSpec {
    let from_s = r.gen_range(0.0..90.0);
    let dur = r.gen_range(5.0..60.0);
    let member = r.gen_range(1..=nodes as u64);
    match r.gen_range(0..6) {
        0 => FaultSpec {
            kind: "ntp.outage".into(),
            target: None,
            from_s,
            until_s: from_s + r.gen_range(30.0..300.0),
            magnitude: 1.0,
        },
        1 => FaultSpec {
            // Instantaneous: the installer steps the clock at `from`.
            kind: "clock.step".into(),
            target: Some(member),
            from_s,
            until_s: from_s,
            magnitude: r.gen_range(-8.0..8.0),
        },
        2 => FaultSpec {
            kind: "storage.brownout".into(),
            target: None,
            from_s,
            until_s: from_s + dur,
            magnitude: r.gen_range(0.1..0.9),
        },
        3 => FaultSpec {
            kind: "control.partition".into(),
            target: Some(member),
            from_s,
            until_s: from_s + r.gen_range(2.0..15.0),
            magnitude: 1.0,
        },
        4 => FaultSpec {
            kind: "storage.fail".into(),
            target: None,
            from_s,
            until_s: from_s + dur,
            magnitude: r.gen_range(0.1..0.6),
        },
        _ => FaultSpec {
            kind: "control.drop".into(),
            target: None,
            from_s,
            until_s: from_s + dur,
            magnitude: r.gen_range(0.05..0.4),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvc_core::lsc::LscMethod;

    #[test]
    fn generation_is_deterministic_per_seed_and_trial() {
        for trial in 0..64 {
            assert_eq!(generate(1, trial), generate(1, trial));
        }
        assert_ne!(generate(1, 0), generate(2, 0));
        assert_ne!(generate(1, 0), generate(1, 1));
    }

    #[test]
    fn every_generated_spec_validates_and_round_trips() {
        for trial in 0..256 {
            let spec = generate(42, trial);
            spec.validate()
                .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            let rt = super::super::spec::parse_spec(&spec.to_toml())
                .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            assert_eq!(rt.spec, spec, "trial {trial}");
        }
    }

    #[test]
    fn the_space_actually_varies() {
        let mut methods = std::collections::BTreeSet::new();
        let mut workloads = std::collections::BTreeSet::new();
        let mut multi_cluster = false;
        let mut fault_free = 0;
        for trial in 0..200 {
            let s = generate(7, trial);
            methods.insert(s.method.clone());
            workloads.insert(s.workload.clone());
            multi_cluster |= s.clusters > 1;
            if s.faults.is_empty() && s.steady.is_empty() {
                fault_free += 1;
            }
        }
        assert_eq!(methods.len(), LscMethod::NAMES.len(), "{methods:?}");
        assert_eq!(workloads.len(), 4, "{workloads:?}");
        assert!(multi_cluster);
        assert!(fault_free > 10, "need clean-path trials, got {fault_free}");
    }
}
