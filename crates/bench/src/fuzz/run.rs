//! Running one declarative scenario under the full oracle stack.
//!
//! The oracles, and what each would catch:
//!
//! 1. **invariants** ([`InvariantChecker`] via [`Oracle`]) — blown stored
//!    windows, generation regressions, jobs on dead nodes. A blown stored
//!    window is a *failure* only for coordinators whose design guarantees
//!    the window under the scenario's fault plan: clock-free
//!    `hardened-naive` always, clock-based `hardened` only absent
//!    adversarial clock steps (acks prove control-path health, not clock
//!    agreement). Everywhere else it is the paper's documented failure
//!    mode and is reported as a **detection** — pinning that asymmetry is
//!    itself regression coverage.
//! 2. **spans** ([`SpanChecker`]) — malformed causal trees, id reuse,
//!    spans left open after the trial drains.
//! 3. **margin-consistency** — [`PhaseAttribution`] and the invariant
//!    checker derive pause exposure independently (spans+events vs events
//!    alone); a stored round must be flagged by both or neither, and every
//!    stored round must have a measurable spread.
//! 4. **cross-check** — event/metrics bookkeeping that must tie out
//!    exactly: every `vmm.save` span wraps exactly one snapshot
//!    begin/end pair; a stored round fired every member exactly once
//!    (`fires == VC size` — the "span count == generation members" check:
//!    save spans can exceed members only by checksum re-saves, which the
//!    snapshot pairing covers); one `SetStored` per stored window; the
//!    [`Metrics`] registry agrees with an independent count of the same
//!    stream.
//! 5. **liveness** — every checkpoint round resolves within a generous
//!    sim-time deadline; a coordinator that strands a cycle (or lets the
//!    event queue drain mid-round) fails loudly instead of hanging the
//!    campaign.
//! 6. **determinism** ([`Tuning::replay_check`]) — the trial is re-run
//!    from the same spec and must reproduce the identical event/span
//!    digest, outcome vector and end time.

use super::spec::ScenarioSpec;
use crate::scen::{ring_load, run_until, settle, TrialWorld};
use dvc_cluster::faults::install_fault_plan;
use dvc_cluster::world::ClusterWorld;
use dvc_core::lsc::{self, LscMethod, LscOutcome};
use dvc_core::vc::{self, VcId};
use dvc_mpi::harness;
use dvc_sim_core::rng;
use dvc_sim_core::{
    kind_from_str, Event, EventSink, FaultPlan, InvariantChecker, LscEvent, Metrics, Oracle,
    PhaseAttribution, Sim, SimDuration, SimTime, SpanChecker, SpanEvent, VmmEvent,
};
use dvc_workloads::{hpl, ptrans, stream};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Per-cycle sim-time deadline for the liveness oracle. The model's own
/// save-phase watchdog declares a run failed after 3600 s (see
/// `lsc::save_timeout`), and a baseline coordinator whose arm command was
/// eaten by `control.drop` legitimately stalls until then — so the oracle
/// only flags rounds that outlive the watchdog too. (The first fuzz
/// campaign ran with 600 s here and "found" exactly that stall; the
/// `baseline-arm-drop-stall` corpus case pins the corrected behavior.)
const ROUND_DEADLINE: SimDuration = SimDuration::from_secs(3700);
/// Post-cycle drain so transport fallout lands and timeouts close spans.
const DRAIN: SimDuration = SimDuration::from_secs(45);

/// Knobs the tests (and the forced-violation acceptance check) turn.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tuning {
    /// Replace the world-derived silence budget the oracles check against.
    /// This is the sabotage hook: a near-zero budget must make the window
    /// oracle fire on any stored round, and the shrinker must then reduce
    /// the scenario to (almost) nothing.
    pub budget_override: Option<SimDuration>,
    /// Run the spec twice and compare digests (the determinism oracle).
    pub replay_check: bool,
}

/// One oracle objection.
#[derive(Clone, Debug)]
pub struct OracleFailure {
    pub oracle: &'static str,
    pub detail: String,
}

/// Everything one trial reports back to the campaign.
#[derive(Clone, Debug, Default)]
pub struct TrialReport {
    /// FNV digest over the event stream, span stream, outcomes and end
    /// time — the determinism fingerprint.
    pub digest: u64,
    /// Oracle objections — genuine bugs (or sabotage). Empty ⇒ clean.
    pub failures: Vec<OracleFailure>,
    /// Expected-by-design detections: blown stored windows from
    /// non-hardened coordinators (the paper's failure mode, observed).
    pub detections: Vec<String>,
    /// Checkpoint outcomes delivered / successful.
    pub outcomes: u32,
    pub successes: u32,
    /// Oracle exercise counts (vacuous-trial accounting).
    pub windows_checked: u64,
    pub spans_opened: u64,
    pub events: u64,
    pub faults_injected: u64,
    /// The application survived (no rank crashed or saw a socket error).
    pub app_alive: bool,
    pub end_s: f64,
}

impl TrialReport {
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn summary(&self) -> String {
        format!(
            "{}: {} outcome(s) ({} ok), {} window(s), {} span(s), {} fault(s), \
             {} detection(s), app {}",
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} FAILURE(S)", self.failures.len())
            },
            self.outcomes,
            self.successes,
            self.windows_checked,
            self.spans_opened,
            self.faults_injected,
            self.detections.len(),
            if self.app_alive { "alive" } else { "dead" },
        )
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Independent bookkeeping over the raw stream, for the cross-check oracle
/// and the determinism digest. Deliberately *not* reusing the metrics
/// registry: agreeing with it is one of the checks.
#[derive(Debug, Default)]
struct CrossCheck {
    digest: u64,
    events: u64,
    snap_begin: u64,
    snap_end: u64,
    set_stored: u64,
    windows_stored: u64,
    vmm_save_spans: u64,
}

impl EventSink for CrossCheck {
    fn on_event(&mut self, time: SimTime, event: &Event) {
        if self.events == 0 {
            self.digest = FNV_OFFSET;
        }
        self.events += 1;
        self.digest = fnv(self.digest, &time.nanos().to_le_bytes());
        self.digest = fnv(self.digest, event.key().as_bytes());
        match event {
            Event::Vmm(VmmEvent::SnapshotBegin { .. }) => self.snap_begin += 1,
            Event::Vmm(VmmEvent::SnapshotEnd { .. }) => self.snap_end += 1,
            Event::Lsc(LscEvent::SetStored { .. }) => self.set_stored += 1,
            Event::Lsc(LscEvent::WindowClosed { stored: true, .. }) => self.windows_stored += 1,
            Event::Span(SpanEvent::Open {
                name: "vmm.save", ..
            }) => self.vmm_save_spans += 1,
            _ => {}
        }
    }
}

/// Run a validated spec once (twice with [`Tuning::replay_check`]) and
/// render the oracle verdicts.
pub fn run_scenario(spec: &ScenarioSpec, tuning: &Tuning) -> Result<TrialReport, String> {
    spec.validate()?;
    let mut report = run_once(spec, tuning)?;
    if tuning.replay_check {
        let twin = run_once(spec, tuning)?;
        if twin.digest != report.digest {
            report.failures.push(OracleFailure {
                oracle: "determinism",
                detail: format!(
                    "same-spec replay diverged: digest {:#x} vs {:#x} \
                     ({} vs {} events, end {:.3}s vs {:.3}s)",
                    report.digest,
                    twin.digest,
                    report.events,
                    twin.events,
                    report.end_s,
                    twin.end_s
                ),
            });
        }
    }
    Ok(report)
}

fn launch_workload(
    sim: &mut Sim<ClusterWorld>,
    spec: &ScenarioSpec,
    vc_id: VcId,
) -> harness::MpiJob {
    let vms = vc::vc(sim, vc_id).expect("vc just provisioned").vms.clone();
    let n = spec.nodes;
    match spec.workload.as_str() {
        "ring" => ring_load(sim, vc_id, u64::MAX / 2),
        // The sequential workload: rank 0's VM computes, the rest idle
        // (their saves are still coordinated). Sized to outlast the trial.
        "stream" => {
            let cfg = stream::StreamConfig {
                len: 1 << 12,
                reps: 5_000,
                mem_bw_bps: 5.0e5,
                scalar: 3.0,
            };
            harness::launch_on_vms(sim, &vms[..1], move |r, s| stream::program(cfg, r, s))
        }
        "hpl" => {
            let cfg = hpl::HplConfig::new(8 * n, 8, spec.seed);
            harness::launch_on_vms(sim, &vms, move |r, s| hpl::program(cfg, r, s))
        }
        "ptrans" => {
            let cfg = ptrans::PtransConfig::new(8 * n, spec.seed).with_reps(50);
            harness::launch_on_vms(sim, &vms, move |r, s| ptrans::program(cfg, r, s))
        }
        other => unreachable!("validated workload {other:?}"),
    }
}

fn build_plan(spec: &ScenarioSpec, t0: SimTime) -> FaultPlan {
    let mut plan = FaultPlan::new(rng::derive_seed(spec.seed, "fuzz.plan", 0));
    for f in &spec.faults {
        let kind = kind_from_str(&f.kind).expect("validated kind");
        plan.window(
            kind,
            f.target,
            t0 + SimDuration::from_secs_f64(f.from_s),
            t0 + SimDuration::from_secs_f64(f.until_s),
            f.magnitude,
        );
    }
    for s in &spec.steady {
        plan.steady(kind_from_str(&s.kind).expect("validated kind"), s.prob);
    }
    plan
}

fn run_once(spec: &ScenarioSpec, tuning: &Tuning) -> Result<TrialReport, String> {
    let method = LscMethod::from_name(&spec.method).expect("validated method");
    let tw = TrialWorld {
        nodes: spec.nodes,
        spares: spec.spares,
        clusters: spec.clusters,
        seed: spec.seed,
        tcp_retries: spec.tcp_retries,
        clock_offset_ms: spec.clock_offset_ms,
        mem_mb: spec.mem_mb,
        ntp: spec.ntp,
        ..TrialWorld::default()
    };
    let (mut sim, vc_id) = tw.build();
    let budget = tuning
        .budget_override
        .unwrap_or_else(|| sim.world.cfg.silence_budget());

    sim.metrics = Metrics::enabled();
    let inv = Rc::new(RefCell::new(InvariantChecker::new(budget)));
    let spans = Rc::new(RefCell::new(SpanChecker::new()));
    let attrib = Rc::new(RefCell::new(PhaseAttribution::new(budget)));
    let cross = Rc::new(RefCell::new(CrossCheck::default()));
    sim.attach_sink(inv.clone());
    sim.attach_sink(spans.clone());
    sim.attach_sink(attrib.clone());
    sim.attach_sink(cross.clone());

    let job = launch_workload(&mut sim, spec, vc_id);
    settle(&mut sim, SimDuration::from_secs_f64(spec.settle_s));
    let t0 = sim.now();
    install_fault_plan(&mut sim, build_plan(spec, t0));

    // Drive the checkpoint cycles with a per-round liveness deadline.
    #[derive(Default)]
    struct Bucket(Vec<LscOutcome>);
    sim.world.ext.insert(Bucket::default());
    let mut failures: Vec<OracleFailure> = Vec::new();
    let gap = SimDuration::from_secs_f64(spec.gap_s);
    for k in 0..spec.cycles {
        let at = sim.now() + gap;
        sim.schedule_at(at, move |sim| {
            lsc::checkpoint_vc(sim, vc_id, method, |sim, out| {
                sim.world.ext.get_or_default::<Bucket>().0.push(out);
            });
        });
        let want = (k + 1) as usize;
        let deadline = at + ROUND_DEADLINE;
        let ok = run_until(&mut sim, deadline, |sim| {
            sim.world
                .ext
                .get::<Bucket>()
                .is_some_and(|b| b.0.len() >= want)
        });
        if !ok {
            failures.push(OracleFailure {
                oracle: "liveness",
                detail: format!(
                    "cycle {k}: no outcome by t={:.1}s (queue {})",
                    deadline.as_secs_f64(),
                    if sim.now() > deadline {
                        "live"
                    } else {
                        "drained"
                    },
                ),
            });
            break;
        }
    }
    settle(&mut sim, DRAIN);

    let outcomes = sim
        .world
        .ext
        .remove::<Bucket>()
        .map(|b| b.0)
        .unwrap_or_default();
    let app_alive = harness::first_failure(&sim, &job).is_none();
    let faults_injected = sim.world.faults.injected_total();
    let end = sim.now();
    let m_snap_begin = sim.metrics.counter("vmm.snapshot_begin");
    let m_set_stored = sim.metrics.counter("lsc.set_stored");

    sim.clear_sinks();
    drop(sim);
    let inv = Rc::try_unwrap(inv).expect("sim dropped").into_inner();
    let spans = Rc::try_unwrap(spans).expect("sim dropped").into_inner();
    let mut attrib = Rc::try_unwrap(attrib).expect("sim dropped").into_inner();
    let cross = Rc::try_unwrap(cross).expect("sim dropped").into_inner();
    attrib.observe_end(end);
    attrib.seal();

    let mut detections: Vec<String> = Vec::new();

    // Which coordinators actually promise an in-budget stored window here?
    // `hardened-naive` always: its GO broadcast is clock-free. Clock-based
    // `hardened` promises it only while member clocks are sane — an
    // adversarial `clock.step` between arm and fire defeats the ack guard,
    // because acks prove control-path health, not clock agreement. (Found
    // by campaign seed 1, trial 162: a −7.1 s step with NTP off made
    // `hardened` store a 7.1 s window. See the
    // `hardened-clock-step-blown-window` corpus case.) Naive/ntp never
    // promise it — blown windows there are the paper's phenomenon.
    let steps_clocks = spec.faults.iter().any(|f| f.kind == "clock.step");
    let window_guaranteed = match method {
        LscMethod::HardenedNaive { .. } => true,
        LscMethod::Hardened { .. } => !steps_clocks,
        _ => false,
    };

    // Oracle 1: invariants (window violations split by coordinator family).
    for v in inv.verdict().violations {
        if v.starts_with("lsc window") && !window_guaranteed {
            detections.push(v);
        } else {
            failures.push(OracleFailure {
                oracle: "invariants",
                detail: v,
            });
        }
    }

    // Oracle 2: span well-formedness (unclosed spans included).
    for v in spans.verdict().violations {
        failures.push(OracleFailure {
            oracle: "spans",
            detail: v,
        });
    }

    // Oracle 3: margin consistency — the checker and the attribution sink
    // must agree on exactly which stored rounds blew the budget.
    let flagged: BTreeSet<u64> = inv.window_violation_runs().iter().copied().collect();
    let mut derived: BTreeSet<u64> = BTreeSet::new();
    for r in attrib.rounds() {
        if r.stored == Some(true) {
            match r.spread() {
                Some(s) => {
                    if s > budget {
                        derived.insert(r.run);
                    }
                }
                None => failures.push(OracleFailure {
                    oracle: "margin-consistency",
                    detail: format!("stored round {} has no pause spread", r.run),
                }),
            }
        }
    }
    if derived != flagged {
        failures.push(OracleFailure {
            oracle: "margin-consistency",
            detail: format!(
                "stored rounds over budget disagree: attribution {derived:?} vs checker {flagged:?}"
            ),
        });
    }

    // Oracle 4: stream bookkeeping ties out exactly.
    let mut cross_eq = |label: &str, a: u64, b: u64| {
        if a != b {
            failures.push(OracleFailure {
                oracle: "cross-check",
                detail: format!("{label}: {a} != {b}"),
            });
        }
    };
    cross_eq("snapshot begin vs end", cross.snap_begin, cross.snap_end);
    cross_eq(
        "vmm.save spans vs snapshots",
        cross.vmm_save_spans,
        cross.snap_begin,
    );
    cross_eq(
        "stored sets vs stored windows",
        cross.set_stored,
        cross.windows_stored,
    );
    cross_eq("metrics vmm.snapshot_begin", m_snap_begin, cross.snap_begin);
    cross_eq("metrics lsc.set_stored", m_set_stored, cross.set_stored);
    for r in attrib.rounds() {
        if r.stored == Some(true) && r.fires != spec.nodes as u32 {
            failures.push(OracleFailure {
                oracle: "cross-check",
                detail: format!(
                    "stored round {} fired {} member(s), VC has {}",
                    r.run, r.fires, spec.nodes
                ),
            });
        }
    }

    let mut digest = fnv(FNV_OFFSET, &cross.digest.to_le_bytes());
    digest = fnv(digest, &spans.digest().to_le_bytes());
    digest = fnv(digest, &cross.events.to_le_bytes());
    digest = fnv(digest, &end.nanos().to_le_bytes());
    for o in &outcomes {
        digest = fnv(digest, &[o.success as u8]);
    }

    Ok(TrialReport {
        digest,
        failures,
        detections,
        outcomes: outcomes.len() as u32,
        successes: outcomes.iter().filter(|o| o.success).count() as u32,
        windows_checked: inv.counts().windows,
        spans_opened: spans.opened(),
        events: cross.events,
        faults_injected,
        app_alive,
        end_s: end.as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small calm hardened-naive trial must come back clean with every
    /// oracle exercised.
    #[test]
    fn calm_trial_is_clean_and_exercised() {
        let spec = ScenarioSpec {
            seed: 11,
            nodes: 4,
            method: "hardened-naive".into(),
            settle_s: 10.0,
            ..ScenarioSpec::default()
        };
        let r = run_scenario(&spec, &Tuning::default()).unwrap();
        assert!(r.is_clean(), "{:?}", r.failures);
        assert_eq!(r.outcomes, 1);
        assert!(r.windows_checked >= 1, "window oracle never exercised");
        assert!(r.spans_opened > 0, "span oracle never exercised");
        assert!(r.app_alive);
    }

    /// The sabotage hook: with a near-zero budget every stored round blows
    /// the window, and both the invariant and margin derivations must
    /// agree on it (so only the window failure fires, not a consistency
    /// mismatch).
    #[test]
    fn sabotaged_budget_is_caught_coherently() {
        let spec = ScenarioSpec {
            seed: 12,
            nodes: 4,
            method: "hardened-naive".into(),
            settle_s: 10.0,
            ..ScenarioSpec::default()
        };
        let tuning = Tuning {
            budget_override: Some(SimDuration::from_nanos(1)),
            replay_check: false,
        };
        let r = run_scenario(&spec, &tuning).unwrap();
        assert!(!r.is_clean(), "sabotaged budget must trip the oracles");
        assert!(
            r.failures.iter().any(|f| f.oracle == "invariants"),
            "expected a window violation: {:?}",
            r.failures
        );
        assert!(
            !r.failures.iter().any(|f| f.oracle == "margin-consistency"),
            "both derivations must agree under sabotage: {:?}",
            r.failures
        );
    }
}
