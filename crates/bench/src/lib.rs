//! # dvc-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper (see DESIGN.md §4 for the experiment index), plus shared scenario
//! builders used by the Criterion microbenches.
//!
//! Run everything: `cargo run --release -p dvc-bench --bin experiments -- all`
//! Run one:        `cargo run --release -p dvc-bench --bin experiments -- e2`

pub mod fuzz;
pub mod scen;
pub mod table;
pub mod traceio;

/// Experiment ids in canonical order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
];
