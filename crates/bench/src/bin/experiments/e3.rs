//! E3 — §3.2: the NTP-scheduled prototype. "In more than 2000 tests
//! involving 26 virtual machines on 26 different nodes, no failures to
//! either save or restore all virtual machines occurred."
//!
//! We run checkpoint/restore *cycles* on 26-VM virtual clusters running the
//! communication-heavy ring workload (PTRANS's role: continuous cross-rank
//! traffic with payload verification), across many independent worlds with
//! varying checkpoint gaps and VM memory footprints, until >2000 cycles
//! have been executed. Every cycle must save all 26 VMs, resume them, and
//! leave the application alive with verified data.
//!
//! Each trial also runs with the typed-event [`Metrics`] registry on; the
//! merged rollup prints under the tables, the first trial's full event
//! stream is exported to `EVENTS_E3.jsonl`, and `--check-invariants`
//! attaches an [`InvariantChecker`] to every trial (this campaign injects
//! no faults, so it must come back clean).

use crate::Opts;
use dvc_bench::scen::{ring_load, ring_verdict, run_cycles, settle, TrialWorld};
use dvc_bench::table::{secs, Table};
use dvc_core::lsc::LscMethod;
use dvc_sim_core::trial::run_trials;
use dvc_sim_core::{
    CheckCounts, InvariantChecker, JsonlSink, Metrics, MetricsSnapshot, SimDuration,
};
use std::cell::RefCell;
use std::rc::Rc;

struct TrialOut {
    cycles: usize,
    cycle_fails: usize,
    app_ok: bool,
    skew_max: f64,
    save_mean: f64,
    mem_mb: u32,
    metrics: MetricsSnapshot,
    violations: Vec<String>,
    checked: Option<CheckCounts>,
    jsonl: Option<Vec<String>>,
}

pub fn run(opts: Opts) {
    println!("## E3 — NTP-scheduled LSC: the >2000-test campaign (paper §3.2)\n");
    // 105 worlds × 20 cycles = 2100 checkpoint/restore tests at scale 1.
    let worlds = opts.trials(105);
    let cycles_per_world = 20u32;

    let results = run_trials(worlds, opts.seed ^ 0xE3, opts.threads, |i, seed| {
        // Vary the paper's knobs across trials: gap between checkpoints and
        // VM image size ("multiple problem sizes … varying times between
        // checkpoints").
        let gap_s = [10.0, 20.0, 40.0][i % 3];
        let mem_mb = [64u32, 128, 256][(i / 3) % 3];
        let tw = TrialWorld {
            nodes: 26,
            seed,
            mem_mb,
            ..TrialWorld::default()
        };
        let (mut sim, vc_id) = tw.build();
        sim.metrics = Metrics::enabled();
        let checker = opts.check_invariants.then(|| {
            let c = Rc::new(RefCell::new(InvariantChecker::new(
                InvariantChecker::default_budget(),
            )));
            sim.attach_sink(c.clone());
            c
        });
        let exporter = (i == 0).then(|| {
            let s = Rc::new(RefCell::new(JsonlSink::new(200_000)));
            sim.attach_sink(s.clone());
            s
        });
        let job = ring_load(&mut sim, vc_id, u64::MAX / 2);
        settle(&mut sim, SimDuration::from_secs(40));
        let outs = run_cycles(
            &mut sim,
            vc_id,
            LscMethod::ntp_default(),
            cycles_per_world,
            SimDuration::from_secs_f64(gap_s),
        );
        settle(&mut sim, SimDuration::from_secs(60));
        let v = ring_verdict(&sim, &job);
        let cycle_fails =
            outs.iter().filter(|o| !o.success).count() + (cycles_per_world as usize - outs.len());
        // Fold the engine's own queue-health counters into the rollup.
        let st = sim.stats();
        sim.metrics.record_sim_stats(&st);
        let skew_max = outs
            .iter()
            .map(|o| o.pause_skew.as_secs_f64())
            .fold(0.0f64, f64::max);
        let save_mean = outs
            .iter()
            .map(|o| o.save_duration.as_secs_f64())
            .sum::<f64>()
            / outs.len().max(1) as f64;
        TrialOut {
            cycles: outs.len(),
            cycle_fails,
            app_ok: v.alive && v.data_ok,
            skew_max,
            save_mean,
            mem_mb,
            metrics: sim.metrics.snapshot(),
            violations: checker
                .as_ref()
                .map(|c| c.borrow().violations().to_vec())
                .unwrap_or_default(),
            checked: checker.map(|c| c.borrow().counts()),
            jsonl: exporter.map(|s| std::mem::take(&mut s.borrow_mut().lines)),
        }
    });

    let total_cycles: usize = results.iter().map(|r| r.cycles).sum();
    let failed_cycles: usize = results.iter().map(|r| r.cycle_fails).sum();
    let bad_apps = results.iter().filter(|r| !r.app_ok).count();
    let worst_skew = results.iter().map(|r| r.skew_max).fold(0.0f64, f64::max);

    let mut t = Table::new(&["quantity", "value", "paper"]);
    t.row(&[
        "checkpoint/restore tests".into(),
        total_cycles.to_string(),
        ">2000".into(),
    ]);
    t.row(&[
        "VMs per test".into(),
        "26 on 26 nodes".into(),
        "26 on 26 nodes".into(),
    ]);
    t.row(&[
        "save/restore failures".into(),
        failed_cycles.to_string(),
        "0".into(),
    ]);
    t.row(&[
        "application failures / data corruption".into(),
        bad_apps.to_string(),
        "0".into(),
    ]);
    t.row(&[
        "worst pause skew".into(),
        secs(worst_skew),
        "few ms (NTP residual)".into(),
    ]);
    println!("{}", t.render());

    // Per-memory-size save cost summary (leads into E9).
    let mut t2 = Table::new(&["VM memory", "mean save duration (26 VMs, shared storage)"]);
    for mem in [64u32, 128, 256] {
        let xs: Vec<f64> = results
            .iter()
            .filter(|r| r.mem_mb == mem && r.cycles > 0)
            .map(|r| r.save_mean)
            .collect();
        if xs.is_empty() {
            continue;
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        t2.row(&[format!("{mem} MB"), secs(mean)]);
    }
    println!("{}", t2.render());

    // Typed-event metrics rollup across the whole campaign.
    let mut rollup = MetricsSnapshot::default();
    for r in &results {
        rollup.merge(&r.metrics);
    }
    if !rollup.is_empty() {
        println!("metrics rollup ({} trials):\n", results.len());
        println!("```");
        print!("{rollup}");
        println!("```");
    }
    if let Some(lines) = results.iter().find_map(|r| r.jsonl.as_ref()) {
        let path = "EVENTS_E3.jsonl";
        match std::fs::write(path, lines.join("\n") + "\n") {
            Ok(()) => println!(
                "\n_exported {} typed events (trial 0) to {path}_",
                lines.len()
            ),
            Err(e) => eprintln!("e3: could not write {path}: {e}"),
        }
    }
    if opts.check_invariants {
        let mut counts = CheckCounts::default();
        let mut violations: Vec<&String> = Vec::new();
        for r in &results {
            if let Some(c) = r.checked {
                counts.windows += c.windows;
                counts.sets += c.sets;
                counts.job_starts += c.job_starts;
            }
            violations.extend(&r.violations);
        }
        println!(
            "\ninvariants: {} violation(s) across {} save windows, {} stored sets, \
             {} job starts",
            violations.len(),
            counts.windows,
            counts.sets,
            counts.job_starts
        );
        for v in violations.iter().take(10) {
            println!("  - {v}");
        }
        assert!(
            violations.is_empty(),
            "E3 injects no faults; the invariant stream must be clean"
        );
        assert!(
            counts.windows > 0 && counts.sets > 0,
            "E3 invariant checkers saw no checkpoint traffic — wiring broken?"
        );
    }
    println!();
}
