//! E1 — Figure 2: consistent vs. inconsistent cuts of the network state.
//!
//! Reproduced at the TCP sequence-number level with two hosts:
//!
//! * **S1** — a data segment is in flight when both endpoints are
//!   snapshotted (the receiver never saw it): after restore the sender
//!   retransmits; delivery is exactly-once.
//! * **S2** — the receiver got the data but its ACK is lost at the snapshot
//!   instant: after restore the sender retransmits, the receiver discards
//!   the duplicate and re-ACKs; delivery is exactly-once.
//! * **Inconsistent cut (control)** — snapshots taken at *different logical
//!   instants* (receiver after delivery, sender before the send): restoring
//!   that pair duplicates the message — exactly the cut Figure 2 forbids
//!   and coordinated VM checkpointing prevents.

use crate::Opts;
use dvc_bench::table::Table;
use dvc_net::fabric::LinkParams;
use dvc_net::packet::{Packet, L4};
use dvc_net::tcp::{SockEvent, SockId, TcpConfig};
use dvc_net::testkit::{
    drain, local_now, pause, restore, run_until, snapshot, DropRule, TestWorld,
};
use dvc_sim_core::{Sim, SimDuration, SimTime};

const A: usize = 0;
const B: usize = 1;

fn establish(sim: &mut Sim<TestWorld>) -> (SockId, SockId) {
    let listener = sim.world.hosts[B].tcp.listen(7000).unwrap();
    let now = local_now(sim);
    let b_addr = sim.world.hosts[B].addr;
    let sa = sim.world.hosts[A].tcp.connect(now, b_addr, 7000);
    drain(sim, A);
    run_until(sim, SimTime::from_secs_f64(10.0), |sim| {
        sim.world.hosts[B]
            .events
            .iter()
            .any(|&(s, e)| s == listener && matches!(e, SockEvent::Incoming(_)))
    });
    let sb = sim.world.hosts[B]
        .events
        .iter()
        .find_map(|&(s, e)| match e {
            SockEvent::Incoming(n) if s == listener => Some(n),
            _ => None,
        })
        .unwrap();
    (sa, sb)
}

/// Returns (bytes delivered to the app, exactly_once, app_failed).
fn scenario(kind: &str) -> (usize, bool, bool) {
    let mut sim = Sim::new(
        TestWorld::new(2, LinkParams::gige_lan(), TcpConfig::default()),
        7,
    );
    let (sa, sb) = establish(&mut sim);
    let msg = b"the-one-true-message";

    match kind {
        "s1" => {
            // Data in flight at the coordinated snapshot.
            let now = local_now(&sim);
            sim.world.hosts[A].tcp.send(now, sa, msg);
            drain(&mut sim, A);
            pause(&mut sim, B); // in-flight segment dies at B's paused vif
            let snap_b = snapshot(&sim, B);
            pause(&mut sim, A);
            let snap_a = snapshot(&sim, A);
            let at = sim.now() + SimDuration::from_secs(1);
            sim.schedule_at(at, move |sim| restore(sim, B, snap_b));
            sim.schedule_at(at + SimDuration::from_millis(1), move |sim| {
                restore(sim, A, snap_a)
            });
        }
        "s2" => {
            // ACK lost at the coordinated snapshot.
            fn is_pure_ack(p: &Packet) -> bool {
                matches!(&p.l4, L4::Tcp(s) if s.payload.is_empty() && s.flags.ack && !s.flags.syn)
            }
            let now = local_now(&sim);
            sim.world.hosts[A].tcp.send(now, sa, msg);
            drain(&mut sim, A);
            sim.world.drop_rules.push(DropRule {
                remaining: 1,
                pred: is_pure_ack,
                dropped: 0,
            });
            run_until(&mut sim, SimTime::from_secs_f64(5.0), |sim| {
                sim.world.hosts[B].tcp.readable_bytes(sb) >= 20
            });
            pause(&mut sim, B);
            let snap_b = snapshot(&sim, B);
            pause(&mut sim, A);
            let snap_a = snapshot(&sim, A);
            let at = sim.now() + SimDuration::from_secs(1);
            sim.schedule_at(at, move |sim| restore(sim, A, snap_a));
            sim.schedule_at(at + SimDuration::from_millis(1), move |sim| {
                restore(sim, B, snap_b)
            });
        }
        "inconsistent" => {
            // Control: the orphan-message cut of Figure 2 — the receiver is
            // rolled back to *before* the delivery while the sender (which
            // already got the ACK and moved on) is not rolled back at all.
            let snap_b = snapshot(&sim, B); // B: pre-receive state
            let now = local_now(&sim);
            sim.world.hosts[A].tcp.send(now, sa, msg);
            drain(&mut sim, A);
            run_until(&mut sim, SimTime::from_secs_f64(5.0), |sim| {
                sim.world.hosts[B].tcp.readable_bytes(sb) >= 20
            });
            // B's application consumes the message, then B alone is rolled
            // back: the delivery is erased, and A will never resend (its
            // kernel saw the ACK).
            let now = local_now(&sim);
            let _consumed = sim.world.hosts[B].tcp.recv(now, sb, 1 << 16);
            drain(&mut sim, B);
            pause(&mut sim, B);
            let at = sim.now() + SimDuration::from_secs(1);
            sim.schedule_at(at, move |sim| restore(sim, B, snap_b));
        }
        _ => unreachable!(),
    }

    // Drive to quiescence and collect what the (restored) receiver has.
    run_until(&mut sim, SimTime::from_secs_f64(120.0), |sim| {
        sim.events_pending() == 0
    });
    let now = local_now(&sim);
    let got = sim.world.hosts[B].tcp.recv(now, sb, 1 << 16);
    let failed = sim.world.hosts[A]
        .events
        .iter()
        .any(|&(_, e)| matches!(e, SockEvent::Failed(_)));
    let exactly_once = got == msg.to_vec();
    (got.len(), exactly_once, failed)
}

pub fn run(_opts: Opts) {
    println!("## E1 — Figure 2: network cuts at the snapshot instant\n");
    let mut t = Table::new(&[
        "cut",
        "coordinated",
        "bytes delivered",
        "exactly-once",
        "transport failure",
    ]);
    for (kind, label, coord) in [
        ("s1", "S1: data segment lost at snapshot", "yes"),
        ("s2", "S2: ACK lost at snapshot", "yes"),
        ("inconsistent", "receiver-only rollback (control)", "NO"),
    ] {
        let (bytes, once, failed) = scenario(kind);
        t.row(&[
            label.into(),
            coord.into(),
            format!("{bytes} (msg is 20)"),
            if once {
                "yes".into()
            } else {
                "VIOLATED (message lost)".into()
            },
            if failed { "yes".into() } else { "no".into() },
        ]);
    }
    println!("{}", t.render());
    println!(
        "Coordinated snapshots leave any in-flight loss to TCP \
         retransmission, so the cut is consistent; the uncoordinated \
         control cut orphans the delivery — the receiver's restored state \
         never gets the message again, the inconsistency Figure 2 \
         illustrates.\n"
    );
}
