//! E10 — the title claim: *increasing reliability*. "If a single physical
//! node dies, we can restart a checkpoint of the entire virtual cluster on
//! a different set of physical nodes."
//!
//! A fixed-size ring job (16 vnodes, ~200 s of work) runs while its nodes
//! crash with exponential MTBF (and repair). Three policies:
//!
//! * **none** — no checkpoints: the first node loss kills the job;
//! * **LSC @ fixed 60 s** — periodic checkpoints, automatic restore onto
//!   healthy nodes;
//! * **LSC @ Young** — the same, with Young's √(2·C·MTBF) cadence driven by
//!   the measured checkpoint cost.
//!
//! We report job success probability within a 6× deadline, mean completion
//! time of successful runs, and restores performed.

use crate::Opts;
use dvc_bench::scen::{ring_verdict, run_until, settle, TrialWorld};
use dvc_bench::table::{pct, secs, Table};
use dvc_cluster::failure::{arm_failures, FailureProcess};
use dvc_core::lsc::LscMethod;
use dvc_core::reliability::{self, Cadence, Policy};
use dvc_core::vc;
use dvc_mpi::harness;
use dvc_sim_core::trial::run_trials;
use dvc_sim_core::SimDuration;
use dvc_workloads::ring;

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    None,
    Fixed,
    Young,
}

struct TrialOut {
    success: bool,
    completion_s: f64,
    restores: u32,
}

fn one(seed: u64, mtbf_s: f64, arm: Arm) -> TrialOut {
    let laps: u64 = 1000; // ~210 s of work at 200 ms/lap
    let tw = TrialWorld {
        nodes: 16,
        spares: 16,
        seed,
        mem_mb: 64,
        ..TrialWorld::default()
    };
    let (mut sim, vc_id) = tw.build();
    let cfg = ring::RingConfig {
        payload_len: 4096,
        iters: laps,
        compute_ns: 100_000_000,
    };
    let vms = vc::vc(&sim, vc_id).unwrap().vms.clone();
    let job = harness::launch_on_vms(&mut sim, &vms, move |r, s| ring::program(cfg, r, s));
    settle(&mut sim, SimDuration::from_secs(20));
    let t_start = sim.now();

    match arm {
        Arm::None => {}
        Arm::Fixed => reliability::manage(
            &mut sim,
            vc_id,
            Policy {
                cadence: Cadence::Fixed(SimDuration::from_secs(60)),
                method: LscMethod::ntp_default(),
                max_restores: 32,
                ..Policy::periodic(SimDuration::from_secs(60))
            },
        ),
        Arm::Young => reliability::manage(
            &mut sim,
            vc_id,
            Policy {
                cadence: Cadence::Young {
                    mtbf: SimDuration::from_secs_f64(mtbf_s / 16.0), // VC-level MTBF
                    initial: SimDuration::from_secs(60),
                },
                method: LscMethod::ntp_default(),
                max_restores: 32,
                ..Policy::periodic(SimDuration::from_secs(60))
            },
        ),
    }

    // Failures on all non-head nodes, for the whole horizon.
    let horizon = t_start + SimDuration::from_secs_f64(6.0 * 220.0);
    let victims: Vec<_> = sim
        .world
        .node_ids()
        .into_iter()
        .filter(|n| n.0 != 0)
        .collect();
    arm_failures(
        &mut sim,
        &victims,
        FailureProcess {
            mtbf: SimDuration::from_secs_f64(mtbf_s),
            repair_time: SimDuration::from_secs(90),
            horizon,
        },
    );

    let done = run_until(&mut sim, horizon, |sim| harness::all_done(sim, &job));
    let v = ring_verdict(&sim, &job);
    let restores = reliability::stats(&mut sim, vc_id).restores;
    TrialOut {
        success: done && v.alive && v.data_ok,
        completion_s: (sim.now() - t_start).as_secs_f64(),
        restores,
    }
}

pub fn run(opts: Opts) {
    println!("## E10 — reliability gain: job survival under node failures (title claim)\n");
    let trials = opts.trials(8);
    let mut t = Table::new(&[
        "per-node MTBF",
        "policy",
        "job success",
        "mean completion (successes)",
        "mean restores",
    ]);
    for &mtbf in &[400.0f64, 800.0, 1600.0, 3200.0] {
        for (arm, name) in [
            (Arm::None, "no checkpointing"),
            (Arm::Fixed, "LSC every 60 s"),
            (Arm::Young, "LSC @ Young interval"),
        ] {
            // Same seed base per MTBF: all three arms face the *same*
            // failure traces, so arm differences are policy, not luck.
            let rs = run_trials(
                trials,
                opts.seed ^ 0xE10 ^ mtbf as u64,
                opts.threads,
                |_i, seed| {
                    let o = one(seed, mtbf, arm);
                    (o.success, o.completion_s, o.restores)
                },
            );
            let succ = rs.iter().filter(|r| r.0).count();
            let mean_t = rs.iter().filter(|r| r.0).map(|r| r.1).sum::<f64>() / succ.max(1) as f64;
            let mean_restores = rs.iter().map(|r| r.2 as f64).sum::<f64>() / trials as f64;
            t.row(&[
                format!("{mtbf:.0} s"),
                name.into(),
                pct(succ as f64 / trials as f64),
                if succ == 0 { "-".into() } else { secs(mean_t) },
                format!("{mean_restores:.1}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Without checkpoints, survival is the probability that no VC node \
         fails for the job's whole runtime — hopeless at low MTBF. With \
         LSC + automatic restore, jobs ride through repeated node losses \
         at the cost of replayed work per failure.\n"
    );
}
