//! E5 — §1: virtualization overhead. "AMD's Pacifica and Intel's VT efforts
//! will provide support to run Xen virtualization at near native speed,
//! reducing the overhead of this approach to near zero."
//!
//! Sequential (STREAM) and parallel (HPL, PTRANS) workloads run to
//! completion under three virtualization profiles; we report wall-time
//! overhead relative to native.

use crate::Opts;
use dvc_bench::table::{pct, secs, Table};
use dvc_cluster::world::ClusterBuilder;
use dvc_mpi::harness::{self, run_job};
use dvc_sim_core::{Sim, SimTime};
use dvc_vmm::OverheadProfile;
use dvc_workloads::{hpl, ptrans, stream};

fn run_workload(which: &str, profile: OverheadProfile, seed: u64) -> f64 {
    let ranks = if which == "stream" { 1 } else { 8 };
    let mut sim = Sim::new(
        ClusterBuilder::new()
            .nodes_per_cluster(ranks)
            .perfect_clocks()
            .tweak(|c| c.vm_overhead = profile)
            .build(seed),
        seed,
    );
    let nodes = sim.world.node_ids();
    let job = match which {
        "stream" => {
            let cfg = stream::StreamConfig {
                len: 1 << 14,
                reps: 50,
                ..Default::default()
            };
            harness::launch(&mut sim, &nodes, 1, 128, move |r, s| {
                stream::program(cfg, r, s)
            })
        }
        "hpl" => {
            let cfg = hpl::HplConfig::new(512, 64, 5);
            harness::launch(&mut sim, &nodes, ranks, 128, move |r, s| {
                hpl::program(cfg, r, s)
            })
        }
        "ptrans" => {
            let cfg = ptrans::PtransConfig::new(512, 5).with_reps(60);
            harness::launch(&mut sim, &nodes, ranks, 128, move |r, s| {
                ptrans::program(cfg, r, s)
            })
        }
        _ => unreachable!(),
    };
    let end = run_job(&mut sim, &job, SimTime::from_secs_f64(36000.0)).expect("workload failed");
    end.as_secs_f64()
}

pub fn run(opts: Opts) {
    println!("## E5 — virtualization overhead: native vs para-virt vs VT/Pacifica (paper §1)\n");
    let mut t = Table::new(&[
        "workload",
        "native",
        "para-virt",
        "pv overhead",
        "hw-assist (VT/Pacifica)",
        "hw overhead",
    ]);
    for which in ["stream", "hpl", "ptrans"] {
        let native = run_workload(which, OverheadProfile::NATIVE, opts.seed);
        let pv = run_workload(which, OverheadProfile::PARAVIRT, opts.seed);
        let hw = run_workload(which, OverheadProfile::HVM_ASSIST, opts.seed);
        t.row(&[
            which.into(),
            secs(native),
            secs(pv),
            pct(pv / native - 1.0),
            secs(hw),
            pct(hw / native - 1.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Para-virtualized guests pay a few percent on compute and more on \
         I/O-heavy paths; hardware-assisted virtualization is near native — \
         the trend the paper banks on for DVC's viability.\n"
    );
}
