//! The experiment harness: regenerates every table/figure of the paper.
//!
//! ```text
//! cargo run --release -p dvc-bench --bin experiments -- all
//! cargo run --release -p dvc-bench --bin experiments -- e2 e3
//! cargo run --release -p dvc-bench --bin experiments -- --trials 200 e2
//! cargo run --release -p dvc-bench --bin experiments -- --quick all
//! ```
//!
//! Every experiment prints a self-contained markdown section; `tee` the
//! output to capture it for EXPERIMENTS.md.

mod e1;
mod e10;
mod e11;
mod e12;
mod e13;
mod e2;
mod e3;
mod e4;
mod e5;
mod e6;
mod e7;
mod e8;
mod e9;

/// Global experiment options.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Trial multiplier: 1.0 = paper-comparable defaults.
    pub scale: f64,
    pub seed: u64,
    pub threads: usize,
    /// Attach [`dvc_sim_core::InvariantChecker`] sinks to every trial and
    /// fail the run on any violation (hardened arms must stay clean;
    /// baseline arms under injected clock faults report their violations
    /// as detections).
    pub check_invariants: bool,
}

impl Opts {
    /// Scale a default trial count.
    pub fn trials(&self, default: usize) -> usize {
        ((default as f64 * self.scale).round() as usize).max(1)
    }
}

fn main() {
    let mut scale = 1.0f64;
    let mut seed = 20070926; // CLUSTER 2007 ;-)
    let mut check_invariants = false;
    let mut picked: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = 0.15,
            "--check-invariants" => check_invariants = true,
            "--trials-scale" => {
                scale = args
                    .next()
                    .expect("--trials-scale <f64>")
                    .parse()
                    .expect("bad scale");
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed <u64>")
                    .parse()
                    .expect("bad seed");
            }
            "all" => picked.extend(dvc_bench::ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            e if dvc_bench::ALL_EXPERIMENTS.contains(&e) => picked.push(e.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: experiments [--quick] [--trials-scale X] [--seed S] \
                     [--check-invariants] <e1..e13|all>..."
                );
                std::process::exit(2);
            }
        }
    }
    if picked.is_empty() {
        picked.extend(dvc_bench::ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    picked.dedup();

    let opts = Opts {
        scale,
        seed,
        threads: dvc_sim_core::trial::default_threads(),
        check_invariants,
    };
    println!(
        "# DVC experiment run (seed {seed}, trial scale {scale}, {} threads)\n",
        opts.threads
    );
    for e in picked {
        let t0 = std::time::Instant::now();
        match e.as_str() {
            "e1" => e1::run(opts),
            "e2" => e2::run(opts),
            "e3" => e3::run(opts),
            "e4" => e4::run(opts),
            "e5" => e5::run(opts),
            "e6" => e6::run(opts),
            "e7" => e7::run(opts),
            "e8" => e8::run(opts),
            "e9" => e9::run(opts),
            "e10" => e10::run(opts),
            "e11" => e11::run(opts),
            "e12" => e12::run(opts),
            "e13" => e13::run(opts),
            _ => unreachable!(),
        }
        println!("_({e} took {:.1}s wall)_\n", t0.elapsed().as_secs_f64());
    }
}
