//! E6 — §1/§2: whole-VM (DVC) vs application-level checkpointing.
//!
//! "This approach has even more overhead than user level checkpointing
//! since the state of the entire guest environment is saved … but in many
//! ways is simpler to deal with since all guest kernel state is saved."
//!
//! For HPL at several problem sizes we measure, per checkpoint:
//! * DVC: total image bytes (= guest memory), parallel save time, parallel
//!   restore time — fully transparent;
//! * application-level: bytes the application itself persists (its live
//!   matrix + pivots), and the time those writes take on the local scratch
//!   disks — minimal data, but the application must implement it.

use crate::Opts;
use dvc_bench::scen::{run_until, TrialWorld};
use dvc_bench::table::{secs, Table};
use dvc_core::lsc::{self, LscMethod};
use dvc_core::vc;
use dvc_mpi::harness;
use dvc_sim_core::{SimDuration, SimTime};
use dvc_workloads::hpl;

struct DvcCost {
    image_mb: f64,
    save_s: f64,
    restore_s: f64,
}

fn dvc_cost(opts: Opts, ranks: usize, mem_mb: u32) -> DvcCost {
    let tw = TrialWorld {
        nodes: ranks,
        spares: ranks,
        seed: opts.seed ^ 0xE6,
        mem_mb,
        ..TrialWorld::default()
    };
    let (mut sim, vc_id) = tw.build();
    // An idle-ish guest is fine: image size is the memory footprint either
    // way; what we time is the storage path.
    let _job = dvc_bench::scen::ring_load(&mut sim, vc_id, u64::MAX / 2);
    dvc_bench::scen::settle(&mut sim, SimDuration::from_secs(30));

    #[derive(Default)]
    struct Got(Option<(f64, u64, f64)>); // (save_s, set_id, image_mb)
    sim.world.ext.insert(Got::default());
    lsc::checkpoint_vc(&mut sim, vc_id, LscMethod::ntp_default(), |sim, out| {
        assert!(out.success, "E6 checkpoint failed: {}", out.detail);
        let set_id = out.set_id.unwrap();
        let bytes = vc::store(sim)
            .sets
            .iter()
            .find(|s| s.id == set_id)
            .unwrap()
            .total_bytes();
        sim.world.ext.get_or_default::<Got>().0 =
            Some((out.save_duration.as_secs_f64(), set_id, bytes as f64 / 1e6));
    });
    run_until(&mut sim, SimTime::from_secs_f64(36000.0), |sim| {
        sim.world.ext.get::<Got>().is_some_and(|g| g.0.is_some())
    });
    let (save_s, set_id, image_mb) = sim.world.ext.get::<Got>().unwrap().0.unwrap();

    // Restore onto the spare nodes, timing the parallel read + resume.
    #[derive(Default)]
    struct RestoreT(Option<f64>);
    sim.world.ext.insert(RestoreT::default());
    let targets: Vec<_> = ((ranks as u32 + 1)..=(2 * ranks as u32))
        .map(dvc_cluster::node::NodeId)
        .collect();
    lsc::restore_vc(
        &mut sim,
        set_id,
        targets,
        SimDuration::from_secs(5),
        |sim, out| {
            assert!(out.success);
            sim.world.ext.get_or_default::<RestoreT>().0 = Some(out.duration.as_secs_f64());
        },
    )
    .expect("restore should start");
    run_until(&mut sim, SimTime::from_secs_f64(36000.0), |sim| {
        sim.world
            .ext
            .get::<RestoreT>()
            .is_some_and(|g| g.0.is_some())
    });
    let restore_s = sim.world.ext.get::<RestoreT>().unwrap().0.unwrap();
    DvcCost {
        image_mb,
        save_s,
        // The coordinated restore includes its 5 s NTP lead; report the
        // storage+resume part.
        restore_s: (restore_s - 5.0).max(0.0),
    }
}

struct AppCost {
    ckpt_mb: f64,
    write_s: f64,
}

/// Application-level arm: run HPL with periodic self-checkpoints and read
/// the per-checkpoint byte volume off the guests' scratch disks.
fn app_cost(opts: Opts, ranks: usize, n: usize) -> AppCost {
    let tw = TrialWorld {
        nodes: ranks,
        seed: opts.seed ^ 0xE6 ^ 7,
        mem_mb: 256,
        ..TrialWorld::default()
    };
    let (mut sim, vc_id) = tw.build();
    let mut cfg = hpl::HplConfig::new(n, 16, 5);
    let every = 2usize;
    cfg.app_ckpt_every = Some(every);
    let vms = vc::vc(&sim, vc_id).unwrap().vms.clone();
    let job = harness::launch_on_vms(&mut sim, &vms, move |r, s| hpl::program(cfg, r, s));
    let ok = run_until(&mut sim, SimTime::from_secs_f64(36000.0), |sim| {
        harness::all_done(sim, &job)
    });
    assert!(ok, "E6 app-level HPL failed");
    // Bytes each rank persisted, divided by number of checkpoints.
    let ckpts = (n / 16 - 1) / every; // panels 2,4,… below n/nb
    let mut total_bytes = 0u64;
    let mut max_write_s = 0.0f64;
    for &vm in &vms {
        let g = &sim.world.vm(vm).unwrap().guest;
        total_bytes += g.disk.bytes_written;
        let per_ckpt = g.disk.bytes_written as f64 / ckpts.max(1) as f64;
        max_write_s = max_write_s.max(per_ckpt / g.disk.write_bps);
    }
    AppCost {
        ckpt_mb: total_bytes as f64 / ckpts.max(1) as f64 / 1e6,
        write_s: max_write_s,
    }
}

pub fn run(opts: Opts) {
    println!("## E6 — checkpoint efficiency: whole-VM (DVC) vs application-level (paper §2)\n");
    let ranks = 8;
    let mut t = Table::new(&[
        "HPL n",
        "method",
        "data per checkpoint",
        "save time",
        "restore",
        "app changes needed",
    ]);
    for (n, mem_mb) in [(128usize, 128u32), (256, 256), (384, 512)] {
        let d = dvc_cost(opts, ranks, mem_mb);
        let a = app_cost(opts, ranks, n);
        t.row(&[
            n.to_string(),
            "DVC whole-VM".into(),
            format!("{:.0} MB (guest memory × {ranks})", d.image_mb),
            secs(d.save_s),
            secs(d.restore_s),
            "none".into(),
        ]);
        t.row(&[
            n.to_string(),
            "application-level".into(),
            format!("{:.1} MB (live matrix + pivots)", a.ckpt_mb),
            secs(a.write_s),
            "requires app restart logic".into(),
            "checkpoint code in app".into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The paper's trade-off, quantified: DVC writes orders of magnitude \
         more bytes (full guest memory) but needs zero application \
         involvement and restores anywhere; application-level checkpoints \
         are minimal but exist only if every application implements them.\n"
    );
}
