//! E4 — §4 scalability: "with more nodes in a checkpoint set, the larger
//! the likelihood of a single VM checkpoint failing. With greater error
//! checking, and a coordinated health check of checkpoint processes,
//! scaling to hundreds or even thousands of nodes should be possible."
//!
//! We give every node's checkpoint agent a small independent fault
//! probability. Plain NTP LSC fails whenever *any* agent dies (its VM never
//! pauses, everyone else's transport budget expires), so its failure rate
//! compounds as 1−(1−p)^N. The hardened coordinator (arm-acks + abort
//! before anything pauses + retry, restarting dead agents) holds the line.

use crate::Opts;
use dvc_bench::scen::{ring_load_sparse, ring_verdict, run_cycles, settle, TrialWorld};
use dvc_bench::table::{pct, Table};
use dvc_core::lsc::LscMethod;
use dvc_sim_core::trial::run_trials;
use dvc_sim_core::SimDuration;

const AGENT_FAULT_P: f64 = 0.004;

fn failure_rate(opts: Opts, n: usize, method: LscMethod, trials: usize) -> f64 {
    let results = run_trials(
        trials,
        opts.seed ^ 0xE4 ^ (n as u64) ^ method.name().len() as u64,
        opts.threads,
        |_i, seed| {
            let tw = TrialWorld {
                nodes: n,
                seed,
                arm_loss: AGENT_FAULT_P,
                mem_mb: 16, // keep thousand-VM storage phases short
                ..TrialWorld::default()
            };
            let (mut sim, vc_id) = tw.build();
            let job = ring_load_sparse(&mut sim, vc_id, u64::MAX / 2);
            settle(&mut sim, SimDuration::from_secs(30));
            let outs = run_cycles(&mut sim, vc_id, method, 1, SimDuration::from_secs(1));
            settle(&mut sim, SimDuration::from_secs(60));
            let v = ring_verdict(&sim, &job);
            !(outs.first().is_some_and(|o| o.success) && v.alive && v.data_ok)
        },
    );
    results.iter().filter(|&&f| f).count() as f64 / trials as f64
}

pub fn run(opts: Opts) {
    println!("## E4 — scaling LSC to hundreds/thousands of nodes (paper §4)\n");
    println!(
        "Per-agent fault probability p = {AGENT_FAULT_P}; predicted plain \
         failure = 1−(1−p)^N.\n"
    );
    let mut t = Table::new(&[
        "nodes",
        "plain NTP failure",
        "predicted 1-(1-p)^N",
        "hardened failure",
    ]);
    for &n in &[26usize, 64, 128, 256, 512] {
        // Fewer trials at larger sizes (each sim is much bigger).
        let trials = opts.trials(match n {
            0..=26 => 24,
            27..=64 => 16,
            65..=128 => 10,
            129..=256 => 6,
            _ => 4,
        });
        let plain = failure_rate(opts, n, LscMethod::ntp_default(), trials);
        let hard = failure_rate(opts, n, LscMethod::hardened_default(), trials);
        let pred = 1.0 - (1.0 - AGENT_FAULT_P).powi(n as i32);
        t.row(&[n.to_string(), pct(plain), pct(pred), pct(hard)]);
    }
    println!("{}", t.render());
    println!(
        "Plain NTP LSC degrades with the compound per-agent fault \
         probability; the hardened coordinator (acks + abort-before-pause + \
         bounded retry) keeps the whole-set failure rate near zero — the \
         paper's prescription for thousand-node scaling.\n"
    );
}
