//! E11 — Figure 1 / §1: multi-cluster spanning. "Previous work has
//! demonstrated that a system that can transparently span parallel jobs
//! between multiple clusters will outperform those same clusters acting
//! independently."
//!
//! Two parts:
//!
//! 1. **Functional**: all three mappings of Figure 1 (direct / subset /
//!    spanning) provision and run a verified job — shown by the
//!    `multi_cluster_span` example and the LSC suite; here we re-check the
//!    spanning case briefly.
//! 2. **Throughput**: a random batch trace is scheduled onto two 16-node
//!    clusters with and without spanning allocation. Spanning lets wide
//!    jobs use fragmented capacity across clusters, cutting queue waits and
//!    makespan.

use crate::Opts;
use dvc_bench::table::{secs, Table};
use dvc_cluster::node::NodeId;
use dvc_cluster::rm::{self, JobSpec, Placement};
use dvc_cluster::world::{ClusterBuilder, ClusterWorld};
use dvc_sim_core::rng::exp_sample;
use dvc_sim_core::trial::run_trials;
use dvc_sim_core::{Sim, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct TraceJob {
    arrival_s: f64,
    nodes: usize,
    duration_s: f64,
}

fn make_trace(seed: u64, n_jobs: usize) -> Vec<TraceJob> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n_jobs)
        .map(|_| {
            t += exp_sample(&mut rng, 90.0);
            TraceJob {
                arrival_s: t,
                nodes: rng.gen_range(4..=16),
                duration_s: exp_sample(&mut rng, 500.0).clamp(60.0, 2400.0),
            }
        })
        .collect()
}

struct TraceResult {
    makespan_s: f64,
    mean_wait_s: f64,
}

fn run_trace(seed: u64, spanning: bool) -> TraceResult {
    let mut sim: Sim<ClusterWorld> = Sim::new(
        ClusterBuilder::new()
            .clusters(2)
            .nodes_per_cluster(16)
            .perfect_clocks()
            .build(seed),
        seed,
    );
    let trace = make_trace(seed ^ 0xABCD, 40);
    let n_jobs = trace.len();
    #[derive(Default)]
    struct Waits(Vec<f64>, usize); // (waits, completed)
    sim.world.ext.insert(Waits::default());

    for tj in trace {
        let placement = if spanning {
            Placement::AllowSpan
        } else {
            Placement::SingleCluster
        };
        let spec = JobSpec {
            name: "trace".into(),
            nodes: tj.nodes,
            est_duration: SimDuration::from_secs_f64(tj.duration_s),
            placement,
        };
        let dur = SimDuration::from_secs_f64(tj.duration_s);
        let arrival = SimTime::from_secs_f64(tj.arrival_s);
        sim.schedule_at(arrival, move |sim| {
            let submit_t = sim.now();
            rm::submit(sim, spec, move |sim, id, _nodes| {
                let wait = (sim.now() - submit_t).as_secs_f64();
                sim.world.ext.get_or_default::<Waits>().0.push(wait);
                // The job occupies its nodes for its duration, then ends.
                sim.schedule_in(dur, move |sim| {
                    rm::complete_job(sim, id, true);
                    sim.world.ext.get_or_default::<Waits>().1 += 1;
                });
            });
        });
    }

    // Run until every job completed.
    while sim.world.ext.get::<Waits>().map(|w| w.1) != Some(n_jobs) {
        assert!(sim.step(), "trace stalled (jobs starved)");
        assert!(sim.now() < SimTime::from_secs_f64(1e6), "trace runaway");
    }
    let waits = &sim.world.ext.get::<Waits>().unwrap().0;
    TraceResult {
        makespan_s: sim.now().as_secs_f64(),
        mean_wait_s: waits.iter().sum::<f64>() / waits.len() as f64,
    }
}

pub fn run(opts: Opts) {
    println!("## E11 — multi-cluster spanning (Figure 1, §1)\n");

    // Part 1: the three mappings classify correctly on a live world.
    {
        let mut sim: Sim<ClusterWorld> = Sim::new(
            ClusterBuilder::new()
                .clusters(2)
                .nodes_per_cluster(4)
                .perfect_clocks()
                .build(opts.seed),
            opts.seed,
        );
        let mut t = Table::new(&["hosts", "classified mapping"]);
        for (hosts, _want) in [
            (vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)], "Direct"),
            (vec![NodeId(4), NodeId(5)], "Subset"),
            (vec![NodeId(2), NodeId(6)], "Spanning"),
        ] {
            let n = hosts.len();
            let label = format!("{hosts:?}");
            let id = dvc_core::vc::provision_vc(
                &mut sim,
                dvc_core::vc::VcSpec::new("m", n, 64),
                hosts,
                |_s, _i| {},
            );
            sim.run_to_completion(10_000_000);
            let got = dvc_core::vc::vc(&sim, id).unwrap().mapping(&sim.world);
            t.row(&[label, format!("{got:?}")]);
        }
        println!("{}", t.render());
    }

    // Part 2: the throughput claim.
    let trials = opts.trials(20);
    let results = run_trials(trials, opts.seed ^ 0xE11, opts.threads, |_i, seed| {
        let indep = run_trace(seed, false);
        let span = run_trace(seed, true);
        (
            indep.makespan_s,
            indep.mean_wait_s,
            span.makespan_s,
            span.mean_wait_s,
        )
    });
    let mean = |f: fn(&(f64, f64, f64, f64)) -> f64| {
        results.iter().map(f).sum::<f64>() / results.len() as f64
    };
    let mut t = Table::new(&["policy", "mean makespan", "mean queue wait"]);
    t.row(&[
        "independent clusters".into(),
        secs(mean(|r| r.0)),
        secs(mean(|r| r.1)),
    ]);
    t.row(&[
        "DVC spanning".into(),
        secs(mean(|r| r.2)),
        secs(mean(|r| r.3)),
    ]);
    println!("{}", t.render());
    println!(
        "Same trace, same hardware: allowing virtual clusters to span both \
         physical clusters soaks up fragmented capacity — lower waits and \
         makespan, the effect the paper cites as DVC's original motivation.\n"
    );
}
