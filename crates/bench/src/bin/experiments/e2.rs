//! E2 — §3.1: the naive approach "did not scale beyond 8 nodes, with 10
//! nodes failing 50% of the time and 12 nodes failing 90% of the time".
//!
//! Each trial: a virtual cluster running the communication-heavy ring job
//! is checkpointed once with the naive (serialized terminal fan-out)
//! coordinator, then resumed the same way. A trial fails if any VM save
//! failed **or the application observed a transport reset** — the paper's
//! "failures to either save or restore". The failure emerges from guests'
//! TCP retry budgets; nothing is injected.

use crate::Opts;
use dvc_bench::scen::{one_cycle_trial, TrialWorld};
use dvc_bench::table::{pct, secs, Table};
use dvc_core::lsc::LscMethod;
use dvc_sim_core::trial::run_trials;

pub fn run(opts: Opts) {
    println!("## E2 — naive LSC failure rate vs. node count (paper §3.1)\n");
    let trials = opts.trials(60);
    let mut t = Table::new(&[
        "nodes",
        "trials",
        "failure rate",
        "paper",
        "mean pause skew",
    ]);
    let paper = |n: usize| match n {
        0..=8 => "~0%",
        10 => "50%",
        12 => "90%",
        _ => "-",
    };
    for &n in &[2usize, 4, 6, 8, 10, 12] {
        let results = run_trials(trials, opts.seed ^ 0xE2, opts.threads, |_i, seed| {
            let tw = TrialWorld {
                nodes: n,
                seed,
                ..TrialWorld::default()
            };
            let (ok, out) = one_cycle_trial(tw, LscMethod::Naive);
            (
                ok,
                out.map(|o| o.pause_skew.as_secs_f64()).unwrap_or(f64::NAN),
            )
        });
        let fails = results.iter().filter(|(ok, _)| !ok).count();
        let skews: Vec<f64> = results
            .iter()
            .map(|&(_, s)| s)
            .filter(|s| s.is_finite())
            .collect();
        let mean_skew = skews.iter().sum::<f64>() / skews.len().max(1) as f64;
        t.row(&[
            n.to_string(),
            trials.to_string(),
            pct(fails as f64 / trials as f64),
            paper(n).into(),
            secs(mean_skew),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Pause skew grows ~linearly with node count (serialized command \
         dispatch); once it crosses the guests' TCP retry budget, peers of \
         the earliest-paused VM reset their connections and the job dies.\n"
    );
}
