//! E7 — §3.2: the wall-time jump. "Since time was not virtualized in any
//! virtual machine, the jump in wall time due to the checkpoint caused HPL
//! to report a greatly increased execution time."
//!
//! HPL stamps its own start/end with the guest clock (which is the host
//! clock — not virtualized). We run the same factorization with k ∈
//! {0,1,2,4,8} checkpoint cycles and report HPL's self-reported runtime vs
//! the k = 0 baseline: the inflation is k × (save + suspension + resume).

use crate::Opts;
use dvc_bench::scen::{run_cycles, run_until, TrialWorld};
use dvc_bench::table::{secs, Table};
use dvc_core::lsc::LscMethod;
use dvc_core::vc;
use dvc_mpi::harness;
use dvc_mpi::ops::Op;
use dvc_sim_core::{SimDuration, SimTime};
use dvc_workloads::hpl;

fn reported_runtime(opts: Opts, k: u32) -> (f64, f64) {
    let tw = TrialWorld {
        nodes: 8,
        seed: opts.seed ^ 0xE7,
        mem_mb: 128,
        ..TrialWorld::default()
    };
    let (mut sim, vc_id) = tw.build();
    let cfg = hpl::HplConfig::new(256, 32, 5);
    let vms = vc::vc(&sim, vc_id).unwrap().vms.clone();
    let job = harness::launch_on_vms(&mut sim, &vms, move |r, s| {
        let (mut ops, data) = hpl::program(cfg, r, s);
        // Pad the run so k checkpoints at 10 s gaps fit inside it.
        ops.insert(1, Op::ComputeNs(120_000_000_000));
        (ops, data)
    });
    if k > 0 {
        let _ = run_cycles(
            &mut sim,
            vc_id,
            LscMethod::ntp_default(),
            k,
            SimDuration::from_secs(10),
        );
    }
    let ok = run_until(&mut sim, SimTime::from_secs_f64(86000.0), |sim| {
        harness::all_done(sim, &job)
    });
    assert!(ok, "E7 HPL failed (k={k})");
    let st = &harness::rank(&sim, &job, 0).stats;
    let t0 = st.markers.iter().find(|m| m.0 == "hpl-start").unwrap().1;
    let t1 = st.markers.iter().find(|m| m.0 == "hpl-end").unwrap().1;
    let reported = (t1 - t0) as f64 / 1e9;
    let residual = harness::rank(&sim, &job, 0).data.f64("hpl.residual");
    (reported, residual)
}

pub fn run(opts: Opts) {
    println!("## E7 — HPL's self-reported runtime vs checkpoint count (paper §3.2)\n");
    let (base, _) = reported_runtime(opts, 0);
    let mut t = Table::new(&[
        "checkpoints",
        "HPL-reported runtime",
        "inflation vs k=0",
        "per-cycle downtime",
        "residual still ok",
    ]);
    for k in [0u32, 1, 2, 4, 8] {
        let (rep, residual) = if k == 0 {
            (base, reported_runtime(opts, 0).1)
        } else {
            reported_runtime(opts, k)
        };
        let infl = rep - base;
        t.row(&[
            k.to_string(),
            secs(rep),
            if k == 0 { "-".into() } else { secs(infl) },
            if k == 0 {
                "-".into()
            } else {
                secs(infl / k as f64)
            },
            if residual < 1e-10 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "The factorization's *answer* is identical every time (residual \
         unchanged); only the benchmark's self-measured wall time grows, by \
         one save+suspend+resume per checkpoint — exactly the reporting \
         artifact the paper describes.\n"
    );
}
