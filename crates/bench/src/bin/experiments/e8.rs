//! E8 — §3.2: the watchdog. "A software watchdog timer was enabled in all
//! virtual machines. Each save and restoration of a virtual machine caused
//! a watchdog timeout to be reported. Although this did not affect the
//! execution of the environment, it did cause a large number of kernel
//! messages to accumulate."
//!
//! 26 guests with a 5 s watchdog are checkpointed k times; the suspension
//! (storage time ≫ 5 s) guarantees the wall-clock jump trips the watchdog.
//! We count guest kernel-log watchdog lines: exactly one per VM per cycle,
//! and the application is unaffected.

use crate::Opts;
use dvc_bench::scen::{ring_load, ring_verdict, run_cycles, settle, TrialWorld};
use dvc_bench::table::Table;
use dvc_core::lsc::LscMethod;
use dvc_core::vc;
use dvc_sim_core::SimDuration;

pub fn run(opts: Opts) {
    println!("## E8 — one watchdog timeout per save/restore cycle (paper §3.2)\n");
    let mut t = Table::new(&[
        "cycles",
        "VMs",
        "watchdog timeouts (total)",
        "expected (VMs × cycles)",
        "timeouts/VM/cycle",
        "app affected",
    ]);
    for cycles in [1u32, 2, 4] {
        let tw = TrialWorld {
            nodes: 26,
            seed: opts.seed ^ 0xE8 ^ cycles as u64,
            mem_mb: 256, // 26×256 MB over shared storage ⇒ ≫5 s suspension
            watchdog_period_s: 5.0,
            ..TrialWorld::default()
        };
        let (mut sim, vc_id) = tw.build();
        let job = ring_load(&mut sim, vc_id, u64::MAX / 2);
        settle(&mut sim, SimDuration::from_secs(30));
        // Baseline after provisioning (boot pauses may have tripped it).
        let vms = vc::vc(&sim, vc_id).unwrap().vms.clone();
        let before: u32 = vms
            .iter()
            .map(|&vm| sim.world.vm(vm).unwrap().guest.watchdog.timeouts)
            .sum();
        let outs = run_cycles(
            &mut sim,
            vc_id,
            LscMethod::ntp_default(),
            cycles,
            SimDuration::from_secs(20),
        );
        assert_eq!(outs.len(), cycles as usize);
        settle(&mut sim, SimDuration::from_secs(30));
        let after: u32 = vms
            .iter()
            .map(|&vm| sim.world.vm(vm).unwrap().guest.watchdog.timeouts)
            .sum();
        let kmsg_wd: usize = vms
            .iter()
            .map(|&vm| {
                sim.world
                    .vm(vm)
                    .unwrap()
                    .guest
                    .kmsg
                    .iter()
                    .filter(|m| m.msg.contains("watchdog"))
                    .count()
            })
            .sum();
        let fired = after - before;
        let v = ring_verdict(&sim, &job);
        t.row(&[
            cycles.to_string(),
            "26".into(),
            format!("{fired} ({kmsg_wd} kmsg lines)"),
            (26 * cycles).to_string(),
            format!("{:.2}", fired as f64 / (26 * cycles) as f64),
            if v.alive && v.data_ok {
                "no (kernel-log noise only)".into()
            } else {
                "YES".into()
            },
        ]);
    }
    println!("{}", t.render());
    println!();
}
