//! E12 — ablations of the design constants DESIGN.md calls out.
//!
//! (a) **TCP retry budget** × node count, naive coordinator: the failure
//!     knee tracks the transport's silence tolerance — shrink the budget
//!     and the naive approach dies earlier; grow it and the knee moves out.
//! (b) **Clock skew tolerance**: with NTP *disabled*, scheduled-instant
//!     checkpoints succeed as long as boot-time clock error stays below the
//!     budget — quantifying exactly how much synchronization LSC needs
//!     ("for LSC [a few milliseconds] is sufficient").
//! (c) **Loaded server** (§3.1's open problem): a heavily loaded node
//!     services its arm late; with a short lead time the late VM pauses
//!     after everyone else. The hardened coordinator's acks catch it.

use crate::Opts;
use dvc_bench::scen::{one_cycle_trial, ring_load, ring_verdict, run_cycles, settle, TrialWorld};
use dvc_bench::table::{pct, Table};
use dvc_core::lsc::LscMethod;
use dvc_sim_core::trial::run_trials;
use dvc_sim_core::SimDuration;

pub fn run(opts: Opts) {
    println!("## E12 — ablations: budget, skew, load\n");
    part_a(opts);
    part_b(opts);
    part_c(opts);
}

/// (a) retry budget × node count (naive coordinator).
fn part_a(opts: Opts) {
    println!("### E12a — naive failure rate vs TCP retry budget\n");
    let trials = opts.trials(16);
    let mut t = Table::new(&[
        "nodes",
        "retries=3 (~1.4s)",
        "retries=4 (~3s)",
        "retries=5 (~6.2s)",
    ]);
    for &n in &[6usize, 8, 10, 12] {
        let mut cells = vec![n.to_string()];
        for &retries in &[3u32, 4, 5] {
            let rs = run_trials(
                trials,
                opts.seed ^ 0x12A ^ (n as u64) << 8 ^ retries as u64,
                opts.threads,
                |_i, seed| {
                    let tw = TrialWorld {
                        nodes: n,
                        seed,
                        tcp_retries: retries,
                        ..TrialWorld::default()
                    };
                    let (ok, _) = one_cycle_trial(tw, LscMethod::Naive);
                    !ok
                },
            );
            let f = rs.iter().filter(|&&x| x).count() as f64 / trials as f64;
            cells.push(pct(f));
        }
        t.row(&cells);
    }
    println!("{}", t.render());
    println!(
        "The knee of the naive curve is set by the guests' retry budget, \
         not by anything in the coordinator — the mechanism behind the \
         paper's 8/10/12 numbers.\n"
    );
}

/// (b) clock error tolerance with NTP genuinely absent.
fn part_b(opts: Opts) {
    println!("### E12b — scheduled-instant checkpoint vs raw clock error (no NTP)\n");
    let trials = opts.trials(16);
    let mut t = Table::new(&[
        "boot clock error bound",
        "pairwise skew (≤2×)",
        "cycle failure rate",
    ]);
    for &off_ms in &[1.0f64, 10.0, 100.0, 400.0, 1000.0, 2000.0, 4000.0] {
        let rs = run_trials(
            trials,
            opts.seed ^ 0x12B ^ off_ms as u64,
            opts.threads,
            |_i, seed| {
                // No NTP at all: the scheduled fire instants land wherever
                // the raw boot-time clock errors put them.
                let tw = TrialWorld {
                    nodes: 10,
                    seed,
                    clock_offset_ms: off_ms,
                    ntp: false,
                    ..TrialWorld::default()
                };
                let (mut sim, vc_id) = tw.build();
                let job = ring_load(&mut sim, vc_id, u64::MAX / 2);
                settle(&mut sim, SimDuration::from_secs(15));
                let outs = run_cycles(
                    &mut sim,
                    vc_id,
                    LscMethod::ntp_default(),
                    1,
                    SimDuration::from_secs(1),
                );
                settle(&mut sim, SimDuration::from_secs(60));
                let v = ring_verdict(&sim, &job);
                !(outs.first().is_some_and(|o| o.success) && v.alive && v.data_ok)
            },
        );
        let f = rs.iter().filter(|&&x| x).count() as f64 / trials as f64;
        t.row(&[
            format!("±{off_ms:.0} ms"),
            format!("≤{:.0} ms", 2.0 * off_ms),
            pct(f),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Millisecond-class synchronization (what NTP delivers) leaves three \
         orders of magnitude of margin to the ~3 s transport budget; \
         second-class skew kills checkpoints — \"network time protocols can \
         synchronize time to within a few milliseconds … for LSC it is \
         sufficient\".\n"
    );
}

/// (c) heavily loaded node vs lead time: plain risks the application,
/// hardened protects it (and declines to checkpoint when it cannot be safe).
fn part_c(opts: Opts) {
    println!("### E12c — loaded nodes, short arm lead times (paper §3.1's open issue)\n");
    let trials = opts.trials(16);
    let mut t = Table::new(&[
        "arm lead",
        "plain: ckpt taken",
        "plain: app survived",
        "hardened: ckpt taken",
        "hardened: app survived",
    ]);
    for &lead_s in &[0.5f64, 1.0, 2.0, 5.0, 10.0] {
        let mut row = vec![format!("{lead_s}s")];
        for hardened in [false, true] {
            let rs = run_trials(
                trials,
                opts.seed ^ 0x12C ^ lead_s as u64 ^ hardened as u64,
                opts.threads,
                |_i, seed| {
                    // Every VC node heavily loaded AND a slow control plane:
                    // arm dispatch latency becomes comparable to the lead.
                    let tw = TrialWorld {
                        nodes: 8,
                        seed,
                        cmd_median_s: 0.5,
                        ..TrialWorld::default()
                    };
                    let (mut sim, vc_id) = tw.build();
                    for n in 1..=8u32 {
                        sim.world.node_mut(dvc_cluster::node::NodeId(n)).load = 0.9;
                    }
                    let job = ring_load(&mut sim, vc_id, u64::MAX / 2);
                    settle(&mut sim, SimDuration::from_secs(30));
                    let method = if hardened {
                        LscMethod::Hardened {
                            lead: SimDuration::from_secs_f64(lead_s),
                            ack_guard: SimDuration::from_secs_f64(lead_s * 0.2),
                            max_attempts: 5,
                            verify_fraction: 0.0,
                        }
                    } else {
                        LscMethod::Ntp {
                            lead: SimDuration::from_secs_f64(lead_s),
                        }
                    };
                    let outs = run_cycles(&mut sim, vc_id, method, 1, SimDuration::from_secs(1));
                    settle(&mut sim, SimDuration::from_secs(60));
                    let v = ring_verdict(&sim, &job);
                    let ckpt_ok = outs.first().is_some_and(|o| o.success);
                    (ckpt_ok, v.alive && v.data_ok)
                },
            );
            let ckpt = rs.iter().filter(|r| r.0).count() as f64 / trials as f64;
            let app = rs.iter().filter(|r| r.1).count() as f64 / trials as f64;
            row.push(pct(ckpt));
            row.push(pct(app));
        }
        t.row(&row);
    }
    println!("{}", t.render());
    println!(
        "With loaded nodes and a slow control plane, short leads make the \
         plain coordinator fire raggedly: it always *takes* its checkpoint, \
         but the late-pausing VMs blow the peers' transport budget and the \
         application dies. The hardened coordinator aborts (before anything \
         pauses) whenever arms are not all acknowledged in time — it may \
         decline to checkpoint at infeasible leads, but the application is \
         never harmed; given enough lead it both checkpoints and protects.\n"
    );
}
