//! E9 — §3.2/§4: parallel save & restore cost. The paper times "the amount
//! of time required by a parallel save and restore" across problem sizes
//! and intervals; the dominant term is streaming N×mem through the shared
//! storage system.
//!
//! We sweep the VM memory footprint and the storage array's aggregate
//! bandwidth on the paper's 26-VM configuration, report measured parallel
//! save / restore durations, and compare with the analytic floor
//! `N·mem / agg_bw`.

use crate::Opts;
use dvc_bench::scen::{ring_load, run_until, settle, TrialWorld};
use dvc_bench::table::{secs, Table};
use dvc_core::lsc::{self, LscMethod};
use dvc_core::vc;
use dvc_sim_core::{SimDuration, SimTime};

struct Cost {
    save_s: f64,
    restore_s: f64,
    skew_s: f64,
}

fn one(opts: Opts, mem_mb: u32, agg_mbps: f64) -> Cost {
    let n = 26usize;
    let tw = TrialWorld {
        nodes: n,
        spares: n, // restore targets
        seed: opts.seed ^ 0xE9 ^ mem_mb as u64 ^ agg_mbps as u64,
        mem_mb,
        storage_agg: agg_mbps * 1e6,
        storage_stream: 110.0e6,
        ..TrialWorld::default()
    };
    let (mut sim, vc_id) = tw.build();
    let _job = ring_load(&mut sim, vc_id, u64::MAX / 2);
    settle(&mut sim, SimDuration::from_secs(30));

    #[derive(Default)]
    struct Got {
        save: Option<(f64, u64, f64)>,
        restore: Option<f64>,
    }
    sim.world.ext.insert(Got::default());
    lsc::checkpoint_vc(&mut sim, vc_id, LscMethod::ntp_default(), |sim, out| {
        assert!(out.success, "E9 save failed: {}", out.detail);
        sim.world.ext.get_or_default::<Got>().save = Some((
            out.save_duration.as_secs_f64(),
            out.set_id.unwrap(),
            out.pause_skew.as_secs_f64(),
        ));
    });
    run_until(&mut sim, SimTime::from_secs_f64(86000.0), |sim| {
        sim.world.ext.get::<Got>().is_some_and(|g| g.save.is_some())
    });
    let (save_s, set_id, skew_s) = sim.world.ext.get::<Got>().unwrap().save.unwrap();

    let targets: Vec<_> = ((n as u32 + 1)..=(2 * n as u32))
        .map(dvc_cluster::node::NodeId)
        .collect();
    lsc::restore_vc(
        &mut sim,
        set_id,
        targets,
        SimDuration::from_secs(5),
        |sim, out| {
            assert!(out.success, "E9 restore failed: {}", out.detail);
            sim.world.ext.get_or_default::<Got>().restore = Some(out.duration.as_secs_f64());
        },
    )
    .expect("restore should start");
    run_until(&mut sim, SimTime::from_secs_f64(86000.0), |sim| {
        sim.world
            .ext
            .get::<Got>()
            .is_some_and(|g| g.restore.is_some())
    });
    let restore_s = sim.world.ext.get::<Got>().unwrap().restore.unwrap() - 5.0; // minus resume lead
                                                                                // The VC was left suspended before the restore (its VMs destroyed &
                                                                                // re-placed), so no settle needed; the measurement is complete.
    let _ = vc::vc(&sim, vc_id);
    Cost {
        save_s,
        restore_s,
        skew_s,
    }
}

pub fn run(opts: Opts) {
    println!("## E9 — parallel save/restore cost, 26 VMs on shared storage (paper §3.2)\n");
    let mut t = Table::new(&[
        "VM memory",
        "storage agg bw",
        "analytic floor 26·mem/bw",
        "parallel save",
        "parallel restore",
        "pause skew",
    ]);
    for &mem in &[128u32, 256, 512] {
        for &bw in &[200.0f64, 400.0, 800.0] {
            let c = one(opts, mem, bw);
            let floor = 26.0 * mem as f64 / bw;
            t.row(&[
                format!("{mem} MB"),
                format!("{bw:.0} MB/s"),
                secs(floor),
                secs(c.save_s),
                secs(c.restore_s),
                secs(c.skew_s),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Save/restore track the storage floor (26 images through the \
         array); pause skew stays at NTP residuals regardless of image \
         size, so growing VMs stretch the *suspension*, never the \
         consistency window.\n"
    );
}
