//! E13 — chaos drill: the failure-aware checkpoint pipeline under a
//! compound fault schedule.
//!
//! A 6-vnode ring job (~270 s of work) runs while a seeded [`FaultPlan`]
//! throws everything at once, scaled by a severity knob *x*:
//!
//! * steady faults for the whole run — storage transfers fail (p = 0.2·x),
//!   control messages vanish (p = 0.1·x), saved images rot silently
//!   (p = 0.3·x);
//! * a 2-minute NTP outage with a +6·x s clock step on one member mid-way
//!   through it;
//! * a storage brownout (bandwidth × (1 − 0.7·x)) across one checkpoint;
//! * two 8·x s control partitions of individual members;
//! * and, at every severity including x = 0, one VC host crashes outright
//!   mid-run.
//!
//! Two arms face the *same* fault schedule (same plan seed per trial):
//!
//! * **baseline** — NTP-scheduled LSC on a 45 s cadence, no storage
//!   retries, no checksum verification, restores blindly from the newest
//!   generation;
//! * **hardened** — the full pipeline: verify-on-save with re-save,
//!   bounded storage retry, abort-and-re-arm coordination, degradation to
//!   the clock-free protocol while NTP sync is stale, and restore from the
//!   newest *intact* generation.
//!
//! The claim: at full severity the baseline loses every job while the
//! hardened pipeline still finishes ≥ 99% of them — and the whole campaign
//! replays bit-identically from its seed.

use crate::Opts;
use dvc_bench::scen::{ring_verdict, run_until, settle, TrialWorld};
use dvc_bench::table::{pct, secs, Table};
use dvc_cluster::failure;
use dvc_cluster::faults::install_fault_plan;
use dvc_cluster::node::NodeId;
use dvc_core::reliability::{self, Policy};
use dvc_core::vc;
use dvc_mpi::harness;
use dvc_sim_core::trace::{Trace, TraceStats};
use dvc_sim_core::trial::{run_trials, CampaignSummary};
use dvc_sim_core::{
    CheckCounts, FaultPlan, InvariantChecker, JsonlSink, Metrics, MetricsSnapshot, SimDuration,
    SimTime,
};
use dvc_workloads::ring;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    Baseline,
    Hardened,
}

struct TrialOut {
    success: bool,
    completion_s: f64,
    restores: u32,
    degraded: u32,
    injected: u64,
    trace: TraceStats,
    metrics: MetricsSnapshot,
    violations: Vec<String>,
    checked: Option<CheckCounts>,
    jsonl: Option<Vec<String>>,
}

const CKPT_EVERY: u64 = 45;

/// The compound fault schedule, anchored at `t0` (job steady-state) and
/// scaled by severity `x ∈ [0, 1]`.
fn plan_for(seed: u64, x: f64, t0: SimTime) -> FaultPlan {
    let rel = |s: f64| t0 + SimDuration::from_secs_f64(s);
    let mut p = FaultPlan::new(seed);
    p.steady("storage.fail", 0.2 * x);
    p.steady("control.drop", 0.1 * x);
    p.steady("image.corrupt", 0.3 * x);
    // The NTP server goes dark for two minutes; one member's clock steps
    // mid-outage, so local-clock fire instants become poison.
    p.window("ntp.outage", None, rel(30.0), rel(150.0), 1.0);
    p.window("clock.step", Some(2), rel(70.0), rel(70.0), 6.0 * x);
    // Shared storage browns out across one checkpoint window.
    p.window(
        "storage.brownout",
        None,
        rel(40.0),
        rel(70.0),
        1.0 - 0.7 * x,
    );
    // Two members drop off the control network, one during the post-crash
    // recovery and one late in the run.
    p.window(
        "control.partition",
        Some(4),
        rel(95.0),
        rel(95.0 + 8.0 * x),
        1.0,
    );
    p.window(
        "control.partition",
        Some(5),
        rel(170.0),
        rel(170.0 + 8.0 * x),
        1.0,
    );
    p
}

fn one(seed: u64, x: f64, arm: Arm, check: bool, export: bool) -> TrialOut {
    let laps: u64 = 1300; // ~270 s of work at ~210 ms/lap
    let tw = TrialWorld {
        nodes: 6,
        spares: 8,
        seed,
        mem_mb: 64,
        ..TrialWorld::default()
    };
    let (mut sim, vc_id) = tw.build();
    sim.trace = Trace::enabled(512).with_categories(&["fault", "rel", "lsc"]);
    sim.metrics = Metrics::enabled();
    let checker = check.then(|| {
        let c = Rc::new(RefCell::new(InvariantChecker::new(
            InvariantChecker::default_budget(),
        )));
        sim.attach_sink(c.clone());
        c
    });
    let exporter = export.then(|| {
        let s = Rc::new(RefCell::new(JsonlSink::new(200_000)));
        sim.attach_sink(s.clone());
        s
    });
    if arm == Arm::Baseline {
        // The un-hardened pipeline: a failed storage transfer is final.
        sim.world.cfg.storage_retry.max_attempts = 1;
    }
    let cfg = ring::RingConfig {
        payload_len: 1024,
        iters: laps,
        compute_ns: 200_000_000,
    };
    let vms = vc::vc(&sim, vc_id).unwrap().vms.clone();
    let job = harness::launch_on_vms(&mut sim, &vms, move |r, s| ring::program(cfg, r, s));
    settle(&mut sim, SimDuration::from_secs(20));
    let t_start = sim.now();

    if x > 0.0 {
        install_fault_plan(&mut sim, plan_for(seed ^ 0xFA17, x, t_start));
    }
    let every = SimDuration::from_secs(CKPT_EVERY);
    let policy = match arm {
        Arm::Baseline => Policy::periodic(every),
        Arm::Hardened => Policy::hardened(every),
    };
    reliability::manage(&mut sim, vc_id, policy);

    // The hard kill, present at every severity: one VC host dies outright.
    let crash_at = t_start + SimDuration::from_secs(130);
    sim.schedule_at(crash_at, |sim| failure::crash_node(sim, NodeId(3)));

    let horizon = t_start + SimDuration::from_secs_f64(6.0 * 300.0);
    let done = run_until(&mut sim, horizon, |sim| harness::all_done(sim, &job));
    let v = ring_verdict(&sim, &job);
    let rel = reliability::stats(&mut sim, vc_id);
    // Fold the engine's own queue-health counters into the rollup.
    let st = sim.stats();
    sim.metrics.record_sim_stats(&st);
    TrialOut {
        success: done && v.alive && v.data_ok,
        completion_s: (sim.now() - t_start).as_secs_f64(),
        restores: rel.restores,
        degraded: rel.degraded_checkpoints,
        injected: sim.world.faults.injected_total(),
        trace: sim.trace.stats(),
        metrics: sim.metrics.snapshot(),
        violations: checker
            .as_ref()
            .map(|c| c.borrow().violations().to_vec())
            .unwrap_or_default(),
        checked: checker.map(|c| c.borrow().counts()),
        jsonl: exporter.map(|s| std::mem::take(&mut s.borrow_mut().lines)),
    }
}

pub fn run(opts: Opts) {
    println!("## E13 — chaos drill: failure-aware checkpointing under compound faults\n");
    let trials = opts.trials(8);
    let mut summary = CampaignSummary::default();
    let mut rollup = MetricsSnapshot::default();
    let mut exported: Option<Vec<String>> = None;
    let mut exported_baseline: Option<Vec<String>> = None;
    let mut baseline_viol: Vec<String> = Vec::new();
    let mut hardened_viol: Vec<String> = Vec::new();
    let mut counts = CheckCounts::default();
    let mut t = Table::new(&[
        "severity",
        "policy",
        "job success",
        "mean completion (successes)",
        "mean restores",
        "degraded ckpts",
        "faults injected",
    ]);
    for &x in &[0.0f64, 0.25, 0.5, 1.0] {
        for (arm, name) in [
            (Arm::Baseline, "baseline LSC"),
            (Arm::Hardened, "hardened LSC"),
        ] {
            // Same seed base per severity: both arms face identical fault
            // schedules, so the gap is the pipeline, not luck.
            // Export full event streams at full severity from both arms:
            // the hardened trial is the richest stream the drill produces,
            // the baseline one contains genuinely *failed* rounds (negative
            // margin) for `dvc-trace waterfall` to dissect.
            let export_here = x == 1.0;
            let rs = run_trials(
                trials,
                opts.seed ^ 0xE13 ^ (x * 100.0) as u64,
                opts.threads,
                |i, seed| one(seed, x, arm, opts.check_invariants, export_here && i == 0),
            );
            let succ = rs.iter().filter(|r| r.success).count();
            let mean_t = rs
                .iter()
                .filter(|r| r.success)
                .map(|r| r.completion_s)
                .sum::<f64>()
                / succ.max(1) as f64;
            let mean = |f: &dyn Fn(&TrialOut) -> f64| rs.iter().map(f).sum::<f64>() / trials as f64;
            for r in &rs {
                summary.absorb(&r.trace);
                rollup.merge(&r.metrics);
                if let Some(c) = r.checked {
                    counts.windows += c.windows;
                    counts.sets += c.sets;
                    counts.job_starts += c.job_starts;
                }
                let sink = match arm {
                    Arm::Baseline => &mut baseline_viol,
                    Arm::Hardened => &mut hardened_viol,
                };
                sink.extend(r.violations.iter().map(|v| format!("x={x:.2}: {v}")));
            }
            if let Some(lines) = rs.iter().find_map(|r| r.jsonl.clone()) {
                match arm {
                    Arm::Baseline => exported_baseline = Some(lines),
                    Arm::Hardened => exported = Some(lines),
                }
            }
            t.row(&[
                format!("{x:.2}"),
                name.into(),
                pct(succ as f64 / trials as f64),
                if succ == 0 { "-".into() } else { secs(mean_t) },
                format!("{:.1}", mean(&|r| r.restores as f64)),
                format!("{:.1}", mean(&|r| r.degraded as f64)),
                format!("{:.0}", mean(&|r| r.injected as f64)),
            ]);
        }
    }
    println!("{}", t.render());
    println!("{summary}");
    if let Some(w) = summary.dropped_warning() {
        println!("{w}");
    }
    if !rollup.is_empty() {
        println!("\nmetrics rollup (both arms, all severities):\n");
        println!("```");
        print!("{rollup}");
        println!("```");
    }
    for (lines, path, label) in [
        (&exported, "EVENTS_E13.jsonl", "hardened arm"),
        (
            &exported_baseline,
            "EVENTS_E13_BASELINE.jsonl",
            "baseline arm",
        ),
    ] {
        let Some(lines) = lines else { continue };
        match std::fs::write(path, lines.join("\n") + "\n") {
            Ok(()) => println!(
                "\n_exported {} typed events ({label}, x=1.00, trial 0) to {path}_",
                lines.len()
            ),
            Err(e) => eprintln!("e13: could not write {path}: {e}"),
        }
    }
    if opts.check_invariants {
        println!(
            "\ninvariants ({} save windows, {} stored sets, {} job starts checked):",
            counts.windows, counts.sets, counts.job_starts
        );
        println!("  hardened arm: {} violation(s)", hardened_viol.len());
        for v in hardened_viol.iter().take(10) {
            println!("    - {v}");
        }
        if baseline_viol.is_empty() {
            println!("  baseline arm: 0 violation(s)");
        } else {
            println!(
                "  baseline arm: {} violation(s) — expected detections: the un-hardened \
                 coordinator keeps local-clock scheduling through the seeded clock step, \
                 so a stored window can legitimately blow the silence budget",
                baseline_viol.len()
            );
            for v in baseline_viol.iter().take(5) {
                println!("    - {v}");
            }
        }
        assert!(
            hardened_viol.is_empty(),
            "the hardened pipeline must never store a set that violates the window invariant"
        );
    }
    println!();
    println!(
        "Both arms of each severity face identical seeded fault schedules. \
         The baseline dies to whichever fault lands first — an unretried \
         save failure leaves members paused past the guest TCP budget, a \
         stepped clock wrecks the scheduled pause skew, a corrupt image \
         restores as garbage. The hardened pipeline verifies and re-saves \
         images, retries storage, aborts and re-arms around partitions, \
         drops to clock-free coordination while NTP sync is stale, and \
         restores from the newest generation that passes its checksums.\n"
    );
}
