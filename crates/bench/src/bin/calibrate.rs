//! Calibration utility for the naive-LSC constants (DESIGN.md §2).
//!
//! Prints the emergent naive-coordinator failure rate and mean pause skew
//! around the paper's knee (N = 6..12) for the current constants
//! (`TrialWorld::cmd_median_s`, guest `max_data_retries`). Use it after
//! touching the control-plane latency model or the TCP retry machinery to
//! confirm the E2 curve still lands on the paper's 0/50/90% points.
//!
//! `cargo run --release -p dvc-bench --bin calibrate [trials]`

use dvc_bench::scen::{one_cycle_trial, TrialWorld};
use dvc_core::lsc::LscMethod;
use dvc_sim_core::trial::run_trials;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("trials must be a number"))
        .unwrap_or(25);
    let tw = TrialWorld::default();
    println!(
        "constants: cmd_median={}s retries={} (≈{}s abort budget), {trials} trials/point",
        tw.cmd_median_s,
        tw.tcp_retries,
        0.2 * ((1u64 << tw.tcp_retries) - 1) as f64,
    );
    println!("| nodes | failure | paper | mean skew |");
    println!("|-------|---------|-------|-----------|");
    for n in [6usize, 8, 10, 12] {
        let rs = run_trials(trials, 777, 1, |_i, seed| {
            let tw = TrialWorld {
                nodes: n,
                seed,
                ..TrialWorld::default()
            };
            let (ok, out) = one_cycle_trial(tw, LscMethod::Naive);
            (
                ok,
                out.map(|o| o.pause_skew.as_secs_f64()).unwrap_or(f64::NAN),
            )
        });
        let fails = rs.iter().filter(|(ok, _)| !ok).count();
        let skew: f64 = rs.iter().map(|r| r.1).sum::<f64>() / trials as f64;
        let paper = match n {
            10 => "50%",
            12 => "90%",
            _ => "~0%",
        };
        println!(
            "| {n:>5} | {:>6.1}% | {paper:>5} | {skew:>8.2}s |",
            fails as f64 / trials as f64 * 100.0
        );
    }
}
