//! `dvc-fuzz` — deterministic simulation fuzzing over the DVC model.
//!
//! Samples random scenarios (topology × workload × coordinator × fault
//! plan) from a campaign seed, runs each under the full oracle stack
//! (invariants, span well-formedness, margin consistency, event/metrics
//! cross-checks, liveness, same-seed determinism), and on a violation
//! shrinks the scenario to a minimal TOML reproducer.
//!
//! Campaigns are bit-replayable: `(campaign seed, trial index)` fully
//! determines a trial regardless of thread count.

use dvc_bench::fuzz::{corpus, gen, run, shrink};
use dvc_sim_core::trial::run_trials;
use dvc_sim_core::SimDuration;

const USAGE: &str = "dvc-fuzz — deterministic simulation fuzzer for the DVC model

USAGE:
  dvc-fuzz [--seed N] [--trials M] [--threads K] [--no-shrink] [--no-replay-check]
           [--sabotage-budget-ns NS] [--reproducer FILE]
      Run a campaign. Exits 1 if any oracle failed; the first failing
      trial is shrunk and written to FILE (default FUZZ_REPRODUCER.toml).
      --sabotage-budget-ns overrides the oracle silence budget — a
      deliberately tiny value is the self-test that the pipeline catches
      and shrinks a forced violation.

  dvc-fuzz replay <file.toml>...
      Re-run scenario or corpus-case files. Corpus cases (with name/expect
      headers) are held to their expectation; bare specs just report.

  dvc-fuzz corpus [DIR]
      Replay every case in DIR (default crates/bench/fuzz-corpus).

  dvc-fuzz gen --seed N --trial I
      Print the spec trial I of campaign N would run (corpus harvesting).";

fn fail(msg: &str) -> ! {
    eprintln!("dvc-fuzz: {msg}");
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        fail(&format!("{flag} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    match v.parse() {
        Ok(v) => Some(v),
        Err(_) => fail(&format!("{flag}: bad value {v:?}")),
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") => println!("{USAGE}"),
        Some("replay") => cmd_replay(&args[1..]),
        Some("corpus") => cmd_corpus(args.get(1).map(String::as_str)),
        Some("gen") => cmd_gen(&mut args),
        _ => cmd_campaign(&mut args),
    }
}

fn cmd_campaign(args: &mut Vec<String>) {
    let seed: u64 = parse_flag(args, "--seed").unwrap_or(1);
    let trials: usize = parse_flag(args, "--trials").unwrap_or(100);
    let threads: usize = parse_flag(args, "--threads")
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
    let no_shrink = take_switch(args, "--no-shrink");
    let replay_check = !take_switch(args, "--no-replay-check");
    let sabotage: Option<u64> = parse_flag(args, "--sabotage-budget-ns");
    let repro_path: String =
        parse_flag(args, "--reproducer").unwrap_or_else(|| "FUZZ_REPRODUCER.toml".into());
    if !args.is_empty() {
        fail(&format!("unknown arguments {args:?}\n\n{USAGE}"));
    }
    let tuning = run::Tuning {
        budget_override: sabotage.map(SimDuration::from_nanos),
        replay_check,
    };

    eprintln!(
        "campaign: seed {seed}, {trials} trial(s), {threads} thread(s){}",
        if sabotage.is_some() {
            " [SABOTAGED BUDGET]"
        } else {
            ""
        }
    );
    let reports = run_trials(trials, seed, threads, |i, _| {
        let spec = gen::generate(seed, i as u64);
        run::run_scenario(&spec, &tuning).map_err(|e| format!("trial {i}: {e}"))
    });

    let mut failed: Vec<usize> = Vec::new();
    let mut detections = 0u64;
    let mut windows = 0u64;
    let mut spans = 0u64;
    let mut events = 0u64;
    let mut faults = 0u64;
    let mut outcomes = 0u64;
    for (i, r) in reports.iter().enumerate() {
        match r {
            Err(e) => fail(e),
            Ok(r) => {
                detections += r.detections.len() as u64;
                windows += r.windows_checked;
                spans += r.spans_opened;
                events += r.events;
                faults += r.faults_injected;
                outcomes += r.outcomes as u64;
                if !r.is_clean() {
                    if failed.len() < 5 {
                        eprintln!("trial {i} FAILED: {}", r.summary());
                        for f in &r.failures {
                            eprintln!("  [{}] {}", f.oracle, f.detail);
                        }
                    }
                    failed.push(i);
                }
            }
        }
    }
    println!(
        "{} trial(s): {} clean, {} failed; {} round outcome(s), {} window(s), \
         {} span(s), {} event(s), {} fault injection(s), {} expected detection(s)",
        trials,
        trials - failed.len(),
        failed.len(),
        outcomes,
        windows,
        spans,
        events,
        faults,
        detections,
    );
    if failed.is_empty() {
        return;
    }

    let first = failed[0];
    let spec = gen::generate(seed, first as u64);
    let spec = if no_shrink {
        spec
    } else {
        eprintln!("shrinking trial {first}…");
        let res = shrink::shrink(&spec, &tuning, 150);
        for s in &res.steps {
            eprintln!("  {s}");
        }
        eprintln!(
            "shrunk in {} trial(s): {} node(s), {} window(s), {} steady",
            res.trials,
            res.spec.nodes,
            res.spec.faults.len(),
            res.spec.steady.len()
        );
        res.spec
    };
    let report = run::run_scenario(&spec, &tuning).unwrap_or_else(|e| fail(&e));
    let mut text = String::new();
    text.push_str(&format!(
        "# dvc-fuzz reproducer: campaign --seed {seed}, trial {first}{}\n",
        if sabotage.is_some() {
            " (sabotaged budget — self-test, not a model bug)"
        } else {
            ""
        }
    ));
    for f in &report.failures {
        text.push_str(&format!("# [{}] {}\n", f.oracle, f.detail));
    }
    text.push('\n');
    text.push_str(&spec.to_toml());
    std::fs::write(&repro_path, &text)
        .unwrap_or_else(|e| fail(&format!("cannot write {repro_path}: {e}")));
    eprintln!("reproducer written to {repro_path} (re-run: dvc-fuzz replay {repro_path})");
    std::process::exit(1);
}

fn cmd_replay(paths: &[String]) {
    if paths.is_empty() {
        fail("replay needs at least one file");
    }
    let mut bad = 0;
    for path in paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let verdict = match corpus::parse_case(&text) {
            Ok(case) => corpus::replay(&case).map(|r| r.summary()),
            // Not a corpus case (no header): run the bare spec and report.
            Err(_) => dvc_bench::fuzz::spec::parse_spec(&text).and_then(|p| {
                let tuning = run::Tuning {
                    budget_override: None,
                    replay_check: true,
                };
                run::run_scenario(&p.spec, &tuning).map(|r| {
                    if r.is_clean() {
                        r.summary()
                    } else {
                        format!("{}\n{:#?}", r.summary(), r.failures)
                    }
                })
            }),
        };
        match verdict {
            Ok(s) => println!("{path}: {s}"),
            Err(e) => {
                println!("{path}: FAILED: {e}");
                bad += 1;
            }
        }
    }
    if bad > 0 {
        std::process::exit(1);
    }
}

fn cmd_corpus(dir: Option<&str>) {
    let dir = dir.map_or_else(corpus::default_dir, std::path::PathBuf::from);
    let cases = corpus::load_dir(&dir).unwrap_or_else(|e| fail(&e));
    if cases.is_empty() {
        fail(&format!("no cases under {}", dir.display()));
    }
    let mut bad = 0;
    for (path, case) in &cases {
        match corpus::replay(case) {
            Ok(r) => println!("{}: {} — {}", path.display(), case.name, r.summary()),
            Err(e) => {
                println!("{}: FAILED: {e}", path.display());
                bad += 1;
            }
        }
    }
    if bad > 0 {
        std::process::exit(1);
    }
}

fn cmd_gen(args: &mut Vec<String>) {
    let seed: u64 = parse_flag(args, "--seed").unwrap_or(1);
    let trial: u64 = parse_flag(args, "--trial").unwrap_or(0);
    print!("{}", gen::generate(seed, trial).to_toml());
}
