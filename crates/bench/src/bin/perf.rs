//! `perf` — the fixed perf basket behind `BENCH_PERF.json`.
//!
//! Runs four scenarios that together cover every per-trial hot path
//! (TCP segmentation/ACK clocking, loss recovery, the 26-node LSC
//! checkpoint cycle, and an E2-style mini-campaign) plus a snapshot
//! microbench, and reports events/sec, wall ms, peak event-queue depth
//! and the no-op (cancelled/stale) event ratio for each.
//!
//! ```text
//! cargo run --release -p dvc-bench --bin perf            # full basket, JSON to stdout
//! cargo run --release -p dvc-bench --bin perf -- --out BENCH_PERF.json
//! cargo run --release -p dvc-bench --bin perf -- --smoke # small sizes for CI
//! cargo run --release -p dvc-bench --bin perf -- --smoke --check BENCH_PERF.json
//! cargo run --release -p dvc-bench --bin perf -- --smoke --check-invariants
//! ```
//!
//! `--check` reruns the basket and fails (exit 1) if any scenario's
//! events/sec regressed by more than 30% against the `smoke_baseline`
//! section of the given committed JSON. `--check-invariants` appends an
//! untimed LSC cycle with the typed-event spine fully attached and fails
//! on any stream-invariant violation.

use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;
use dvc_bench::scen::{self, TrialWorld};
use dvc_core::lsc::LscMethod;
use dvc_net::fabric::LinkParams;
use dvc_net::tcp::{SockEvent, SockId, TcpConfig};
use dvc_net::testkit::{drain, local_now, run_until, TestWorld};
use dvc_sim_core::trial::run_trials;
use dvc_sim_core::{InvariantChecker, Metrics, Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// One scenario's measurements.
struct Row {
    name: &'static str,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    peak_queue_depth: u64,
    noop_ratio: f64,
}

/// `events` counts heap pops (dispatched handlers + cancelled-timer
/// no-ops): the pre-cancellation engine *dispatched* its stale timers as
/// events and counted them in `events_executed`, so pops are the
/// accounting both engine generations share.
fn row<W>(name: &'static str, wall_ms: f64, sims: &[&Sim<W>]) -> Row {
    let stats =
        sims.iter()
            .map(|s| s.stats())
            .fold(dvc_sim_core::SimStats::default(), |mut acc, s| {
                acc.executed += s.executed;
                acc.noop_pops += s.noop_pops;
                acc.peak_queue_depth = acc.peak_queue_depth.max(s.peak_queue_depth);
                acc
            });
    let events = stats.executed + stats.noop_pops;
    Row {
        name,
        wall_ms,
        events,
        events_per_sec: events as f64 / (wall_ms / 1e3).max(1e-9),
        peak_queue_depth: stats.peak_queue_depth,
        noop_ratio: stats.noop_ratio(),
    }
}

fn establish(sim: &mut Sim<TestWorld>) -> (SockId, SockId) {
    let listener = sim.world.hosts[1].tcp.listen(7000).unwrap();
    let now = local_now(sim);
    let addr = sim.world.hosts[1].addr;
    let sa = sim.world.hosts[0].tcp.connect(now, addr, 7000);
    drain(sim, 0);
    run_until(sim, SimTime::from_secs_f64(10.0), |sim| {
        sim.world.hosts[1]
            .events
            .iter()
            .any(|&(s, e)| s == listener && matches!(e, SockEvent::Incoming(_)))
    });
    let sb = sim.world.hosts[1]
        .events
        .iter()
        .find_map(|&(s, e)| match e {
            SockEvent::Incoming(n) if s == listener => Some(n),
            _ => None,
        })
        .unwrap();
    (sa, sb)
}

/// Drive `total` bytes A→B through the zero-copy API (`send_bytes` in,
/// `recv_bytes` out, chunk at a time), return the finished sim. The
/// pre-PR baseline binary runs the same scenario through its era's API
/// (`send(&[u8])` / `recv() -> Vec`), so the pair measures the data
/// plane as an application actually drives it, before vs. after.
fn tcp_transfer(link: LinkParams, cfg: TcpConfig, loss: f64, total: usize) -> Sim<TestWorld> {
    let mut sim = Sim::new(TestWorld::new(2, link.with_loss(loss), cfg), 9);
    let (sa, sb) = establish(&mut sim);
    let data = Bytes::from(vec![0xA5u8; 64 * 1024]);
    let mss = cfg.mss;
    let mut sent = 0;
    let mut received = 0;
    while received < total {
        if sent < total {
            let now = local_now(&sim);
            let n = sim.world.hosts[0].tcp.send_bytes(now, sa, data.clone());
            sent += n;
            if n > 0 {
                drain(&mut sim, 0);
            }
        }
        if sim.world.hosts[1].tcp.readable_bytes(sb) > 0 {
            let now = local_now(&sim);
            received += sim.world.hosts[1].tcp.recv_bytes(now, sb, mss).len();
            drain(&mut sim, 1);
        }
        if received < total {
            assert!(sim.step(), "stalled at {received}/{total}");
        }
    }
    sim
}

fn bench_tcp(name: &'static str, link: LinkParams, cfg: TcpConfig, loss: f64, total: usize) -> Row {
    let t = Instant::now();
    let sim = tcp_transfer(link, cfg, loss, total);
    let wall = t.elapsed().as_secs_f64() * 1e3;
    row(name, wall, &[&sim])
}

/// One full LSC checkpoint cycle on an `n`-node ring under load.
fn bench_lsc(name: &'static str, nodes: usize, mem_mb: u32) -> Row {
    let tw = TrialWorld {
        nodes,
        spares: 1,
        mem_mb,
        seed: 7,
        ..TrialWorld::default()
    };
    let t = Instant::now();
    let (mut sim, vc_id) = tw.build();
    let _job = scen::ring_load(&mut sim, vc_id, u64::MAX / 2);
    scen::settle(&mut sim, SimDuration::from_secs(30));
    let outs = scen::run_cycles(
        &mut sim,
        vc_id,
        LscMethod::Naive,
        1,
        SimDuration::from_secs(1),
    );
    scen::settle(&mut sim, SimDuration::from_secs(20));
    let wall = t.elapsed().as_secs_f64() * 1e3;
    assert!(
        outs.first().is_some_and(|o| o.success),
        "{name}: cycle failed"
    );
    row(name, wall, &[&sim])
}

/// E2-style mini-campaign: independent single-cycle trials across threads.
fn bench_campaign(name: &'static str, trials: usize, threads: usize) -> Row {
    let t = Instant::now();
    let results = run_trials(trials, 0xD5C0_0001, threads, |_i, seed| {
        let tw = TrialWorld {
            nodes: 8,
            seed,
            ..TrialWorld::default()
        };
        let (mut sim, vc_id) = tw.build();
        let _job = scen::ring_load(&mut sim, vc_id, u64::MAX / 2);
        scen::settle(&mut sim, SimDuration::from_secs(30));
        let outs = scen::run_cycles(
            &mut sim,
            vc_id,
            LscMethod::Naive,
            1,
            SimDuration::from_secs(1),
        );
        scen::settle(&mut sim, SimDuration::from_secs(20));
        let stats = sim.stats();
        (
            outs.first().is_some_and(|o| o.success),
            sim.events_executed(),
            stats.noop_pops,
            stats.peak_queue_depth,
        )
    });
    let wall = t.elapsed().as_secs_f64() * 1e3;
    let executed: u64 = results.iter().map(|r| r.1).sum();
    let noops: u64 = results.iter().map(|r| r.2).sum();
    let peak: u64 = results.iter().map(|r| r.3).max().unwrap_or(0);
    let events = executed + noops;
    Row {
        name,
        wall_ms: wall,
        events,
        events_per_sec: events as f64 / (wall / 1e3).max(1e-9),
        peak_queue_depth: peak,
        noop_ratio: noops as f64 / events.max(1) as f64,
    }
}

/// Snapshot microbench: a mostly-clean `mem_mb` guest (all pages resident,
/// a small working set dirty since the last snapshot). Reports the wall
/// cost of a COW snapshot vs. the naive full deep copy it replaced.
fn bench_snapshot(mem_mb: u32) -> (f64, f64, u64, u64) {
    use dvc_vmm::mem::GuestMem;
    let mut mem = GuestMem::new(mem_mb);
    // Materialize every page, then settle with one snapshot so only the
    // small working set below is dirty relative to the last image.
    for p in 0..mem.total_pages() {
        mem.write_u64(p * GuestMem::PAGE_SIZE, p as u64);
    }
    let _settled = mem.snapshot();
    for i in 0..32u64 {
        mem.write_u64(
            (i as usize % mem.total_pages()) * GuestMem::PAGE_SIZE + 64,
            i,
        );
    }
    let dirty = mem.dirty_pages() as u64;
    let total = mem.total_pages() as u64;

    let iters = 16;
    let t = Instant::now();
    let mut keep = Vec::new();
    for _ in 0..iters {
        keep.push(mem.deep_copy());
    }
    let deep_ms = t.elapsed().as_secs_f64() * 1e3 / iters as f64;
    drop(keep);

    let t = Instant::now();
    let mut keep = Vec::new();
    for _ in 0..iters {
        keep.push(mem.snapshot());
    }
    let cow_ms = t.elapsed().as_secs_f64() * 1e3 / iters as f64;
    drop(keep);
    (deep_ms, cow_ms, dirty, total)
}

fn emit_rows(out: &mut String, rows: &[Row], indent: &str) {
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{indent}\"{}\": {{ \"wall_ms\": {:.1}, \"events\": {}, \"events_per_sec\": {:.0}, \
             \"peak_queue_depth\": {}, \"noop_ratio\": {:.4} }}{comma}",
            r.name, r.wall_ms, r.events, r.events_per_sec, r.peak_queue_depth, r.noop_ratio
        );
    }
}

fn run_basket(smoke: bool) -> Vec<Row> {
    let (bulk, lossy, lsc_nodes, lsc_mem, trials) = if smoke {
        (4 << 20, 1 << 20, 8, 64, 2)
    } else {
        (32 << 20, 4 << 20, 26, 512, 8)
    };
    let threads = if smoke {
        2
    } else {
        dvc_sim_core::trial::default_threads()
    };
    // Bulk runs over the campus-WAN profile (1 ms latency, ~60 MB/s) with
    // jumbo frames and 1 MiB buffers: the bandwidth-delay product fills
    // the window and each event moves ~9 KB, so wall clock is dominated by
    // how the buffers move bytes — the regime the zero-copy work targets
    // (E11 trunk spanning). A 30 µs LAN at 1448-byte MSS keeps in-flight
    // tiny and measures event dispatch instead of the data plane.
    let bulk_cfg = TcpConfig {
        mss: 8960,
        send_buf: 1 << 20,
        recv_buf: 1 << 20,
        ..TcpConfig::default()
    };
    eprintln!("perf: bulk tcp ({} MiB, campus wan, jumbo)...", bulk >> 20);
    let r1 = bench_tcp("bulk_tcp", LinkParams::campus_wan(), bulk_cfg, 0.0, bulk);
    eprintln!("perf: lossy tcp ({} MiB @ 1%, gige lan)...", lossy >> 20);
    let r2 = bench_tcp(
        "lossy_tcp",
        LinkParams::gige_lan(),
        TcpConfig::default(),
        0.01,
        lossy,
    );
    eprintln!("perf: lsc cycle ({lsc_nodes} nodes, {lsc_mem} MB)...");
    let r3 = bench_lsc("lsc_cycle", lsc_nodes, lsc_mem);
    eprintln!("perf: mini campaign ({trials} trials, {threads} threads)...");
    let r4 = bench_campaign("mini_campaign", trials, threads);
    vec![r1, r2, r3, r4]
}

/// Untimed verification pass behind `--check-invariants`: re-runs the LSC
/// cycle scenario with the typed-event spine fully on (metrics registry +
/// [`InvariantChecker`] sink) and fails on any violation. Deliberately a
/// *separate* pass — the timed scenarios above run with no sinks attached,
/// so the numbers measure the disabled-spine fast path the gate protects.
fn check_invariants_pass(smoke: bool) {
    let (nodes, mem_mb) = if smoke { (8, 64) } else { (26, 128) };
    eprintln!("perf: invariant pass (lsc cycle, {nodes} nodes, sinks attached)...");
    let tw = TrialWorld {
        nodes,
        spares: 1,
        mem_mb,
        seed: 7,
        ..TrialWorld::default()
    };
    let (mut sim, vc_id) = tw.build();
    sim.metrics = Metrics::enabled();
    let checker = Rc::new(RefCell::new(InvariantChecker::new(
        InvariantChecker::default_budget(),
    )));
    sim.attach_sink(checker.clone());
    let _job = scen::ring_load(&mut sim, vc_id, u64::MAX / 2);
    scen::settle(&mut sim, SimDuration::from_secs(30));
    let outs = scen::run_cycles(
        &mut sim,
        vc_id,
        LscMethod::ntp_default(),
        2,
        SimDuration::from_secs(5),
    );
    scen::settle(&mut sim, SimDuration::from_secs(20));
    assert!(
        outs.iter().all(|o| o.success),
        "invariant pass: checkpoint cycle failed"
    );
    let c = checker.borrow();
    eprintln!(
        "perf: invariants {} (lsc.save_fired = {})",
        c.report(),
        sim.metrics.counter("lsc.save_fired")
    );
    if !c.is_clean() {
        for v in c.violations() {
            eprintln!("perf: invariant violation: {v}");
        }
        std::process::exit(1);
    }
    let counts = c.counts();
    assert!(
        counts.windows > 0 && counts.sets > 0,
        "invariant pass saw no checkpoint traffic — event wiring broken?"
    );
}

/// Extract `"<scenario>": {... "events_per_sec": N ...}` pairs from the
/// `"<section>"` object of a committed BENCH_PERF.json (no JSON dep; the
/// file is machine-written with one scenario per line).
fn parse_baseline(text: &str, section: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(start) = text.find(&format!("\"{section}\"")) else {
        return out;
    };
    let mut depth = 0;
    for line in text[start..].lines() {
        depth += line.matches('{').count() as i64 - line.matches('}').count() as i64;
        if let Some((name, rest)) = line
            .trim()
            .strip_prefix('"')
            .and_then(|l| l.split_once('"'))
        {
            if let Some(eps) = rest
                .split("\"events_per_sec\":")
                .nth(1)
                .and_then(|s| s.split([',', '}']).next())
                .and_then(|s| s.trim().parse::<f64>().ok())
            {
                out.push((name.to_string(), eps));
            }
        }
        if depth <= 0 && out.len() > 1 {
            break;
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_invariants = args.iter().any(|a| a == "--check-invariants");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args[i + 1].clone());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone());

    let rows = run_basket(smoke);
    let (deep_ms, cow_ms, dirty, total) = bench_snapshot(if smoke { 64 } else { 512 });

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    json.push_str("  \"scenarios\": {\n");
    emit_rows(&mut json, &rows, "    ");
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"snapshot\": {{ \"mem_mb\": {}, \"resident_pages\": {total}, \"dirty_pages\": {dirty}, \
         \"deep_copy_ms\": {deep_ms:.3}, \"cow_snapshot_ms\": {cow_ms:.3}, \"speedup\": {:.1} }}",
        if smoke { 64 } else { 512 },
        deep_ms / cow_ms.max(1e-9)
    );
    json.push_str("}\n");

    println!("{json}");
    if let Some(p) = out_path {
        std::fs::write(&p, &json).expect("write --out file");
        eprintln!("perf: wrote {p}");
    }

    if let Some(path) = check {
        let committed = std::fs::read_to_string(&path).expect("read --check baseline");
        let section = if smoke { "smoke_baseline" } else { "after" };
        let baseline = parse_baseline(&committed, section);
        assert!(
            !baseline.is_empty(),
            "no \"{section}\" section with events_per_sec found in {path}"
        );
        let mut failed = false;
        for (name, base_eps) in &baseline {
            let Some(r) = rows.iter().find(|r| r.name == name) else {
                continue;
            };
            let floor = base_eps * 0.70;
            let verdict = if r.events_per_sec < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            eprintln!(
                "perf check: {name}: {:.0} ev/s vs baseline {base_eps:.0} (floor {floor:.0}) {verdict}",
                r.events_per_sec
            );
        }
        if failed {
            eprintln!("perf check: FAILED (>30% events/sec regression)");
            std::process::exit(1);
        }
        eprintln!("perf check: passed");
    }

    if check_invariants {
        check_invariants_pass(smoke);
    }
}
