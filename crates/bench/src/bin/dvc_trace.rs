//! `dvc-trace` — offline analyzer for exported span streams.
//!
//! The experiment binaries export their typed event stream as JSONL
//! (`EVENTS_E3.jsonl`, `EVENTS_E13.jsonl`). This tool replays such a file
//! through the sim-core analyzers and renders:
//!
//! * `summary`   — stream health (spans opened/closed, violations), round
//!   counts, per-phase duration quantiles and the margin distribution.
//!   Exits nonzero on a malformed stream, unclosed spans, span-tree
//!   violations, or a stream with no checkpoint rounds at all.
//! * `waterfall` — ASCII timelines of the worst-margin rounds: every phase
//!   span as a bar on the round's time axis, with the TCP silence budget
//!   marked from the first pause, so a failed round shows *which phase*
//!   pushed the pause spread past the budget.
//! * `diff`      — two streams side by side: per-phase p50/p99 and margin
//!   shifts (for comparing a chaos run against a clean baseline).
//! * `perfetto`  — Chrome-trace JSON export for `ui.perfetto.dev`.

use dvc_bench::traceio::{parse_stream, ParsedStream};
use dvc_sim_core::{
    EventSink, InvariantChecker, PerfettoTrace, PhaseAttribution, RoundRecord, SimTime, SpanChecker,
};

const USAGE: &str = "dvc-trace — span-stream analyzer for DVC event exports

USAGE:
  dvc-trace summary   <events.jsonl>            stream health + phase/margin stats
  dvc-trace waterfall <events.jsonl> [--worst N] timelines of the N worst-margin rounds (default 3)
  dvc-trace diff      <a.jsonl> <b.jsonl>       compare two runs phase by phase
  dvc-trace perfetto  <events.jsonl> [-o FILE]  export Chrome-trace JSON (default <input>.perfetto.json)";

fn fail(msg: &str) -> ! {
    eprintln!("dvc-trace: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> ParsedStream {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let stream =
        parse_stream(&text).unwrap_or_else(|e| fail(&format!("{path}: malformed stream: {e}")));
    eprintln!(
        "{path}: {} events, {} consumed",
        stream.lines,
        stream.events.len()
    );
    stream
}

struct Analysis {
    checker: SpanChecker,
    attrib: PhaseAttribution,
}

fn analyze(stream: &ParsedStream) -> Analysis {
    let mut checker = SpanChecker::new();
    let mut attrib = PhaseAttribution::new(InvariantChecker::default_budget());
    for (t, ev) in &stream.events {
        checker.on_event(*t, ev);
        attrib.on_event(*t, ev);
    }
    if let Some(end) = stream.end {
        attrib.observe_end(end);
    }
    attrib.seal();
    Analysis { checker, attrib }
}

fn secs(s: f64) -> String {
    if s.abs() < 1.0 {
        format!("{:.0} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

// ---------------------------------------------------------------- summary

fn cmd_summary(path: &str) {
    let stream = load(path);
    let Analysis { checker, attrib } = analyze(&stream);

    println!("stream: {path}");
    println!("spans:  {}", checker.report());
    for v in checker.violations().iter().take(10) {
        println!("  violation: {v}");
    }

    let rounds = attrib.rounds();
    let failed = rounds.iter().filter(|r| r.is_failed()).count();
    let budget = attrib.budget();
    println!(
        "rounds: {} checkpoint round(s), {failed} failed (budget {})",
        rounds.len(),
        secs(budget.as_secs_f64()),
    );

    let mut margins = attrib.margin_hist();
    if !margins.is_empty() {
        let neg = margins.samples().iter().filter(|m| **m < 0.0).count();
        println!(
            "margin: min {} / p50 {} / max {}  ({neg} round(s) negative)",
            secs(margins.min()),
            secs(margins.median()),
            secs(margins.max()),
        );
    }

    let phases = attrib.phase_histograms();
    if !phases.is_empty() {
        println!(
            "\n{:<18} {:>6} {:>10} {:>10} {:>10}",
            "phase", "n", "p50", "p99", "max"
        );
        for (name, h) in &phases {
            let mut h = h.clone();
            println!(
                "{name:<18} {:>6} {:>10} {:>10} {:>10}",
                h.len(),
                secs(h.median()),
                secs(h.p99()),
                secs(h.max()),
            );
        }
    }

    let free = attrib.free_phases().len();
    if free > 0 {
        println!("\n{free} restore/migration phase span(s) outside checkpoint rounds");
    }

    // Health gate: a stream that parsed but carries a broken or empty span
    // layer is a failure for CI purposes.
    if !checker.is_clean() {
        eprintln!("dvc-trace: span-tree violations present");
        std::process::exit(1);
    }
    if checker.unclosed() > 0 {
        eprintln!("dvc-trace: {} span(s) never closed", checker.unclosed());
        std::process::exit(1);
    }
    if rounds.is_empty() {
        eprintln!("dvc-trace: no checkpoint rounds in stream");
        std::process::exit(1);
    }
}

// -------------------------------------------------------------- waterfall

const BAR_W: usize = 56;

fn bar(round_start: SimTime, round_end: SimTime, s: SimTime, e: SimTime) -> String {
    let span = (round_end.0.saturating_sub(round_start.0)).max(1) as f64;
    let col = |t: SimTime| -> usize {
        let frac = (t.0.saturating_sub(round_start.0)) as f64 / span;
        ((frac * BAR_W as f64) as usize).min(BAR_W - 1)
    };
    let (a, b) = (col(s), col(e).max(col(s)));
    let mut out = String::with_capacity(BAR_W + 2);
    out.push('|');
    for i in 0..BAR_W {
        out.push(if i >= a && i <= b { '#' } else { '.' });
    }
    out.push('|');
    out
}

fn print_round(r: &RoundRecord, budget_s: f64) {
    let start = r.start;
    let full_end = r.end.or(r.window_closed_at).unwrap_or(r.start);
    // A round that never resolved its window was sealed with the stream
    // end, which can be minutes of dead air after the job died; truncate
    // the axis just past the budget deadline so the bars stay readable.
    let mut truncated = false;
    let end = if r.window_closed_at.is_none() && r.is_failed() {
        let phase_end = r
            .phases
            .iter()
            .filter(|p| p.complete)
            .map(|p| p.end)
            .max()
            .unwrap_or(full_end);
        let deadline = r
            .first_fire
            .map(|ff| SimTime(ff.0 + (budget_s * 1e9) as u64))
            .unwrap_or(phase_end);
        let cap = phase_end.max(deadline);
        truncated = cap < full_end;
        cap.min(full_end)
    } else {
        full_end
    };
    let dur = (end - start).as_secs_f64();
    let verdict = if r.is_failed() { "FAILED" } else { "stored" };
    let margin = r
        .margin_s(dvc_sim_core::SimDuration::from_secs_f64(budget_s))
        .map(secs)
        .unwrap_or_else(|| "n/a".into());
    println!(
        "round {} (vc {}) — {verdict}, margin {margin}, spread {}, {} fire(s), \
         {} abort(s), {} storage retr{}, {} ctrl loss(es)",
        r.run,
        r.vc,
        r.spread()
            .map(|s| secs(s.as_secs_f64()))
            .unwrap_or_else(|| "n/a".into()),
        r.fires,
        r.aborts,
        r.storage_retries,
        if r.storage_retries == 1 { "y" } else { "ies" },
        r.ctrl_losses,
    );
    println!(
        "  t = {:.3} s … {:.3} s  ({})",
        start.0 as f64 / 1e9,
        end.0 as f64 / 1e9,
        secs(dur),
    );
    if truncated {
        println!(
            "  window never resolved — members stayed paused; evidence runs to \
             {:.3} s (axis truncated past the budget deadline)",
            full_end.0 as f64 / 1e9,
        );
    }

    // The silence window: first pause → first pause + budget. Everything a
    // failed round does past the '>' is time its peers spent retransmitting
    // into frozen guests.
    if let Some(ff) = r.first_fire {
        let deadline = SimTime(ff.0 + (budget_s * 1e9) as u64);
        println!(
            "  {:<24} {}  (first pause + {})",
            "tcp silence budget",
            bar(start, end, ff, deadline.min(end)),
            secs(budget_s),
        );
    }

    let mut phases = r.phases.clone();
    phases.sort_by_key(|p| (p.start, p.name, p.arg));
    const MAX_ROWS: usize = 48;
    for p in phases.iter().take(MAX_ROWS) {
        let label = format!("{}[{}]", p.name, p.arg);
        let tail = if p.complete {
            format!("for {}", secs(p.duration().as_secs_f64()))
        } else {
            "NEVER COMPLETED".into()
        };
        println!(
            "  {label:<24} {}  +{} {tail}",
            bar(start, end, p.start, p.end),
            secs((p.start - start).as_secs_f64()),
        );
    }
    if phases.len() > MAX_ROWS {
        println!(
            "  … {} more phase span(s) not shown",
            phases.len() - MAX_ROWS
        );
    }
    println!();
}

fn cmd_waterfall(path: &str, worst: usize) {
    let stream = load(path);
    let Analysis { attrib, .. } = analyze(&stream);
    let budget_s = attrib.budget().as_secs_f64();

    // Worst margin first; rounds that paused nobody sort last.
    let mut rounds: Vec<&RoundRecord> = attrib.rounds().iter().collect();
    if rounds.is_empty() {
        fail("no checkpoint rounds in stream");
    }
    rounds.sort_by(|a, b| {
        let ma = a.margin_s(attrib.budget()).unwrap_or(f64::INFINITY);
        let mb = b.margin_s(attrib.budget()).unwrap_or(f64::INFINITY);
        ma.total_cmp(&mb)
    });
    println!(
        "{} round(s); showing the {} worst by margin (budget {}):\n",
        rounds.len(),
        worst.min(rounds.len()),
        secs(budget_s),
    );
    for r in rounds.iter().take(worst) {
        print_round(r, budget_s);
    }
}

// ------------------------------------------------------------------- diff

fn cmd_diff(path_a: &str, path_b: &str) {
    let a = analyze(&load(path_a));
    let b = analyze(&load(path_b));
    let (pa, pb) = (a.attrib.phase_histograms(), b.attrib.phase_histograms());

    println!("phase-level diff — A = {path_a}, B = {path_b}\n");
    println!(
        "{:<18} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "phase", "n(A)", "n(B)", "p50(A)", "p50(B)", "p99(A)", "p99(B)"
    );
    let names: std::collections::BTreeSet<&str> = pa.keys().chain(pb.keys()).copied().collect();
    for name in names {
        let q = |h: Option<&dvc_sim_core::stats::Histogram>, f: f64| {
            h.map(|h| secs(h.clone().quantile(f)))
                .unwrap_or_else(|| "-".into())
        };
        let n = |h: Option<&dvc_sim_core::stats::Histogram>| {
            h.map(|h| h.len().to_string()).unwrap_or_else(|| "0".into())
        };
        println!(
            "{name:<18} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
            n(pa.get(name)),
            n(pb.get(name)),
            q(pa.get(name), 0.5),
            q(pb.get(name), 0.5),
            q(pa.get(name), 0.99),
            q(pb.get(name), 0.99),
        );
    }

    let row = |tag: &str, an: &Analysis| {
        let rounds = an.attrib.rounds();
        let failed = rounds.iter().filter(|r| r.is_failed()).count();
        let mut m = an.attrib.margin_hist();
        if m.is_empty() {
            println!(
                "{tag}: {} round(s), {failed} failed, no margins",
                rounds.len()
            );
        } else {
            println!(
                "{tag}: {} round(s), {failed} failed, margin min {} / p50 {}",
                rounds.len(),
                secs(m.min()),
                secs(m.median()),
            );
        }
    };
    println!();
    row("A", &a);
    row("B", &b);
}

// --------------------------------------------------------------- perfetto

fn cmd_perfetto(path: &str, out: Option<String>) {
    let stream = load(path);
    let mut trace = PerfettoTrace::new();
    for (t, ev) in &stream.events {
        trace.on_event(*t, ev);
    }
    let out = out.unwrap_or_else(|| format!("{path}.perfetto.json"));
    std::fs::write(&out, trace.to_json())
        .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    println!(
        "{out}: {} span(s) exported ({} unclosed dropped, {} unmatched closes)",
        trace.span_count(),
        trace.unclosed(),
        trace.unmatched_closes,
    );
    if trace.span_count() == 0 {
        eprintln!("dvc-trace: stream contained no closed spans");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("summary") => match it.next() {
            Some(path) => cmd_summary(path),
            None => fail(USAGE),
        },
        Some("waterfall") => {
            let Some(path) = it.next() else { fail(USAGE) };
            let worst = match (it.next(), it.next()) {
                (Some("--worst"), Some(n)) => {
                    n.parse().unwrap_or_else(|_| fail("--worst takes a number"))
                }
                (None, _) => 3,
                _ => fail(USAGE),
            };
            cmd_waterfall(path, worst);
        }
        Some("diff") => match (it.next(), it.next()) {
            (Some(a), Some(b)) => cmd_diff(a, b),
            _ => fail(USAGE),
        },
        Some("perfetto") => {
            let Some(path) = it.next() else { fail(USAGE) };
            let out = match (it.next(), it.next()) {
                (Some("-o"), Some(f)) => Some(f.to_string()),
                (None, _) => None,
                _ => fail(USAGE),
            };
            cmd_perfetto(path, out);
        }
        _ => {
            println!("{USAGE}");
            std::process::exit(2);
        }
    }
}
