//! Scenario builders and trial drivers shared by the experiments.

use dvc_cluster::node::NodeId;
use dvc_cluster::ntp;
use dvc_cluster::world::{ClusterBuilder, ClusterWorld};
use dvc_core::lsc::{self, LscFaults, LscMethod, LscOutcome};
use dvc_core::vc::{self, VcId, VcSpec};
use dvc_mpi::harness::{self, MpiJob};
use dvc_sim_core::{Sim, SimDuration, SimTime};
use dvc_vmm::OverheadProfile;
use dvc_workloads::ring;

/// One trial's world parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrialWorld {
    /// VC size (vnodes / job nodes).
    pub nodes: usize,
    /// Extra spare nodes beyond the head + job nodes.
    pub spares: usize,
    pub clusters: usize,
    pub seed: u64,
    /// Guest TCP retry budget (effective silence tolerance ≈
    /// `rto_min · (2^retries − 1)`; 4 → ≈3 s to reach the abort count).
    pub tcp_retries: u32,
    /// Boot-time clock error bound, ms.
    pub clock_offset_ms: f64,
    /// Median of the naive coordinator's per-node command service time, s
    /// (the E2 calibration constant; see DESIGN.md §2).
    pub cmd_median_s: f64,
    /// VM memory footprint (checkpoint image size), MB.
    pub mem_mb: u32,
    pub overhead: OverheadProfile,
    /// Shared storage: aggregate and per-stream bandwidth, bytes/s.
    pub storage_agg: f64,
    pub storage_stream: f64,
    /// Per-agent arm-fault probability (E4).
    pub arm_loss: f64,
    /// Guest watchdog period, seconds (E8 shrinks it).
    pub watchdog_period_s: f64,
    /// Run NTP daemons (E12b disables them to expose raw clock error).
    pub ntp: bool,
}

impl Default for TrialWorld {
    fn default() -> Self {
        TrialWorld {
            nodes: 8,
            spares: 2,
            clusters: 1,
            seed: 1,
            tcp_retries: 4,
            clock_offset_ms: 5.0,
            cmd_median_s: 0.28,
            mem_mb: 64,
            overhead: OverheadProfile::PARAVIRT,
            storage_agg: 400.0e6,
            storage_stream: 110.0e6,
            arm_loss: 0.0,
            watchdog_period_s: 30.0,
            ntp: true,
        }
    }
}

impl TrialWorld {
    /// Build the world (NTP running) and provision a VC on nodes
    /// `1..=nodes`, running the sim until the VC is up.
    pub fn build(self) -> (Sim<ClusterWorld>, VcId) {
        let per_cluster = (1 + self.nodes + self.spares).div_ceil(self.clusters);
        let mut sim = Sim::new(
            ClusterBuilder::new()
                .clusters(self.clusters)
                .nodes_per_cluster(per_cluster)
                .storage(self.storage_agg, self.storage_stream)
                .tweak(|c| {
                    c.guest_tcp.max_data_retries = self.tcp_retries;
                    c.clock_max_offset_ms = self.clock_offset_ms;
                    c.vm_overhead = self.overhead;
                    c.ctrl.cmd_mu = self.cmd_median_s.ln();
                    c.watchdog_period_ns = (self.watchdog_period_s * 1e9) as i64;
                })
                .build(self.seed),
            self.seed,
        );
        if self.ntp {
            ntp::start_ntp(&mut sim, SimDuration::from_secs(4));
        }
        if self.arm_loss > 0.0 {
            lsc::set_faults(
                &mut sim,
                LscFaults {
                    arm_loss_prob: self.arm_loss,
                },
            );
        }
        let hosts: Vec<NodeId> = (1..=self.nodes as u32).map(NodeId).collect();
        let mut spec = VcSpec::new("trial-vc", self.nodes, self.mem_mb);
        spec.os_image_bytes = 32 << 20;
        spec.boot_time = SimDuration::from_secs(5);
        let id = vc::provision_vc(&mut sim, spec, hosts, |_s, _i| {});
        while vc::vc(&sim, id).map(|v| v.state) != Some(vc::VcState::Up) {
            assert!(sim.step(), "provisioning stalled");
        }
        (sim, id)
    }
}

/// Launch the standard checkpoint-stress ring: 32 KiB per hop, ~100 ms of
/// compute per lap, effectively endless (`laps`).
pub fn ring_load(sim: &mut Sim<ClusterWorld>, vc_id: VcId, laps: u64) -> MpiJob {
    let cfg = ring::RingConfig {
        payload_len: 1024,
        iters: laps,
        compute_ns: 200_000_000,
    };
    let vms = vc::vc(sim, vc_id).unwrap().vms.clone();
    harness::launch_on_vms(sim, &vms, move |r, s| ring::program(cfg, r, s))
}

/// Sparse (ring-hinted) variant for very large VCs.
pub fn ring_load_sparse(sim: &mut Sim<ClusterWorld>, vc_id: VcId, laps: u64) -> MpiJob {
    let cfg = ring::RingConfig {
        payload_len: 1024,
        iters: laps,
        compute_ns: 200_000_000,
    };
    let vms = vc::vc(sim, vc_id).unwrap().vms.clone();
    let map: Vec<dvc_net::Addr> = vms
        .iter()
        .map(|&vm| sim.world.vm(vm).unwrap().guest.addr)
        .collect();
    for (rank, &vm) in vms.iter().enumerate() {
        let node = sim.world.vm_host[&vm];
        let gflops = sim.world.node(node).cpu_gflops;
        let (ops, data) = ring::program(cfg, rank, vms.len());
        let rt = dvc_mpi::runtime::MpiRuntime::new(rank, vms.len(), map.clone(), gflops, ops, data)
            .with_peer_hint(harness::ring_hint(rank, vms.len()));
        dvc_cluster::glue::spawn_proc(sim, vm, format!("rank{rank}"), Box::new(rt));
    }
    MpiJob {
        vms,
        size: map.len(),
    }
}

/// Drive the sim until `pred` or `horizon`.
pub fn run_until(
    sim: &mut Sim<ClusterWorld>,
    horizon: SimTime,
    mut pred: impl FnMut(&mut Sim<ClusterWorld>) -> bool,
) -> bool {
    while !pred(sim) {
        if sim.now() > horizon || !sim.step() {
            return pred(sim);
        }
    }
    true
}

/// Execute `cycles` sequential checkpoint(+resume) cycles, `gap` apart,
/// synchronously collecting the outcomes.
pub fn run_cycles(
    sim: &mut Sim<ClusterWorld>,
    vc_id: VcId,
    method: LscMethod,
    cycles: u32,
    gap: SimDuration,
) -> Vec<LscOutcome> {
    #[derive(Default)]
    struct Bucket(Vec<LscOutcome>);
    sim.world.ext.insert(Bucket::default());
    for k in 0..cycles {
        let at = sim.now() + gap;
        sim.schedule_at(at, move |sim| {
            lsc::checkpoint_vc(sim, vc_id, method, |sim, out| {
                sim.world.ext.get_or_default::<Bucket>().0.push(out);
            });
        });
        let want = (k + 1) as usize;
        let ok = run_until(sim, SimTime::from_secs_f64(1e7), |sim| {
            sim.world
                .ext
                .get::<Bucket>()
                .is_some_and(|b| b.0.len() >= want)
        });
        if !ok {
            break; // sim drained (job crashed and nothing is scheduled)
        }
    }
    sim.world
        .ext
        .remove::<Bucket>()
        .map(|b| b.0)
        .unwrap_or_default()
}

/// Post-trial application verdict for a ring job.
pub struct AppVerdict {
    /// No rank observed a socket error or crashed.
    pub alive: bool,
    /// All per-lap payload checks passed so far.
    pub data_ok: bool,
    /// Laps completed by rank 0 (progress proof).
    pub laps_done: u64,
}

pub fn ring_verdict(sim: &Sim<ClusterWorld>, job: &MpiJob) -> AppVerdict {
    let alive = harness::first_failure(sim, job).is_none();
    let mut data_ok = true;
    let mut laps = 0;
    if alive {
        for r in 0..job.size {
            let d = &harness::rank(sim, job, r).data;
            if d.u64("ring.errors") != 0 {
                data_ok = false;
            }
            if r == 0 {
                laps = d.u64("ring.iter");
            }
        }
    } else {
        data_ok = false;
    }
    AppVerdict {
        alive,
        data_ok,
        laps_done: laps,
    }
}

/// Let post-checkpoint transport fallout surface: run `settle` longer.
pub fn settle(sim: &mut Sim<ClusterWorld>, settle: SimDuration) {
    let until = sim.now() + settle;
    let _ = run_until(sim, until, |_| false);
}

/// A full single-checkpoint trial on a ring load: returns (vm_ok && app
/// survived && data intact, outcome).
pub fn one_cycle_trial(tw: TrialWorld, method: LscMethod) -> (bool, Option<LscOutcome>) {
    let (mut sim, vc_id) = tw.build();
    let job = ring_load(&mut sim, vc_id, u64::MAX / 2);
    // Let the job and NTP warm up.
    settle(&mut sim, SimDuration::from_secs(30));
    let outs = run_cycles(&mut sim, vc_id, method, 1, SimDuration::from_secs(1));
    // Give the transport time to abort if the skew overran the budget.
    settle(&mut sim, SimDuration::from_secs(45));
    let v = ring_verdict(&sim, &job);
    let out = outs.into_iter().next();
    let ok = out.as_ref().is_some_and(|o| o.success) && v.alive && v.data_ok;
    (ok, out)
}
